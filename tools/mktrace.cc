/**
 * @file
 * mktrace: regenerate the committed golden replay artifacts under
 * tests/traces/.
 *
 * For each requested corpus kernel it (1) fuzzes the buggy variant
 * deterministically until the bug manifests, (2) shrinks the found
 * trace to a locally-minimal guidance sequence, (3) strictly replays
 * the shrunk run's normalized trace through fuzz::goldenReplay — the
 * exact code path the golden test uses — and (4) writes
 * <id>.trace (the normalized trace) and <id>.report (the replay's
 * RunReport fingerprint) into the output directory.
 *
 * Usage: mktrace <output-dir> [bug-id...]
 *        mktrace --check <trace-dir> [bug-id...]
 * With no ids, the default golden set (kDefaultIds) is processed.
 * Exits non-zero if any kernel cannot be fuzzed, shrunk, and
 * replayed to a manifesting, non-diverging run.
 *
 * --check strict-replays the committed artifacts in <trace-dir>
 * against the current binaries without regenerating anything: each
 * <id>.trace must replay without divergence, still manifest the bug
 * (or race), and fingerprint byte-identically to <id>.report. The
 * fast local version of the replay_golden test, for verifying a
 * runtime change before committing.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "corpus/bug.hh"
#include "fuzz/fuzzer.hh"
#include "fuzz/golden.hh"
#include "fuzz/shrink.hh"
#include "runtime/sched_trace.hh"

namespace
{

using namespace golite;

/** The committed golden set: the deterministic double-lock classic
 *  plus schedule-dependent kernels whose shrunk traces are
 *  non-trivial (the bug needs specific picks/preemptions), and one
 *  detector-only data race. */
const char *const kDefaultIds[] = {
    "boltdb-392",       // blocking / mutex: deterministic deadlock
    "cockroach-6111",   // non-blocking: lost increments, rare
    "kubernetes-41113", // non-blocking: schedule-dependent
    "etcd-4959",        // blocking: manifests on few schedules
    "etcd-5027",        // non-blocking: rare interleaving
    "etcd-6873",        // blocking: schedule-dependent leak
    "docker-22985",     // race visible only to the detector
};

bool
writeText(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        return false;
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), f) == text.size();
    return (std::fclose(f) == 0) && ok;
}

bool
makeArtifacts(const std::string &outdir, const std::string &id)
{
    const corpus::BugCase *bug = corpus::findBug(id);
    if (bug == nullptr) {
        std::fprintf(stderr, "mktrace: unknown bug id '%s'\n",
                     id.c_str());
        return false;
    }

    // Prefer the kernel's own manifestation judgement — it yields
    // schedule-specific traces; fall back to the race detector for
    // kernels whose defect only the detector can see.
    fuzz::FuzzOptions fo;
    fo.maxExecutions = 5000;
    fo.workers = 1; // deterministic
    fuzz::FuzzResult found =
        fuzz::fuzzKernel(*bug, corpus::Variant::Buggy, fo);
    bool raced_mode = false;
    if (!found.bugFound) {
        fo.attachRaceDetector = true;
        found = fuzz::fuzzKernel(*bug, corpus::Variant::Buggy, fo);
        raced_mode = true;
    }
    if (!found.bugFound) {
        std::fprintf(stderr,
                     "mktrace: %s: no bug within %zu executions\n",
                     id.c_str(), found.executions);
        return false;
    }

    fuzz::ShrinkOptions so;
    so.attachRaceDetector = raced_mode;
    fuzz::ShrinkResult shrunk =
        fuzz::shrinkKernelTrace(*bug, corpus::Variant::Buggy,
                                found.bugTrace, so);
    if (!shrunk.stillBug) {
        std::fprintf(stderr, "mktrace: %s: shrink lost the bug\n",
                     id.c_str());
        return false;
    }

    const fuzz::GoldenReplay golden =
        fuzz::goldenReplay(*bug, shrunk.normalized);
    if (golden.diverged || !(golden.manifested || golden.raced)) {
        std::fprintf(stderr,
                     "mktrace: %s: golden replay %s\n", id.c_str(),
                     golden.diverged ? "diverged"
                                     : "did not manifest the bug");
        return false;
    }

    std::string header = "# " + id + ": shrunk schedule, " +
                         std::to_string(shrunk.trace.size()) +
                         " guidance decisions, normalized to " +
                         std::to_string(shrunk.normalized.size()) +
                         "\n";
    if (!writeText(outdir + "/" + id + ".trace",
                   header + shrunk.normalized.serialize()) ||
        !writeText(outdir + "/" + id + ".report",
                   golden.report.fingerprint())) {
        std::fprintf(stderr, "mktrace: %s: cannot write artifacts\n",
                     id.c_str());
        return false;
    }

    std::printf("%-18s fuzz %zu execs (bug at %zu), shrunk %zu -> %zu "
                "(%zu normalized), %zu shrink replays%s\n",
                id.c_str(), found.executions, found.executionsToBug,
                found.bugTrace.size(), shrunk.trace.size(),
                shrunk.normalized.size(), shrunk.executions,
                shrunk.locallyMinimal ? "" : " [not minimal]");
    return true;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return in ? os.str() : std::string();
}

/** --check: strict-replay <dir>/<id>.trace and hold its fingerprint
 *  against the committed <dir>/<id>.report, regenerating nothing. */
bool
checkArtifacts(const std::string &dir, const std::string &id)
{
    const corpus::BugCase *bug = corpus::findBug(id);
    if (bug == nullptr) {
        std::fprintf(stderr, "mktrace: unknown bug id '%s'\n",
                     id.c_str());
        return false;
    }

    ScheduleTrace trace;
    std::string error;
    if (!ScheduleTrace::loadFile(dir + "/" + id + ".trace", trace,
                                 &error)) {
        std::fprintf(stderr, "mktrace: %s.trace: %s\n", id.c_str(),
                     error.empty() ? "cannot read" : error.c_str());
        return false;
    }
    const std::string expected = slurp(dir + "/" + id + ".report");
    if (expected.empty()) {
        std::fprintf(stderr, "mktrace: %s.report: cannot read\n",
                     id.c_str());
        return false;
    }

    const fuzz::GoldenReplay golden = fuzz::goldenReplay(*bug, trace);
    if (golden.diverged) {
        std::fprintf(stderr, "mktrace: %s: replay diverged: %s\n",
                     id.c_str(),
                     golden.report.replayDivergence.describe().c_str());
        return false;
    }
    if (!(golden.manifested || golden.raced)) {
        std::fprintf(stderr,
                     "mktrace: %s: replay no longer manifests the "
                     "bug\n",
                     id.c_str());
        return false;
    }
    if (golden.report.fingerprint() != expected) {
        std::fprintf(stderr,
                     "mktrace: %s: report fingerprint drifted from "
                     "the committed artifact (regenerate with "
                     "`mktrace <dir> %s` if intended)\n",
                     id.c_str(), id.c_str());
        return false;
    }
    std::printf("%-18s replay ok: %zu decisions, %s\n", id.c_str(),
                trace.size(),
                golden.raced ? "raced" : "manifested");
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(
            stderr,
            "usage: mktrace <output-dir> [bug-id...]\n"
            "       mktrace --check <trace-dir> [bug-id...]\n");
        return 2;
    }
    int arg = 1;
    const bool check = std::string(argv[arg]) == "--check";
    if (check && ++arg >= argc) {
        std::fprintf(stderr,
                     "usage: mktrace --check <trace-dir> "
                     "[bug-id...]\n");
        return 2;
    }
    const std::string dir = argv[arg++];
    std::vector<std::string> ids;
    for (int i = arg; i < argc; ++i)
        ids.push_back(argv[i]);
    if (ids.empty())
        ids.assign(std::begin(kDefaultIds), std::end(kDefaultIds));

    bool ok = true;
    for (const std::string &id : ids)
        ok = (check ? checkArtifacts(dir, id)
                    : makeArtifacts(dir, id)) &&
             ok;
    return ok ? 0 : 1;
}
