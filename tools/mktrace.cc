/**
 * @file
 * mktrace: regenerate the committed golden replay artifacts under
 * tests/traces/.
 *
 * For each requested corpus kernel it (1) fuzzes the buggy variant
 * deterministically until the bug manifests, (2) shrinks the found
 * trace to a locally-minimal guidance sequence, (3) strictly replays
 * the shrunk run's normalized trace through fuzz::goldenReplay — the
 * exact code path the golden test uses — and (4) writes
 * <id>.trace (the normalized trace) and <id>.report (the replay's
 * RunReport fingerprint) into the output directory.
 *
 * Usage: mktrace <output-dir> [bug-id...]
 * With no ids, the default golden set (kDefaultIds) is regenerated.
 * Exits non-zero if any kernel cannot be fuzzed, shrunk, and
 * replayed to a manifesting, non-diverging run.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "corpus/bug.hh"
#include "fuzz/fuzzer.hh"
#include "fuzz/golden.hh"
#include "fuzz/shrink.hh"

namespace
{

using namespace golite;

/** The committed golden set: the deterministic double-lock classic
 *  plus schedule-dependent kernels whose shrunk traces are
 *  non-trivial (the bug needs specific picks/preemptions), and one
 *  detector-only data race. */
const char *const kDefaultIds[] = {
    "boltdb-392",       // blocking / mutex: deterministic deadlock
    "cockroach-6111",   // non-blocking: lost increments, rare
    "kubernetes-41113", // non-blocking: schedule-dependent
    "etcd-4959",        // blocking: manifests on few schedules
    "etcd-5027",        // non-blocking: rare interleaving
    "etcd-6873",        // blocking: schedule-dependent leak
    "docker-22985",     // race visible only to the detector
};

bool
writeText(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        return false;
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), f) == text.size();
    return (std::fclose(f) == 0) && ok;
}

bool
makeArtifacts(const std::string &outdir, const std::string &id)
{
    const corpus::BugCase *bug = corpus::findBug(id);
    if (bug == nullptr) {
        std::fprintf(stderr, "mktrace: unknown bug id '%s'\n",
                     id.c_str());
        return false;
    }

    // Prefer the kernel's own manifestation judgement — it yields
    // schedule-specific traces; fall back to the race detector for
    // kernels whose defect only the detector can see.
    fuzz::FuzzOptions fo;
    fo.maxExecutions = 5000;
    fo.workers = 1; // deterministic
    fuzz::FuzzResult found =
        fuzz::fuzzKernel(*bug, corpus::Variant::Buggy, fo);
    bool raced_mode = false;
    if (!found.bugFound) {
        fo.attachRaceDetector = true;
        found = fuzz::fuzzKernel(*bug, corpus::Variant::Buggy, fo);
        raced_mode = true;
    }
    if (!found.bugFound) {
        std::fprintf(stderr,
                     "mktrace: %s: no bug within %zu executions\n",
                     id.c_str(), found.executions);
        return false;
    }

    fuzz::ShrinkOptions so;
    so.attachRaceDetector = raced_mode;
    fuzz::ShrinkResult shrunk =
        fuzz::shrinkKernelTrace(*bug, corpus::Variant::Buggy,
                                found.bugTrace, so);
    if (!shrunk.stillBug) {
        std::fprintf(stderr, "mktrace: %s: shrink lost the bug\n",
                     id.c_str());
        return false;
    }

    const fuzz::GoldenReplay golden =
        fuzz::goldenReplay(*bug, shrunk.normalized);
    if (golden.diverged || !(golden.manifested || golden.raced)) {
        std::fprintf(stderr,
                     "mktrace: %s: golden replay %s\n", id.c_str(),
                     golden.diverged ? "diverged"
                                     : "did not manifest the bug");
        return false;
    }

    std::string header = "# " + id + ": shrunk schedule, " +
                         std::to_string(shrunk.trace.size()) +
                         " guidance decisions, normalized to " +
                         std::to_string(shrunk.normalized.size()) +
                         "\n";
    if (!writeText(outdir + "/" + id + ".trace",
                   header + shrunk.normalized.serialize()) ||
        !writeText(outdir + "/" + id + ".report",
                   golden.report.fingerprint())) {
        std::fprintf(stderr, "mktrace: %s: cannot write artifacts\n",
                     id.c_str());
        return false;
    }

    std::printf("%-18s fuzz %zu execs (bug at %zu), shrunk %zu -> %zu "
                "(%zu normalized), %zu shrink replays%s\n",
                id.c_str(), found.executions, found.executionsToBug,
                found.bugTrace.size(), shrunk.trace.size(),
                shrunk.normalized.size(), shrunk.executions,
                shrunk.locallyMinimal ? "" : " [not minimal]");
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: mktrace <output-dir> [bug-id...]\n");
        return 2;
    }
    const std::string outdir = argv[1];
    std::vector<std::string> ids;
    for (int i = 2; i < argc; ++i)
        ids.push_back(argv[i]);
    if (ids.empty())
        ids.assign(std::begin(kDefaultIds), std::end(kDefaultIds));

    bool ok = true;
    for (const std::string &id : ids)
        ok = makeArtifacts(outdir, id) && ok;
    return ok ? 0 : 1;
}
