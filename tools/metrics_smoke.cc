/**
 * @file
 * metrics_smoke: print obs::MetricsSink counters for one fixed-seed
 * kernel, as single-line JSON on stdout.
 *
 * The workload exercises every counted primitive — channels, mutex,
 * RWMutex, Once, WaitGroup, select, and instrumented shared memory —
 * under seed 42. The counters are a pure function of the schedule, so
 * the output is byte-stable across machines and builds; CI diffs it
 * against baselines/METRICS_smoke.json. A drift means a primitive
 * changed what it emits on the event bus (or the scheduler changed
 * its decision sequence) — regenerate the baseline deliberately if
 * that was intended:
 *
 *     ./build/tools/metrics_smoke > baselines/METRICS_smoke.json
 */

#include <cstdio>

#include "golite/golite.hh"

using namespace golite;

namespace
{

void
workload()
{
    Mutex mu;
    RWMutex rw;
    Once once;
    WaitGroup wg;
    race::Shared<int> counter("counter");
    Chan<int> work = makeChan<int>(2);
    Chan<int> done = makeChan<int>();

    wg.add(2);
    for (int w = 0; w < 2; ++w) {
        go([&] {
            for (;;) {
                auto r = work.recv();
                if (!r.ok)
                    break;
                once.doOnce([&] { counter.store(0); });
                mu.lock();
                counter.update([](int &v) { v++; });
                mu.unlock();
                rw.rlock();
                counter.load();
                rw.runlock();
            }
            wg.done();
        });
    }
    go([&] {
        for (int i = 0; i < 8; ++i)
            work.send(i);
        work.close();
        wg.wait();
        done.send(1);
    });
    Select().recv<int>(done, [](int, bool) {}).run();
}

} // namespace

int
main()
{
    obs::MetricsSink metrics;
    RunOptions options;
    options.seed = 42;
    options.subscribers.push_back(&metrics);
    RunReport report = run(workload, options);
    if (!report.completed || !report.metrics.collected) {
        std::fprintf(stderr, "metrics_smoke: run did not complete\n");
        return 1;
    }
    std::printf("%s\n", report.metrics.json().c_str());
    return 0;
}
