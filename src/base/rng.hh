/**
 * @file
 * Deterministic pseudo-random number generation for the golite scheduler.
 *
 * All runtime nondeterminism (scheduler picks, select choices, preemption
 * points) is drawn from a single seeded generator so that every run is
 * reproducible from its seed. This is what turns the paper's "run the
 * buggy program 100 times" reproduction protocol into a seed sweep.
 */

#ifndef GOLITE_BASE_RNG_HH
#define GOLITE_BASE_RNG_HH

#include <cstdint>

namespace golite
{

/**
 * A small, fast, seedable PRNG (xoshiro256** core with a splitmix64
 * seeder). Not cryptographic; statistically solid for scheduling.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0);

    /** Re-seed, resetting the stream. */
    void seed(uint64_t seed);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform value in [0, bound). bound must be > 0. */
    uint64_t below(uint64_t bound);

    /** Bernoulli draw with probability p in [0, 1]. */
    bool chance(double p);

  private:
    uint64_t state_[4];
};

} // namespace golite

#endif // GOLITE_BASE_RNG_HH
