#include "base/rng.hh"

namespace golite
{

namespace
{

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(uint64_t seed_value)
{
    uint64_t sm = seed_value;
    for (auto &s : state_)
        s = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

uint64_t
Rng::below(uint64_t bound)
{
    // Debiased modulo via rejection sampling.
    const uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    // 53-bit mantissa draw.
    const double u = (next() >> 11) * (1.0 / 9007199254740992.0);
    return u < p;
}

} // namespace golite
