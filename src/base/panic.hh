/**
 * @file
 * Go-style panic machinery for the golite runtime.
 *
 * Go programs terminate with a runtime panic on certain misuses of the
 * concurrency primitives (send on a closed channel, closing a channel
 * twice, unlocking an unlocked mutex, negative WaitGroup counter...).
 * golite models a panic as a C++ exception that unwinds the offending
 * goroutine; the scheduler then aborts the whole run, mirroring Go's
 * whole-process crash.
 */

#ifndef GOLITE_BASE_PANIC_HH
#define GOLITE_BASE_PANIC_HH

#include <stdexcept>
#include <string>

namespace golite
{

/**
 * A Go runtime panic. Thrown by primitives on rule violations; caught by
 * the scheduler trampoline, which records it and stops the run.
 */
class GoPanic : public std::runtime_error
{
  public:
    explicit GoPanic(std::string message);

    /** The panic message, e.g. "close of closed channel". */
    const std::string &message() const { return message_; }

  private:
    std::string message_;
};

/** Throw a GoPanic with the given message. Never returns. */
[[noreturn]] void goPanic(const std::string &message);

} // namespace golite

#endif // GOLITE_BASE_PANIC_HH
