#include "base/panic.hh"

namespace golite
{

GoPanic::GoPanic(std::string message)
    : std::runtime_error("panic: " + message), message_(std::move(message))
{
}

void
goPanic(const std::string &message)
{
    throw GoPanic(message);
}

} // namespace golite
