/**
 * @file
 * The netpoller: real nonblocking TCP sockets as first-class goroutine
 * blocking points, backed by an edge-triggered epoll reactor.
 *
 * This is the production-concurrency counterpart of the deterministic
 * goio pipe: goroutine-per-request servers (the paper's Table 3 regime)
 * park their goroutines on WaitReason::NetIO when a socket would block,
 * and the scheduler consults the Poller (runtime IoPoller hook) to wake
 * them when the kernel reports readiness. Determinism boundary: none of
 * this is replayable — wakeup order depends on the kernel — so netpoll
 * is opt-in per run and the goio pipe remains the record/replay oracle.
 *
 * Usage (inside golite::run, typically with RunOptions::realTime):
 *
 *   netpoll::Poller poller;                  // attaches to the run
 *   auto ln = poller.listen(0);              // 127.0.0.1, kernel port
 *   go([ln] { for (;;) { auto c = ln.accept(); ... } });
 *   auto conn = poller.dial(ln.port());
 *
 * All sockets are IPv4 loopback: this wing exists to drive the soak
 * harness (src/load), not to be a general net package.
 */

#ifndef GOLITE_NETPOLL_NETPOLL_HH
#define GOLITE_NETPOLL_NETPOLL_HH

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "goio/pipe.hh"
#include "runtime/scheduler.hh"

namespace golite::netpoll
{

/** Same result shape as the goio pipe: bytes moved + error string. */
using goio::IoResult;

class Poller;

namespace detail
{

/** Per-fd readiness state; address doubles as the epoll cookie and
 *  the park wait-object. At most one parked reader and one parked
 *  writer per fd (Go's netpoll has the same rule). */
struct FdState
{
    int fd = -1;
    Poller *poller = nullptr;
    Goroutine *reader = nullptr;
    Goroutine *writer = nullptr;
};

} // namespace detail

/**
 * A connected loopback TCP stream. Value-semantic handle (copies
 * share the socket); default-constructed or failed handles are
 * invalid. The fd closes when close() is called or the last handle
 * drops.
 */
class TcpConn
{
  public:
    TcpConn() = default;

    /** True for a usable (dialed/accepted, not closed) connection. */
    explicit operator bool() const;

    /**
     * Read up to @p max bytes into @p out (replacing its contents),
     * parking until data arrives. err="EOF" at stream end, "use of
     * closed network connection" after close().
     */
    IoResult read(std::string &out, size_t max = 64 * 1024) const;

    /** Write all of @p data, parking while the kernel buffer is
     *  full. n is the byte count actually written. */
    IoResult write(std::string_view data) const;

    /** Close the socket; parked peers wake with an error. */
    void close() const;

  private:
    friend class Poller;
    friend class TcpListener;
    explicit TcpConn(std::shared_ptr<detail::FdState> state)
        : state_(std::move(state))
    {
    }

    std::shared_ptr<detail::FdState> state_;
};

/**
 * A listening loopback TCP socket. Value-semantic handle, like
 * TcpConn.
 */
class TcpListener
{
  public:
    TcpListener() = default;

    explicit operator bool() const;

    /** The kernel-assigned port (after listen(0)). */
    uint16_t port() const { return port_; }

    /** Accept one connection, parking until a peer dials. Returns an
     *  invalid conn once the listener is closed. */
    TcpConn accept() const;

    /** Close the listener; a parked accept() wakes and returns an
     *  invalid conn. */
    void close() const;

  private:
    friend class Poller;
    TcpListener(std::shared_ptr<detail::FdState> state, uint16_t port)
        : state_(std::move(state)), port_(port)
    {
    }

    std::shared_ptr<detail::FdState> state_;
    uint16_t port_ = 0;
};

/**
 * The epoll reactor. Construct one per run, inside the run, before any
 * sockets (it attaches itself as the scheduler's IoPoller); it must
 * outlive every TcpConn/TcpListener it produced. The scheduler calls
 * poll() when goroutines are parked on I/O — blocking in epoll_wait up
 * to the next timer deadline when nothing is runnable, nonblocking
 * every RunOptions::ioPollEvery dispatches otherwise.
 */
class Poller : public IoPoller
{
  public:
    /** Attaches to the current run (std::logic_error outside a run or
     *  if the run already has a poller). */
    Poller();
    ~Poller() override;

    Poller(const Poller &) = delete;
    Poller &operator=(const Poller &) = delete;

    /** Bind + listen on 127.0.0.1:@p port (0 = kernel-assigned).
     *  Returns an invalid listener on failure. */
    TcpListener listen(uint16_t port);

    /** Connect to 127.0.0.1:@p port, parking during the handshake.
     *  Returns an invalid conn on failure (e.g. refused). */
    TcpConn dial(uint16_t port);

    // --- IoPoller ---------------------------------------------------

    size_t poll(int timeout_ms) override;

    size_t ioWaiters() const override { return waiters_; }

    /** The poller attached to the current run (null when none). */
    static Poller *current();

  private:
    friend class TcpConn;
    friend class TcpListener;

    /** Set nonblocking, register with epoll (edge-triggered, in+out),
     *  and wrap in a shared FdState that closes on last release. */
    std::shared_ptr<detail::FdState> adopt(int fd);

    /** Deregister + close the fd and wake parked peers. */
    void closeFd(detail::FdState *s);

    /** Park the running goroutine until the fd's end is ready. */
    void wait(detail::FdState *s, Goroutine *detail::FdState::*end);

    void waitReadable(detail::FdState *s) { wait(s, &detail::FdState::reader); }
    void waitWritable(detail::FdState *s) { wait(s, &detail::FdState::writer); }

    Scheduler *sched_ = nullptr;
    int epfd_ = -1;
    size_t waiters_ = 0;
    std::vector<Goroutine *> wakeBuf_;
};

} // namespace golite::netpoll

#endif // GOLITE_NETPOLL_NETPOLL_HH
