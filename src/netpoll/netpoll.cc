#include "netpoll/netpoll.hh"

#include <cassert>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace golite::netpoll
{

namespace
{

constexpr const char *kClosedErr = "use of closed network connection";

std::string
errnoStr()
{
    return std::strerror(errno);
}

sockaddr_in
loopbackAddr(uint16_t port)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    return addr;
}

} // namespace

// --- Poller -----------------------------------------------------------

Poller::Poller()
{
    sched_ = Scheduler::current();
    if (sched_ == nullptr) {
        throw std::logic_error(
            "netpoll::Poller must be created inside golite::run");
    }
    if (sched_->ioPoller() != nullptr) {
        throw std::logic_error(
            "this run already has an IoPoller attached");
    }
    epfd_ = epoll_create1(EPOLL_CLOEXEC);
    if (epfd_ < 0) {
        throw std::runtime_error("epoll_create1: " + errnoStr());
    }
    sched_->setIoPoller(this);
}

Poller::~Poller()
{
    if (sched_ != nullptr && sched_->ioPoller() == this)
        sched_->setIoPoller(nullptr);
    if (epfd_ >= 0)
        ::close(epfd_);
}

Poller *
Poller::current()
{
    Scheduler *sched = Scheduler::current();
    // Only netpoll::Poller implementations register themselves in this
    // codebase, so the downcast is safe by construction.
    return sched != nullptr ? static_cast<Poller *>(sched->ioPoller())
                            : nullptr;
}

std::shared_ptr<detail::FdState>
Poller::adopt(int fd)
{
    const int flags = fcntl(fd, F_GETFL, 0);
    fcntl(fd, F_SETFL, flags | O_NONBLOCK);

    auto *s = new detail::FdState;
    s->fd = fd;
    s->poller = this;

    // Edge-triggered, both directions, registered exactly once: the
    // kernel latches readiness transitions until the next epoll_wait,
    // and since this runtime is single-threaded a goroutine only parks
    // after seeing EAGAIN — i.e. after consuming the previous edge —
    // so no wakeup can be lost.
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP;
    ev.data.ptr = s;
    if (epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
        ::close(fd);
        delete s;
        return nullptr;
    }

    return std::shared_ptr<detail::FdState>(
        s, [](detail::FdState *state) {
            if (state->fd >= 0)
                state->poller->closeFd(state);
            delete state;
        });
}

void
Poller::closeFd(detail::FdState *s)
{
    if (s->fd < 0)
        return;
    epoll_ctl(epfd_, EPOLL_CTL_DEL, s->fd, nullptr);
    ::close(s->fd);
    s->fd = -1;
    // Wake parked peers so they observe the close (skipped during
    // teardown: abortAll is already unwinding every goroutine).
    Goroutine *wake[2];
    size_t n = 0;
    if (s->reader != nullptr) {
        wake[n++] = s->reader;
        s->reader = nullptr;
    }
    if (s->writer != nullptr) {
        wake[n++] = s->writer;
        s->writer = nullptr;
    }
    if (n > 0 && !sched_->aborting())
        sched_->unparkBatch(wake, n);
}

void
Poller::wait(detail::FdState *s, Goroutine *detail::FdState::*end)
{
    assert(s->*end == nullptr &&
           "two goroutines blocked on the same fd end");
    s->*end = sched_->running();
    waiters_++;
    try {
        sched_->park(WaitReason::NetIO, s);
    } catch (...) {
        // Teardown unwind (RunAborted): undo the bookkeeping so the
        // poller never wakes a dead goroutine.
        waiters_--;
        s->*end = nullptr;
        throw;
    }
    waiters_--;
    s->*end = nullptr;
}

size_t
Poller::poll(int timeout_ms)
{
    epoll_event events[256];
    const int n = epoll_wait(epfd_, events, 256, timeout_ms);
    if (n <= 0)
        return 0;
    wakeBuf_.clear();
    for (int i = 0; i < n; ++i) {
        auto *s = static_cast<detail::FdState *>(events[i].data.ptr);
        const uint32_t e = events[i].events;
        // Error/hangup wakes both ends; the retried syscall reports
        // the actual condition (EOF, ECONNRESET, ...).
        const bool broken = (e & (EPOLLERR | EPOLLHUP | EPOLLRDHUP)) != 0;
        if (((e & EPOLLIN) != 0 || broken) && s->reader != nullptr) {
            wakeBuf_.push_back(s->reader);
            s->reader = nullptr;
        }
        if (((e & EPOLLOUT) != 0 || broken) && s->writer != nullptr) {
            wakeBuf_.push_back(s->writer);
            s->writer = nullptr;
        }
    }
    sched_->unparkBatch(wakeBuf_.data(), wakeBuf_.size());
    return wakeBuf_.size();
}

TcpListener
Poller::listen(uint16_t port)
{
    const int fd =
        socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return {};
    const int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr = loopbackAddr(port);
    if (bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 4096) != 0) {
        ::close(fd);
        return {};
    }
    socklen_t len = sizeof(addr);
    getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len);
    auto state = adopt(fd);
    if (!state)
        return {};
    return TcpListener(std::move(state), ntohs(addr.sin_port));
}

TcpConn
Poller::dial(uint16_t port)
{
    const int fd =
        socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return {};
    sockaddr_in addr = loopbackAddr(port);
    const int rc =
        connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS) {
        ::close(fd);
        return {};
    }
    auto state = adopt(fd);
    if (!state)
        return {};
    if (rc != 0) {
        // Nonblocking connect: park until writable, then read the
        // handshake outcome.
        waitWritable(state.get());
        if (state->fd < 0)
            return {};
        int err = 0;
        socklen_t len = sizeof(err);
        getsockopt(state->fd, SOL_SOCKET, SO_ERROR, &err, &len);
        if (err != 0) {
            closeFd(state.get());
            return {};
        }
    }
    return TcpConn(std::move(state));
}

// --- TcpConn ----------------------------------------------------------

TcpConn::operator bool() const
{
    return state_ != nullptr && state_->fd >= 0;
}

IoResult
TcpConn::read(std::string &out, size_t max) const
{
    detail::FdState *s = state_.get();
    out.clear();
    if (s == nullptr || s->fd < 0)
        return {0, kClosedErr};
    out.resize(max);
    for (;;) {
        const ssize_t r = ::read(s->fd, out.data(), max);
        if (r > 0) {
            out.resize(static_cast<size_t>(r));
            return {static_cast<size_t>(r), {}};
        }
        if (r == 0) {
            out.clear();
            return {0, "EOF"};
        }
        if (errno == EINTR)
            continue;
        if (errno != EAGAIN && errno != EWOULDBLOCK) {
            out.clear();
            return {0, errnoStr()};
        }
        s->poller->waitReadable(s);
        if (s->fd < 0) {
            out.clear();
            return {0, kClosedErr};
        }
    }
}

IoResult
TcpConn::write(std::string_view data) const
{
    detail::FdState *s = state_.get();
    if (s == nullptr || s->fd < 0)
        return {0, kClosedErr};
    size_t done = 0;
    while (done < data.size()) {
        // MSG_NOSIGNAL: a peer that vanished mid-run must surface as
        // EPIPE on this connection, not SIGPIPE for the process.
        const ssize_t r = ::send(s->fd, data.data() + done,
                                 data.size() - done, MSG_NOSIGNAL);
        if (r >= 0) {
            done += static_cast<size_t>(r);
            continue;
        }
        if (errno == EINTR)
            continue;
        if (errno != EAGAIN && errno != EWOULDBLOCK)
            return {done, errnoStr()};
        s->poller->waitWritable(s);
        if (s->fd < 0)
            return {done, kClosedErr};
    }
    return {done, {}};
}

void
TcpConn::close() const
{
    if (state_ != nullptr)
        state_->poller->closeFd(state_.get());
}

// --- TcpListener ------------------------------------------------------

TcpListener::operator bool() const
{
    return state_ != nullptr && state_->fd >= 0;
}

TcpConn
TcpListener::accept() const
{
    detail::FdState *s = state_.get();
    if (s == nullptr || s->fd < 0)
        return {};
    for (;;) {
        const int fd = accept4(s->fd, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd >= 0) {
            const int one = 1;
            setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
            auto state = s->poller->adopt(fd);
            if (!state)
                continue;
            return TcpConn(std::move(state));
        }
        if (errno == EINTR || errno == ECONNABORTED)
            continue;
        if (errno != EAGAIN && errno != EWOULDBLOCK)
            return {};
        s->poller->waitReadable(s);
        if (s->fd < 0)
            return {};
    }
}

void
TcpListener::close() const
{
    if (state_ != nullptr)
        state_->poller->closeFd(state_.get());
}

} // namespace golite::netpoll
