/**
 * @file
 * Blocking bug kernels, "Chan w/" category — a channel operation
 * entangled with another blocking primitive (Table 6: 16/85 studied
 * bugs; 3 reproduced here, including the paper's Figure 7 bug and
 * boltdb-240, the second of the two bugs Go's built-in detector can
 * see).
 */

#include <memory>

#include "corpus/kernel_util.hh"
#include "golite/golite.hh"

namespace golite::corpus
{

namespace
{

// ---------------------------------------------------------------
// etcd-6857 (Figure 7): goroutine1 holds no lock but blocks sending
// to ch; goroutine2 holds the lock consumers need and blocks on
// m.Lock() held by goroutine3, which waits to receive from ch only
// after taking the lock. The paper's fix: give goroutine1 a select
// with a default branch so the send can never block.
BugOutcome
etcd6857(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        Mutex mu;
        int handled = 0;
        int skipped = 0;
    };
    auto st = std::make_shared<State>();
    return runBlockingKernel([st, fixed] {
        Chan<int> ch = makeChan<int>(); // unbuffered request channel
        // goroutine1: forwards a status request while holding the
        // lock the consumer also needs.
        go("status-notifier", [st, fixed, ch] {
            st->mu.lock();
            if (fixed) {
                Select()
                    .send<int>(ch, 1, [st] { st->handled++; })
                    .def([st] { st->skipped++; }) // the patch
                    .run();
            } else {
                ch.send(1); // blocks while holding the lock
                st->handled++;
            }
            st->mu.unlock();
        });
        // goroutine2: takes the lock, then drains pending requests.
        go("status-consumer", [st, fixed, ch] {
            st->mu.lock();
            if (fixed) {
                auto r = ch.tryRecv();
                if (r && r->ok)
                    st->handled++;
            } else {
                st->handled += ch.recv().ok ? 1 : 0;
            }
            st->mu.unlock();
        });
        for (int i = 0; i < 12; ++i)
            yield();
    }, options);
}

// ---------------------------------------------------------------
// boltdb-240: the (single-goroutine) command loop locks the database
// mutex and then receives from a channel whose only sender first
// needs that same mutex. Both goroutines block, nothing else exists:
// the built-in detector fires. Detected in Table 8.
// Fix (MoveSync): receive before taking the lock.
BugOutcome
boltdb240(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        Mutex dbMu;
        int batches = 0;
    };
    auto st = std::make_shared<State>();
    return runBlockingKernel([st, fixed] {
        Chan<int> batch = makeChan<int>();
        go("batch-writer", [st, batch] {
            st->dbMu.lock(); // needs the lock to build the batch
            batch.send(1);
            st->dbMu.unlock();
        });
        if (fixed) {
            st->batches += batch.recv().value; // patched order
            st->dbMu.lock();
            st->dbMu.unlock();
        } else {
            st->dbMu.lock();                   // buggy order
            st->batches += batch.recv().value; // circular wait
            st->dbMu.unlock();
        }
    }, options);
}

// ---------------------------------------------------------------
// kubernetes-25331 (pattern): a worker blocks sending its result;
// the coordinator blocks in WaitGroup.Wait for that worker's Done,
// which sits *after* the send. Channel and WaitGroup jointly stall.
// Fix (MoveSync): call Done before the (possibly blocking) send and
// drain results independently.
BugOutcome
kubernetes25331(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        WaitGroup wg;
        int results = 0;
    };
    auto st = std::make_shared<State>();
    return runBlockingKernel([st, fixed] {
        Chan<int> results = makeChan<int>();
        st->wg.add(1);
        go("worker", [st, fixed, results] {
            if (fixed) {
                st->wg.done(); // patched: completion first
                results.trySend(7);
            } else {
                results.send(7); // blocks: coordinator not draining
                st->wg.done();
            }
        });
        go("coordinator", [st, results] {
            st->wg.wait(); // buggy: waits before draining results
            auto r = results.tryRecv();
            if (r && r->ok)
                st->results += r->value;
        });
        for (int i = 0; i < 10; ++i)
            yield();
    }, options);
}

} // namespace

void
registerBlockingMixedBugs(std::vector<BugCase> &out)
{
    out.push_back({BugInfo{
        "etcd-6857", "etcd", Behavior::Blocking,
        CauseDim::MessagePassing, SubCause::ChanWithOther,
        FixStrategy::AddSync, FixPrimitive::Channel, "Figure 7",
        "channel send entangled with a mutex held by the consumer",
        true, false}, etcd6857});

    out.push_back({BugInfo{
        "boltdb-240", "BoltDB", Behavior::Blocking,
        CauseDim::MessagePassing, SubCause::ChanWithOther,
        FixStrategy::MoveSync, FixPrimitive::Channel, "",
        "lock-then-receive against a sender that needs the lock "
        "(global deadlock; built-in detector fires)",
        true, true}, boltdb240});

    out.push_back({BugInfo{
        "kubernetes-25331", "Kubernetes", Behavior::Blocking,
        CauseDim::MessagePassing, SubCause::ChanWithOther,
        FixStrategy::MoveSync, FixPrimitive::WaitGroup, "",
        "WaitGroup.Wait ordered before the worker's blocking send",
        true, false}, kubernetes25331});
}

} // namespace golite::corpus
