/**
 * @file
 * Non-blocking bug kernels, anonymous-function category (Table 9:
 * 11/86 studied bugs; 4 reproduced here, including the paper's
 * Figure 8 loop-variable capture from Docker).
 *
 * Go makes `go func(){...}()` so cheap that local variables slip
 * into child goroutines unnoticed. Nine of the paper's 11 bugs in
 * this class race a parent against a child; the usual fix is to
 * privatize the captured value (pass it as an argument).
 */

#include <memory>
#include <string>
#include <vector>

#include "corpus/kernel_util.hh"
#include "golite/golite.hh"

namespace golite::corpus
{

namespace
{

// ---------------------------------------------------------------
// docker-4951 (Figure 8): `for i := 17; i <= 21; i++ { go func() {
// use(i) } }` — every child reads the parent's single loop variable.
// Fix (DataPrivate): pass i as the goroutine's argument.
BugOutcome
docker4951(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        race::Shared<int> loopVar{"i"};
        std::vector<int> apiVersions;
        Mutex outMu; // protects apiVersions only (not part of the bug)
    };
    auto st = std::make_shared<State>();
    return runNonBlockingKernel([st, fixed] {
        WaitGroup wg;
        wg.add(5);
        for (int i = 17; i <= 21; ++i) {
            st->loopVar.store(i);
            if (fixed) {
                // Patched: copy i into the goroutine (go func(i int)).
                go([st, i, &wg] {
                    st->outMu.lock();
                    st->apiVersions.push_back(i);
                    st->outMu.unlock();
                    wg.done();
                });
            } else {
                // Buggy: child reads the shared loop variable.
                go([st, &wg] {
                    const int v = st->loopVar.load();
                    st->outMu.lock();
                    st->apiVersions.push_back(v);
                    st->outMu.unlock();
                    wg.done();
                });
            }
        }
        wg.wait();
    }, options, [st] {
        // Correct output: one goroutine per version 17..21.
        std::vector<int> sorted = st->apiVersions;
        std::sort(sorted.begin(), sorted.end());
        return sorted != std::vector<int>{17, 18, 19, 20, 21};
    });
}

// ---------------------------------------------------------------
// etcd-4876 (pattern, testing.T class): a test spawns a goroutine
// that records an error into the shared result variable; the test
// function reads it concurrently to decide pass/fail.
// Fix (AddSync): guard the error with a mutex.
BugOutcome
etcd4876(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        race::Shared<int> testErr{"t.err"};
        Mutex mu;
    };
    auto st = std::make_shared<State>();
    return runNonBlockingKernel([st, fixed] {
        go("test-helper", [st, fixed] {
            if (fixed) st->mu.lock();
            st->testErr.store(1); // t.Errorf from the helper
            if (fixed) st->mu.unlock();
        });
        if (fixed) st->mu.lock();
        (void)st->testErr.load(); // the test polls the status
        if (fixed) st->mu.unlock();
        yield();
        yield();
    }, options, [] { return false; /* pure race */ });
}

// ---------------------------------------------------------------
// cockroach-2135 (pattern): a retry closure captures the parent's
// `result` slot; the parent re-runs the closure after a timeout
// while the previous attempt is still writing into the same slot.
// Fix (DataPrivate): each attempt gets its own slot.
BugOutcome
cockroach2135(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        race::Shared<int> sharedSlot{"result-slot"};
        Mutex outMu;
        int attemptsFinished = 0;
    };
    auto st = std::make_shared<State>();
    return runNonBlockingKernel([st, fixed] {
        WaitGroup wg;
        wg.add(2);
        for (int attempt = 1; attempt <= 2; ++attempt) {
            if (fixed) {
                auto slot = std::make_shared<race::Shared<int>>(
                    "private-slot");
                go([st, slot, attempt, &wg] {
                    slot->store(attempt * 100);
                    st->outMu.lock();
                    st->attemptsFinished++;
                    st->outMu.unlock();
                    wg.done();
                });
            } else {
                go([st, attempt, &wg] {
                    st->sharedSlot.store(attempt * 100); // both write
                    st->outMu.lock();
                    st->attemptsFinished++;
                    st->outMu.unlock();
                    wg.done();
                });
            }
        }
        wg.wait();
    }, options, [] { return false; /* pure race on the slot */ });
}

// ---------------------------------------------------------------
// kubernetes-6526 (pattern): the parent snapshots a local into the
// closure *before* the value was final, so every child sees the
// stale value. The child/parent accesses are HB-ordered (spawn
// edge), so there is no data race — only wrong output. This is the
// 1-in-4 anonymous-function bug the race detector cannot see.
// Fix (MoveSync): finalize the value before spawning.
BugOutcome
kubernetes6526(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        int podCount = 0;
        std::vector<int> reported;
    };
    auto st = std::make_shared<State>();
    return runNonBlockingKernel([st, fixed] {
        WaitGroup wg;
        wg.add(1);
        if (fixed)
            st->podCount = 3; // patched: finalize first
        const int snapshot = st->podCount;
        go([st, snapshot, &wg] {
            st->reported.push_back(snapshot);
            wg.done();
        });
        if (!fixed)
            st->podCount = 3; // buggy: finalized after the capture
        wg.wait();
    }, options, [st] {
        return st->reported != std::vector<int>{3};
    });
}

} // namespace

void
registerNonBlockingAnonymousBugs(std::vector<BugCase> &out)
{
    out.push_back({BugInfo{
        "docker-4951", "Docker", Behavior::NonBlocking,
        CauseDim::SharedMemory, SubCause::AnonymousFunction,
        FixStrategy::DataPrivate, FixPrimitive::None, "Figure 8",
        "loop variable captured by reference into child goroutines",
        true, false}, docker4951});

    out.push_back({BugInfo{
        "etcd-4876", "etcd", Behavior::NonBlocking,
        CauseDim::SharedMemory, SubCause::AnonymousFunction,
        FixStrategy::AddSync, FixPrimitive::Mutex, "",
        "test helper goroutine races the test on its status variable",
        true, false}, etcd4876});

    out.push_back({BugInfo{
        "cockroach-2135", "CockroachDB", Behavior::NonBlocking,
        CauseDim::SharedMemory, SubCause::AnonymousFunction,
        FixStrategy::DataPrivate, FixPrimitive::None, "",
        "retry attempts share one captured result slot",
        true, false}, cockroach2135});

    out.push_back({BugInfo{
        "kubernetes-6526", "Kubernetes", Behavior::NonBlocking,
        CauseDim::SharedMemory, SubCause::AnonymousFunction,
        FixStrategy::MoveSync, FixPrimitive::None, "",
        "value captured before it was finalized (no data race)",
        true, false}, kubernetes6526});
}

} // namespace golite::corpus
