/**
 * @file
 * Blocking bug kernels, Mutex category (Table 6: 28/85 studied bugs;
 * 7 of the 21 reproduced ones are modelled here).
 *
 * Go's Mutex is neither reentrant nor owner-checked, so the classic
 * misuse patterns — double locking, conflicting lock order, missing
 * unlock — all block silently. Only one of these kernels
 * (boltdb-392) blocks *every* goroutine and is therefore visible to
 * Go's built-in detector; the rest leak goroutines while the program
 * keeps running, the blind spot Table 8 documents.
 */

#include <memory>

#include "corpus/kernel_util.hh"
#include "golite/golite.hh"

namespace golite::corpus
{

namespace
{

// ---------------------------------------------------------------
// boltdb-392: a transaction helper locks the database mutex and then
// calls a utility that locks it again on the same goroutine. Main is
// the only goroutine, so the whole process stalls: one of the two
// corpus bugs the built-in deadlock detector reports.
// Fix (RemoveSync): drop the inner redundant lock.
BugOutcome
boltdb392(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        Mutex metalock;
        int freePages = 0;
    };
    auto st = std::make_shared<State>();
    return runBlockingKernel([st, fixed] {
        auto allocate = [st, fixed] {
            if (!fixed)
                st->metalock.lock(); // second acquisition: stalls
            st->freePages++;
            if (!fixed)
                st->metalock.unlock();
        };
        st->metalock.lock();
        allocate();
        st->metalock.unlock();
    }, options);
}

// ---------------------------------------------------------------
// docker-5416: an early-return path leaves the container mutex
// locked; the next request's handler goroutine blocks forever while
// the daemon keeps serving.
// Fix (AddSync): add the missing unlock on the error path.
BugOutcome
docker5416(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        Mutex mu;
        bool failInjected = true;
        int handled = 0;
    };
    auto st = std::make_shared<State>();
    return runBlockingKernel([st, fixed] {
        auto handle = [st, fixed](bool fail) {
            st->mu.lock();
            if (fail) {
                if (fixed)
                    st->mu.unlock(); // the patch
                return;              // buggy: returns still holding mu
            }
            st->handled++;
            st->mu.unlock();
        };
        handle(st->failInjected);
        go("second-request", [st, handle] { handle(false); });
        yield();
    }, options);
}

// ---------------------------------------------------------------
// moby-17176: a device-mapper function takes the lock and calls a
// helper that also takes it; unlike boltdb-392 the stall is in a
// worker goroutine, so the daemon limps on with the worker leaked.
// Fix (RemoveSync): helper no longer re-locks.
BugOutcome
moby17176(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        Mutex devLock;
        int deactivated = 0;
    };
    auto st = std::make_shared<State>();
    return runBlockingKernel([st, fixed] {
        go("deactivate-worker", [st, fixed] {
            auto deactivate_device = [st, fixed] {
                if (!fixed)
                    st->devLock.lock(); // re-lock on same goroutine
                st->deactivated++;
                if (!fixed)
                    st->devLock.unlock();
            };
            st->devLock.lock();
            deactivate_device();
            st->devLock.unlock();
        });
        yield();
        yield();
    }, options);
}

// ---------------------------------------------------------------
// etcd-10492 (pattern): two goroutines acquire two mutexes in
// opposite orders (AB-BA). Both leak; the rest of the server
// continues.
// Fix (MoveSync): make both acquire in the same order.
BugOutcome
etcd10492(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        Mutex storeMu;
        Mutex applyMu;
        int applied = 0;
    };
    auto st = std::make_shared<State>();
    return runBlockingKernel([st, fixed] {
        go("applier", [st] {
            st->storeMu.lock();
            yield(); // widen the window
            st->applyMu.lock();
            st->applied++;
            st->applyMu.unlock();
            st->storeMu.unlock();
        });
        go("compactor", [st, fixed] {
            if (fixed) {
                st->storeMu.lock(); // patched: same order
                yield();
                st->applyMu.lock();
            } else {
                st->applyMu.lock(); // buggy: opposite order
                yield();
                st->storeMu.lock();
            }
            st->applied++;
            if (fixed) {
                st->applyMu.unlock();
                st->storeMu.unlock();
            } else {
                st->storeMu.unlock();
                st->applyMu.unlock();
            }
        });
        // Main must not join (it would deadlock globally); the real
        // daemon keeps serving. Give the workers time to tangle.
        for (int i = 0; i < 20; ++i)
            yield();
    }, options);
}

// ---------------------------------------------------------------
// grpc-795 (pattern): a retry loop re-acquires a mutex it still
// holds because the unlock was placed after a `continue`.
// Fix (MoveSync): unlock before continuing.
BugOutcome
grpc795(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        Mutex connMu;
        int attempts = 0;
    };
    auto st = std::make_shared<State>();
    return runBlockingKernel([st, fixed] {
        go("reconnect-loop", [st, fixed] {
            for (int attempt = 0; attempt < 3; ++attempt) {
                st->connMu.lock();
                st->attempts++;
                const bool transient_failure = (attempt == 0);
                if (transient_failure) {
                    if (fixed)
                        st->connMu.unlock(); // the patch
                    continue; // buggy: next iteration self-deadlocks
                }
                st->connMu.unlock();
                break;
            }
        });
        yield();
        yield();
    }, options);
}

// ---------------------------------------------------------------
// kubernetes-30759 (pattern): a callback invoked under the informer
// lock calls back into an API that takes the same lock.
// Fix (MoveSync): invoke callbacks after releasing the lock.
BugOutcome
kubernetes30759(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        Mutex cacheMu;
        int notifications = 0;
    };
    auto st = std::make_shared<State>();
    return runBlockingKernel([st, fixed] {
        go("informer", [st, fixed] {
            auto list_keys = [st] {
                st->cacheMu.lock(); // API entry point locks
                st->notifications++;
                st->cacheMu.unlock();
            };
            st->cacheMu.lock();
            if (fixed) {
                st->cacheMu.unlock(); // patched: callback runs outside
                list_keys();
            } else {
                list_keys(); // buggy: callback under the lock
                st->cacheMu.unlock();
            }
        });
        yield();
        yield();
    }, options);
}

// ---------------------------------------------------------------
// cockroach-6181 (pattern): three range-lease goroutines form a
// 3-cycle over three mutexes. All three leak.
// Fix (MoveSync): impose a global lock order.
BugOutcome
cockroach6181(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        Mutex ranges[3];
        int transfers = 0;
    };
    auto st = std::make_shared<State>();
    return runBlockingKernel([st, fixed] {
        for (int i = 0; i < 3; ++i) {
            go("lease-" + std::to_string(i), [st, fixed, i] {
                int first = i;
                int second = (i + 1) % 3;
                if (fixed && second < first)
                    std::swap(first, second); // global order
                st->ranges[first].lock();
                yield();
                st->ranges[second].lock();
                st->transfers++;
                st->ranges[second].unlock();
                st->ranges[first].unlock();
            });
        }
        for (int i = 0; i < 30; ++i)
            yield();
    }, options);
}

} // namespace

void
registerBlockingMutexBugs(std::vector<BugCase> &out)
{
    out.push_back({BugInfo{
        "boltdb-392", "BoltDB", Behavior::Blocking,
        CauseDim::SharedMemory, SubCause::Mutex,
        FixStrategy::RemoveSync, FixPrimitive::Mutex, "",
        "double lock on the same goroutine stalls the whole process",
        true, true}, boltdb392});

    out.push_back({BugInfo{
        "docker-5416", "Docker", Behavior::Blocking,
        CauseDim::SharedMemory, SubCause::Mutex,
        FixStrategy::AddSync, FixPrimitive::Mutex, "",
        "missing unlock on an early-return path blocks later lockers",
        true, false}, docker5416});

    out.push_back({BugInfo{
        "moby-17176", "Docker", Behavior::Blocking,
        CauseDim::SharedMemory, SubCause::Mutex,
        FixStrategy::RemoveSync, FixPrimitive::Mutex, "",
        "re-lock through a helper call leaks a worker goroutine",
        true, false}, moby17176});

    out.push_back({BugInfo{
        "etcd-10492", "etcd", Behavior::Blocking,
        CauseDim::SharedMemory, SubCause::Mutex,
        FixStrategy::MoveSync, FixPrimitive::Mutex, "",
        "AB-BA lock ordering between applier and compactor",
        true, false}, etcd10492});

    out.push_back({BugInfo{
        "grpc-795", "gRPC", Behavior::Blocking,
        CauseDim::SharedMemory, SubCause::Mutex,
        FixStrategy::MoveSync, FixPrimitive::Mutex, "",
        "unlock skipped by `continue` in a retry loop",
        true, false}, grpc795});

    out.push_back({BugInfo{
        "kubernetes-30759", "Kubernetes", Behavior::Blocking,
        CauseDim::SharedMemory, SubCause::Mutex,
        FixStrategy::MoveSync, FixPrimitive::Mutex, "",
        "callback invoked under a lock re-enters the locking API",
        true, false}, kubernetes30759});

    out.push_back({BugInfo{
        "cockroach-6181", "CockroachDB", Behavior::Blocking,
        CauseDim::SharedMemory, SubCause::Mutex,
        FixStrategy::MoveSync, FixPrimitive::Mutex, "",
        "three-way circular wait over range mutexes",
        true, false}, cockroach6181});
}

} // namespace golite::corpus
