/**
 * @file
 * Extended bug kernels (wave 3): crossed channel handshakes,
 * self-requeue deadlock, slice-append races, TOCTOU under dropped
 * locks, and send-after-close — deepening the Chan, Traditional and
 * ChanMisuse categories that dominate the paper's Tables 6 and 9.
 * All reproducedSet=false.
 */

#include <memory>
#include <string>
#include <vector>

#include "corpus/kernel_util.hh"
#include "golite/golite.hh"

namespace golite::corpus
{

namespace
{

// ---------------------------------------------------------------
// grpc-1353 (pattern, Chan): a bidirectional handshake where both
// sides receive before sending on a pair of unbuffered channels:
// each waits for the other's hello forever.
// Fix (MoveSync): one side sends first.
BugOutcome
grpc1353(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        bool clientReady = false;
        bool serverReady = false;
    };
    auto st = std::make_shared<State>();
    return runBlockingKernel([st, fixed] {
        Chan<int> to_server = makeChan<int>();
        Chan<int> to_client = makeChan<int>();
        go("handshake-server", [st, to_server, to_client] {
            to_server.recv(); // waits for the client hello
            to_client.send(2);
            st->serverReady = true;
        });
        go("handshake-client", [st, fixed, to_server, to_client] {
            if (fixed) {
                to_server.send(1); // patched: speak first
                to_client.recv();
            } else {
                to_client.recv(); // buggy: both sides listen first
                to_server.send(1);
            }
            st->clientReady = true;
        });
        for (int i = 0; i < 10; ++i)
            yield();
    }, options);
}

// ---------------------------------------------------------------
// kubernetes-11298 (pattern, Chan): a worker that fails an item
// requeues it onto its *own* unbuffered work channel — it is the
// only consumer, so the send can never complete.
// Fix (ChangeSync): requeue through a buffered channel.
BugOutcome
kubernetes11298(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        int processed = 0;
        int requeued = 0;
    };
    auto st = std::make_shared<State>();
    return runBlockingKernel([st, fixed] {
        Chan<int> work = fixed ? makeChan<int>(4) : makeChan<int>();
        go("queue-worker", [st, work] {
            for (;;) {
                auto item = work.recv();
                if (!item.ok)
                    return;
                const bool transient_error =
                    (item.value == 2 && st->requeued == 0);
                if (transient_error) {
                    st->requeued++;
                    work.send(item.value); // self-send: deadlocks
                    continue;              // when unbuffered
                }
                st->processed++;
                if (st->processed == 3)
                    return;
            }
        });
        go("feeder", [work] {
            for (int i = 1; i <= 3; ++i)
                work.send(i);
        });
        for (int i = 0; i < 14; ++i)
            yield();
    }, options);
}

// ---------------------------------------------------------------
// docker-1911 (pattern, traditional, race): two goroutines append to
// the same slice; the len field's read-modify-write races and
// entries vanish.
// Fix (AddSync): mutex around the append.
BugOutcome
docker1911(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        race::Shared<int> sliceLen{"slice-len"};
        Mutex mu;
    };
    auto st = std::make_shared<State>();
    return runNonBlockingKernel([st, fixed] {
        WaitGroup wg;
        wg.add(2);
        for (int g = 0; g < 2; ++g) {
            go([st, fixed, &wg] {
                for (int i = 0; i < 4; ++i) {
                    if (fixed) st->mu.lock();
                    // append(): read len, write elem, write len+1.
                    st->sliceLen.update([](int &len) { len++; });
                    if (fixed) st->mu.unlock();
                }
                wg.done();
            });
        }
        wg.wait();
    }, options, [st] { return st->sliceLen.raw() != 8; });
}

// ---------------------------------------------------------------
// cockroach-7504 (pattern, traditional, race-detector-blind): the
// lock is dropped between "does the replica exist?" and "use the
// replica"; a concurrent GC deletes it in the window.
// Fix (MoveSync): hold the lock across check and use.
BugOutcome
cockroach7504(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        Mutex mu;
        bool replicaLive = true;
        bool usedAfterGc = false;
    };
    auto st = std::make_shared<State>();
    return runNonBlockingKernel([st, fixed] {
        WaitGroup wg;
        wg.add(2);
        go("reader", [st, fixed, &wg] {
            if (fixed) {
                st->mu.lock();
                if (st->replicaLive) {
                    // use under the same critical section
                }
                st->mu.unlock();
            } else {
                st->mu.lock();
                const bool exists = st->replicaLive;
                st->mu.unlock();
                yield(); // the GC window
                if (exists) {
                    st->mu.lock();
                    if (!st->replicaLive)
                        st->usedAfterGc = true; // stale decision
                    st->mu.unlock();
                }
            }
            wg.done();
        });
        go("gc", [st, &wg] {
            st->mu.lock();
            st->replicaLive = false;
            st->mu.unlock();
            wg.done();
        });
        wg.wait();
    }, options, [st] { return st->usedAfterGc; });
}

// ---------------------------------------------------------------
// grpc-2121 (pattern, chan misuse): the shutdown path closes the
// update channel while a notifier is still about to send: send on
// closed channel, runtime panic.
// Fix (AddSync): notifiers select on the done channel first; close
// happens after done is visible.
BugOutcome
grpc2121(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        int updates = 0;
    };
    auto st = std::make_shared<State>();
    return runNonBlockingKernel([st, fixed] {
        Chan<int> updates = makeChan<int>(4);
        Chan<Unit> done = makeChan<Unit>();
        go("notifier", [st, fixed, updates, done] {
            for (int i = 0; i < 3; ++i) {
                yield();
                if (fixed) {
                    bool stopped = false;
                    Select()
                        .recv<Unit>(done,
                                    [&](Unit, bool) { stopped = true; })
                        .def([&] {
                            updates.send(i);
                            st->updates++;
                        })
                        .run();
                    if (stopped)
                        return;
                } else {
                    updates.send(i); // may hit a closed channel
                    st->updates++;
                }
            }
        });
        // Shutdown: signal done, then close the update channel.
        yield();
        done.close();
        updates.close();
        for (int i = 0; i < 6; ++i)
            yield();
    }, options, [] { return false; /* the panic is the symptom */ });
}

// ---------------------------------------------------------------
// etcd-5598 (pattern, Chan w/): a config watcher receives while
// holding the config mutex; the timer-driven reloader that would
// send needs the same mutex first.
// Fix (MoveSync): receive outside the critical section.
BugOutcome
etcd5598(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        Mutex configMu;
        int reloads = 0;
    };
    auto st = std::make_shared<State>();
    return runBlockingKernel([st, fixed] {
        Chan<int> reload = makeChan<int>();
        go("watcher", [st, fixed, reload] {
            if (fixed) {
                const int v = reload.recv().value; // recv unlocked
                st->configMu.lock();
                st->reloads += v;
                st->configMu.unlock();
            } else {
                st->configMu.lock();
                st->reloads += reload.recv().value; // recv locked
                st->configMu.unlock();
            }
        });
        go("reloader", [st, reload] {
            gotime::sleep(5 * gotime::kMillisecond);
            st->configMu.lock(); // blocked by the watcher (buggy)
            reload.send(1);
            st->configMu.unlock();
        });
        gotime::sleep(50 * gotime::kMillisecond);
    }, options);
}

} // namespace

void
registerExtendedWave3Bugs(std::vector<BugCase> &out)
{
    out.push_back({BugInfo{
        "grpc-1353", "gRPC", Behavior::Blocking,
        CauseDim::MessagePassing, SubCause::Chan,
        FixStrategy::MoveSync, FixPrimitive::Channel, "",
        "bidirectional handshake where both sides receive first",
        false, false}, grpc1353});

    out.push_back({BugInfo{
        "kubernetes-11298", "Kubernetes", Behavior::Blocking,
        CauseDim::MessagePassing, SubCause::Chan,
        FixStrategy::ChangeSync, FixPrimitive::Channel, "",
        "worker requeues onto its own unbuffered channel",
        false, false}, kubernetes11298});

    out.push_back({BugInfo{
        "docker-1911", "Docker", Behavior::NonBlocking,
        CauseDim::SharedMemory, SubCause::Traditional,
        FixStrategy::AddSync, FixPrimitive::Mutex, "",
        "concurrent slice append loses elements",
        false, false}, docker1911});

    out.push_back({BugInfo{
        "cockroach-7504", "CockroachDB", Behavior::NonBlocking,
        CauseDim::SharedMemory, SubCause::Traditional,
        FixStrategy::MoveSync, FixPrimitive::Mutex, "",
        "TOCTOU: lock dropped between existence check and use",
        false, false}, cockroach7504});

    out.push_back({BugInfo{
        "grpc-2121", "gRPC", Behavior::NonBlocking,
        CauseDim::MessagePassing, SubCause::ChanMisuse,
        FixStrategy::AddSync, FixPrimitive::Channel, "",
        "send races the shutdown close (send on closed channel)",
        false, false}, grpc2121});

    out.push_back({BugInfo{
        "etcd-5598", "etcd", Behavior::Blocking,
        CauseDim::MessagePassing, SubCause::ChanWithOther,
        FixStrategy::MoveSync, FixPrimitive::Channel, "",
        "receive under the mutex the sender needs",
        false, false}, etcd5598});
}

} // namespace golite::corpus
