/**
 * @file
 * Extended bug kernels (wave 2): additional patterns from the
 * paper's categories beyond the 41-bug reproduced set — Cond
 * broadcast-vs-signal, RWMutex self-upgrade, channel + RWMutex
 * entanglement, crossed pipes, forgotten WaitGroup.Done, concurrent
 * map writes, a CAS-less state machine, Timer.Reset misuse, a
 * dropped-update trySend, and a double Done panic.
 *
 * All are tagged reproducedSet=false: they enrich the corpus, the
 * live-validation benches and the detector ablations without
 * changing the Table 8 / Table 12 headline counts.
 */

#include <memory>
#include <string>

#include "corpus/kernel_util.hh"
#include "golite/golite.hh"

namespace golite::corpus
{

namespace
{

using gotime::kMillisecond;

// ---------------------------------------------------------------
// docker-29756 (pattern, Wait): a state change must wake *all*
// waiters, but the notifier calls Signal instead of Broadcast; every
// waiter but one sleeps forever.
// Fix (ChangeSync): Broadcast.
BugOutcome
docker29756(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        Mutex mu;
        Cond cond{mu};
        bool ready = false;
        int released = 0;
    };
    auto st = std::make_shared<State>();
    return runBlockingKernel([st, fixed] {
        for (int i = 0; i < 3; ++i) {
            go("state-waiter", [st] {
                st->mu.lock();
                while (!st->ready)
                    st->cond.wait();
                st->released++;
                st->mu.unlock();
            });
        }
        for (int i = 0; i < 6; ++i)
            yield();
        st->mu.lock();
        st->ready = true;
        if (fixed)
            st->cond.broadcast(); // the patch
        else
            st->cond.signal(); // wakes at most one of three
        st->mu.unlock();
        for (int i = 0; i < 6; ++i)
            yield();
    }, options);
}

// ---------------------------------------------------------------
// grpc-2391 (pattern, RWMutex): a method holding the write lock
// calls a read-path helper that takes a read lock on the same
// RWMutex: the writer blocks its own reader.
// Fix (RemoveSync): the helper trusts the caller's lock.
BugOutcome
grpc2391(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        RWMutex stateMu;
        int snapshots = 0;
    };
    auto st = std::make_shared<State>();
    return runBlockingKernel([st, fixed] {
        go("state-updater", [st, fixed] {
            auto snapshot = [st, fixed] {
                if (!fixed)
                    st->stateMu.rlock(); // blocks: we hold the wlock
                st->snapshots++;
                if (!fixed)
                    st->stateMu.runlock();
            };
            st->stateMu.lock();
            snapshot();
            st->stateMu.unlock();
        });
        yield();
        yield();
    }, options);
}

// ---------------------------------------------------------------
// moby-27782 (pattern, Chan): the event loop acknowledges requests
// on an unbuffered channel; a requester that timed out is gone, and
// the ack send wedges the entire event loop.
// Fix (AddSync): non-blocking ack (select with default).
BugOutcome
moby27782(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        int acked = 0;
        int dropped = 0;
        bool requesterDone = false;
    };
    auto st = std::make_shared<State>();
    return runBlockingKernel([st, fixed] {
        Chan<Unit> ack = makeChan<Unit>();
        go("event-loop", [st, fixed, ack] {
            gotime::sleep(30 * kMillisecond); // handling takes long
            if (fixed) {
                Select()
                    .send<Unit>(ack, Unit{}, [st] { st->acked++; })
                    .def([st] { st->dropped++; }) // the patch
                    .run();
            } else {
                ack.send(Unit{}); // requester is gone: wedged
                st->acked++;
            }
        });
        Select()
            .recv<Unit>(ack, [st](Unit, bool) { st->acked++; })
            .recv<gotime::Time>(gotime::after(10 * kMillisecond),
                                [st](gotime::Time, bool) {
                                    st->requesterDone = true;
                                })
            .run();
        gotime::sleep(100 * kMillisecond); // daemon keeps running
    }, options);
}

// ---------------------------------------------------------------
// etcd-7902 (pattern, Chan w/): a publisher sends while holding a
// read lock; a writer queues; the subscriber's read lock queues
// behind the writer (Go writer priority), so nobody ever receives.
// Fix (MoveSync): release the read lock before sending.
BugOutcome
etcd7902(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        RWMutex watchMu;
        int delivered = 0;
    };
    auto st = std::make_shared<State>();
    return runBlockingKernel([st, fixed] {
        Chan<int> events = makeChan<int>();
        go("publisher", [st, fixed, events] {
            st->watchMu.rlock();
            if (fixed) {
                st->watchMu.runlock(); // the patch: send unlocked
                events.send(1);
            } else {
                events.send(1); // blocks holding the read lock
                st->watchMu.runlock();
            }
        });
        go("compactor", [st] {
            yield();
            st->watchMu.lock(); // queues behind the publisher
            st->watchMu.unlock();
        });
        go("subscriber", [st, fixed, events] {
            yield();
            yield();
            if (fixed) {
                // Patched on this side too: never block on a channel
                // while holding the lock.
                st->watchMu.rlock();
                st->watchMu.runlock();
                st->delivered += events.recv().value;
            } else {
                st->watchMu.rlock(); // queues behind the compactor
                st->delivered += events.recv().value;
                st->watchMu.runlock();
            }
        });
        for (int i = 0; i < 16; ++i)
            yield();
    }, options);
}

// ---------------------------------------------------------------
// docker-32126 (pattern, Lib): two stages exchange data through two
// pipes, but both write before reading: each write waits for a read
// that never comes (crossed synchronous pipes).
// Fix (MoveSync): one stage reads first.
BugOutcome
docker32126(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        std::string stage1Got, stage2Got;
    };
    auto st = std::make_shared<State>();
    return runBlockingKernel([st, fixed] {
        auto [r_a, w_a] = goio::makePipe();
        auto [r_b, w_b] = goio::makePipe();
        go("stage-1", [st, w = w_a, r = r_b]() mutable {
            w.write("manifest");
            r.read(st->stage1Got);
        });
        go("stage-2", [st, fixed, w = w_b, r = r_a]() mutable {
            if (fixed) {
                r.read(st->stage2Got); // the patch: consume first
                w.write("layers");
            } else {
                w.write("layers"); // both sides write: deadlock pair
                r.read(st->stage2Got);
            }
        });
        for (int i = 0; i < 10; ++i)
            yield();
    }, options);
}

// ---------------------------------------------------------------
// kubernetes-59042 (pattern, Wait): an error path skips Done, so the
// WaitGroup counter never returns to zero and the stopper waits
// forever.
// Fix (AddSync): Done on every path (defer wg.Done()).
BugOutcome
kubernetes59042(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        WaitGroup wg;
        int processed = 0;
        bool drained = false;
    };
    auto st = std::make_shared<State>();
    return runBlockingKernel([st, fixed] {
        const int items = 4;
        st->wg.add(items);
        for (int i = 0; i < items; ++i) {
            go("item-worker", [st, fixed, i] {
                const bool error_path = (i == 2);
                if (error_path) {
                    if (fixed)
                        st->wg.done(); // the patch: defer wg.Done()
                    return;            // buggy: early return skips it
                }
                st->processed++;
                st->wg.done();
            });
        }
        go("stopper", [st] {
            st->wg.wait();
            st->drained = true;
        });
        for (int i = 0; i < 12; ++i)
            yield();
    }, options);
}

// ---------------------------------------------------------------
// docker-28408 (pattern, traditional): two goroutines insert into a
// plain map concurrently (Go crashes with "concurrent map writes";
// the -race build flags it first).
// Fix (ChangeSync): use sync.Map.
BugOutcome
docker28408(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        race::Shared<int> plainMap{"attach-map"};
        SyncMap<int, int> syncMap;
    };
    auto st = std::make_shared<State>();
    return runNonBlockingKernel([st, fixed] {
        WaitGroup wg;
        wg.add(2);
        for (int g = 0; g < 2; ++g) {
            go([st, fixed, g, &wg] {
                for (int i = 0; i < 3; ++i) {
                    if (fixed)
                        st->syncMap.store(g * 10 + i, i);
                    else
                        st->plainMap.update([](int &v) { v++; });
                }
                wg.done();
            });
        }
        wg.wait();
    }, options, [] { return false; /* caught by the -race build */ });
}

// ---------------------------------------------------------------
// grpc-3028 (pattern, traditional, race-detector-blind): a
// connectivity state machine transitions via separate atomic load
// and store; two concurrent transitions both fire.
// Fix (ChangeSync): compare-and-swap.
BugOutcome
grpc3028(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        Atomic<int> connState{0}; // 0=idle, 1=connecting
        Atomic<int> dialsStarted{0};
    };
    auto st = std::make_shared<State>();
    return runNonBlockingKernel([st, fixed] {
        WaitGroup wg;
        wg.add(2);
        for (int g = 0; g < 2; ++g) {
            go([st, fixed, &wg] {
                if (fixed) {
                    if (st->connState.compareAndSwap(0, 1))
                        st->dialsStarted.add(1);
                } else {
                    if (st->connState.load() == 0) {
                        yield(); // both observe idle here
                        st->connState.store(1);
                        st->dialsStarted.add(1); // double dial
                    }
                }
                wg.done();
            });
        }
        wg.wait();
    }, options, [st] { return st->dialsStarted.raw() != 1; });
}

// ---------------------------------------------------------------
// cockroach-25441 (pattern, lib message): Timer.Reset on an
// un-drained timer leaves the stale expiry in the channel; the next
// wait returns immediately with the old tick.
// Fix (Bypass): drain the channel before Reset (the documented
// Stop/drain/Reset idiom).
BugOutcome
cockroach25441(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        bool staleTickProcessed = false;
    };
    auto st = std::make_shared<State>();
    return runNonBlockingKernel([st, fixed] {
        gotime::Timer t = gotime::newTimer(10 * kMillisecond);
        gotime::sleep(20 * kMillisecond); // expiry sits un-drained
        if (fixed && !t.stop()) {
            // Documented idiom: drain before Reset.
            t.c.tryRecv();
        }
        const gotime::Time reset_at = gotime::now();
        t.reset(50 * kMillisecond);
        const gotime::Time fired_at = t.c.recv().value;
        if (fired_at < reset_at)
            st->staleTickProcessed = true; // acted on the old expiry
    }, options, [st] { return st->staleTickProcessed; });
}

// ---------------------------------------------------------------
// etcd-9956 (pattern, chan misuse): status updates are published
// with a non-blocking send to avoid wedging the publisher; under a
// slow consumer the *latest* update is silently dropped.
// Fix (ChangeSync): latest-value channel (capacity 1, drain+send).
BugOutcome
etcd9956(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        int lastSeen = 0;
    };
    auto st = std::make_shared<State>();
    return runNonBlockingKernel([st, fixed] {
        Chan<int> status =
            fixed ? makeChan<int>(1) : makeChan<int>();
        Chan<Unit> done = makeChan<Unit>();
        go("publisher", [fixed, status, done] {
            for (int leader = 1; leader <= 3; ++leader) {
                if (fixed) {
                    // Latest-value channel: displace the stale value.
                    if (!status.trySend(leader)) {
                        status.tryRecv();
                        status.trySend(leader);
                    }
                } else {
                    status.trySend(leader); // dropped if not ready
                }
                yield();
            }
            done.close();
        });
        // Slow consumer: polls only after the publisher is finished
        // (so the judgement is about the channel discipline, not
        // about scheduler fairness towards the publisher).
        done.recv();
        auto r = status.tryRecv();
        if (r && r->ok)
            st->lastSeen = r->value;
    }, options, [st] { return st->lastSeen != 3; });
}

// ---------------------------------------------------------------
// kubernetes-82454 (pattern, waitgroup): both the helper and its
// caller call Done on the error path; the counter goes negative and
// the process panics.
// Fix (RemoveSync): Done exactly once per Add.
BugOutcome
kubernetes82454(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        WaitGroup wg;
        int cleaned = 0;
    };
    auto st = std::make_shared<State>();
    return runNonBlockingKernel([st, fixed] {
        st->wg.add(1);
        go("cleanup-worker", [st, fixed] {
            auto finish = [st](bool errored) {
                if (errored)
                    st->wg.done(); // helper reports completion...
            };
            const bool errored = true;
            finish(errored);
            st->cleaned++;
            if (!fixed && errored)
                st->wg.done(); // ...and the caller does too: panic
            if (!errored)
                st->wg.done();
        });
        st->wg.wait();
    }, options, [] { return false; /* the panic is the symptom */ });
}

} // namespace

void
registerExtendedBugs(std::vector<BugCase> &out)
{
    out.push_back({BugInfo{
        "docker-29756", "Docker", Behavior::Blocking,
        CauseDim::SharedMemory, SubCause::Wait,
        FixStrategy::ChangeSync, FixPrimitive::Cond, "",
        "Signal where Broadcast was needed strands waiters",
        false, false}, docker29756});

    out.push_back({BugInfo{
        "grpc-2391", "gRPC", Behavior::Blocking,
        CauseDim::SharedMemory, SubCause::RWMutex,
        FixStrategy::RemoveSync, FixPrimitive::Mutex, "",
        "read lock requested while holding the write lock",
        false, false}, grpc2391});

    out.push_back({BugInfo{
        "moby-27782", "Docker", Behavior::Blocking,
        CauseDim::MessagePassing, SubCause::Chan,
        FixStrategy::AddSync, FixPrimitive::Channel, "",
        "event loop wedged acking a requester that timed out",
        false, false}, moby27782});

    out.push_back({BugInfo{
        "etcd-7902", "etcd", Behavior::Blocking,
        CauseDim::MessagePassing, SubCause::ChanWithOther,
        FixStrategy::MoveSync, FixPrimitive::Channel, "",
        "send under a read lock deadlocks via writer priority",
        false, false}, etcd7902});

    out.push_back({BugInfo{
        "docker-32126", "Docker", Behavior::Blocking,
        CauseDim::MessagePassing, SubCause::MessagingLibrary,
        FixStrategy::MoveSync, FixPrimitive::Misc, "",
        "crossed synchronous pipes: both stages write first",
        false, false}, docker32126});

    out.push_back({BugInfo{
        "kubernetes-59042", "Kubernetes", Behavior::Blocking,
        CauseDim::SharedMemory, SubCause::Wait,
        FixStrategy::AddSync, FixPrimitive::WaitGroup, "",
        "error path skips Done; Wait never returns",
        false, false}, kubernetes59042});

    out.push_back({BugInfo{
        "docker-28408", "Docker", Behavior::NonBlocking,
        CauseDim::SharedMemory, SubCause::Traditional,
        FixStrategy::ChangeSync, FixPrimitive::Misc, "",
        "concurrent map writes (fixed with sync.Map)",
        false, false}, docker28408});

    out.push_back({BugInfo{
        "grpc-3028", "gRPC", Behavior::NonBlocking,
        CauseDim::SharedMemory, SubCause::Traditional,
        FixStrategy::ChangeSync, FixPrimitive::Atomic, "",
        "state machine transition without CAS double-fires",
        false, false}, grpc3028});

    out.push_back({BugInfo{
        "cockroach-25441", "CockroachDB", Behavior::NonBlocking,
        CauseDim::MessagePassing, SubCause::LibMessage,
        FixStrategy::Bypass, FixPrimitive::Channel, "",
        "Timer.Reset without draining processes a stale expiry",
        false, false}, cockroach25441});

    out.push_back({BugInfo{
        "etcd-9956", "etcd", Behavior::NonBlocking,
        CauseDim::MessagePassing, SubCause::ChanMisuse,
        FixStrategy::ChangeSync, FixPrimitive::Channel, "",
        "non-blocking send silently drops the latest status update",
        false, false}, etcd9956});

    out.push_back({BugInfo{
        "kubernetes-82454", "Kubernetes", Behavior::NonBlocking,
        CauseDim::SharedMemory, SubCause::WaitGroupMisuse,
        FixStrategy::RemoveSync, FixPrimitive::WaitGroup, "",
        "Done called twice on the error path (negative counter "
        "panic)",
        false, false}, kubernetes82454});
}

} // namespace golite::corpus
