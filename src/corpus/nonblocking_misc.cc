/**
 * @file
 * Non-blocking bug kernels: WaitGroup misuse (Figure 9), channel
 * misuse (Figure 10's double close), message-library subtlety
 * (Figure 12's zero-duration Timer), plus two non-reproduced-set
 * extras — the Figure 11 select/ticker nondeterminism and the
 * etcd-7816 shared-context race.
 */

#include <memory>

#include "corpus/kernel_util.hh"
#include "golite/golite.hh"

namespace golite::corpus
{

namespace
{

using gotime::kMillisecond;

// ---------------------------------------------------------------
// etcd-6873 (Figure 9): peer.send spawns a worker that calls
// wg.Add(1) *inside the child*, so the stopper's wg.Wait() can
// return before the Add executes; the worker then touches a peer
// that was already freed.
// Fix (MoveSync): decide-and-Add inside the same critical section
// the stopper uses, and skip spawning once stopped.
BugOutcome
etcd6873(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        Mutex mu;
        WaitGroup wg;
        bool stopped = false;
        bool freed = false;
        bool usedAfterFree = false;
    };
    auto st = std::make_shared<State>();
    return runNonBlockingKernel([st, fixed] {
        auto worker_body = [st, fixed] {
            if (!fixed)
                st->wg.add(1); // buggy: Add races with Wait
            if (st->freed)
                st->usedAfterFree = true; // send on a freed peer
            st->wg.done();
        };
        // peer.send(): spawn the sender goroutine.
        st->mu.lock();
        if (fixed) {
            if (!st->stopped) {
                st->wg.add(1); // patched: Add under the stopper's lock
                go("msg-sender", worker_body);
            }
        } else {
            go("msg-sender", worker_body);
        }
        st->mu.unlock();
        // peer.stop(), concurrent in the original; here the stopper
        // runs as its own goroutine.
        go("peer-stopper", [st] {
            st->mu.lock();
            st->stopped = true;
            st->mu.unlock();
            st->wg.wait();
            st->freed = true; // resources released after Wait
        });
        for (int i = 0; i < 10; ++i)
            yield();
    }, options, [st] { return st->usedAfterFree; });
}

// ---------------------------------------------------------------
// docker-24007 (Figure 10): several goroutines run
// `select { case <-c.closed: default: close(c.ch) }`; two of them
// can both take the default branch and close the channel twice — a
// runtime panic.
// Fix (AddSync): wrap the close in a sync.Once.
BugOutcome
docker24007(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        Once closeOnce;
        int closers = 0;
    };
    auto st = std::make_shared<State>();
    return runNonBlockingKernel([st, fixed] {
        Chan<Unit> resources = makeChan<Unit>();
        WaitGroup wg;
        wg.add(3);
        for (int g = 0; g < 3; ++g) {
            go("releaser", [st, fixed, resources, &wg] {
                bool already_closed = false;
                Select()
                    .recv<Unit>(resources, [&](Unit, bool) {
                        already_closed = true;
                    })
                    .def([] {})
                    .run();
                if (!already_closed) {
                    // The gap between the check and the close: the
                    // original raced here across OS threads.
                    yield();
                    if (fixed) {
                        st->closeOnce.doOnce([&] {
                            resources.close();
                            st->closers++;
                        });
                    } else {
                        resources.close(); // second close panics
                        st->closers++;
                    }
                }
                wg.done();
            });
        }
        wg.wait();
    }, options, [st] { return st->closers > 1; });
}

// ---------------------------------------------------------------
// etcd-7423 (pattern, Figure 12): `timer := time.NewTimer(0)` is
// created as a placeholder; when no timeout is configured the
// placeholder fires immediately and the wait loop returns before the
// context was cancelled.
// Fix (Bypass): use a nil timeout channel unless a timeout is set —
// a select case on a nil channel never fires.
BugOutcome
etcd7423(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        bool prematureReturn = false;
    };
    auto st = std::make_shared<State>();
    return runNonBlockingKernel([st, fixed] {
        auto [request_ctx, cancel] = ctx::withCancel(ctx::background());
        go("request-finisher", [request_ctx, cancel] {
            gotime::sleep(50 * kMillisecond);
            cancel();
        });
        auto wait_with_timeout = [st, fixed](const ctx::Context &c,
                                             gotime::Duration dur) {
            Chan<gotime::Time> timeout; // nil
            if (fixed) {
                if (dur > 0)
                    timeout = gotime::newTimer(dur).c;
            } else {
                gotime::Timer placeholder = gotime::newTimer(0);
                if (dur > 0)
                    placeholder = gotime::newTimer(dur);
                timeout = placeholder.c;
            }
            bool timer_fired = false;
            Select()
                .recv<gotime::Time>(timeout,
                                    [&](gotime::Time, bool) {
                                        timer_fired = true;
                                    })
                .recv<Unit>(c->done(), [](Unit, bool) {})
                .run();
            if (timer_fired && !c->cancelled())
                st->prematureReturn = true;
        };
        wait_with_timeout(request_ctx, /*dur=*/0);
        gotime::sleep(100 * kMillisecond); // let the finisher finish
    }, options, [st] { return st->prematureReturn; });
}

// ---------------------------------------------------------------
// kubernetes-59780 (pattern, Figure 11): a worker loop selects on
// {stopCh, ticker.C}; when both are ready Go picks randomly, so the
// heavy periodic function can run one extra time after the stop
// request.
// Fix (AddSync): re-check stopCh in a leading select with default.
BugOutcome
kubernetes59780(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        bool stopRequested = false;
        int runsAfterStop = 0;
    };
    auto st = std::make_shared<State>();
    return runNonBlockingKernel([st, fixed] {
        Chan<Unit> stop_ch = makeChan<Unit>();
        gotime::Ticker ticker = gotime::newTicker(10 * kMillisecond);
        go("periodic-worker", [st, fixed, stop_ch, ticker] {
            for (;;) {
                if (fixed) {
                    bool stop_now = false;
                    Select()
                        .recv<Unit>(stop_ch,
                                    [&](Unit, bool) { stop_now = true; })
                        .def([] {})
                        .run();
                    if (stop_now)
                        return;
                }
                bool stop = false;
                Select()
                    .recv<Unit>(stop_ch, [&](Unit, bool) { stop = true; })
                    .recv<gotime::Time>(ticker.c,
                                        [st](gotime::Time, bool) {
                                            // f(): heavy work.
                                            if (st->stopRequested)
                                                st->runsAfterStop++;
                                            gotime::sleep(
                                                15 * kMillisecond);
                                        })
                    .run();
                if (stop)
                    return;
            }
        });
        gotime::sleep(35 * kMillisecond);
        st->stopRequested = true;
        stop_ch.close();
        gotime::sleep(100 * kMillisecond);
        ticker.stop();
    }, options, [st] { return st->runsAfterStop > 0; });
}

// ---------------------------------------------------------------
// etcd-7816: a context object is shared by design across the
// goroutines attached to it; two of them race on a string field
// stored in the context payload.
// Fix (AddSync): copy the value before sharing (data private).
BugOutcome
etcd7816(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        race::Shared<int> authInfo{"ctx-auth-info"};
    };
    auto st = std::make_shared<State>();
    return runNonBlockingKernel([st, fixed] {
        auto [request_ctx, cancel] = ctx::withCancel(ctx::background());
        WaitGroup wg;
        wg.add(2);
        go("applier", [st, fixed, c = request_ctx, &wg] {
            if (fixed) {
                const int copy = 7; // privatized payload
                (void)copy;
            } else {
                st->authInfo.store(7); // mutates the shared payload
            }
            wg.done();
        });
        go("validator", [st, fixed, c = request_ctx, &wg] {
            if (!fixed)
                (void)st->authInfo.load();
            wg.done();
        });
        wg.wait();
        cancel();
    }, options, [] { return false; /* pure race */ });
}

} // namespace

void
registerNonBlockingMiscBugs(std::vector<BugCase> &out)
{
    out.push_back({BugInfo{
        "etcd-6873", "etcd", Behavior::NonBlocking,
        CauseDim::SharedMemory, SubCause::WaitGroupMisuse,
        FixStrategy::MoveSync, FixPrimitive::WaitGroup, "Figure 9",
        "WaitGroup.Add inside the child races Wait in the stopper",
        true, false}, etcd6873});

    out.push_back({BugInfo{
        "docker-24007", "Docker", Behavior::NonBlocking,
        CauseDim::MessagePassing, SubCause::ChanMisuse,
        FixStrategy::AddSync, FixPrimitive::Once, "Figure 10",
        "channel closed twice by racing releasers (runtime panic)",
        true, false}, docker24007});

    out.push_back({BugInfo{
        "etcd-7423", "etcd", Behavior::NonBlocking,
        CauseDim::MessagePassing, SubCause::LibMessage,
        FixStrategy::Bypass, FixPrimitive::Channel, "Figure 12",
        "zero-duration placeholder Timer fires immediately",
        true, false}, etcd7423});

    out.push_back({BugInfo{
        "kubernetes-59780", "Kubernetes", Behavior::NonBlocking,
        CauseDim::MessagePassing, SubCause::ChanMisuse,
        FixStrategy::AddSync, FixPrimitive::Channel, "Figure 11",
        "select runs the periodic task once more after stop",
        false, false}, kubernetes59780});

    out.push_back({BugInfo{
        "etcd-7816", "etcd", Behavior::NonBlocking,
        CauseDim::SharedMemory, SubCause::LibShared,
        FixStrategy::DataPrivate, FixPrimitive::None, "",
        "goroutines attached to one context race on its payload",
        false, false}, etcd7816});
}

} // namespace golite::corpus
