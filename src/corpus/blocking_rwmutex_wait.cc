/**
 * @file
 * Blocking bug kernels, RWMutex and Wait categories (Table 6:
 * RWMutex 5, Wait 3 of the 85 studied blocking bugs).
 *
 * The RWMutex kernels depend on Go's writer-priority implementation —
 * the same code is deadlock-free with a reader-priority
 * pthread_rwlock_t, which is exactly the paper's point about new
 * implementations of old semantics (Observation 4). The Wait kernels
 * cover Cond.Wait with no signaller and the Figure 5 WaitGroup bug.
 */

#include <memory>

#include "corpus/kernel_util.hh"
#include "golite/golite.hh"

namespace golite::corpus
{

namespace
{

// ---------------------------------------------------------------
// cockroach-10214 (pattern, Section 5.1.1): goroutine A read-locks,
// goroutine B requests the write lock, A read-locks again. B blocks
// A's second RLock (writer privilege); A's held RLock blocks B.
// Fix (RemoveSync): A keeps its first read lock instead of
// re-acquiring.
BugOutcome
cockroach10214(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        RWMutex raftMu;
        int reads = 0;
    };
    auto st = std::make_shared<State>();
    return runBlockingKernel([st, fixed] {
        go("reader", [st, fixed] {
            st->raftMu.rlock();
            st->reads++;
            yield(); // let the writer queue up
            yield();
            if (!fixed) {
                st->raftMu.rlock(); // queues behind the writer
                st->reads++;
                st->raftMu.runlock();
            } else {
                st->reads++; // patched: reuse the held read lock
            }
            st->raftMu.runlock();
        });
        go("writer", [st] {
            yield(); // arrive after the first RLock
            st->raftMu.lock();
            st->raftMu.unlock();
        });
        for (int i = 0; i < 20; ++i)
            yield();
    }, options);
}

// ---------------------------------------------------------------
// kubernetes-70447 (pattern): a goroutine write-locks an RWMutex it
// already write-holds (via a helper).
// Fix (RemoveSync): helper stops re-locking.
BugOutcome
kubernetes70447(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        RWMutex stateMu;
        int updates = 0;
    };
    auto st = std::make_shared<State>();
    return runBlockingKernel([st, fixed] {
        go("updater", [st, fixed] {
            auto flush = [st, fixed] {
                if (!fixed)
                    st->stateMu.lock(); // second write lock: stalls
                st->updates++;
                if (!fixed)
                    st->stateMu.unlock();
            };
            st->stateMu.lock();
            flush();
            st->stateMu.unlock();
        });
        yield();
        yield();
    }, options);
}

// ---------------------------------------------------------------
// docker-25384 (Figure 5): group.Wait() sits *inside* the loop that
// spawns the group's goroutines, so iteration 1 waits for Done calls
// that only later iterations would create. With len(plugins) == 1 it
// happens to work; with more plugins everything stalls: main blocks
// at Wait, no child can be spawned.
// Fix (MoveSync): move Wait out of the loop.
BugOutcome
docker25384(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        WaitGroup group;
        int restored = 0;
    };
    auto st = std::make_shared<State>();
    return runBlockingKernel([st, fixed] {
        const int num_plugins = 3;
        st->group.add(num_plugins);
        for (int i = 0; i < num_plugins; ++i) {
            go("plugin-restore", [st] {
                st->restored++;
                st->group.done();
            });
            if (!fixed)
                st->group.wait(); // buggy: waits inside the loop
        }
        if (fixed)
            st->group.wait(); // patched: wait once, after the loop
    }, options);
}

// ---------------------------------------------------------------
// kubernetes-16851 (pattern): a worker calls Cond.Wait but the only
// Signal site was removed in a refactor; the worker sleeps forever.
// Fix (AddSync): signal after publishing work.
BugOutcome
kubernetes16851(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        Mutex mu;
        Cond cond{mu};
        bool hasWork = false;
        int processed = 0;
    };
    auto st = std::make_shared<State>();
    return runBlockingKernel([st, fixed] {
        go("queue-worker", [st] {
            st->mu.lock();
            while (!st->hasWork)
                st->cond.wait();
            st->processed++;
            st->mu.unlock();
        });
        yield();
        yield();
        st->mu.lock();
        st->hasWork = true;
        if (fixed)
            st->cond.signal(); // the missing wakeup
        st->mu.unlock();
    }, options);
}

} // namespace

void
registerBlockingRWMutexWaitBugs(std::vector<BugCase> &out)
{
    out.push_back({BugInfo{
        "cockroach-10214", "CockroachDB", Behavior::Blocking,
        CauseDim::SharedMemory, SubCause::RWMutex,
        FixStrategy::RemoveSync, FixPrimitive::Mutex, "",
        "recursive read lock interleaved by a write lock request "
        "(Go writer-priority semantics)",
        false, false}, cockroach10214});

    out.push_back({BugInfo{
        "kubernetes-70447", "Kubernetes", Behavior::Blocking,
        CauseDim::SharedMemory, SubCause::RWMutex,
        FixStrategy::RemoveSync, FixPrimitive::Mutex, "",
        "double write lock through a helper call",
        false, false}, kubernetes70447});

    out.push_back({BugInfo{
        "docker-25384", "Docker", Behavior::Blocking,
        CauseDim::SharedMemory, SubCause::Wait,
        FixStrategy::MoveSync, FixPrimitive::WaitGroup, "Figure 5",
        "WaitGroup.Wait inside the spawning loop blocks goroutine "
        "creation",
        false, true}, docker25384});

    out.push_back({BugInfo{
        "kubernetes-16851", "Kubernetes", Behavior::Blocking,
        CauseDim::SharedMemory, SubCause::Wait,
        FixStrategy::AddSync, FixPrimitive::Cond, "",
        "Cond.Wait with no remaining Signal site",
        false, false}, kubernetes16851});
}

} // namespace golite::corpus
