/**
 * @file
 * Bug-kernel infrastructure: metadata taxonomy (the paper's two
 * dimensions), outcome classification, and the corpus registry.
 *
 * Every studied bug pattern the paper reproduces is implemented as a
 * BugCase: a pair of runnable variants (buggy, fixed via the real
 * patch's strategy) plus the taxonomy tags that Tables 5-12 aggregate.
 */

#ifndef GOLITE_CORPUS_BUG_HH
#define GOLITE_CORPUS_BUG_HH

#include <functional>
#include <string>
#include <vector>

#include "runtime/report.hh"

namespace golite::corpus
{

/** First taxonomy dimension: bug behaviour (Section 4). */
enum class Behavior
{
    Blocking,
    NonBlocking,
};

/** Second taxonomy dimension: bug cause (Section 4). */
enum class CauseDim
{
    SharedMemory,
    MessagePassing,
};

/**
 * Root-cause subcategory. Blocking bugs use the Table 6 rows;
 * non-blocking bugs use the Table 9 rows.
 */
enum class SubCause
{
    // Blocking, shared memory (Table 6 left half).
    Mutex,
    RWMutex,
    Wait,
    // Blocking, message passing (Table 6 right half).
    Chan,
    ChanWithOther, ///< "Chan w/": channel combined with another primitive
    MessagingLibrary,

    // Non-blocking, shared memory (Table 9 top half).
    Traditional,       ///< atomicity/order violation, plain data race
    AnonymousFunction, ///< shared capture in a `go func(){...}()`
    WaitGroupMisuse,   ///< Add/Wait ordering rule violation
    LibShared,         ///< new Go library with implicitly shared state
    // Non-blocking, message passing (Table 9 bottom half).
    ChanMisuse,        ///< channel rule violation (e.g. double close)
    LibMessage,        ///< message-passing library subtlety (e.g. Timer)
};

const char *subCauseName(SubCause cause);

/** Fix strategy, following the paper's Table 7 / Table 10 taxonomy. */
enum class FixStrategy
{
    AddSync,     ///< add a missing operation (unlock, send, close, Add)
    MoveSync,    ///< move a misplaced operation
    ChangeSync,  ///< change a primitive's mode (e.g. unbuffered->buffered)
    RemoveSync,  ///< remove an extra operation (e.g. double lock)
    Bypass,      ///< eliminate/bypass the offending instructions
    DataPrivate, ///< privatize the shared data (copy per goroutine)
    Misc,
};

const char *fixStrategyName(FixStrategy strategy);

/** Primitive leveraged by the patch (Table 11 columns). */
enum class FixPrimitive
{
    Mutex,
    Channel,
    Atomic,
    WaitGroup,
    Cond,
    Once,
    Misc,
    None,
};

const char *fixPrimitiveName(FixPrimitive primitive);

/** Which variant of a kernel to execute. */
enum class Variant
{
    Buggy,
    Fixed,
};

/** Result of executing one kernel variant once. */
struct BugOutcome
{
    RunReport report;
    /**
     * Kernel-specific judgement: did the bug's failure behaviour
     * manifest in this run (blocked goroutines / panic / wrong
     * result)? Independent of detector output.
     */
    bool manifested = false;
    /** Human-readable note on what happened. */
    std::string note;
};

/** Metadata for one studied bug. */
struct BugInfo
{
    /** Stable id, e.g. "kubernetes-5316". */
    std::string id;
    /** Application the paper attributes the bug to. */
    std::string app;
    Behavior behavior;
    CauseDim cause;
    SubCause subcause;
    FixStrategy fixStrategy;
    FixPrimitive fixPrimitive;
    /** Paper figure illustrating the bug, "" if none. */
    std::string figure;
    /** One-line description of the bug pattern. */
    std::string description;
    /**
     * Part of the paper's reproduced set (21 blocking + 20
     * non-blocking) evaluated against the detectors in Tables 8/12.
     */
    bool reproducedSet = true;
    /**
     * The buggy variant deterministically blocks every goroutine
     * (Go's built-in detector fires). Only two corpus bugs have this
     * property — the Table 8 headline.
     */
    bool globallyDeadlocks = false;
};

/** One corpus entry: metadata plus the runnable kernel. */
struct BugCase
{
    BugInfo info;
    /** Execute one variant under the given runtime options. */
    std::function<BugOutcome(Variant, const RunOptions &)> runner;

    BugOutcome
    run(Variant variant, const RunOptions &options = {}) const
    {
        return runner(variant, options);
    }

    /**
     * Run the buggy variant across @p seeds seeds and report how many
     * runs manifested (the paper's "run it ~100 times" protocol).
     */
    int manifestCount(int seeds, RunOptions options = {}) const;
};

/** The full corpus, in registration order. */
const std::vector<BugCase> &corpus();

/** Lookup by id; null if unknown. */
const BugCase *findBug(const std::string &id);

/** All corpus entries matching a behaviour (optionally only the
 * reproduced set). */
std::vector<const BugCase *> bugsByBehavior(Behavior behavior,
                                            bool reproduced_only);

// Registration functions, one per kernel family (called once by
// corpus(); kept explicit so the static library cannot drop them).
void registerBlockingMutexBugs(std::vector<BugCase> &out);
void registerBlockingRWMutexWaitBugs(std::vector<BugCase> &out);
void registerBlockingChannelBugs(std::vector<BugCase> &out);
void registerBlockingMixedBugs(std::vector<BugCase> &out);
void registerBlockingLibraryBugs(std::vector<BugCase> &out);
void registerNonBlockingTraditionalBugs(std::vector<BugCase> &out);
void registerNonBlockingAnonymousBugs(std::vector<BugCase> &out);
void registerNonBlockingMiscBugs(std::vector<BugCase> &out);
void registerExtendedBugs(std::vector<BugCase> &out);
void registerExtendedWave3Bugs(std::vector<BugCase> &out);

} // namespace golite::corpus

#endif // GOLITE_CORPUS_BUG_HH
