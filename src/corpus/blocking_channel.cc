/**
 * @file
 * Blocking bug kernels, Chan category (Table 6: 29/85 studied bugs;
 * 9 of the 21 reproduced ones are modelled here, including the
 * paper's Figure 1 and Figure 6 bugs).
 *
 * The common shape: a send, receive, or close that the programmer
 * assumed would always happen is skipped on some path (timeout, early
 * return, error, pointer overwrite), leaving the peer goroutine
 * parked on the channel forever. None of these stalls the whole
 * process, so Go's built-in detector sees nothing.
 */

#include <memory>
#include <string>

#include "corpus/kernel_util.hh"
#include "golite/golite.hh"

namespace golite::corpus
{

namespace
{

using gotime::kMillisecond;

// ---------------------------------------------------------------
// kubernetes-5316 (Figure 1): finishReq spawns a child that sends
// the result on an unbuffered channel; the parent selects on the
// result versus a timeout. If the timeout fires first (or select
// picks it when both are ready), nobody ever receives and the child
// blocks forever.
// Fix (ChangeSync): make the channel buffered (capacity 1).
BugOutcome
kubernetes5316(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        int result = 0;
        bool timedOut = false;
    };
    auto st = std::make_shared<State>();
    return runBlockingKernel([st, fixed] {
        auto finish_req = [st, fixed](gotime::Duration timeout) {
            Chan<int> ch = fixed ? makeChan<int>(1)  // the patch
                                 : makeChan<int>();  // unbuffered
            go("request-handler", [st, ch] {
                // fn(): the actual request work takes a while.
                gotime::sleep(50 * kMillisecond);
                ch.send(42);
            });
            int out = -1;
            Select()
                .recv<int>(ch, [&](int v, bool) { out = v; })
                .recv<gotime::Time>(gotime::after(timeout),
                                    [&](gotime::Time, bool) {
                                        st->timedOut = true;
                                    })
                .run();
            return out;
        };
        st->result = finish_req(10 * kMillisecond); // timeout < fn()
        // The server keeps running long enough for the handler to
        // finish fn() and hit the orphaned send.
        gotime::sleep(200 * kMillisecond);
    }, options);
}

// ---------------------------------------------------------------
// grpc-862 (Figure 6): a cancellable context is created up front; a
// goroutine is attached to its done channel. When a timeout is
// configured the code creates a *second* context, overwriting the
// only reference to the first — no one can ever cancel it, and the
// attached goroutine leaks.
// Fix (Bypass): create the right context once, on each branch.
BugOutcome
grpc862(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        bool requestDone = false;
    };
    auto st = std::make_shared<State>();
    return runBlockingKernel([st, fixed] {
        const gotime::Duration timeout = 20 * kMillisecond;
        ctx::Context hctx;
        ctx::CancelFunc hcancel;
        if (!fixed) {
            // Buggy: always create a cancel context and attach the
            // monitor; then overwrite it when a timeout is set.
            auto [first, cancel_first] = ctx::withCancel(ctx::background());
            hctx = first;
            hcancel = cancel_first;
            go("http2-monitor", [first] { first->done().recv(); });
            if (timeout > 0) {
                auto [second, cancel_second] =
                    ctx::withTimeout(ctx::background(), timeout);
                hctx = second;       // the old context is orphaned
                hcancel = cancel_second;
            }
        } else {
            if (timeout > 0) {
                auto [c, cancel] =
                    ctx::withTimeout(ctx::background(), timeout);
                hctx = c;
                hcancel = cancel;
            } else {
                auto [c, cancel] = ctx::withCancel(ctx::background());
                hctx = c;
                hcancel = cancel;
            }
            go("http2-monitor", [hctx] { hctx->done().recv(); });
        }
        // The request completes; tear the context down.
        st->requestDone = true;
        hcancel();
        for (int i = 0; i < 6; ++i)
            yield();
    }, options);
}

// ---------------------------------------------------------------
// docker-21233 (pattern): a producer streams build progress into a
// channel; the consumer returns early on a validation error and
// stops draining. The producer's next send blocks forever.
// Fix (AddSync): select with a quit channel closed by the consumer.
BugOutcome
docker21233(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        int consumed = 0;
    };
    auto st = std::make_shared<State>();
    return runBlockingKernel([st, fixed] {
        Chan<int> progress = makeChan<int>();
        Chan<Unit> quit = makeChan<Unit>();
        go("progress-producer", [fixed, progress, quit] {
            for (int i = 0; i < 10; ++i) {
                if (fixed) {
                    bool stop = false;
                    Select()
                        .send<int>(progress, i, [] {})
                        .recv<Unit>(quit,
                                    [&](Unit, bool) { stop = true; })
                        .run();
                    if (stop)
                        return;
                } else {
                    progress.send(i); // blocks once consumer is gone
                }
            }
        });
        // Consumer: aborts after two updates (validation error).
        for (int i = 0; i < 2; ++i)
            st->consumed += progress.recv().ok ? 1 : 0;
        quit.close();
    }, options);
}

// ---------------------------------------------------------------
// etcd-5505 (pattern): a watcher loops `for ev := range events`; the
// event source stops on shutdown but forgets to close the channel,
// so the watcher sleeps forever in recv.
// Fix (AddSync): close the channel on the producer's exit path.
BugOutcome
etcd5505(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        int delivered = 0;
    };
    auto st = std::make_shared<State>();
    return runBlockingKernel([st, fixed] {
        Chan<std::string> events = makeChan<std::string>(2);
        go("watcher", [st, events] {
            for (;;) { // range over the channel
                auto r = events.recv();
                if (!r.ok)
                    return;
                st->delivered++;
            }
        });
        events.send("put k1");
        events.send("put k2");
        if (fixed)
            events.close(); // the patch: end the range loop
        for (int i = 0; i < 8; ++i)
            yield();
    }, options);
}

// ---------------------------------------------------------------
// grpc-1275 (pattern): the transport writes the server's response
// into an unbuffered channel, but on a stream reset the response
// path returns without sending. The RPC caller waits forever.
// Fix (AddSync): send a zero response on the reset path too.
BugOutcome
grpc1275(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        bool gotResponse = false;
    };
    auto st = std::make_shared<State>();
    return runBlockingKernel([st, fixed] {
        Chan<int> response = makeChan<int>();
        go("rpc-caller", [st, response] {
            st->gotResponse = response.recv().ok;
        });
        // Transport: the stream is reset before a response exists.
        const bool stream_reset = true;
        if (!stream_reset) {
            response.send(200);
        } else if (fixed) {
            response.close(); // patched: unblock the caller
        }
        for (int i = 0; i < 6; ++i)
            yield();
    }, options);
}

// ---------------------------------------------------------------
// cockroach-13197 (pattern): a scatter request fans out one
// goroutine per range; each sends its result on an unbuffered
// channel. The collector stops at the first error, stranding the
// remaining senders.
// Fix (ChangeSync): buffer the channel with the fan-out width.
BugOutcome
cockroach13197(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        int collected = 0;
    };
    auto st = std::make_shared<State>();
    return runBlockingKernel([st, fixed] {
        const int ranges = 4;
        Chan<int> results =
            fixed ? makeChan<int>(ranges) : makeChan<int>();
        for (int i = 0; i < ranges; ++i) {
            go("scatter-" + std::to_string(i), [results, i] {
                results.send(i == 1 ? -1 : i); // range 1 fails
            });
        }
        for (int i = 0; i < ranges; ++i) {
            int v = results.recv().value;
            st->collected++;
            if (v < 0)
                break; // first error aborts the collection loop
        }
    }, options);
}

// ---------------------------------------------------------------
// kubernetes-38669 (pattern): an event recorder's sink channel is
// only initialized when event recording is enabled; a code path
// fires an event regardless, sending on a nil channel and parking
// that goroutine forever.
// Fix (AddSync): guard the send on initialization.
BugOutcome
kubernetes38669(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        Chan<std::string> sink; // nil unless recording is enabled
        int recorded = 0;
    };
    auto st = std::make_shared<State>();
    return runBlockingKernel([st, fixed] {
        const bool recording_enabled = false;
        if (recording_enabled)
            st->sink = makeChan<std::string>(16);
        go("event-emitter", [st, fixed] {
            if (fixed && !st->sink)
                return;              // patched: skip when nil
            st->sink.send("Killing"); // buggy: nil send blocks forever
            st->recorded++;
        });
        for (int i = 0; i < 4; ++i)
            yield();
    }, options);
}

// ---------------------------------------------------------------
// etcd-6632 (pattern): a shutdown path forgets to close the `stopc`
// channel when the server aborts during bootstrap, so the supervisor
// goroutine waiting on stopc leaks.
// Fix (AddSync): close stopc on the abort path.
BugOutcome
etcd6632(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        bool supervisorExited = false;
    };
    auto st = std::make_shared<State>();
    return runBlockingKernel([st, fixed] {
        Chan<Unit> stopc = makeChan<Unit>();
        go("supervisor", [st, stopc] {
            stopc.recv();
            st->supervisorExited = true;
        });
        // Bootstrap fails.
        const bool bootstrap_failed = true;
        if (bootstrap_failed) {
            if (fixed)
                stopc.close(); // the patch
            // buggy: returns without closing stopc
        }
        for (int i = 0; i < 4; ++i)
            yield();
    }, options);
}

// ---------------------------------------------------------------
// etcd-7492 (pattern): two waiters receive from a completion channel
// that gets exactly one send; whichever loses the race leaks.
// Fix (ChangeSync): close the channel instead of sending once
// (close broadcasts to every receiver).
BugOutcome
etcd7492(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        int observers = 0;
    };
    auto st = std::make_shared<State>();
    return runBlockingKernel([st, fixed] {
        Chan<Unit> done = makeChan<Unit>();
        for (int i = 0; i < 2; ++i) {
            go("observer-" + std::to_string(i), [st, done] {
                done.recv();
                st->observers++;
            });
        }
        yield();
        yield();
        if (fixed)
            done.close();      // broadcast
        else
            done.trySend(Unit{}); // wakes at most one observer
        for (int i = 0; i < 6; ++i)
            yield();
    }, options);
}

} // namespace

void
registerBlockingChannelBugs(std::vector<BugCase> &out)
{
    out.push_back({BugInfo{
        "kubernetes-5316", "Kubernetes", Behavior::Blocking,
        CauseDim::MessagePassing, SubCause::Chan,
        FixStrategy::ChangeSync, FixPrimitive::Channel, "Figure 1",
        "request handler blocks sending after the caller timed out",
        true, false}, kubernetes5316});

    out.push_back({BugInfo{
        "grpc-862", "gRPC", Behavior::Blocking,
        CauseDim::MessagePassing, SubCause::Chan,
        FixStrategy::Bypass, FixPrimitive::Misc, "Figure 6",
        "context overwritten before its monitor goroutine can be "
        "cancelled",
        true, false}, grpc862});

    out.push_back({BugInfo{
        "docker-21233", "Docker", Behavior::Blocking,
        CauseDim::MessagePassing, SubCause::Chan,
        FixStrategy::AddSync, FixPrimitive::Channel, "",
        "producer blocks after the consumer aborted early",
        true, false}, docker21233});

    out.push_back({BugInfo{
        "etcd-5505", "etcd", Behavior::Blocking,
        CauseDim::MessagePassing, SubCause::Chan,
        FixStrategy::AddSync, FixPrimitive::Channel, "",
        "range-over-channel watcher leaks: producer never closes",
        true, false}, etcd5505});

    out.push_back({BugInfo{
        "grpc-1275", "gRPC", Behavior::Blocking,
        CauseDim::MessagePassing, SubCause::Chan,
        FixStrategy::AddSync, FixPrimitive::Channel, "",
        "response send skipped on the stream-reset path",
        true, false}, grpc1275});

    out.push_back({BugInfo{
        "cockroach-13197", "CockroachDB", Behavior::Blocking,
        CauseDim::MessagePassing, SubCause::Chan,
        FixStrategy::ChangeSync, FixPrimitive::Channel, "",
        "fan-out senders stranded when the collector stops at the "
        "first error",
        true, false}, cockroach13197});

    out.push_back({BugInfo{
        "kubernetes-38669", "Kubernetes", Behavior::Blocking,
        CauseDim::MessagePassing, SubCause::Chan,
        FixStrategy::AddSync, FixPrimitive::Misc, "",
        "send on a nil (never-initialized) channel",
        true, false}, kubernetes38669});

    out.push_back({BugInfo{
        "etcd-6632", "etcd", Behavior::Blocking,
        CauseDim::MessagePassing, SubCause::Chan,
        FixStrategy::AddSync, FixPrimitive::Channel, "",
        "stop channel not closed on the bootstrap-failure path",
        true, false}, etcd6632});

    out.push_back({BugInfo{
        "etcd-7492", "etcd", Behavior::Blocking,
        CauseDim::MessagePassing, SubCause::Chan,
        FixStrategy::ChangeSync, FixPrimitive::Channel, "",
        "single send to a channel with two receivers",
        true, false}, etcd7492});
}

} // namespace golite::corpus
