/**
 * @file
 * Non-blocking bug kernels, traditional shared-memory category
 * (Table 9: the largest class, ~2/3 of shared-memory non-blocking
 * bugs; 13 of the 20 reproduced bugs are modelled here).
 *
 * Seven are plain happens-before data races — the kind Go's race
 * detector can flag (Table 12 reports 7/13 detected). The other six
 * are atomicity and order violations whose individual accesses are
 * synchronized (mutex- or atomic-protected), so a pure race detector
 * is structurally blind to them no matter the schedule.
 */

#include <memory>
#include <string>

#include "corpus/kernel_util.hh"
#include "golite/golite.hh"

namespace golite::corpus
{

namespace
{

// ================================================================
// Detectable data races (7).
// ================================================================

// docker-22985: a request object's reference is handed to a worker
// through a channel, but the producer keeps mutating the object
// afterwards while the worker reads it.
// Fix (AddSync): protect the field with a mutex.
BugOutcome
docker22985(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        race::Shared<int> status{"ambient-status"};
        Mutex mu;
        int workerSaw = -1;
    };
    auto st = std::make_shared<State>();
    return runNonBlockingKernel([st, fixed] {
        Chan<int> jobs = makeChan<int>(1);
        go("worker", [st, fixed, jobs] {
            jobs.recv();
            if (fixed) st->mu.lock();
            st->workerSaw = st->status.load();
            if (fixed) st->mu.unlock();
        });
        jobs.send(1); // hand the reference over...
        if (fixed) st->mu.lock();
        st->status.store(2); // ...then keep mutating it
        if (fixed) st->mu.unlock();
        yield();
        yield();
    }, options, [st] {
        (void)st;
        // Either observed value is individually plausible; the defect
        // is the data race itself, visible only to the detector
        // (like the original report, found by the -race build).
        return false;
    });
}

// cockroach-6111: a raft-state struct is registered with another
// goroutine over a channel; both then update a counter field
// unsynchronized.
// Fix (AddSync): mutex around the counter.
BugOutcome
cockroach6111(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        race::Shared<int> pending{"pending-cmds"};
        Mutex mu;
    };
    auto st = std::make_shared<State>();
    return runNonBlockingKernel([st, fixed] {
        Chan<Unit> registered = makeChan<Unit>();
        go("raft-worker", [st, fixed, registered] {
            registered.recv();
            for (int i = 0; i < 3; ++i) {
                if (fixed) st->mu.lock();
                st->pending.update([](int &v) { v++; });
                if (fixed) st->mu.unlock();
            }
        });
        registered.send(Unit{});
        for (int i = 0; i < 3; ++i) {
            if (fixed) st->mu.lock();
            st->pending.update([](int &v) { v++; });
            if (fixed) st->mu.unlock();
        }
        for (int i = 0; i < 6; ++i)
            yield();
    }, options, [st] { return st->pending.raw() != 6; });
}

// docker-26205 (pattern): per-container stats counters bumped from
// the event loop and the API handler with no lock.
// Fix (AddSync): use the container mutex.
BugOutcome
docker26205(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        race::Shared<int> restarts{"restart-count"};
        Mutex mu;
    };
    auto st = std::make_shared<State>();
    return runNonBlockingKernel([st, fixed] {
        WaitGroup wg;
        wg.add(2);
        for (int g = 0; g < 2; ++g) {
            go([st, fixed, &wg] {
                for (int i = 0; i < 4; ++i) {
                    if (fixed) st->mu.lock();
                    st->restarts.update([](int &v) { v++; });
                    if (fixed) st->mu.unlock();
                }
                wg.done();
            });
        }
        wg.wait();
    }, options, [st] { return st->restarts.raw() != 8; });
}

// grpc-2371 (pattern): a connectivity flag written by the transport
// goroutine and read by the balancer without synchronization.
// Fix (AddSync): atomic flag.
BugOutcome
grpc2371(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        race::Shared<int> ready{"conn-ready"};
        Atomic<int> readyAtomic{0};
        int picked = 0;
    };
    auto st = std::make_shared<State>();
    return runNonBlockingKernel([st, fixed] {
        WaitGroup wg;
        wg.add(2);
        go("transport", [st, fixed, &wg] {
            yield();
            if (fixed)
                st->readyAtomic.store(1);
            else
                st->ready.store(1);
            wg.done();
        });
        go("balancer", [st, fixed, &wg] {
            const int r =
                fixed ? st->readyAtomic.load() : st->ready.load();
            if (r == 1)
                st->picked++;
            wg.done();
        });
        wg.wait();
    }, options, [st] {
        (void)st;
        return false; // flagged only by the detector: a pure race
    });
}

// etcd-4959 (pattern): lazy map initialization raced by two
// goroutines ("check, then create") with no lock.
// Fix (AddSync): sync.Once for the initialization.
BugOutcome
etcd4959(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        race::Shared<int> initCount{"lazy-init"};
        Once once;
    };
    auto st = std::make_shared<State>();
    return runNonBlockingKernel([st, fixed] {
        WaitGroup wg;
        wg.add(2);
        for (int g = 0; g < 2; ++g) {
            go([st, fixed, &wg] {
                auto init = [st] {
                    if (st->initCount.load() == 0)
                        st->initCount.update([](int &v) { v++; });
                };
                if (fixed)
                    st->once.doOnce([&] { init(); });
                else
                    init();
                wg.done();
            });
        }
        wg.wait();
    }, options, [st] { return st->initCount.raw() != 1; });
}

// kubernetes-41113 (pattern): the scheduler cache's generation
// number is read-modify-written by two binders.
// Fix (AddSync): atomic add.
BugOutcome
kubernetes41113(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        race::Shared<int> generation{"cache-generation"};
        Atomic<int> generationAtomic{0};
    };
    auto st = std::make_shared<State>();
    return runNonBlockingKernel([st, fixed] {
        WaitGroup wg;
        wg.add(3);
        for (int g = 0; g < 3; ++g) {
            go([st, fixed, &wg] {
                for (int i = 0; i < 2; ++i) {
                    if (fixed)
                        st->generationAtomic.add(1);
                    else
                        st->generation.update([](int &v) { v++; });
                }
                wg.done();
            });
        }
        wg.wait();
    }, options, [st, fixed] {
        return !fixed && st->generation.raw() != 6;
    });
}

// docker-28462 (pattern): the daemon reads a container's health
// string while the monitor goroutine rewrites it.
// Fix (AddSync): container lock around both.
BugOutcome
docker28462(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        race::Shared<int> health{"health-string"};
        Mutex mu;
        bool observedTorn = false;
    };
    auto st = std::make_shared<State>();
    return runNonBlockingKernel([st, fixed] {
        WaitGroup wg;
        wg.add(2);
        go("health-monitor", [st, fixed, &wg] {
            for (int i = 1; i <= 3; ++i) {
                if (fixed) st->mu.lock();
                st->health.store(i);
                if (fixed) st->mu.unlock();
                yield();
            }
            wg.done();
        });
        go("inspect-api", [st, fixed, &wg] {
            for (int i = 0; i < 3; ++i) {
                if (fixed) st->mu.lock();
                (void)st->health.load();
                if (fixed) st->mu.unlock();
                yield();
            }
            wg.done();
        });
        wg.wait();
    }, options, [st] {
        (void)st;
        return false; // pure race: only the detector sees it
    });
}

// ================================================================
// Atomicity / order violations without a data race (6). Every access
// below is synchronized, so the race detector has nothing to flag;
// the bug is in the *composition* of the critical sections.
// ================================================================

// etcd-3922 (pattern): check-then-act split over two critical
// sections; two goroutines both pass the check.
// Fix (MoveSync): merge into one critical section.
BugOutcome
etcd3922(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        Mutex mu;
        int leaders = 0;
    };
    auto st = std::make_shared<State>();
    return runNonBlockingKernel([st, fixed] {
        WaitGroup wg;
        wg.add(2);
        for (int g = 0; g < 2; ++g) {
            go([st, fixed, &wg] {
                if (fixed) {
                    st->mu.lock();
                    if (st->leaders == 0)
                        st->leaders++;
                    st->mu.unlock();
                } else {
                    st->mu.lock();
                    const bool vacant = (st->leaders == 0);
                    st->mu.unlock();
                    yield(); // both can see "vacant" here
                    if (vacant) {
                        st->mu.lock();
                        st->leaders++;
                        st->mu.unlock();
                    }
                }
                wg.done();
            });
        }
        wg.wait();
    }, options, [st] { return st->leaders != 1; });
}

// docker-27037 (pattern): the exit status is published before the
// "exited" flag, and a waiter reads them in between (order
// violation; each access holds the lock).
// Fix (MoveSync): set both fields in one critical section, in order.
BugOutcome
docker27037(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        Mutex mu;
        bool exited = false;
        int exitCode = -1;
        bool sawIncoherent = false;
    };
    auto st = std::make_shared<State>();
    return runNonBlockingKernel([st, fixed] {
        WaitGroup wg;
        wg.add(2);
        go("reaper", [st, fixed, &wg] {
            if (fixed) {
                st->mu.lock();
                st->exitCode = 0;
                st->exited = true;
                st->mu.unlock();
            } else {
                st->mu.lock();
                st->exited = true; // published before the code!
                st->mu.unlock();
                yield();
                st->mu.lock();
                st->exitCode = 0;
                st->mu.unlock();
            }
            wg.done();
        });
        go("waiter", [st, &wg] {
            for (int i = 0; i < 4; ++i) {
                st->mu.lock();
                if (st->exited && st->exitCode == -1)
                    st->sawIncoherent = true;
                st->mu.unlock();
                yield();
            }
            wg.done();
        });
        wg.wait();
    }, options, [st] { return st->sawIncoherent; });
}

// kubernetes-13058 (pattern): a worker consumes a config field that
// the starter assigns *after* launching the worker; both accesses go
// through an atomic, so there is no race, just the wrong order.
// Fix (MoveSync): assign before starting the worker.
BugOutcome
kubernetes13058(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        Atomic<int> podCidr{0};
        bool sawUnset = false;
    };
    auto st = std::make_shared<State>();
    return runNonBlockingKernel([st, fixed] {
        WaitGroup wg;
        wg.add(1);
        if (fixed)
            st->podCidr.store(42); // patched: init first
        go("sync-loop", [st, &wg] {
            if (st->podCidr.load() == 0)
                st->sawUnset = true;
            wg.done();
        });
        if (!fixed) {
            yield(); // the starter does unrelated work first...
            st->podCidr.store(42); // ...and assigns too late
        }
        wg.wait();
    }, options, [st] { return st->sawUnset; });
}

// cockroach-1462 (pattern): lost update — load and store through an
// atomic, but as two separate operations.
// Fix (ChangeSync): single atomic add.
BugOutcome
cockroach1462(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        Atomic<int> tsCache{0};
    };
    auto st = std::make_shared<State>();
    return runNonBlockingKernel([st, fixed] {
        WaitGroup wg;
        wg.add(2);
        for (int g = 0; g < 2; ++g) {
            go([st, fixed, &wg] {
                for (int i = 0; i < 3; ++i) {
                    if (fixed) {
                        st->tsCache.add(1);
                    } else {
                        const int v = st->tsCache.load();
                        yield(); // lose the update here
                        st->tsCache.store(v + 1);
                    }
                }
                wg.done();
            });
        }
        wg.wait();
    }, options, [st] { return st->tsCache.raw() != 6; });
}

// grpc-1149 (pattern): a connection is closed twice because "closed"
// is checked in one critical section and set in another.
// Fix (MoveSync): check-and-set atomically in one section.
BugOutcome
grpc1149(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        Mutex mu;
        bool closed = false;
        int closeCalls = 0;
    };
    auto st = std::make_shared<State>();
    return runNonBlockingKernel([st, fixed] {
        WaitGroup wg;
        wg.add(2);
        for (int g = 0; g < 2; ++g) {
            go([st, fixed, &wg] {
                if (fixed) {
                    st->mu.lock();
                    if (!st->closed) {
                        st->closed = true;
                        st->closeCalls++;
                    }
                    st->mu.unlock();
                } else {
                    st->mu.lock();
                    const bool was_closed = st->closed;
                    st->mu.unlock();
                    yield();
                    if (!was_closed) {
                        st->mu.lock();
                        st->closed = true;
                        st->closeCalls++;
                        st->mu.unlock();
                    }
                }
                wg.done();
            });
        }
        wg.wait();
    }, options, [st] { return st->closeCalls != 1; });
}

// etcd-5027 (pattern): two goroutines update the paired fields
// (term, vote) under two different locks, so a reader can observe a
// term from one update and a vote from another.
// Fix (ChangeSync): one lock guards the pair.
BugOutcome
etcd5027(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        Mutex termMu;
        Mutex voteMu;
        int term = 0;
        int vote = 0;
        bool sawMismatch = false;
    };
    auto st = std::make_shared<State>();
    return runNonBlockingKernel([st, fixed] {
        WaitGroup wg;
        wg.add(3);
        for (int g = 1; g <= 2; ++g) {
            go([st, fixed, g, &wg] {
                if (fixed) {
                    st->termMu.lock(); // single guard for the pair
                    st->term = g;
                    st->vote = g;
                    st->termMu.unlock();
                } else {
                    st->termMu.lock();
                    st->term = g;
                    st->termMu.unlock();
                    yield();
                    st->voteMu.lock();
                    st->vote = g;
                    st->voteMu.unlock();
                }
                wg.done();
            });
        }
        go("reader", [st, fixed, &wg] {
            for (int i = 0; i < 4; ++i) {
                st->termMu.lock();
                if (!fixed)
                    st->voteMu.lock();
                if (st->term != st->vote && st->term != 0 &&
                    st->vote != 0) {
                    st->sawMismatch = true;
                }
                if (!fixed)
                    st->voteMu.unlock();
                st->termMu.unlock();
                yield();
            }
            wg.done();
        });
        wg.wait();
    }, options, [st] { return st->sawMismatch; });
}

} // namespace

void
registerNonBlockingTraditionalBugs(std::vector<BugCase> &out)
{
    auto add = [&out](const char *id, const char *app, FixStrategy fs,
                      FixPrimitive fp, const char *desc,
                      decltype(&docker22985) fn) {
        out.push_back({BugInfo{id, app, Behavior::NonBlocking,
                               CauseDim::SharedMemory,
                               SubCause::Traditional, fs, fp, "", desc,
                               true, false},
                       fn});
    };

    add("docker-22985", "Docker", FixStrategy::AddSync,
        FixPrimitive::Mutex,
        "object mutated after its reference was sent over a channel",
        docker22985);
    add("cockroach-6111", "CockroachDB", FixStrategy::AddSync,
        FixPrimitive::Mutex,
        "counter field raced after channel registration", cockroach6111);
    add("docker-26205", "Docker", FixStrategy::AddSync,
        FixPrimitive::Mutex, "unsynchronized restart counter",
        docker26205);
    add("grpc-2371", "gRPC", FixStrategy::AddSync, FixPrimitive::Atomic,
        "connectivity flag read/written without sync", grpc2371);
    add("etcd-4959", "etcd", FixStrategy::AddSync, FixPrimitive::Once,
        "racy lazy initialization (check-then-create)", etcd4959);
    add("kubernetes-41113", "Kubernetes", FixStrategy::AddSync,
        FixPrimitive::Atomic, "racy generation counter RMW",
        kubernetes41113);
    add("docker-28462", "Docker", FixStrategy::AddSync,
        FixPrimitive::Mutex, "health string torn between writer/reader",
        docker28462);
    add("etcd-3922", "etcd", FixStrategy::MoveSync, FixPrimitive::Mutex,
        "check-then-act split across critical sections", etcd3922);
    add("docker-27037", "Docker", FixStrategy::MoveSync,
        FixPrimitive::Mutex,
        "exit flag published before the exit code (order violation)",
        docker27037);
    add("kubernetes-13058", "Kubernetes", FixStrategy::MoveSync,
        FixPrimitive::Atomic,
        "worker launched before its config was assigned",
        kubernetes13058);
    add("cockroach-1462", "CockroachDB", FixStrategy::ChangeSync,
        FixPrimitive::Atomic, "lost update via split atomic load/store",
        cockroach1462);
    add("grpc-1149", "gRPC", FixStrategy::MoveSync, FixPrimitive::Mutex,
        "double close: closed flag checked and set in separate "
        "sections",
        grpc1149);
    add("etcd-5027", "etcd", FixStrategy::ChangeSync,
        FixPrimitive::Mutex,
        "paired fields guarded by two different locks", etcd5027);
}

} // namespace golite::corpus
