/**
 * @file
 * Blocking bug kernels, messaging-library category (Table 6: "Lib",
 * 4/85 studied bugs; 2 reproduced here). Go's io.Pipe behaves like an
 * unbuffered channel for byte streams: a peer that goes away without
 * closing its end strands the other side forever.
 */

#include <memory>
#include <string>

#include "corpus/kernel_util.hh"
#include "golite/golite.hh"

namespace golite::corpus
{

namespace
{

// ---------------------------------------------------------------
// docker-36114 (pattern): a layer-upload goroutine streams data into
// an io.Pipe; the HTTP client aborts the request and drops the read
// end without closing it. The uploader blocks in Write forever.
// Fix (AddSync): close the reader with an error on the abort path.
BugOutcome
docker36114(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        int chunksSent = 0;
        bool aborted = false;
    };
    auto st = std::make_shared<State>();
    return runBlockingKernel([st, fixed] {
        auto [reader, writer] = goio::makePipe();
        go("layer-uploader", [st, w = writer]() mutable {
            for (int i = 0; i < 4; ++i) {
                auto res = w.write("chunk-" + std::to_string(i));
                if (!res.ok())
                    return; // the patched abort unblocks us here
                st->chunksSent++;
            }
            w.close();
        });
        // HTTP client: consumes one chunk, then the request fails.
        std::string buf;
        reader.read(buf);
        st->aborted = true;
        if (fixed)
            reader.close("request aborted"); // the patch
        for (int i = 0; i < 6; ++i)
            yield();
    }, options);
}

// ---------------------------------------------------------------
// kubernetes-47030 (pattern): a log-follow goroutine reads from a
// pipe; the writer goroutine exits on container stop without closing
// the write end. The follower blocks in Read forever.
// Fix (AddSync): defer-close the writer.
BugOutcome
kubernetes47030(Variant variant, const RunOptions &options)
{
    const bool fixed = variant == Variant::Fixed;
    struct State
    {
        int linesSeen = 0;
    };
    auto st = std::make_shared<State>();
    return runBlockingKernel([st, fixed] {
        auto [reader, writer] = goio::makePipe();
        go("log-follower", [st, r = reader]() mutable {
            for (;;) {
                std::string line;
                auto res = r.read(line);
                if (!res.ok())
                    return; // EOF after the patched close
                st->linesSeen++;
            }
        });
        go("log-writer", [fixed, w = writer]() mutable {
            w.write("container started");
            w.write("container stopped");
            const bool container_stopped = true;
            if (container_stopped) {
                if (fixed)
                    w.close(); // the patch (defer w.Close())
                return;        // buggy: exits with the pipe open
            }
        });
        for (int i = 0; i < 12; ++i)
            yield();
    }, options);
}

} // namespace

void
registerBlockingLibraryBugs(std::vector<BugCase> &out)
{
    out.push_back({BugInfo{
        "docker-36114", "Docker", Behavior::Blocking,
        CauseDim::MessagePassing, SubCause::MessagingLibrary,
        FixStrategy::AddSync, FixPrimitive::Misc, "",
        "io.Pipe writer stranded after the reader aborted without "
        "closing",
        true, false}, docker36114});

    out.push_back({BugInfo{
        "kubernetes-47030", "Kubernetes", Behavior::Blocking,
        CauseDim::MessagePassing, SubCause::MessagingLibrary,
        FixStrategy::AddSync, FixPrimitive::Misc, "",
        "io.Pipe reader stranded after the writer exited without "
        "closing",
        true, false}, kubernetes47030});
}

} // namespace golite::corpus
