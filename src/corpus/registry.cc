#include "corpus/bug.hh"

#include <mutex>

namespace golite::corpus
{

const char *
subCauseName(SubCause cause)
{
    switch (cause) {
      case SubCause::Mutex: return "Mutex";
      case SubCause::RWMutex: return "RWMutex";
      case SubCause::Wait: return "Wait";
      case SubCause::Chan: return "Chan";
      case SubCause::ChanWithOther: return "Chan w/";
      case SubCause::MessagingLibrary: return "Lib";
      case SubCause::Traditional: return "traditional";
      case SubCause::AnonymousFunction: return "anonymous function";
      case SubCause::WaitGroupMisuse: return "waitgroup";
      case SubCause::LibShared: return "lib (shared)";
      case SubCause::ChanMisuse: return "chan";
      case SubCause::LibMessage: return "lib (message)";
    }
    return "unknown";
}

const char *
fixStrategyName(FixStrategy strategy)
{
    switch (strategy) {
      case FixStrategy::AddSync: return "Add";
      case FixStrategy::MoveSync: return "Move";
      case FixStrategy::ChangeSync: return "Change";
      case FixStrategy::RemoveSync: return "Remove";
      case FixStrategy::Bypass: return "Bypass";
      case FixStrategy::DataPrivate: return "Private";
      case FixStrategy::Misc: return "Misc";
    }
    return "unknown";
}

const char *
fixPrimitiveName(FixPrimitive primitive)
{
    switch (primitive) {
      case FixPrimitive::Mutex: return "Mutex";
      case FixPrimitive::Channel: return "Channel";
      case FixPrimitive::Atomic: return "Atomic";
      case FixPrimitive::WaitGroup: return "WaitGroup";
      case FixPrimitive::Cond: return "Cond";
      case FixPrimitive::Once: return "Once";
      case FixPrimitive::Misc: return "Misc";
      case FixPrimitive::None: return "None";
    }
    return "unknown";
}

int
BugCase::manifestCount(int seeds, RunOptions options) const
{
    int manifested = 0;
    for (int seed = 0; seed < seeds; ++seed) {
        options.seed = static_cast<uint64_t>(seed);
        if (run(Variant::Buggy, options).manifested)
            manifested++;
    }
    return manifested;
}

const std::vector<BugCase> &
corpus()
{
    static std::vector<BugCase> cases = [] {
        std::vector<BugCase> out;
        registerBlockingMutexBugs(out);
        registerBlockingRWMutexWaitBugs(out);
        registerBlockingChannelBugs(out);
        registerBlockingMixedBugs(out);
        registerBlockingLibraryBugs(out);
        registerNonBlockingTraditionalBugs(out);
        registerNonBlockingAnonymousBugs(out);
        registerNonBlockingMiscBugs(out);
        registerExtendedBugs(out);
        registerExtendedWave3Bugs(out);
        return out;
    }();
    return cases;
}

const BugCase *
findBug(const std::string &id)
{
    for (const BugCase &bug : corpus()) {
        if (bug.info.id == id)
            return &bug;
    }
    return nullptr;
}

std::vector<const BugCase *>
bugsByBehavior(Behavior behavior, bool reproduced_only)
{
    std::vector<const BugCase *> out;
    for (const BugCase &bug : corpus()) {
        if (bug.info.behavior != behavior)
            continue;
        if (reproduced_only && !bug.info.reproducedSet)
            continue;
        out.push_back(&bug);
    }
    return out;
}

} // namespace golite::corpus
