/**
 * @file
 * Helpers shared by the bug kernels.
 *
 * Kernel conventions:
 *  - All state shared between goroutines lives in a shared_ptr-held
 *    struct captured by value, so teardown unwinding (which may
 *    destroy goroutine stacks in any order) is lifetime-safe.
 *  - Blocking kernels judge manifestation from the run report (a
 *    global deadlock or leaked goroutines).
 *  - Non-blocking kernels judge manifestation from program-visible
 *    misbehaviour (panic or wrong result) recorded in the state.
 */

#ifndef GOLITE_CORPUS_KERNEL_UTIL_HH
#define GOLITE_CORPUS_KERNEL_UTIL_HH

#include <functional>
#include <memory>
#include <sstream>

#include "corpus/bug.hh"
#include "runtime/scheduler.hh"

namespace golite::corpus
{

/** Run a program and classify the outcome for a *blocking* kernel. */
inline BugOutcome
runBlockingKernel(const std::function<void()> &program,
                  const RunOptions &options)
{
    BugOutcome out;
    out.report = run(program, options);
    out.manifested = out.report.globalDeadlock ||
                     !out.report.leaked.empty();
    std::ostringstream note;
    if (out.report.globalDeadlock) {
        note << "all goroutines are asleep - deadlock!";
    } else if (!out.report.leaked.empty()) {
        note << out.report.leaked.size() << " goroutine(s) leaked";
        note << " (first: " << waitReasonName(out.report.leaked[0].reason)
             << ")";
    } else {
        note << "completed cleanly";
    }
    out.note = note.str();
    return out;
}

/**
 * Run a program and classify the outcome for a *non-blocking* kernel:
 * @p misbehaved is evaluated after the run (typically a check of a
 * result captured in the kernel state); a panic always counts.
 */
inline BugOutcome
runNonBlockingKernel(const std::function<void()> &program,
                     const RunOptions &options,
                     const std::function<bool()> &misbehaved)
{
    BugOutcome out;
    out.report = run(program, options);
    const bool wrong = misbehaved ? misbehaved() : false;
    out.manifested = out.report.panicked || wrong;
    if (out.report.panicked)
        out.note = "panic: " + out.report.panicMessage;
    else if (wrong)
        out.note = "wrong result";
    else
        out.note = "behaved correctly";
    return out;
}

} // namespace golite::corpus

#endif // GOLITE_CORPUS_KERNEL_UTIL_HH
