#include "rpcbench/rpc.hh"

#include <memory>

#include "golite/golite.hh"

namespace golite::rpcbench
{

const std::vector<Workload> &
workloads()
{
    // Mirrors the gRPC benchmark suite's axes: streaming vs unary,
    // connection count, payload weight.
    static const std::vector<Workload> presets = {
        {"unary-sync-small", 4, 16, true, 2},
        {"unary-async-large", 8, 12, false, 5},
        {"streaming-sync", 2, 32, true, 3},
    };
    return presets;
}

namespace
{

struct Request
{
    int connection = 0;
    int sequence = 0;
    Chan<int> reply;
};

DynamicStats
statsFromReport(const RunReport &report, uint64_t responses)
{
    DynamicStats stats;
    stats.unitsCreated = report.goroutinesCreated;
    stats.responses = responses;
    stats.clean = report.clean();
    if (report.ticks > 0 && !report.stats.empty()) {
        double sum = 0.0;
        for (const GoroutineStat &g : report.stats) {
            const uint64_t end =
                g.finished ? g.finishedTick : report.ticks;
            sum += static_cast<double>(end - g.createdTick) /
                   static_cast<double>(report.ticks);
        }
        stats.normalizedLifetime =
            sum / static_cast<double>(report.stats.size());
    }
    return stats;
}

void
processRequest(const Workload &workload, Request req)
{
    for (int s = 0; s < workload.processingSteps; ++s)
        yield(); // the handler's compute slices
    req.reply.send(req.sequence);
}

} // namespace

DynamicStats
runGoStyleServer(const Workload &workload, uint64_t seed)
{
    auto responses = std::make_shared<uint64_t>(0);
    RunOptions options;
    options.seed = seed;
    options.collectStats = true;

    RunReport report = run([&workload, responses] {
        WaitGroup server_wg;
        server_wg.add(workload.connections);
        for (int conn = 0; conn < workload.connections; ++conn) {
            // One goroutine per connection...
            go("conn", [&workload, &server_wg, responses, conn] {
                Chan<int> replies =
                    makeChan<int>(workload.synchronous
                                      ? 0
                                      : workload.requestsPerConnection);
                for (int r = 0; r < workload.requestsPerConnection;
                     ++r) {
                    Request req{conn, r, replies};
                    // ...and one goroutine per request.
                    go("handler", [&workload, req] {
                        processRequest(workload, req);
                    });
                    if (workload.synchronous) {
                        replies.recv();
                        (*responses)++;
                    } else {
                        yield(); // request inter-arrival pacing
                    }
                }
                if (!workload.synchronous) {
                    for (int r = 0; r < workload.requestsPerConnection;
                         ++r) {
                        replies.recv();
                        (*responses)++;
                    }
                }
                server_wg.done();
            });
        }
        server_wg.wait();
    }, options);

    return statsFromReport(report, *responses);
}

DynamicStats
runCStyleServer(const Workload &workload, int pool_threads,
                uint64_t seed)
{
    auto responses = std::make_shared<uint64_t>(0);
    RunOptions options;
    options.seed = seed;
    options.collectStats = true;

    RunReport report = run([&workload, responses, pool_threads] {
        Chan<Request> queue = makeChan<Request>(64);
        WaitGroup pool_wg;
        pool_wg.add(pool_threads);
        // A fixed thread pool created once at startup; every worker
        // lives until shutdown (thread lifetime ~= process lifetime).
        for (int t = 0; t < pool_threads; ++t) {
            go("pool-thread", [&workload, &pool_wg, queue] {
                for (;;) {
                    auto r = queue.recv();
                    if (!r.ok)
                        break; // queue closed: shutdown
                    processRequest(workload, r.value);
                }
                pool_wg.done();
            });
        }

        WaitGroup conn_wg;
        conn_wg.add(workload.connections);
        for (int conn = 0; conn < workload.connections; ++conn) {
            go("conn", [&workload, &conn_wg, responses, conn, queue] {
                Chan<int> replies =
                    makeChan<int>(workload.synchronous
                                      ? 0
                                      : workload.requestsPerConnection);
                for (int r = 0; r < workload.requestsPerConnection;
                     ++r) {
                    queue.send(Request{conn, r, replies});
                    if (workload.synchronous) {
                        replies.recv();
                        (*responses)++;
                    }
                }
                if (!workload.synchronous) {
                    for (int r = 0; r < workload.requestsPerConnection;
                         ++r) {
                        replies.recv();
                        (*responses)++;
                    }
                }
                conn_wg.done();
            });
        }
        conn_wg.wait();
        queue.close();
        pool_wg.wait();
    }, options);

    // The C-side comparison counts *threads*: the fixed pool. The
    // connection drivers model clients, as in the paper's testbed
    // where the client load generator is a separate process.
    DynamicStats stats = statsFromReport(report, *responses);
    stats.unitsCreated = static_cast<uint64_t>(pool_threads);
    // Pool threads live from startup to shutdown: lifetime ~ 100%.
    // They are the first pool_threads goroutines spawned after main
    // (ids 2..pool_threads+1).
    double sum = 0.0;
    int counted = 0;
    for (const GoroutineStat &g : report.stats) {
        if (g.goid >= 2 &&
            g.goid < 2 + static_cast<uint64_t>(pool_threads)) {
            const uint64_t end =
                g.finished ? g.finishedTick : report.ticks;
            sum += static_cast<double>(end - g.createdTick) /
                   static_cast<double>(report.ticks);
            counted++;
        }
    }
    stats.normalizedLifetime = counted ? sum / counted : 0.0;
    return stats;
}

} // namespace golite::rpcbench
