/**
 * @file
 * The Table 3 experiment: dynamic goroutine statistics.
 *
 * The paper ran gRPC-Go and gRPC-C under three RPC performance
 * benchmarks and compared (a) how many goroutines vs threads each
 * creates and (b) how long they live relative to total runtime. We
 * rebuild both sides on the golite scheduler: a Go-style server that
 * spawns one goroutine per connection and per request, and a C-style
 * server with a small fixed thread pool that lives for the whole run.
 * Both process identical synthetic RPC load; the report compares
 * creation counts and normalized lifetimes.
 */

#ifndef GOLITE_RPCBENCH_RPC_HH
#define GOLITE_RPCBENCH_RPC_HH

#include <cstdint>
#include <string>
#include <vector>

namespace golite::rpcbench
{

/** One benchmark configuration (the paper used three). */
struct Workload
{
    std::string name;
    int connections = 4;
    int requestsPerConnection = 16;
    /** Synchronous: the client waits for each response before the
     *  next request; asynchronous: it pipelines. */
    bool synchronous = true;
    /** Handler weight: scheduling slices consumed per request. */
    int processingSteps = 3;
};

/** The three benchmark presets (Section 3.1's RPC benchmarks). */
const std::vector<Workload> &workloads();

/** Measured dynamic statistics of one server run. */
struct DynamicStats
{
    /** Goroutines (or pool threads) ever created. */
    uint64_t unitsCreated = 0;
    /** Mean per-unit lifetime divided by total runtime (0..1].
     *  Threads in the C baseline live the whole run (~1.0). */
    double normalizedLifetime = 0.0;
    /** Responses delivered (sanity: must equal the request count). */
    uint64_t responses = 0;
    /** The run finished without deadlocks or leaks. */
    bool clean = false;
};

/** Run the Go-style (goroutine-per-request) server. */
DynamicStats runGoStyleServer(const Workload &workload,
                              uint64_t seed = 1);

/**
 * Run the C-style baseline: a fixed pool of @p pool_threads workers
 * that live from startup to shutdown (gRPC-C creates a handful of
 * threads at start and never again).
 */
DynamicStats runCStyleServer(const Workload &workload,
                             int pool_threads = 5, uint64_t seed = 1);

} // namespace golite::rpcbench

#endif // GOLITE_RPCBENCH_RPC_HH
