#include "gotime/time.hh"

#include "base/panic.hh"

namespace golite::gotime
{

Time
now()
{
    return Scheduler::current()->now();
}

void
sleep(Duration d)
{
    Scheduler::current()->sleep(d);
}

void
Timer::arm(Duration d)
{
    Scheduler *sched = Scheduler::current();
    Chan<Time> ch = c;
    id_ = sched->scheduleTimer(d, [ch] {
        // Runtime-internal delivery: non-blocking send, capacity-1
        // channel. A stale unread value makes this a no-op, matching
        // Go's "Reset on an undrained timer" hazard.
        ch.trySend(Scheduler::current()->now());
    });
}

bool
Timer::stop()
{
    return Scheduler::current()->cancelTimer(id_);
}

bool
Timer::reset(Duration d)
{
    const bool was_pending = Scheduler::current()->cancelTimer(id_);
    arm(d);
    return was_pending;
}

Timer
newTimer(Duration d)
{
    Timer t;
    t.c = makeChan<Time>(1);
    t.arm(d);
    return t;
}

Chan<Time>
after(Duration d)
{
    return newTimer(d).c;
}

Timer
afterFunc(Duration d, std::function<void()> fn)
{
    Timer t;
    Scheduler *sched = Scheduler::current();
    t.id_ = sched->scheduleTimer(d, [fn = std::move(fn)] {
        // As in Go, f runs "in its own goroutine".
        Scheduler::current()->spawn(fn, "time.AfterFunc");
    });
    return t;
}

namespace
{

void
armTick(const std::shared_ptr<Ticker::State> &state)
{
    Scheduler::current()->scheduleTimer(state->period, [state] {
        if (state->stopped)
            return;
        state->ch.trySend(Scheduler::current()->now());
        armTick(state);
    });
}

} // namespace

void
Ticker::stop()
{
    // The tick callback reads `stopped` in scheduler context; the
    // guard orders this write against it in parallel mode.
    SchedGuard guard(Scheduler::current());
    if (state_)
        state_->stopped = true;
}

Ticker
newTicker(Duration d)
{
    if (d <= 0)
        goPanic("non-positive interval for NewTicker");
    Ticker t;
    t.state_ = std::make_shared<Ticker::State>();
    t.state_->period = d;
    t.state_->ch = makeChan<Time>(1);
    t.c = t.state_->ch;
    armTick(t.state_);
    return t;
}

} // namespace golite::gotime
