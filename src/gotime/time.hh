/**
 * @file
 * The time package on golite's virtual clock: Sleep, Timer, Ticker,
 * After.
 *
 * Timers fire by advancing virtual time, so timeout-dependent bugs
 * (Figure 1's select-vs-timeout race, Figure 12's zero-duration Timer)
 * reproduce deterministically and instantly.
 *
 * Semantics match Go's time package where the studied bugs depend on
 * them: a Timer's channel has capacity 1 and is signalled with a
 * non-blocking send by a runtime-internal mechanism; NewTimer(0) fires
 * "immediately"; Stop does not drain the channel.
 */

#ifndef GOLITE_GOTIME_TIME_HH
#define GOLITE_GOTIME_TIME_HH

#include <cstdint>
#include <functional>

#include "channel/chan.hh"

namespace golite::gotime
{

/** Durations and instants are nanoseconds, as in Go. */
using Duration = int64_t;
using Time = int64_t;

constexpr Duration kNanosecond = 1;
constexpr Duration kMicrosecond = 1000 * kNanosecond;
constexpr Duration kMillisecond = 1000 * kMicrosecond;
constexpr Duration kSecond = 1000 * kMillisecond;

/** Current virtual time. */
Time now();

/** Park the calling goroutine for @p d of virtual time. */
void sleep(Duration d);

/**
 * time.Timer. Movable handle; the channel c fires once when the timer
 * expires.
 */
class Timer
{
  public:
    /** The expiry channel (capacity 1), named C in Go. */
    Chan<Time> c;

    /**
     * Stop the timer. Returns true if this call prevented the firing.
     * Does not drain c — the Go footgun behind several bugs.
     */
    bool stop();

    /** Re-arm the timer for @p d from now. Returns true if it was
     * still pending. */
    bool reset(Duration d);

  private:
    friend Timer newTimer(Duration d);
    friend Chan<Time> after(Duration d);
    friend Timer afterFunc(Duration d, std::function<void()> fn);
    void arm(Duration d);

    TimerId id_;
};

/**
 * Create a timer that signals c after @p d. A non-positive duration
 * fires at the next scheduling point (Go's NewTimer(0) behaviour that
 * causes the Figure 12 bug).
 */
Timer newTimer(Duration d);

/** Convenience: NewTimer(d).C. */
Chan<Time> after(Duration d);

/**
 * time.AfterFunc: run @p fn in its own goroutine once @p d elapses.
 * Returns a Timer whose stop() cancels the pending call (its channel
 * is unused, as in Go).
 */
Timer afterFunc(Duration d, std::function<void()> fn);

/**
 * time.Ticker: signals its channel every @p d until stopped. As in Go,
 * ticks are delivered with a non-blocking send on a capacity-1
 * channel, so a slow receiver drops ticks.
 */
class Ticker
{
  public:
    Chan<Time> c;

    /** Stop future ticks; already-delivered ticks stay in c. */
    void stop();

    /** Internal shared state (public for the re-arming closure). */
    struct State
    {
        bool stopped = false;
        Duration period = 0;
        Chan<Time> ch;
    };

  private:
    friend Ticker newTicker(Duration d);

    std::shared_ptr<State> state_;
};

/** Create a ticker with period @p d (panics if d <= 0, as in Go). */
Ticker newTicker(Duration d);

} // namespace golite::gotime

#endif // GOLITE_GOTIME_TIME_HH
