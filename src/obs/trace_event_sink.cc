#include "obs/trace_event_sink.hh"

#include <cstdio>

namespace golite::obs
{

namespace
{

std::string
escapeJson(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
            continue;
        }
        out += c;
    }
    return out;
}

} // namespace

EventMask
TraceEventSink::eventMask() const
{
    return eventBit(EventKind::GoSpawn) |
           eventBit(EventKind::GoFinish) |
           eventBit(EventKind::GoPark) |
           eventBit(EventKind::GoUnpark) |
           eventBit(EventKind::GoDispatch) |
           eventBit(EventKind::GoDesched) |
           eventBit(EventKind::ClockAdvance) |
           eventBit(EventKind::ChanOp) |
           eventBit(EventKind::LockAcquire) |
           eventBit(EventKind::LockRelease) |
           eventBit(EventKind::SelectBlock) |
           eventBit(EventKind::OnceOp) |
           eventBit(EventKind::WgDelta) | eventBit(EventKind::WgWait);
}

void
TraceEventSink::push(const char *ph, uint64_t tid,
                     const std::string &name, const std::string &args)
{
    std::string rec = "{\"name\":\"" + escapeJson(name) +
                      "\",\"ph\":\"" + ph +
                      "\",\"pid\":1,\"tid\":" + std::to_string(tid) +
                      ",\"ts\":" + std::to_string(seq_++);
    if (ph[0] == 'i')
        rec += ",\"s\":\"t\"";
    if (!args.empty())
        rec += ",\"args\":" + args;
    rec += "}";
    events_.push_back(std::move(rec));
}

void
TraceEventSink::onEvent(const RuntimeEvent &ev)
{
    switch (ev.kind) {
      case EventKind::GoSpawn: {
        // Name the goroutine's lane, then mark the spawn itself
        // (skipped for the synthetic main-goroutine registration:
        // there is no `go` statement to mark).
        const std::string label =
            ev.name && !ev.name->empty()
                ? *ev.name
                : "g" + std::to_string(ev.gid);
        push("M", ev.gid, "thread_name",
             "{\"name\":\"g" + std::to_string(ev.gid) + " " +
                 escapeJson(label) + "\"}");
        if (!ev.flag)
            push("i", ev.gid,
                 "spawned by g" + std::to_string(ev.a));
        break;
      }
      case EventKind::GoFinish:
        push("i", ev.gid, ev.flag ? "finish (teardown)" : "finish");
        break;
      case EventKind::GoPark:
        push("i", ev.gid,
             std::string("park: ") + waitReasonName(ev.reason));
        break;
      case EventKind::GoUnpark:
        push("i", ev.gid, "unpark");
        break;
      case EventKind::GoDispatch:
        push("B", ev.gid, "run");
        break;
      case EventKind::GoDesched:
        push("E", ev.gid, "run");
        break;
      case EventKind::ClockAdvance:
        push("i", 0,
             "clock -> " + std::to_string(ev.b / 1000) + "us");
        break;
      case EventKind::ChanOp:
        push("i", ev.gid,
             std::string("chan ") + chanOpKindName(ev.chanOp));
        break;
      case EventKind::LockAcquire:
        push("i", ev.gid,
             ev.flag ? "lock acquire (w)" : "lock acquire (r)");
        break;
      case EventKind::LockRelease:
        push("i", ev.gid, "lock release");
        break;
      case EventKind::SelectBlock:
        push("i", ev.gid,
             "select block (" +
                 std::to_string(ev.waits ? ev.waits->size() : 0) +
                 " cases)");
        break;
      case EventKind::OnceOp:
        push("i", ev.gid, ev.flag ? "once: ran" : "once: skipped");
        break;
      case EventKind::WgDelta: {
        const std::string delta =
            (ev.b >= 0 ? "+" : "") + std::to_string(ev.b);
        push("i", ev.gid,
             "wg " + delta + " -> " + std::to_string(ev.a));
        break;
      }
      case EventKind::WgWait:
        push("i", ev.gid, "wg wait");
        break;
      default:
        break; // broadcast mode delivers kinds outside the mask
    }
}

std::string
TraceEventSink::json() const
{
    std::string out =
        "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    for (size_t i = 0; i < events_.size(); ++i) {
        out += events_[i];
        out += (i + 1 < events_.size()) ? ",\n" : "\n";
    }
    out += "]}\n";
    return out;
}

bool
TraceEventSink::writeFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::perror(("TraceEventSink: " + path).c_str());
        return false;
    }
    const std::string doc = json();
    const bool ok =
        std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    std::fclose(f);
    return ok;
}

} // namespace golite::obs
