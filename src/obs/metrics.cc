#include "obs/metrics.hh"

namespace golite::obs
{

EventMask
MetricsSink::eventMask() const
{
    return eventBit(EventKind::GoSpawn) |
           eventBit(EventKind::GoFinish) |
           eventBit(EventKind::GoPark) |
           eventBit(EventKind::GoDispatch) |
           eventBit(EventKind::LockAcquire) |
           eventBit(EventKind::LockRelease) |
           eventBit(EventKind::WgDelta) | eventBit(EventKind::WgWait) |
           eventBit(EventKind::SelectBlock) |
           eventBit(EventKind::ChanOp) | eventBit(EventKind::OnceOp) |
           eventBit(EventKind::MemRead) |
           eventBit(EventKind::MemWrite);
}

void
MetricsSink::onEvent(const RuntimeEvent &ev)
{
    switch (ev.kind) {
      case EventKind::GoSpawn:
        metrics_.spawns++;
        live_++;
        if (live_ > metrics_.maxLiveGoroutines)
            metrics_.maxLiveGoroutines = live_;
        spawnTimeNs_.emplace(ev.gid, ev.timeNs);
        break;
      case EventKind::GoFinish: {
        if (live_ > 0)
            live_--;
        auto it = spawnTimeNs_.find(ev.gid);
        if (it != spawnTimeNs_.end()) {
            // Teardown unwinds (ev.flag) are not real completions;
            // drop the entry without counting a lifetime.
            if (!ev.flag) {
                const int64_t lifetime = ev.timeNs - it->second;
                metrics_.lifetimesCounted++;
                metrics_.lifetimeSumNs += lifetime;
                if (lifetime > metrics_.lifetimeMaxNs)
                    metrics_.lifetimeMaxNs = lifetime;
            }
            spawnTimeNs_.erase(it);
        }
        break;
      }
      case EventKind::GoPark:
        metrics_.parks++;
        metrics_.blocksByReason[static_cast<int>(ev.reason)]++;
        break;
      case EventKind::GoDispatch:
        metrics_.dispatches++;
        if (lastDispatched_ != 0 && lastDispatched_ != ev.gid)
            metrics_.contextSwitches++;
        lastDispatched_ = ev.gid;
        break;
      case EventKind::LockAcquire:
        if (ev.flag)
            metrics_.lockWriteAcquires++;
        else
            metrics_.lockReadAcquires++;
        break;
      case EventKind::LockRelease:
        metrics_.lockReleases++;
        break;
      case EventKind::WgDelta:
        metrics_.wgDeltas++;
        break;
      case EventKind::WgWait:
        metrics_.wgWaits++;
        break;
      case EventKind::SelectBlock:
        metrics_.selectBlocks++;
        break;
      case EventKind::OnceOp:
        metrics_.onceOps++;
        break;
      case EventKind::ChanOp:
        switch (ev.chanOp) {
          case ChanOpKind::Send:
            metrics_.chanSends++;
            break;
          case ChanOpKind::Recv:
            metrics_.chanRecvs++;
            break;
          case ChanOpKind::Close:
            metrics_.chanCloses++;
            break;
          case ChanOpKind::TrySend:
          case ChanOpKind::TryRecv:
            metrics_.chanTryOps++;
            break;
        }
        break;
      case EventKind::MemRead:
      case EventKind::MemWrite:
        // Broadcast mode only (masked dispatch routes these through
        // onMemAccess).
        onMemAccess(ev.obj, ev.label, ev.gid,
                    ev.kind == EventKind::MemWrite);
        break;
      default:
        break;
    }
}

void
MetricsSink::finalizeRun(RunReport &report)
{
    metrics_.collected = true;
    // A race::Detector attached ahead of this sink has already
    // published its footprint into the report; carry it through the
    // wholesale overwrite.
    metrics_.detector = report.metrics.detector;
    report.metrics = metrics_;
    metrics_ = RunMetrics{};
    lastDispatched_ = 0;
    live_ = 0;
    spawnTimeNs_.clear();
}

} // namespace golite::obs
