#include "obs/histogram.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace golite::obs
{

size_t
LatencyHistogram::bucketIndex(int64_t v)
{
    if (v < 64)
        return static_cast<size_t>(v);
    // Bracket k holds [2^k, 2^(k+1)) in 64 sub-buckets of 2^(k-6) ns.
    const int k = 63 - __builtin_clzll(static_cast<uint64_t>(v));
    const size_t offset =
        static_cast<size_t>(v >> (k - 6)) - 64; // in [0, 64)
    const size_t idx = static_cast<size_t>(k - 5) * 64 + offset;
    return std::min(idx, kBuckets - 1);
}

int64_t
LatencyHistogram::bucketUpper(size_t idx)
{
    if (idx < 64)
        return static_cast<int64_t>(idx);
    const int k = 6 + static_cast<int>(idx / 64) - 1;
    const int64_t offset = static_cast<int64_t>(idx % 64);
    const int64_t width = int64_t{1} << (k - 6);
    return (64 + offset) * width + width - 1;
}

void
LatencyHistogram::record(int64_t value_ns)
{
    const int64_t v = std::max<int64_t>(value_ns, 0);
    buckets_[bucketIndex(v)]++;
    count_++;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    if (other.count_ == 0)
        return;
    for (size_t i = 0; i < kBuckets; ++i)
        buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

int64_t
LatencyHistogram::meanValue() const
{
    return count_ > 0 ? sum_ / static_cast<int64_t>(count_) : 0;
}

int64_t
LatencyHistogram::quantile(double q) const
{
    if (count_ == 0)
        return 0;
    const double clamped = std::clamp(q, 0.0, 1.0);
    const uint64_t target = std::max<uint64_t>(
        static_cast<uint64_t>(std::ceil(clamped * count_)), 1);
    uint64_t cum = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
        cum += buckets_[i];
        if (cum >= target)
            return std::min(bucketUpper(i), max_);
    }
    return max_;
}

std::string
LatencyHistogram::json() const
{
    std::ostringstream os;
    os << "{\"count\":" << count_
       << ",\"minNs\":" << minValue()
       << ",\"meanNs\":" << meanValue()
       << ",\"p50Ns\":" << quantile(0.50)
       << ",\"p90Ns\":" << quantile(0.90)
       << ",\"p99Ns\":" << quantile(0.99)
       << ",\"p999Ns\":" << quantile(0.999)
       << ",\"maxNs\":" << maxValue() << "}";
    return os.str();
}

} // namespace golite::obs
