/**
 * @file
 * obs::MetricsSink: per-run operation counters off the event bus.
 *
 * Subscribes to every countable kind and tallies ops by primitive,
 * blocks by wait reason, context switches, and the live-goroutine
 * high-water mark. finalizeRun() lands the totals in
 * RunReport::metrics (and resets the sink for the next run, so one
 * instance can ride along a whole sweep).
 *
 * The counters are a pure function of the schedule, so for a fixed
 * seed they are byte-stable across machines — CI diffs
 * RunMetrics::json() for one fixed-seed kernel against a committed
 * expectation (tools/metrics_smoke).
 */

#ifndef GOLITE_OBS_METRICS_HH
#define GOLITE_OBS_METRICS_HH

#include <unordered_map>

#include "runtime/events.hh"
#include "runtime/report.hh"

namespace golite::obs
{

class MetricsSink : public Subscriber
{
  public:
    EventMask eventMask() const override;

    void onEvent(const RuntimeEvent &ev) override;

    /** Hot path: count without packing a RuntimeEvent. */
    void
    onMemAccess(const void *, const char *, uint64_t,
                bool is_write) override
    {
        if (is_write)
            metrics_.memWrites++;
        else
            metrics_.memReads++;
    }

    /** Publish the totals into @p report and reset for the next run. */
    void finalizeRun(RunReport &report) override;

    /** Counters accumulated since the last finalizeRun(). */
    const RunMetrics &current() const { return metrics_; }

  private:
    RunMetrics metrics_;
    uint64_t lastDispatched_ = 0;
    uint64_t live_ = 0;
    /** Spawn run-clock time per live goroutine, for the lifetime
     *  stats (Table 3's goroutine-lifetime dimension); entries are
     *  erased at finish, so the map stays at live-goroutine size even
     *  over soak runs. */
    std::unordered_map<uint64_t, int64_t> spawnTimeNs_;
};

} // namespace golite::obs

#endif // GOLITE_OBS_METRICS_HH
