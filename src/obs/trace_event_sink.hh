/**
 * @file
 * obs::TraceEventSink: Chrome trace-event JSON off the event bus.
 *
 * Renders a run as a timeline openable in chrome://tracing or
 * Perfetto: one lane (tid) per goroutine, a "run" duration slice per
 * scheduling quantum (GoDispatch..GoDesched), and instant markers for
 * parks, unparks, channel/lock/Once/WaitGroup operations, select
 * blocks, and virtual-clock jumps.
 *
 * Timestamps are the event ordinal, not wall time: run N of a fixed
 * seed produces byte-identical JSON on every machine (the golden test
 * in tests/obs_test.cc depends on this). No pointer values are ever
 * printed for the same reason.
 *
 * Typical use (see README "Observability quickstart"):
 *
 *     obs::TraceEventSink timeline;
 *     RunOptions options;
 *     options.subscribers.push_back(&timeline);
 *     run(program, options);
 *     timeline.writeFile("trace.json");   // open in Perfetto
 */

#ifndef GOLITE_OBS_TRACE_EVENT_SINK_HH
#define GOLITE_OBS_TRACE_EVENT_SINK_HH

#include <string>
#include <vector>

#include "runtime/events.hh"

namespace golite::obs
{

class TraceEventSink : public Subscriber
{
  public:
    EventMask eventMask() const override;

    void onEvent(const RuntimeEvent &ev) override;

    /** The complete Chrome trace-event document accumulated so far. */
    std::string json() const;

    /** Write json() to @p path; false (with perror) on failure. */
    bool writeFile(const std::string &path) const;

    /** Drop everything recorded (reuse across runs). */
    void
    clear()
    {
        events_.clear();
        seq_ = 0;
    }

    /** Recorded trace-event count (metadata records included). */
    size_t size() const { return events_.size(); }

  private:
    /** Append one trace-event record on lane @p tid. @p ph is the
     *  Chrome phase ("B"/"E"/"i"/"M"); instant events get thread
     *  scope. The ordinal timestamp is appended here. */
    void push(const char *ph, uint64_t tid, const std::string &name,
              const std::string &args = "");

    std::vector<std::string> events_; ///< pre-rendered JSON objects
    uint64_t seq_ = 0;                ///< deterministic "timestamp"
};

} // namespace golite::obs

#endif // GOLITE_OBS_TRACE_EVENT_SINK_HH
