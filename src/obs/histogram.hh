/**
 * @file
 * obs::LatencyHistogram: a log-linear (HdrHistogram-style) latency
 * histogram for the soak harness's coordinated-omission-safe latency
 * measurements.
 *
 * Values bucket into power-of-two brackets split into 64 linear
 * sub-buckets, so any recorded value lands within 1/64 (~1.6%) of its
 * true magnitude while the whole structure stays a fixed ~3.7k-counter
 * array: record() is O(1) with no allocation (safe on the load
 * generator's hot path), merge() is element-wise addition (per-
 * connection histograms combine at end of run), and quantile() walks
 * the array once. Values below 64 are exact.
 */

#ifndef GOLITE_OBS_HISTOGRAM_HH
#define GOLITE_OBS_HISTOGRAM_HH

#include <array>
#include <cstdint>
#include <string>

namespace golite::obs
{

class LatencyHistogram
{
  public:
    /** Record one value (nanoseconds; negatives clamp to 0). */
    void record(int64_t value_ns);

    /** Add @p other's counts into this histogram. */
    void merge(const LatencyHistogram &other);

    uint64_t count() const { return count_; }

    /** Smallest / largest recorded value (0 when empty). */
    int64_t minValue() const { return count_ > 0 ? min_ : 0; }
    int64_t maxValue() const { return max_; }

    /** Arithmetic mean of recorded values (0 when empty). */
    int64_t meanValue() const;

    /**
     * Value at quantile @p q in [0,1]: the upper bound of the bucket
     * holding the ceil(q*count)-th smallest sample (clamped to the
     * recorded max), i.e. within 1/64 above the true quantile.
     */
    int64_t quantile(double q) const;

    /**
     * One-line JSON with fixed key order: count, minNs, meanNs, p50Ns,
     * p90Ns, p99Ns, p999Ns, maxNs.
     */
    std::string json() const;

  private:
    /** 64 exact unit buckets + 57 brackets x 64 sub-buckets. */
    static constexpr size_t kBuckets = 64 + 57 * 64;

    static size_t bucketIndex(int64_t v);
    static int64_t bucketUpper(size_t idx);

    std::array<uint64_t, kBuckets> buckets_{};
    uint64_t count_ = 0;
    int64_t min_ = INT64_MAX;
    int64_t max_ = 0;
    int64_t sum_ = 0;
};

} // namespace golite::obs

#endif // GOLITE_OBS_HISTOGRAM_HH
