#include "load/soak.hh"

#include <cstring>
#include <limits>
#include <random>

#include "base/panic.hh"
#include "channel/chan.hh"
#include "netpoll/netpoll.hh"
#include "obs/metrics.hh"
#include "runtime/scheduler.hh"
#include "sync/waitgroup.hh"

namespace golite::load
{
namespace
{

/** Frame: [u32 bodyLen][u64 reqId][u64 intendedNs][payload]. The
 *  length field counts the bytes after itself. */
constexpr size_t kLenBytes = 4;
constexpr size_t kBodyFixed = 16;

void
putU32(std::string &s, uint32_t v)
{
    char b[4];
    std::memcpy(b, &v, 4);
    s.append(b, 4);
}

void
putU64(std::string &s, uint64_t v)
{
    char b[8];
    std::memcpy(b, &v, 8);
    s.append(b, 8);
}

uint32_t
getU32(const char *p)
{
    uint32_t v;
    std::memcpy(&v, p, 4);
    return v;
}

uint64_t
getU64(const char *p)
{
    uint64_t v;
    std::memcpy(&v, p, 8);
    return v;
}

std::string
encodeFrame(uint64_t req_id, int64_t intended_ns, uint32_t payload_bytes)
{
    std::string f;
    f.reserve(kLenBytes + kBodyFixed + payload_bytes);
    putU32(f, static_cast<uint32_t>(kBodyFixed + payload_bytes));
    putU64(f, req_id);
    putU64(f, static_cast<uint64_t>(intended_ns));
    f.append(payload_bytes, 'x');
    return f;
}

/** Incremental frame splitter over the TCP byte stream. */
class FrameParser
{
  public:
    void
    feed(const std::string &bytes)
    {
        buf_.append(bytes);
    }

    /** Pop the next complete frame; false when more bytes are needed. */
    bool
    next(uint64_t *req_id, int64_t *intended_ns, std::string *frame)
    {
        if (buf_.size() - pos_ < kLenBytes)
            return compactAndWait();
        const uint32_t body = getU32(buf_.data() + pos_);
        if (buf_.size() - pos_ < kLenBytes + body)
            return compactAndWait();
        *req_id = getU64(buf_.data() + pos_ + kLenBytes);
        *intended_ns =
            static_cast<int64_t>(getU64(buf_.data() + pos_ + kLenBytes + 8));
        frame->assign(buf_, pos_, kLenBytes + body);
        pos_ += kLenBytes + body;
        return true;
    }

  private:
    bool
    compactAndWait()
    {
        if (pos_ > 0) {
            buf_.erase(0, pos_);
            pos_ = 0;
        }
        return false;
    }

    std::string buf_;
    size_t pos_ = 0;
};

/** Mutable state shared (single-threaded) between the generator and
 *  the per-connection client goroutines. */
struct ClientShared
{
    const SoakOptions *opts = nullptr;
    obs::LatencyHistogram hist;
    uint64_t sent = 0;
    uint64_t responses = 0;
    uint64_t dropped = 0;
    uint64_t connErrors = 0;
};

/** One client connection: its socket plus the open-loop send queue
 *  drained by the connection's writer goroutine ("" = shutdown). */
struct ClientConn
{
    netpoll::TcpConn conn;
    Chan<std::string> sendq;
};

constexpr size_t kClientQueue = 1024;
constexpr size_t kServerQueue = 256;

bool
isShutdownErr(const std::string &err)
{
    return err == "EOF" || err == "use of closed network connection";
}

/** Per-connection server loop: split frames, spawn one handler
 *  goroutine per request, echo responses through a writer goroutine. */
void
serveConn(netpoll::TcpConn conn, const SoakOptions &opts)
{
    auto replies = makeChan<std::string>(kServerQueue);
    go("soak-conn-writer", [conn, replies] {
        for (;;) {
            auto msg = replies.recv();
            if (!msg.ok || msg.value.empty())
                break;
            // A failed write means the peer is gone; keep draining so
            // parked handlers still complete.
            conn.write(msg.value);
        }
    });

    WaitGroup handlers;
    FrameParser parser;
    std::string bytes;
    for (;;) {
        auto res = conn.read(bytes);
        if (!res.ok())
            break;
        parser.feed(bytes);
        uint64_t req_id;
        int64_t intended_ns;
        std::string frame;
        while (parser.next(&req_id, &intended_ns, &frame)) {
            handlers.add(1);
            go("soak-handler", [&opts, &handlers, replies,
                                frame = std::move(frame)] {
                if (opts.fanout > 0) {
                    // Fan-out worker pattern: the handler joins its
                    // children before replying.
                    WaitGroup kids;
                    for (uint32_t i = 0; i < opts.fanout; ++i) {
                        kids.add(1);
                        go("soak-fanout", [&opts, &kids] {
                            if (opts.serviceTimeNs > 0)
                                gotime::sleep(opts.serviceTimeNs);
                            kids.done();
                        });
                    }
                    kids.wait();
                } else if (opts.serviceTimeNs > 0) {
                    gotime::sleep(opts.serviceTimeNs);
                }
                replies.send(frame);
                handlers.done();
            });
        }
    }
    // All in-flight handlers must finish (their replies enqueue) before
    // the sentinel stops the writer.
    handlers.wait();
    replies.send("");
    conn.close();
}

/** The open-loop arrival process: Poisson gaps at the (burst-phased)
 *  target rate, never blocking on a full send queue. */
void
generateArrivals(ClientShared &st, std::vector<ClientConn> &conns)
{
    const SoakOptions &opts = *st.opts;
    std::mt19937_64 rng(opts.seed);
    std::exponential_distribution<double> exp1(1.0);
    const int64_t start = gotime::now();
    int64_t intended = start;
    uint64_t req_id = 0;
    for (;;) {
        double rate = opts.targetRps;
        if (opts.burstEveryNs > 0 &&
            (intended - start) % opts.burstEveryNs < opts.burstLenNs)
            rate *= opts.burstMultiplier;
        rate = std::max(rate, 1e-3);
        const double gap_sec = exp1(rng) / rate;
        intended += std::max<int64_t>(
            static_cast<int64_t>(gap_sec * 1e9), 1);
        if (intended - start >= opts.durationNs)
            return;
        const int64_t now = gotime::now();
        if (intended > now)
            gotime::sleep(intended - now);
        // The intended stamp stays on the open-loop schedule even when
        // we are running behind — that is the CO correction.
        ClientConn &cc = conns[req_id % conns.size()];
        if (cc.sendq.trySend(
                encodeFrame(req_id, intended, opts.payloadBytes)))
            st.sent++;
        else
            st.dropped++;
        req_id++;
    }
}

} // namespace

bool
SoakResult::ok() const
{
    return report.completed && !report.panicked && report.leaked.empty() &&
           connErrors == 0 && responses == requestsSent;
}

SoakResult
runSoak(const SoakOptions &options)
{
    SoakResult result;
    ClientShared st;
    st.opts = &options;

    obs::MetricsSink metrics;
    RunOptions ro;
    ro.realTime = true;
    ro.reapFinished = true;
    ro.policy = SchedPolicy::Fifo;
    ro.seed = options.seed;
    ro.maxTicks = std::numeric_limits<uint64_t>::max();
    ro.subscribers = options.subscribers;
    ro.subscribers.push_back(&metrics);

    result.report = run(
        [&] {
            netpoll::Poller poller;
            auto ln = poller.listen(0);
            if (!ln)
                goPanic("soak: listen failed");

            WaitGroup wg;
            wg.add(1);
            go("soak-acceptor", [ln, &wg, &options] {
                for (;;) {
                    auto conn = ln.accept();
                    if (!conn)
                        break; // listener closed
                    wg.add(1);
                    go("soak-conn-reader", [conn, &wg, &options] {
                        serveConn(conn, options);
                        wg.done();
                    });
                }
                wg.done();
            });

            std::vector<ClientConn> conns;
            conns.reserve(options.connections);
            for (uint32_t i = 0; i < options.connections; ++i) {
                auto conn = poller.dial(ln.port());
                if (!conn) {
                    st.connErrors++;
                    continue;
                }
                conns.push_back(
                    {conn, makeChan<std::string>(kClientQueue)});
            }
            if (conns.empty())
                goPanic("soak: no connections established");

            for (ClientConn &cc : conns) {
                wg.add(2);
                go("soak-client-writer", [cc, &wg] {
                    for (;;) {
                        auto msg = cc.sendq.recv();
                        if (!msg.ok || msg.value.empty())
                            break;
                        cc.conn.write(msg.value);
                    }
                    wg.done();
                });
                go("soak-client-reader", [cc, &wg, &st] {
                    FrameParser parser;
                    std::string bytes;
                    for (;;) {
                        auto res = cc.conn.read(bytes);
                        if (!res.ok()) {
                            if (!isShutdownErr(res.err))
                                st.connErrors++;
                            break;
                        }
                        parser.feed(bytes);
                        uint64_t req_id;
                        int64_t intended_ns;
                        std::string frame;
                        while (parser.next(&req_id, &intended_ns,
                                           &frame)) {
                            st.hist.record(gotime::now() - intended_ns);
                            st.responses++;
                        }
                    }
                    wg.done();
                });
            }

            generateArrivals(st, conns);

            // Drain: every sent frame should come back; give up after
            // the timeout so a wedged run still reports what it saw.
            const int64_t deadline =
                gotime::now() + options.serviceTimeNs +
                options.drainTimeoutNs;
            while (st.responses < st.sent && st.connErrors == 0 &&
                   gotime::now() < deadline)
                gotime::sleep(5 * gotime::kMillisecond);

            for (ClientConn &cc : conns)
                cc.sendq.send(""); // stop writers
            for (ClientConn &cc : conns)
                cc.conn.close(); // wake parked readers
            ln.close();
            wg.wait();
        },
        ro);

    result.requestsSent = st.sent;
    result.responses = st.responses;
    result.dropped = st.dropped;
    result.connErrors = st.connErrors;
    result.latency = st.hist;
    result.peakLiveGoroutines = result.report.metrics.maxLiveGoroutines;
    result.goroutinesCreated = result.report.goroutinesCreated;
    result.wallSeconds =
        static_cast<double>(result.report.finalTimeNs) / 1e9;
    result.achievedRps =
        static_cast<double>(st.responses) /
        (static_cast<double>(options.durationNs) / 1e9);
    return result;
}

} // namespace golite::load
