/**
 * @file
 * load: an open-loop soak harness driving the netpoll reactor at
 * production-shaped concurrency.
 *
 * The generator schedules request arrivals from a Poisson process
 * (optionally modulated by periodic burst phases) and stamps each
 * frame with its *intended* send time, taken from the open-loop
 * schedule rather than from when the socket actually accepted the
 * bytes. Latency is measured against that stamp, so queueing delay
 * inflicted by a saturated server shows up in the histogram instead
 * of being silently absorbed — the coordinated-omission correction.
 *
 * The server is the Go idiom under study: one acceptor, one reader
 * and one writer goroutine per connection, and one goroutine per
 * request (plus optional fan-out children), each holding real stack
 * and timer state for its service time. Live-goroutine concurrency is
 * therefore arrival rate x service time x (1 + fanout), independent
 * of the (small) connection count — the knob bench_soak turns to
 * reach 100k..1M live goroutines.
 */

#ifndef GOLITE_LOAD_SOAK_HH
#define GOLITE_LOAD_SOAK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "gotime/time.hh"
#include "obs/histogram.hh"
#include "runtime/report.hh"

namespace golite::load
{

/** Configuration for one runSoak(). */
struct SoakOptions
{
    /** Concurrent TCP connections (requests round-robin over them). */
    uint32_t connections = 16;

    /** Open-loop Poisson arrival rate, requests/second. */
    double targetRps = 5000;

    /** Length of the arrival window (drain time comes on top). */
    gotime::Duration durationNs = gotime::kSecond;

    /**
     * Periodic burst phases: for the first @c burstLenNs of every
     * @c burstEveryNs, the arrival rate is multiplied by
     * @c burstMultiplier. burstEveryNs == 0 disables bursts.
     */
    gotime::Duration burstEveryNs = 0;
    gotime::Duration burstLenNs = 0;
    double burstMultiplier = 1.0;

    /** Simulated per-request work: the handler sleeps this long. */
    gotime::Duration serviceTimeNs = 50 * gotime::kMillisecond;

    /** Extra worker goroutines spawned per request, each sleeping the
     *  service time; the handler joins them before replying. */
    uint32_t fanout = 0;

    /** Request payload size (response echoes it back). */
    uint32_t payloadBytes = 16;

    /** Seed for the arrival-process RNG. */
    uint64_t seed = 1;

    /** Extra time past the arrival window to wait for stragglers. */
    gotime::Duration drainTimeoutNs = 2 * gotime::kSecond;

    /** Detectors/sinks to attach to the run (a MetricsSink is always
     *  attached internally; do not add another). */
    std::vector<Subscriber *> subscribers;
};

/** Outcome of one soak run. */
struct SoakResult
{
    uint64_t requestsSent = 0; ///< frames actually written to sockets
    uint64_t responses = 0;    ///< echo replies received and timed
    /** Arrivals shed because a connection's send queue was full — the
     *  open-loop generator never blocks on backpressure. */
    uint64_t dropped = 0;
    uint64_t connErrors = 0; ///< connections that died mid-run

    /** End-to-end latency vs intended send time (CO-corrected). */
    obs::LatencyHistogram latency;

    /** Live-goroutine high-water mark during the run. */
    uint64_t peakLiveGoroutines = 0;
    uint64_t goroutinesCreated = 0;

    double wallSeconds = 0;   ///< full run wall time, including drain
    double achievedRps = 0;   ///< responses / arrival-window seconds

    /** Full runtime report (metrics, leaks, detector output). */
    RunReport report;

    /** Every arrival was answered and the run finished cleanly. */
    bool ok() const;
};

/**
 * Run one open-loop soak: spin up the echo server and the generator
 * inside a realTime + reapFinished golite run, drive @p options'
 * arrival schedule, and collect latency/goroutine statistics.
 */
SoakResult runSoak(const SoakOptions &options);

} // namespace golite::load

#endif // GOLITE_LOAD_SOAK_HH
