#include "waitgraph/waitgraph.hh"

#include <algorithm>
#include <sstream>

namespace golite::waitgraph
{

void
Detector::reset()
{
    // clear() keeps bucket arrays allocated, so a reused detector's
    // steady state does no hashing-table allocation at all.
    gos_.clear();
    locks_.clear();
    wgCounts_.clear();
    resourceIds_.clear();
    reported_.clear();
    certain_.clear();
}

EventMask
Detector::eventMask() const
{
    return eventBit(EventKind::GoSpawn) |
           eventBit(EventKind::GoFinish) |
           eventBit(EventKind::GoPark) |
           eventBit(EventKind::GoUnpark) |
           eventBit(EventKind::LockAcquire) |
           eventBit(EventKind::LockRelease) |
           eventBit(EventKind::SelectBlock) |
           eventBit(EventKind::WgDelta);
}

void
Detector::onEvent(const RuntimeEvent &ev)
{
    switch (ev.kind) {
      case EventKind::GoSpawn:
        goroutineCreated(ev.a, ev.gid, *ev.name);
        break;
      case EventKind::GoFinish:
        // Teardown unwinds are not real finishes: keep the
        // pre-teardown snapshot for the end-of-run leak analysis.
        if (!ev.flag)
            goroutineFinished(ev.gid);
        break;
      case EventKind::GoPark:
        parked(ev.gid, ev.reason, ev.obj);
        break;
      case EventKind::GoUnpark:
        unparked(ev.gid);
        break;
      case EventKind::LockAcquire:
        lockAcquired(ev.obj, ev.gid, ev.flag);
        break;
      case EventKind::LockRelease:
        lockReleased(ev.obj, ev.gid, ev.flag);
        break;
      case EventKind::SelectBlock:
        selectBlocked(ev.gid, *ev.waits);
        break;
      case EventKind::WgDelta:
        wgCounter(ev.obj, static_cast<int>(ev.a));
        break;
      default:
        break;
    }
}

void
Detector::goroutineCreated(uint64_t parent, uint64_t child,
                           const std::string &label)
{
    (void)parent;
    GoInfo &g = gos_[child];
    g.label = label;
    g.alive = true;
}

void
Detector::goroutineFinished(uint64_t gid)
{
    GoInfo &g = gos_[gid];
    g.alive = false;
    g.blocked = false;
    g.obj = nullptr;
    g.selectCases.clear();

    // A goroutine that exits while holding a lock orphans it: in Go
    // only conventionally-correct code unlocks from another
    // goroutine, so everyone already parked on the lock is stuck.
    for (auto &[lock, info] : locks_) {
        const bool held_by_dead =
            info.writer == gid ||
            std::find(info.readers.begin(), info.readers.end(), gid) !=
                info.readers.end();
        if (!held_by_dead)
            continue;
        std::vector<uint64_t> waiters;
        for (auto &[wgid, wg] : gos_) {
            if (wg.blocked && wg.obj == lock && isLockWait(wg.reason) &&
                !reported_.count(wgid))
                waiters.push_back(wgid);
        }
        if (waiters.empty())
            continue;
        std::ostringstream chain;
        chain << resourceName(lock) << " still held by exited "
              << goName(gid);
        reportCertain(DeadlockCause::LockOrphaned, std::move(waiters),
                      gos_[waiters.empty() ? gid : waiters[0]].reason,
                      chain.str());
    }
}

void
Detector::parked(uint64_t gid, WaitReason reason, const void *obj)
{
    GoInfo &g = gos_[gid];
    g.blocked = true;
    g.reason = reason;
    g.obj = obj;
    if (reason != WaitReason::Select)
        g.selectCases.clear();

    switch (reason) {
      case WaitReason::ChanSendNil:
      case WaitReason::ChanRecvNil:
        // Nil-channel operations block forever by definition.
        if (!reported_.count(gid))
            reportCertain(DeadlockCause::ChanNilOp, {gid}, reason,
                          "operation on a nil channel can never "
                          "complete");
        break;
      case WaitReason::Select:
        // A select parked with no wait object has no live case
        // (select{} or all-nil channels): certain forever-block.
        if (obj == nullptr && !reported_.count(gid))
            reportCertain(DeadlockCause::SelectStuck, {gid}, reason,
                          "select with no live case (empty or "
                          "all-nil)");
        break;
      case WaitReason::MutexLock:
      case WaitReason::RWMutexRLock:
      case WaitReason::RWMutexWLock:
        checkLockDeadlock(gid);
        break;
      default:
        break;
    }
}

void
Detector::unparked(uint64_t gid)
{
    GoInfo &g = gos_[gid];
    g.blocked = false;
    g.reason = WaitReason::None;
    g.obj = nullptr;
    g.selectCases.clear();
}

void
Detector::lockAcquired(const void *lock, uint64_t gid, bool is_write)
{
    LockInfo &info = locks_[lock];
    if (is_write)
        info.writer = gid;
    else
        info.readers.push_back(gid);
}

void
Detector::lockReleased(const void *lock, uint64_t gid, bool was_write)
{
    LockInfo &info = locks_[lock];
    if (was_write) {
        // Cleared unconditionally: Go permits unlocking from a
        // goroutine other than the locker.
        info.writer = 0;
        return;
    }
    auto it = std::find(info.readers.begin(), info.readers.end(), gid);
    if (it != info.readers.end())
        info.readers.erase(it);
    else if (!info.readers.empty())
        info.readers.pop_back(); // cross-goroutine RUnlock
}

void
Detector::selectBlocked(uint64_t gid,
                        const std::vector<SelectWait> &cases)
{
    gos_[gid].selectCases = cases;
}

void
Detector::wgCounter(const void *wg, int count)
{
    wgCounts_[wg] = count;
}

bool
Detector::isLockWait(WaitReason reason)
{
    return reason == WaitReason::MutexLock ||
           reason == WaitReason::RWMutexRLock ||
           reason == WaitReason::RWMutexWLock;
}

std::vector<uint64_t>
Detector::lockTargets(uint64_t gid) const
{
    std::vector<uint64_t> targets;
    auto git = gos_.find(gid);
    if (git == gos_.end() || !git->second.blocked)
        return targets;
    const GoInfo &g = git->second;
    auto lit = locks_.find(g.obj);
    const LockInfo *info =
        lit != locks_.end() ? &lit->second : nullptr;

    switch (g.reason) {
      case WaitReason::MutexLock:
      case WaitReason::RWMutexWLock:
        // Waits for the write holder and every read holder.
        if (info) {
            if (info->writer != 0)
                targets.push_back(info->writer);
            for (uint64_t r : info->readers)
                targets.push_back(r);
        }
        break;
      case WaitReason::RWMutexRLock:
        // Writer priority: a read wait is blocked by the active
        // writer and by every queued writer ahead of it.
        if (info && info->writer != 0)
            targets.push_back(info->writer);
        for (const auto &[ogid, og] : gos_) {
            if (og.blocked && og.obj == g.obj &&
                og.reason == WaitReason::RWMutexWLock)
                targets.push_back(ogid);
        }
        break;
      default:
        break;
    }
    // Dedupe (a recursive read holder appears twice).
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()),
                  targets.end());
    targets.erase(std::remove(targets.begin(), targets.end(), gid),
                  targets.end());
    // A goroutine waiting on a lock it holds itself is a self-cycle;
    // keep that information by re-adding gid at the front.
    auto self_holds = [&]() {
        if (!info)
            return false;
        if (info->writer == gid)
            return true;
        return std::find(info->readers.begin(), info->readers.end(),
                         gid) != info->readers.end();
    };
    if (g.reason != WaitReason::RWMutexRLock && self_holds())
        targets.insert(targets.begin(), gid);
    return targets;
}

bool
Detector::findCycle(uint64_t cur, uint64_t start,
                    std::vector<uint64_t> &path,
                    std::unordered_set<uint64_t> &visited) const
{
    for (uint64_t t : lockTargets(cur)) {
        if (t == start)
            return true;
        if (visited.count(t))
            continue;
        auto it = gos_.find(t);
        if (it == gos_.end() || !it->second.blocked ||
            !isLockWait(it->second.reason))
            continue; // runnable/running holder: cannot be in a cycle
        visited.insert(t);
        path.push_back(t);
        if (findCycle(t, start, path, visited))
            return true;
        path.pop_back();
    }
    return false;
}

void
Detector::checkLockDeadlock(uint64_t gid)
{
    if (reported_.count(gid))
        return;
    const GoInfo &g = gos_[gid];

    // Certain case 1: some holder already exited (orphaned lock).
    for (uint64_t t : lockTargets(gid)) {
        auto it = gos_.find(t);
        if (it != gos_.end() && !it->second.alive) {
            std::ostringstream chain;
            chain << resourceName(g.obj) << " still held by exited "
                  << goName(t);
            reportCertain(DeadlockCause::LockOrphaned, {gid}, g.reason,
                          chain.str());
            return;
        }
    }

    // Certain case 2: a cycle of blocked goroutines over lock edges
    // (includes the self-cycle of a re-locked non-reentrant mutex).
    std::vector<uint64_t> path;
    std::unordered_set<uint64_t> visited{gid};
    if (!findCycle(gid, gid, path, visited))
        return;

    std::vector<uint64_t> members;
    members.push_back(gid);
    members.insert(members.end(), path.begin(), path.end());
    std::ostringstream chain;
    for (size_t i = 0; i < members.size(); ++i) {
        const GoInfo &m = gos_[members[i]];
        if (i)
            chain << " <- ";
        chain << goName(members[i]) << " waits "
              << resourceName(m.obj);
    }
    chain << " <- " << goName(gid) << " (cycle)";
    reportCertain(DeadlockCause::LockCycle, std::move(members),
                  g.reason, chain.str());
}

void
Detector::reportCertain(DeadlockCause cause,
                        std::vector<uint64_t> goids, WaitReason reason,
                        std::string chain)
{
    for (uint64_t gid : goids)
        reported_.insert(gid);
    certain_.push_back(PartialDeadlock{true, cause, std::move(goids),
                                       reason, std::move(chain)});
}

std::string
Detector::goName(uint64_t gid) const
{
    std::ostringstream os;
    os << "g" << gid;
    auto it = gos_.find(gid);
    if (it != gos_.end() && !it->second.label.empty())
        os << " [" << it->second.label << "]";
    return os.str();
}

std::string
Detector::resourceName(const void *obj)
{
    auto [it, inserted] = resourceIds_.emplace(
        obj, static_cast<int>(resourceIds_.size()) + 1);
    (void)inserted;
    return "lock#" + std::to_string(it->second);
}

PartialDeadlock
Detector::classifyLeak(const LeakInfo &leak)
{
    PartialDeadlock pd;
    pd.certain = false;
    pd.goids = {leak.goid};
    pd.reason = leak.reason;
    const GoInfo &g = gos_[leak.goid];
    std::ostringstream chain;

    switch (leak.reason) {
      case WaitReason::MutexLock:
      case WaitReason::RWMutexRLock:
      case WaitReason::RWMutexWLock: {
        pd.cause = DeadlockCause::LockChain;
        bool named = false;
        for (uint64_t t : lockTargets(leak.goid)) {
            auto it = gos_.find(t);
            if (it == gos_.end())
                continue;
            if (!it->second.alive) {
                pd.cause = DeadlockCause::LockOrphaned;
                chain << resourceName(g.obj) << " held by exited "
                      << goName(t);
            } else {
                chain << resourceName(g.obj) << " held by "
                      << goName(t) << " (itself blocked on "
                      << waitReasonName(it->second.reason) << ")";
            }
            named = true;
            break;
        }
        if (!named)
            chain << "blocked on " << resourceName(g.obj)
                  << " with no recorded holder";
        break;
      }
      case WaitReason::ChanSendNil:
      case WaitReason::ChanRecvNil:
        pd.cause = DeadlockCause::ChanNilOp;
        chain << "operation on a nil channel";
        break;
      case WaitReason::ChanSend:
        pd.cause = DeadlockCause::ChanNoReceiver;
        chain << "no goroutine left to receive";
        break;
      case WaitReason::ChanRecv:
        pd.cause = DeadlockCause::ChanNoSender;
        chain << "no goroutine left to send or close";
        break;
      case WaitReason::Select:
        pd.cause = DeadlockCause::SelectStuck;
        chain << "none of " << g.selectCases.size()
              << " case(s) can ever fire";
        break;
      case WaitReason::WaitGroupWait: {
        pd.cause = DeadlockCause::WaitGroupStuck;
        auto it = wgCounts_.find(g.obj);
        chain << "counter stuck at "
              << (it != wgCounts_.end() ? it->second : -1)
              << " with no live goroutine to call Done";
        break;
      }
      case WaitReason::CondWait:
        pd.cause = DeadlockCause::CondStuck;
        chain << "no Signal/Broadcast ever arrived";
        break;
      case WaitReason::PipeRead:
        pd.cause = DeadlockCause::PipeStuck;
        chain << "pipe writer gone without closing";
        break;
      case WaitReason::PipeWrite:
        pd.cause = DeadlockCause::PipeStuck;
        chain << "pipe reader gone without closing";
        break;
      case WaitReason::Sleep:
        pd.cause = DeadlockCause::SleepOrphan;
        chain << "still sleeping when the program exited";
        break;
      case WaitReason::NetIO:
        pd.cause = DeadlockCause::NetIoStuck;
        chain << "socket never became ready (peer gone without "
                 "closing?)";
        break;
      default:
        pd.cause = DeadlockCause::Unknown;
        chain << "blocked on " << waitReasonName(leak.reason);
        break;
    }
    pd.chain = chain.str();
    return pd;
}

void
Detector::finalizeRun(RunReport &report)
{
    for (const PartialDeadlock &pd : certain_)
        report.partialDeadlocks.push_back(pd);
    for (const LeakInfo &leak : report.leaked) {
        if (reported_.count(leak.goid))
            continue; // already covered by a certain mid-run report
        report.partialDeadlocks.push_back(classifyLeak(leak));
    }
}

} // namespace golite::waitgraph
