/**
 * @file
 * Online wait-for-graph partial-deadlock detector.
 *
 * The paper's Table 8 shows Go's built-in detector firing only when
 * *every* goroutine is asleep — 2 of the 21 reproduced blocking bugs.
 * This detector closes that gap at runtime: it maintains a bipartite
 * wait-for graph of goroutines and sync resources from runtime bus
 * events and reports partial deadlocks in two layers:
 *
 *  1. Mid-run, with certainty, the moment the condition forms:
 *     - a cycle of blocked goroutines over lock-ownership edges
 *       (Mutex / RWMutex, including writer-priority read waits),
 *     - a goroutine blocked on a lock whose holder exited,
 *     - an operation on a nil channel, or an empty/all-nil select.
 *     These are sound: each implies the waiters can never run again
 *     (assuming locks are released by their holders, Go's universal
 *     convention), so clean programs produce zero mid-run reports.
 *
 *  2. At end of run, a post-mortem orphan analysis that classifies
 *     every leaked goroutine by cause: lock chains, channels with no
 *     live counterpart, stuck selects / WaitGroups / Conds / pipes.
 *
 * Plug an instance into RunOptions::subscribers — the exact analogue
 * of running the race::Detector there; the two masks barely overlap,
 * so each sees only its own slice of the event stream.
 */

#ifndef GOLITE_WAITGRAPH_WAITGRAPH_HH
#define GOLITE_WAITGRAPH_WAITGRAPH_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "runtime/events.hh"
#include "runtime/report.hh"

namespace golite::waitgraph
{

class Detector : public Subscriber
{
  public:
    Detector() = default;

    /** Clear all per-run state so the instance can be reused by the
     *  next run — including the lock naming counters, so "lock#N"
     *  labels (and thus report text and fingerprints) match a fresh
     *  instance exactly. Hash-table bucket capacity is retained, so
     *  steady-state reuse allocates nothing. */
    void reset();

    // Subscriber interface -----------------------------------------
    EventMask eventMask() const override;
    void onEvent(const RuntimeEvent &ev) override;
    void finalizeRun(RunReport &report) override;

    // Event handlers (public so the detector can also be driven
    // directly by unit tests).
    void goroutineCreated(uint64_t parent, uint64_t child,
                          const std::string &label);
    void goroutineFinished(uint64_t gid);
    void parked(uint64_t gid, WaitReason reason, const void *obj);
    void unparked(uint64_t gid);
    void lockAcquired(const void *lock, uint64_t gid, bool is_write);
    void lockReleased(const void *lock, uint64_t gid, bool was_write);
    void selectBlocked(uint64_t gid,
                       const std::vector<SelectWait> &cases);
    void wgCounter(const void *wg, int count);

    /** Mid-run certain reports accumulated so far. */
    const std::vector<PartialDeadlock> &certainReports() const
    {
        return certain_;
    }

  private:
    struct GoInfo
    {
        std::string label;
        bool alive = true;
        bool blocked = false;
        WaitReason reason = WaitReason::None;
        const void *obj = nullptr;
        /** Channel cases a blocked select is parked on. */
        std::vector<SelectWait> selectCases;
    };

    struct LockInfo
    {
        uint64_t writer = 0;           ///< write holder (0 = none)
        std::vector<uint64_t> readers; ///< read holders (dups allowed)
    };

    /** True for the three lock-wait reasons. */
    static bool isLockWait(WaitReason reason);

    /** Goroutines @p gid (blocked on a lock) is waiting for. */
    std::vector<uint64_t> lockTargets(uint64_t gid) const;

    /** DFS over lock edges looking for a cycle back to @p start. */
    bool findCycle(uint64_t cur, uint64_t start,
                   std::vector<uint64_t> &path,
                   std::unordered_set<uint64_t> &visited) const;

    /** Run the certain checks for a goroutine that just lock-parked. */
    void checkLockDeadlock(uint64_t gid);

    void reportCertain(DeadlockCause cause,
                       std::vector<uint64_t> goids, WaitReason reason,
                       std::string chain);

    /** "g4 [applier]" (label omitted when empty). */
    std::string goName(uint64_t gid) const;

    /** Stable short name for a lock object ("lock#1", ...). */
    std::string resourceName(const void *obj);

    /** End-of-run classification of one leaked goroutine. */
    PartialDeadlock classifyLeak(const LeakInfo &leak);

    std::unordered_map<uint64_t, GoInfo> gos_;
    std::unordered_map<const void *, LockInfo> locks_;
    std::unordered_map<const void *, int> wgCounts_;
    std::unordered_map<const void *, int> resourceIds_;
    /** Goroutines already named in a certain report (dedupe). */
    std::unordered_set<uint64_t> reported_;
    std::vector<PartialDeadlock> certain_;
};

} // namespace golite::waitgraph

#endif // GOLITE_WAITGRAPH_WAITGRAPH_HH
