#include "scanner/lexer.hh"

#include <cctype>

namespace golite::scanner
{

Lexer::Lexer(std::string_view source) : source_(source) {}

void
Lexer::advance()
{
    if (pos_ < source_.size() && source_[pos_] == '\n')
        line_++;
    pos_++;
}

void
Lexer::skipWhitespaceAndComments()
{
    while (pos_ < source_.size()) {
        const char c = source_[pos_];
        if (std::isspace(static_cast<unsigned char>(c))) {
            advance();
            continue;
        }
        if (c == '/' && pos_ + 1 < source_.size()) {
            if (source_[pos_ + 1] == '/') {
                while (pos_ < source_.size() && source_[pos_] != '\n')
                    advance();
                continue;
            }
            if (source_[pos_ + 1] == '*') {
                advance();
                advance();
                while (pos_ + 1 < source_.size() &&
                       !(source_[pos_] == '*' &&
                         source_[pos_ + 1] == '/')) {
                    advance();
                }
                if (pos_ + 2 <= source_.size()) {
                    advance();
                    advance();
                }
                continue;
            }
        }
        break;
    }
}

Token
Lexer::next()
{
    skipWhitespaceAndComments();
    if (pos_ >= source_.size())
        return {TokenKind::EndOfFile, "", line_};

    const char c = source_[pos_];
    const size_t token_line = line_;

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        const size_t start = pos_;
        while (pos_ < source_.size() &&
               (std::isalnum(static_cast<unsigned char>(source_[pos_])) ||
                source_[pos_] == '_')) {
            pos_++;
        }
        return {TokenKind::Identifier,
                std::string(source_.substr(start, pos_ - start)),
                token_line};
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
        const size_t start = pos_;
        while (pos_ < source_.size() &&
               (std::isalnum(static_cast<unsigned char>(source_[pos_])) ||
                source_[pos_] == '.')) {
            pos_++;
        }
        return {TokenKind::Number,
                std::string(source_.substr(start, pos_ - start)),
                token_line};
    }

    if (c == '"' || c == '`') {
        const char quote = c;
        advance();
        while (pos_ < source_.size() && source_[pos_] != quote) {
            if (quote == '"' && source_[pos_] == '\\')
                advance();
            advance();
        }
        if (pos_ < source_.size())
            advance();
        return {TokenKind::String, "", token_line};
    }

    if (c == '<' && pos_ + 1 < source_.size() &&
        source_[pos_ + 1] == '-') {
        pos_ += 2;
        return {TokenKind::Arrow, "<-", token_line};
    }

    pos_++;
    return {TokenKind::Punct, std::string(1, c), token_line};
}

std::vector<Token>
Lexer::tokenize(std::string_view source)
{
    Lexer lexer(source);
    std::vector<Token> tokens;
    for (;;) {
        Token token = lexer.next();
        if (token.kind == TokenKind::EndOfFile)
            break;
        tokens.push_back(std::move(token));
    }
    return tokens;
}

} // namespace golite::scanner
