#include "scanner/lint.hh"

#include <set>

#include "scanner/lexer.hh"

namespace golite::scanner
{

namespace
{

/** A loop variable visible at some brace depth. */
struct LoopVar
{
    std::string name;
    int depth; ///< brace depth of the loop body it belongs to
};

bool
isIdent(const std::vector<Token> &tokens, size_t i, const char *text)
{
    return i < tokens.size() &&
           tokens[i].kind == TokenKind::Identifier &&
           tokens[i].text == text;
}

bool
isPunct(const std::vector<Token> &tokens, size_t i, char c)
{
    return i < tokens.size() && tokens[i].kind == TokenKind::Punct &&
           tokens[i].text[0] == c;
}

/**
 * Collect the iteration variables of a `for` header starting after
 * the `for` keyword: handles `for i := ...`, `for i, v := range ...`
 * and leaves other forms (`for cond {`) without variables.
 */
std::vector<std::string>
parseForHeaderVars(const std::vector<Token> &tokens, size_t i)
{
    std::vector<std::string> vars;
    std::vector<std::string> pending;
    // Walk until `{`, collecting IDENT[, IDENT] := patterns.
    while (i < tokens.size() && !isPunct(tokens, i, '{')) {
        if (tokens[i].kind == TokenKind::Identifier) {
            pending.push_back(tokens[i].text);
            // Skip the blank identifier.
            if (pending.back() == "_")
                pending.back().clear();
            if (isPunct(tokens, i + 1, ',')) {
                i += 2;
                continue;
            }
            if (isPunct(tokens, i + 1, ':') &&
                isPunct(tokens, i + 2, '=')) {
                for (const std::string &name : pending) {
                    if (!name.empty())
                        vars.push_back(name);
                }
                return vars;
            }
        }
        pending.clear();
        i++;
    }
    return vars;
}

/** Parameter names of a `func (a T, b U)` literal header. */
std::set<std::string>
parseParamNames(const std::vector<Token> &tokens, size_t &i)
{
    std::set<std::string> params;
    if (!isPunct(tokens, i, '('))
        return params;
    i++; // past '('
    bool expect_name = true;
    while (i < tokens.size() && !isPunct(tokens, i, ')')) {
        if (tokens[i].kind == TokenKind::Identifier && expect_name) {
            params.insert(tokens[i].text);
            expect_name = false; // the type follows
        } else if (isPunct(tokens, i, ',')) {
            expect_name = true;
        }
        i++;
    }
    if (i < tokens.size())
        i++; // past ')'
    return params;
}

} // namespace

std::vector<CaptureFinding>
lintAnonymousCaptures(std::string_view source)
{
    const std::vector<Token> tokens = Lexer::tokenize(source);
    std::vector<CaptureFinding> findings;

    int depth = 0;
    std::vector<LoopVar> loops;
    // `for` headers seen at the current position whose `{` has not
    // opened yet: maps the brace depth they will open into.
    std::vector<std::pair<int, std::vector<std::string>>> pendingLoops;

    for (size_t i = 0; i < tokens.size(); ++i) {
        const Token &tok = tokens[i];

        if (tok.kind == TokenKind::Punct && tok.text[0] == '{') {
            depth++;
            // Attach any pending loop vars to this body depth.
            for (auto it = pendingLoops.begin();
                 it != pendingLoops.end();) {
                if (it->first == depth - 1) {
                    for (const std::string &name : it->second)
                        loops.push_back(LoopVar{name, depth});
                    it = pendingLoops.erase(it);
                } else {
                    ++it;
                }
            }
            continue;
        }
        if (tok.kind == TokenKind::Punct && tok.text[0] == '}') {
            // Loop variables of this body go out of scope.
            for (auto it = loops.begin(); it != loops.end();) {
                if (it->depth == depth)
                    it = loops.erase(it);
                else
                    ++it;
            }
            depth--;
            continue;
        }

        if (isIdent(tokens, i, "for")) {
            auto vars = parseForHeaderVars(tokens, i + 1);
            if (!vars.empty())
                pendingLoops.push_back({depth, std::move(vars)});
            continue;
        }

        // The pattern of interest: `go func (params) { body }`.
        if (!isIdent(tokens, i, "go") || !isIdent(tokens, i + 1, "func"))
            continue;
        if (loops.empty())
            continue; // not inside any loop: nothing to capture

        const size_t go_line = tok.line;
        size_t j = i + 2;
        std::set<std::string> shadowed = parseParamNames(tokens, j);

        // Body: from the `{` to its matching `}`.
        if (!isPunct(tokens, j, '{'))
            continue;
        int body_depth = 0;
        std::set<std::string> flagged;
        for (; j < tokens.size(); ++j) {
            if (isPunct(tokens, j, '{')) {
                body_depth++;
                continue;
            }
            if (isPunct(tokens, j, '}')) {
                body_depth--;
                if (body_depth == 0)
                    break;
                continue;
            }
            if (tokens[j].kind != TokenKind::Identifier)
                continue;
            const std::string &name = tokens[j].text;
            if (shadowed.count(name) || flagged.count(name))
                continue;
            for (const LoopVar &lv : loops) {
                if (lv.name == name) {
                    findings.push_back(CaptureFinding{go_line, name});
                    flagged.insert(name);
                    break;
                }
            }
        }
        i = j; // resume after the goroutine body
    }
    return findings;
}

} // namespace golite::scanner
