/**
 * @file
 * The usage counter: replays the paper's static measurements over a
 * token stream — goroutine creation sites (Table 2) and concurrency
 * primitive usages by category (Table 4, Figures 2 and 3).
 */

#ifndef GOLITE_SCANNER_COUNTER_HH
#define GOLITE_SCANNER_COUNTER_HH

#include <cstddef>
#include <string_view>

namespace golite::scanner
{

/** Counted occurrences in one source blob. */
struct UsageCounts
{
    // Goroutine creation sites (Table 2).
    size_t goAnonymous = 0; ///< `go func(...) ... {`
    size_t goNamed = 0;     ///< `go f(...)` / `go pkg.f(...)`

    // Concurrency primitive usages (Table 4 categories).
    size_t mutex = 0;     ///< sync.Mutex + sync.RWMutex
    size_t atomicOps = 0; ///< atomic.*
    size_t once = 0;      ///< sync.Once
    size_t waitGroup = 0; ///< sync.WaitGroup
    size_t cond = 0;      ///< sync.Cond
    size_t channel = 0;   ///< chan type syntax
    size_t misc = 0;      ///< sync.Map, sync.Pool, ...

    // C-style concurrency (for the gRPC-C comparison).
    size_t threadCreation = 0; ///< pthread_create / thd_new
    size_t cLock = 0;          ///< mu_lock / pthread_mutex_*

    size_t lines = 0; ///< physical source lines

    size_t
    goSites() const
    {
        return goAnonymous + goNamed;
    }

    size_t
    sharedMemoryPrimitives() const
    {
        return mutex + atomicOps + once + waitGroup + cond;
    }

    size_t
    messagePassingPrimitives() const
    {
        return channel + misc;
    }

    size_t
    totalPrimitives() const
    {
        return sharedMemoryPrimitives() + messagePassingPrimitives();
    }

    /** Per-KLOC density helper. */
    double
    perKloc(size_t count) const
    {
        return lines == 0 ? 0.0
                          : 1000.0 * static_cast<double>(count) /
                                static_cast<double>(lines);
    }

    UsageCounts &operator+=(const UsageCounts &other);
};

/** Scan one source blob (Go or C surface syntax). */
UsageCounts countUsage(std::string_view source);

} // namespace golite::scanner

#endif // GOLITE_SCANNER_COUNTER_HH
