#include "scanner/counter.hh"

#include <algorithm>

#include "scanner/lexer.hh"

namespace golite::scanner
{

UsageCounts &
UsageCounts::operator+=(const UsageCounts &other)
{
    goAnonymous += other.goAnonymous;
    goNamed += other.goNamed;
    mutex += other.mutex;
    atomicOps += other.atomicOps;
    once += other.once;
    waitGroup += other.waitGroup;
    cond += other.cond;
    channel += other.channel;
    misc += other.misc;
    threadCreation += other.threadCreation;
    cLock += other.cLock;
    lines += other.lines;
    return *this;
}

UsageCounts
countUsage(std::string_view source)
{
    UsageCounts counts;
    counts.lines = static_cast<size_t>(
        std::count(source.begin(), source.end(), '\n'));

    const std::vector<Token> tokens = Lexer::tokenize(source);
    auto ident = [&tokens](size_t i, const char *text) {
        return i < tokens.size() &&
               tokens[i].kind == TokenKind::Identifier &&
               tokens[i].text == text;
    };
    auto punct = [&tokens](size_t i, char c) {
        return i < tokens.size() && tokens[i].kind == TokenKind::Punct &&
               tokens[i].text[0] == c;
    };

    for (size_t i = 0; i < tokens.size(); ++i) {
        const Token &tok = tokens[i];
        if (tok.kind != TokenKind::Identifier)
            continue;

        // Goroutine creation sites.
        if (tok.text == "go") {
            if (ident(i + 1, "func")) {
                counts.goAnonymous++;
            } else if (i + 1 < tokens.size() &&
                       tokens[i + 1].kind == TokenKind::Identifier) {
                counts.goNamed++;
            }
            continue;
        }

        // sync.<Type> usages.
        if (tok.text == "sync" && punct(i + 1, '.')) {
            if (i + 2 >= tokens.size())
                continue;
            const std::string &type = tokens[i + 2].text;
            if (type == "Mutex" || type == "RWMutex")
                counts.mutex++;
            else if (type == "Once")
                counts.once++;
            else if (type == "WaitGroup")
                counts.waitGroup++;
            else if (type == "Cond" || type == "NewCond")
                counts.cond++;
            else if (type == "Map" || type == "Pool")
                counts.misc++;
            continue;
        }

        // atomic.<Op> usages.
        if (tok.text == "atomic" && punct(i + 1, '.')) {
            counts.atomicOps++;
            continue;
        }

        // chan type syntax (declarations and make(chan ...)).
        if (tok.text == "chan") {
            counts.channel++;
            continue;
        }

        // C-side markers for the gRPC-C comparison.
        if (tok.text == "pthread_create" || tok.text == "thd_new" ||
            tok.text == "gpr_thd_new") {
            counts.threadCreation++;
            continue;
        }
        if (tok.text == "pthread_mutex_lock" ||
            tok.text == "pthread_mutex_unlock" || tok.text == "mu_lock" ||
            tok.text == "gpr_mu_lock" || tok.text == "gpr_mu_unlock") {
            counts.cLock++;
            continue;
        }
    }
    return counts;
}

} // namespace golite::scanner
