/**
 * @file
 * Synthetic source-corpus generator.
 *
 * The paper measured six proprietary-scale GitHub codebases that are
 * not available offline; this module substitutes them with generated
 * Go-surface-syntax corpora whose concurrency-construct densities are
 * seeded from the paper's published per-app statistics (Tables 1, 2
 * and 4). The *measurement pipeline stays real*: the lexer/counter
 * actually scans the generated text, so Tables 2 and 4 and Figures
 * 2/3 are reproduced by measurement, not by echoing constants.
 */

#ifndef GOLITE_SCANNER_GENERATOR_HH
#define GOLITE_SCANNER_GENERATOR_HH

#include <cstdint>
#include <string>
#include <vector>

namespace golite::scanner
{

/** Language surface of a generated corpus. */
enum class Lang
{
    Go,
    C,
};

/** Target densities for one application's corpus. */
struct AppProfile
{
    std::string name;
    Lang lang = Lang::Go;

    /** Project size in KLOC (Table 1) and the sample size we
     *  actually generate for measurement. */
    double projectKloc = 100;
    double sampleKloc = 40;

    /** Goroutine (or thread) creation sites per KLOC (Table 2). */
    double goSitesPerKloc = 0.5;
    /** Fraction of creation sites using anonymous functions. */
    double anonymousShare = 0.5;

    /** Concurrency primitive usages per KLOC. */
    double primitivesPerKloc = 4.0;

    /** Primitive mix, Table 4 column order:
     *  Mutex, atomic, Once, WaitGroup, Cond, chan, Misc.
     *  Must sum to ~1. */
    double mix[7] = {0.6, 0.01, 0.05, 0.02, 0.01, 0.30, 0.01};
};

/** The six studied Go applications, seeded from Tables 1/2/4. */
const std::vector<AppProfile> &goAppProfiles();

/** gRPC-C: the C/C++ contrast implementation (Section 3). */
const AppProfile &grpcCProfile();

/**
 * Generate one corpus snapshot: Go-ish (or C-ish) source text of
 * roughly profile.sampleKloc thousand lines with the profile's
 * construct densities. Deterministic per (profile, seed).
 */
std::string generateSource(const AppProfile &profile, uint64_t seed);

/**
 * The profile as of month @p month_index on the Figure 2/3 time axis
 * (0 = Feb 2015 ... 39 = May 2018): the base profile with small
 * deterministic drift/jitter, reproducing the "stable over time"
 * shape.
 */
AppProfile snapshotProfile(const AppProfile &base, int month_index);

/** Axis label for a Figure 2/3 month index, e.g. "15-02". */
std::string monthLabel(int month_index);

/**
 * Generate a corpus with @p buggy_count Figure-8-style anonymous
 * goroutines that capture their loop variable by reference, plus
 * @p fixed_count correctly privatized ones (the lint ground truth).
 */
std::string generateWithCaptureBugs(const AppProfile &profile,
                                    uint64_t seed, int buggy_count,
                                    int fixed_count);

} // namespace golite::scanner

#endif // GOLITE_SCANNER_GENERATOR_HH
