/**
 * @file
 * A small lexer for Go surface syntax — just enough to measure what
 * the paper's static analysis measures: goroutine creation sites
 * (`go f(...)` vs `go func(...) {...}()`) and concurrency-primitive
 * usages (sync.Mutex, sync.RWMutex, atomic.*, sync.Once,
 * sync.WaitGroup, sync.Cond, chan, and misc sync types).
 */

#ifndef GOLITE_SCANNER_LEXER_HH
#define GOLITE_SCANNER_LEXER_HH

#include <string>
#include <string_view>
#include <vector>

namespace golite::scanner
{

enum class TokenKind
{
    Identifier, ///< identifiers and keywords
    Punct,      ///< single punctuation/operator character
    Arrow,      ///< the <- channel operator
    String,     ///< a (skipped-content) string literal
    Number,
    EndOfFile,
};

struct Token
{
    TokenKind kind;
    std::string text;
    /** 1-based source line the token starts on. */
    size_t line = 1;
};

/**
 * Tokenize Go-ish source. Comments (// and C-style) and string
 * literal contents are skipped; newlines are not significant.
 */
class Lexer
{
  public:
    explicit Lexer(std::string_view source);

    /** Next token; EndOfFile forever once exhausted. */
    Token next();

    /** Tokenize everything (excluding the EOF marker). */
    static std::vector<Token> tokenize(std::string_view source);

  private:
    void skipWhitespaceAndComments();

    /** Advance one char, tracking the line counter. */
    void advance();

    std::string_view source_;
    size_t pos_ = 0;
    size_t line_ = 1;
};

} // namespace golite::scanner

#endif // GOLITE_SCANNER_LEXER_HH
