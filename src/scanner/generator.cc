#include "scanner/generator.hh"

#include <algorithm>
#include <functional>
#include <sstream>

#include "base/rng.hh"

namespace golite::scanner
{

const std::vector<AppProfile> &
goAppProfiles()
{
    // Creation-site densities and anonymous shares follow Table 2's
    // stated range (0.18-0.83 sites/KLOC; all apps but Kubernetes and
    // BoltDB use more anonymous functions). Primitive mixes are Table
    // 4 verbatim; per-KLOC primitive densities use etcd's published
    // total (2075 over 441 KLOC) and gRPC-Go's stated 14.8/KLOC, with
    // plausible values elsewhere.
    static const std::vector<AppProfile> profiles = {
        {"Docker", Lang::Go, 786, 40, 0.72, 0.64, 3.0,
         {0.6262, 0.0106, 0.0475, 0.0170, 0.0099, 0.2787, 0.0099}},
        {"Kubernetes", Lang::Go, 2297, 40, 0.31, 0.40, 2.5,
         {0.7034, 0.0121, 0.0613, 0.0268, 0.0096, 0.1848, 0.0020}},
        {"etcd", Lang::Go, 441, 40, 0.83, 0.58, 4.71,
         {0.4501, 0.0063, 0.0718, 0.0395, 0.0024, 0.4299, 0.0000}},
        {"CockroachDB", Lang::Go, 520, 40, 0.18, 0.60, 4.0,
         {0.5590, 0.0049, 0.0376, 0.0857, 0.0148, 0.2823, 0.0157}},
        {"gRPC", Lang::Go, 53, 40, 0.62, 0.66, 14.8,
         {0.6120, 0.0115, 0.0420, 0.0700, 0.0165, 0.2303, 0.0178}},
        {"BoltDB", Lang::Go, 9, 40, 0.22, 0.38, 5.2,
         {0.7021, 0.0213, 0.0000, 0.0000, 0.0000, 0.2340, 0.0426}},
    };
    return profiles;
}

const AppProfile &
grpcCProfile()
{
    // Section 3: gRPC-C has 140 KLOC, five thread-creation sites
    // (0.03/KLOC) and uses only locks, 5.3 usages/KLOC.
    static const AppProfile profile = {
        "gRPC-C", Lang::C, 140, 140, 0.03, 0.0, 5.3,
        {1.0, 0, 0, 0, 0, 0, 0}};
    return profile;
}

namespace
{

void
emitFiller(std::ostringstream &os, Rng &rng, int &fn_counter)
{
    // Single-line fillers (so construct probabilities are per line),
    // with a function boundary roughly every 40 lines.
    if (rng.below(40) == 0) {
        os << "}\n\nfunc handler" << ++fn_counter
           << "(req *Request) error {\n";
        return;
    }
    switch (rng.below(5)) {
      case 0:
        os << "\tresult := compute" << rng.below(40) << "(req.id, "
           << rng.below(100) << ")\n";
        break;
      case 1:
        os << "\terr = validate(req, " << rng.below(16) << ")\n";
        break;
      case 2:
        os << "\tlog.Printf(\"state %d\", state" << rng.below(30)
           << ")\n";
        break;
      case 3:
        os << "\titems[" << rng.below(8) << "].refresh()\n";
        break;
      default:
        os << "\tstate" << rng.below(30) << " = append(state"
           << rng.below(30) << ", value)\n";
        break;
    }
}

void
emitGoPrimitive(std::ostringstream &os, Rng &rng, size_t kind)
{
    switch (kind) {
      case 0: // Mutex / RWMutex
        if (rng.below(5) == 0)
            os << "\tvar guard sync.RWMutex\n";
        else
            os << "\tvar mu sync.Mutex\n";
        break;
      case 1: // atomic
        os << "\tatomic.AddInt64(&counter" << rng.below(10) << ", 1)\n";
        break;
      case 2: // Once
        os << "\tvar initOnce sync.Once\n";
        break;
      case 3: // WaitGroup
        os << "\tvar wg sync.WaitGroup\n";
        break;
      case 4: // Cond
        os << "\tcond := sync.NewCond(&mu)\n";
        break;
      case 5: // chan
        if (rng.below(2) == 0)
            os << "\tch" << rng.below(10) << " := make(chan Event, "
               << rng.below(8) << ")\n";
        else
            os << "\tvar results chan *Response\n";
        break;
      default: // misc
        if (rng.below(2) == 0)
            os << "\tvar cache sync.Map\n";
        else
            os << "\tvar bufs sync.Pool\n";
        break;
    }
}

void
emitGoroutine(std::ostringstream &os, Rng &rng, bool anonymous)
{
    if (anonymous) {
        os << "\tgo func(id int) { process(id, " << rng.below(9)
           << ") }(" << rng.below(9) << ")\n";
    } else {
        os << "\tgo worker" << rng.below(20) << "(ctx, req)\n";
    }
}

void
emitCFiller(std::ostringstream &os, Rng &rng, int &fn_counter)
{
    if (rng.below(40) == 0) {
        os << "}\n\nstatic void on_event" << ++fn_counter
           << "(grpc_exec_ctx *ctx) {\n";
        return;
    }
    switch (rng.below(3)) {
      case 0:
        os << "  grpc_call *call = lookup_call(server, " << rng.below(50)
           << ");\n";
        break;
      case 1:
        os << "  status = grpc_call_start_batch(call, ops, "
           << rng.below(6) << ");\n";
        break;
      default:
        os << "  queue_push(&server->pending, elem);\n";
        break;
    }
}

} // namespace

std::string
generateSource(const AppProfile &profile, uint64_t seed)
{
    Rng rng(seed ^ 0x5ca11ab1e0ull);
    std::ostringstream os;

    const size_t target_lines =
        static_cast<size_t>(profile.sampleKloc * 1000.0);
    // Probabilities are per emission slot; a slot yields ~1.05 lines
    // on average (function boundaries span three), so compensate to
    // hit the requested per-line densities.
    constexpr double kLinesPerSlot = 1.05;
    const double p_primitive =
        kLinesPerSlot * profile.primitivesPerKloc / 1000.0;
    const double p_gosite =
        kLinesPerSlot * profile.goSitesPerKloc / 1000.0;

    int fn_counter = 0;
    if (profile.lang == Lang::Go) {
        os << "package " << profile.name << "\n\n"
           << "import (\n\t\"sync\"\n\t\"sync/atomic\"\n\t\"time\"\n)"
           << "\n\nfunc handler0(req *Request) error {\n";
    } else {
        os << "#include <grpc/grpc.h>\n#include <pthread.h>\n\n"
           << "static void on_event0(grpc_exec_ctx *ctx) {\n";
    }

    // Emit until we reach the target physical line count; every
    // construct is measured back by the scanner, so densities come
    // out as generated (modulo multi-line constructs).
    std::string out = os.str();
    out.reserve(target_lines * 36);
    size_t lines_emitted = 0;
    while (lines_emitted < target_lines) {
        std::ostringstream piece;
        if (rng.chance(p_primitive)) {
            if (profile.lang == Lang::Go) {
                // Choose a category from the Table 4 mix.
                double draw =
                    static_cast<double>(rng.below(100000)) / 100000.0;
                size_t kind = 6;
                for (size_t k = 0; k < 7; ++k) {
                    if (draw < profile.mix[k]) {
                        kind = k;
                        break;
                    }
                    draw -= profile.mix[k];
                }
                emitGoPrimitive(piece, rng, kind);
            } else {
                piece << "  gpr_mu_lock(&server->mu);\n";
            }
        } else if (rng.chance(p_gosite)) {
            if (profile.lang == Lang::Go) {
                emitGoroutine(piece, rng,
                              rng.chance(profile.anonymousShare));
            } else {
                piece << "  gpr_thd_new(&tid, worker_thread, server);\n";
            }
        } else {
            if (profile.lang == Lang::Go)
                emitFiller(piece, rng, fn_counter);
            else
                emitCFiller(piece, rng, fn_counter);
        }
        const std::string chunk = piece.str();
        lines_emitted += static_cast<size_t>(
            std::count(chunk.begin(), chunk.end(), '\n'));
        out += chunk;
    }
    out += "}\n";
    return out;
}

std::string
generateWithCaptureBugs(const AppProfile &profile, uint64_t seed,
                        int buggy_count, int fixed_count)
{
    std::string out = generateSource(profile, seed);
    Rng rng(seed ^ 0xf19a8e11u);
    std::ostringstream os;
    for (int b = 0; b < buggy_count; ++b) {
        os << "\nfunc dispatchBuggy" << b << "(items []Item) {\n"
           << "\tfor idx := 0; idx < len(items); idx++ {\n"
           << "\t\tgo func() {\n"
           << "\t\t\thandle(items, idx, " << rng.below(100)
           << ")\n"
           << "\t\t}()\n"
           << "\t}\n}\n";
    }
    for (int f = 0; f < fixed_count; ++f) {
        os << "\nfunc dispatchFixed" << f << "(items []Item) {\n"
           << "\tfor idx := 0; idx < len(items); idx++ {\n"
           << "\t\tgo func(idx int) {\n"
           << "\t\t\thandle(items, idx, " << rng.below(100)
           << ")\n"
           << "\t\t}(idx)\n"
           << "\t}\n}\n";
    }
    out += os.str();
    return out;
}

AppProfile
snapshotProfile(const AppProfile &base, int month_index)
{
    // Figures 2/3: proportions are essentially stable over time.
    // Apply a deterministic per-month jitter of up to ~1.5% of the
    // chan share plus a tiny linear drift.
    AppProfile profile = base;
    Rng rng(static_cast<uint64_t>(month_index) * 0x9e37u +
            std::hash<std::string>{}(base.name));
    const double jitter =
        (static_cast<double>(rng.below(2000)) - 1000.0) / 1000.0 * 0.015;
    const double drift = 0.0003 * month_index;
    double chan_share = profile.mix[5] + jitter + drift;
    if (chan_share < 0.02)
        chan_share = 0.02;
    if (chan_share > 0.9)
        chan_share = 0.9;
    const double delta = chan_share - profile.mix[5];
    profile.mix[5] = chan_share;
    profile.mix[0] -= delta; // compensate on the Mutex share
    // Codebases grow over time; sample size stays fixed for speed.
    profile.projectKloc = base.projectKloc * (0.7 + 0.0075 * month_index);
    return profile;
}

std::string
monthLabel(int month_index)
{
    const int year = 15 + (month_index + 1) / 12;
    const int month = (month_index + 1) % 12 + 1;
    std::ostringstream os;
    os << year << "-" << (month < 10 ? "0" : "") << month;
    return os.str();
}

} // namespace golite::scanner
