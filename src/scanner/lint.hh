/**
 * @file
 * Anonymous-capture lint: a static checker for the Figure 8 bug
 * class.
 *
 * Section 7 of the paper: "As a preliminary effort, we built a
 * detector targeting the non-blocking bugs caused by anonymous
 * functions... Our detector has already discovered a few new bugs."
 * This is that detector, rebuilt over the golite scanner: it flags
 * `go func() { ... }()` literals that read an enclosing `for` loop's
 * iteration variable by reference instead of receiving it as an
 * argument — the docker-4951 / Figure 8 pattern.
 */

#ifndef GOLITE_SCANNER_LINT_HH
#define GOLITE_SCANNER_LINT_HH

#include <string>
#include <string_view>
#include <vector>

namespace golite::scanner
{

/** One flagged goroutine-capture site. */
struct CaptureFinding
{
    /** 1-based source line of the `go` keyword. */
    size_t line;
    /** The loop variable captured by reference. */
    std::string variable;
};

/**
 * Scan Go-surface source for anonymous goroutines that capture an
 * enclosing loop's iteration variable. Goroutines that shadow the
 * variable with a parameter of the same name (the canonical
 * `go func(i int) {...}(i)` fix) are not flagged.
 */
std::vector<CaptureFinding> lintAnonymousCaptures(
    std::string_view source);

} // namespace golite::scanner

#endif // GOLITE_SCANNER_LINT_HH
