/**
 * @file
 * Systematic schedule exploration: bounded-exhaustive enumeration of
 * every scheduling decision (goroutine dispatch and select choice) a
 * golite program can make.
 *
 * Where the paper's reproduction protocol runs a buggy program ~100
 * times and hopes (Section 4: "we needed to run a buggy program a
 * lot of times"), the explorer walks the whole choice tree: for
 * small programs it *proves* that a fixed variant cannot block or
 * panic under any schedule, and counts exactly how many schedules
 * manifest a bug. This is the stateless-model-checking complement
 * (CHESS/dBug-style) to the random and PCT schedulers.
 *
 * Soundness scope: exploration covers every choice the runtime funnels
 * through Scheduler::choose — dispatch order and select's shuffle.
 * Random preemption (preemptProb) is disabled during exploration, so
 * programs whose bugs *only* manifest via preemption between plain
 * shared accesses need the random/PCT testers instead.
 */

#ifndef GOLITE_EXPLORE_EXPLORER_HH
#define GOLITE_EXPLORE_EXPLORER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "runtime/report.hh"
#include "runtime/scheduler.hh"

namespace golite::explore
{

/** Limits for one exploration. */
struct ExploreOptions
{
    /** Stop after this many schedules (0 = unlimited). */
    size_t maxSchedules = 50000;
    /** Base run options; policy is forced to Random and
     *  preemptProb to 0 (see soundness scope above). */
    RunOptions runOptions;
};

/** Aggregate over all explored schedules. */
struct ExploreResult
{
    size_t schedules = 0;
    size_t clean = 0;          ///< completed, no leaks
    size_t globalDeadlocks = 0;
    size_t leakedOnly = 0;     ///< completed but leaked goroutines
    size_t panicked = 0;
    size_t livelocked = 0;
    /** True when the whole choice tree was enumerated (the counts
     *  are then exact over *all* schedules). */
    bool exhaustive = false;
    /** The first non-clean report, for diagnostics. */
    RunReport firstBad;
    /** Choice sequence that produced firstBad (replayable). */
    std::vector<size_t> firstBadSchedule;
    /** 1-based schedule count at which firstBad appeared (0 = never);
     *  the explorer's "executions to first bug" for bench_ext_fuzz. */
    size_t firstBadAt = 0;

    bool
    anyBad() const
    {
        return globalDeadlocks + leakedOnly + panicked + livelocked > 0;
    }
};

/**
 * Enumerate schedules of @p run_once, a callable that executes the
 * program once under the given options (the explorer installs its
 * chooser into them).
 */
ExploreResult exploreAll(
    const std::function<RunReport(const RunOptions &)> &run_once,
    const ExploreOptions &options = {});

/**
 * Resumable DFS position inside one subtree of the choice tree.
 *
 * The first pinnedDepth entries of `prefix` select the subtree and
 * are never advanced; the rest is the walker's backtracking state.
 * The parallel explorer (parallel/pexplore.hh) hands each worker a
 * cursor and grants schedule tickets round by round, which keeps the
 * explored set deterministic under any worker count.
 */
struct SubtreeCursor
{
    /** Committed choice at each decision depth; initialise with the
     *  subtree's pinned prefix before the first exploreSubtree call. */
    std::vector<size_t> prefix;
    /** Alternatives observed at each depth (parallel to prefix). */
    std::vector<size_t> fanout;
    size_t pinnedDepth = 0;
    bool started = false;
    /** Subtree fully enumerated; further calls are no-ops. */
    bool done = false;
};

/**
 * Continue enumerating the subtree @p cursor points into, running at
 * most @p budget schedules (0 = unlimited) and accumulating tallies
 * into @p result. Returns with cursor.done set once every schedule
 * extending the pinned prefix has been counted. exploreAll is this
 * with an empty pinned prefix and the whole budget in one call.
 */
void exploreSubtree(
    const std::function<RunReport(const RunOptions &)> &run_once,
    const ExploreOptions &options, SubtreeCursor &cursor,
    size_t budget, ExploreResult &result);

/**
 * Observe the branching factor at decision depth |prefix| when the
 * first |prefix| choices are @p prefix (one uncounted replay run).
 * Returns 0 when the program finishes without reaching that depth,
 * i.e. @p prefix is a complete schedule. The parallel explorer uses
 * this to split the tree into worker-sized subtrees.
 */
size_t fanoutAt(
    const std::function<RunReport(const RunOptions &)> &run_once,
    const std::vector<size_t> &prefix, const ExploreOptions &options);

/** Convenience: explore a plain program. */
ExploreResult exploreProgram(const std::function<void()> &program,
                             const ExploreOptions &options = {});

/**
 * Re-run one specific schedule (e.g. ExploreResult::firstBadSchedule)
 * for debugging; trailing unspecified choices fall back to 0.
 */
RunReport replaySchedule(
    const std::function<RunReport(const RunOptions &)> &run_once,
    const std::vector<size_t> &schedule, RunOptions options = {});

} // namespace golite::explore

#endif // GOLITE_EXPLORE_EXPLORER_HH
