/**
 * @file
 * Systematic schedule exploration: bounded-exhaustive enumeration of
 * every scheduling decision (goroutine dispatch, select choice, and —
 * under a preemption bound — preemption points) a golite program can
 * make.
 *
 * Where the paper's reproduction protocol runs a buggy program ~100
 * times and hopes (Section 4: "we needed to run a buggy program a
 * lot of times"), the explorer walks the choice tree. Two walkers
 * share one interface:
 *
 *  - ExploreMode::Naive enumerates the raw tree depth-first — for
 *    small programs it *proves* a fixed variant cannot block or panic
 *    under any schedule and counts exactly how many schedules
 *    manifest a bug;
 *  - ExploreMode::Dpor prunes with dynamic partial-order reduction:
 *    a dependence oracle on the event bus (explore/dpor.hh) tells the
 *    walker which steps commute, persistent-set backtracking
 *    re-executes only schedules that differ by a *dependent*
 *    transition, and sleep sets stop sibling subtrees from re-proving
 *    each other's interleavings. Verdicts are identical to Naive over
 *    the same tree (the differential suite in
 *    tests/explore_dpor_test.cc enforces this), at a fraction of the
 *    executions.
 *
 * Soundness scope: exploration covers every choice the runtime
 * funnels through the decision engine — dispatch order, select's
 * shuffle, and (when preemptionBound > 0) the preemption coin at
 * every instrumented shared access, bounded to at most k yields per
 * schedule. An exhaustive result with preemptionBound k is therefore
 * a *bounded-exhaustiveness certificate*: "no bug within preemption
 * bound k". With the default bound 0, programs whose bugs *only*
 * manifest via preemption between plain shared accesses need a
 * positive bound (or the random/PCT testers).
 */

#ifndef GOLITE_EXPLORE_EXPLORER_HH
#define GOLITE_EXPLORE_EXPLORER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "runtime/report.hh"
#include "runtime/scheduler.hh"

namespace golite::explore
{

/** Which walker explores the tree. */
enum class ExploreMode
{
    Naive, ///< enumerate every schedule
    Dpor,  ///< prune Mazurkiewicz-equivalent schedules
};

/** Limits for one exploration. */
struct ExploreOptions
{
    /** Stop after this many executions (0 = unlimited). */
    size_t maxSchedules = 50000;

    ExploreMode mode = ExploreMode::Naive;

    /**
     * Explore up to this many preemptions (yield at an instrumented
     * shared access) per schedule as explicit choice points. 0 keeps
     * preemption off (the historical explorer behaviour). A positive
     * bound makes exhaustive results certify "no bug within
     * preemption bound k"; Naive mode enumerates every placement,
     * Dpor backtracks a preemption only where a dependent step races.
     */
    int preemptionBound = 0;

    /**
     * Collect a Mazurkiewicz-class fingerprint per counted schedule
     * into ExploreResult::hbClasses (see DependenceOracle
     * ::hbFingerprint). The property tests use this to check that
     * DPOR's pruned set still covers every equivalence class the
     * naive walker visits.
     */
    bool collectHbClasses = false;

    /** Optional per-schedule hook (counted schedules only): the
     *  report and the choice sequence that produced it. */
    std::function<void(const RunReport &, const std::vector<size_t> &)>
        onSchedule;

    /** Base run options; policy is forced to Random and
     *  preemptProb to 0 (see soundness scope above). */
    RunOptions runOptions;
};

/** Aggregate over all explored schedules. */
struct ExploreResult
{
    /** Counted schedules (one per explored equivalence-class
     *  representative; equals executions in Naive mode). */
    size_t schedules = 0;
    /**
     * Program executions, including sleep-set-blocked (redundant)
     * runs that are not counted as schedules. The honest
     * executions-to-first-bug cost measure for bench_ext_explorer.
     */
    size_t executions = 0;
    /** Sleep-set-blocked executions (Dpor only). */
    size_t redundant = 0;

    size_t clean = 0;          ///< completed, no leaks, no races
    size_t globalDeadlocks = 0;
    size_t leakedOnly = 0;     ///< completed but leaked goroutines
    size_t panicked = 0;
    size_t livelocked = 0;
    /** Completed, nothing leaked, but a detector subscriber reported
     *  (RunReport::raceMessages non-empty). */
    size_t raced = 0;

    /**
     * True when every backtrack point was followed to completion —
     * the counts are then exact over *all* schedules (within the
     * explored preemption bound). False whenever the execution budget
     * abandoned any pending backtrack point.
     */
    bool exhaustive = false;

    /** Echo of the options that scope the certificate. */
    ExploreMode mode = ExploreMode::Naive;
    int preemptionBound = 0;

    /** Mazurkiewicz-class fingerprints of counted schedules
     *  (ExploreOptions::collectHbClasses). */
    std::set<uint64_t> hbClasses;

    /** The first non-clean report, for diagnostics. */
    RunReport firstBad;
    /** Choice sequence that produced firstBad (replayable; in Dpor
     *  mode pass siteSchedule=true to replaySchedule — the sequence
     *  includes preemption sites). */
    std::vector<size_t> firstBadSchedule;
    /** 1-based execution count at which firstBad appeared (0 =
     *  never); the explorer's "executions to first bug". */
    size_t firstBadAt = 0;

    bool
    anyBad() const
    {
        return globalDeadlocks + leakedOnly + panicked + livelocked +
                   raced >
               0;
    }

    /**
     * The bounded-exhaustiveness certificate: every schedule within
     * the preemption bound was covered (modulo Mazurkiewicz
     * equivalence in Dpor mode) and none was bad.
     */
    bool certified() const { return exhaustive && !anyBad(); }

    /** Human-readable certificate line ("" when not certified). */
    std::string certificate() const;
};

/**
 * Enumerate schedules of @p run_once, a callable that executes the
 * program once under the given options (the explorer installs its
 * site chooser into them).
 */
ExploreResult exploreAll(
    const std::function<RunReport(const RunOptions &)> &run_once,
    const ExploreOptions &options = {});

/** Opaque DPOR walker state (sleep sets, backtrack points; owned by
 *  the cursor so ticketed resume works — see explorer.cc). */
struct DporState;

/**
 * Resumable DFS position inside one subtree of the choice tree.
 *
 * Naive mode: the first pinnedDepth entries of `prefix` select the
 * subtree and are never advanced; the rest is the walker's
 * backtracking state. The parallel explorer (parallel/pexplore.hh)
 * hands each worker a cursor and grants schedule tickets round by
 * round, which keeps the explored set deterministic under any worker
 * count.
 *
 * Dpor mode: the cursor must start with an empty prefix (the reduced
 * frontier is discovered dynamically, so pre-splitting the tree is
 * meaningless — std::logic_error otherwise); sleep-set and
 * backtrack-point state lives in `dpor` and ticketed resume works the
 * same way. prefix/fanout mirror the last executed schedule for
 * observability.
 */
struct SubtreeCursor
{
    /** Committed choice at each decision depth; initialise with the
     *  subtree's pinned prefix before the first exploreSubtree call. */
    std::vector<size_t> prefix;
    /** Alternatives observed at each depth (parallel to prefix). */
    std::vector<size_t> fanout;
    size_t pinnedDepth = 0;
    bool started = false;
    /** Subtree fully enumerated; further calls are no-ops. */
    bool done = false;
    /** DPOR walker state (created on first Dpor-mode call). */
    std::shared_ptr<DporState> dpor;
};

/**
 * Continue enumerating the subtree @p cursor points into, running at
 * most @p budget executions (0 = unlimited) and accumulating tallies
 * into @p result. Returns with cursor.done set once every schedule
 * extending the pinned prefix has been counted — including when the
 * budget ran out exactly at the subtree's last schedule, so a
 * budget-stopped cursor with cursor.done == false always has an
 * abandoned backtrack point (ExploreResult::exhaustive must then stay
 * false). exploreAll is this with an empty pinned prefix and the
 * whole budget in one call.
 */
void exploreSubtree(
    const std::function<RunReport(const RunOptions &)> &run_once,
    const ExploreOptions &options, SubtreeCursor &cursor,
    size_t budget, ExploreResult &result);

/**
 * Observe the branching factor at decision depth |prefix| when the
 * first |prefix| choices are @p prefix (one uncounted replay run).
 * Returns 0 when the program finishes without reaching that depth,
 * i.e. @p prefix is a complete schedule. The parallel explorer uses
 * this to split the tree into worker-sized subtrees (Naive mode
 * only; depths count dispatch/select decisions, not preemptions).
 */
size_t fanoutAt(
    const std::function<RunReport(const RunOptions &)> &run_once,
    const std::vector<size_t> &prefix, const ExploreOptions &options);

/** Convenience: explore a plain program. */
ExploreResult exploreProgram(const std::function<void()> &program,
                             const ExploreOptions &options = {});

/**
 * Re-run one specific schedule (e.g. ExploreResult::firstBadSchedule)
 * for debugging; trailing unspecified choices fall back to 0.
 * @p siteSchedule: the sequence indexes every decision site including
 * preemption coins (Dpor-mode schedules); false = the historical
 * dispatch/select-only format (Naive-mode schedules).
 */
RunReport replaySchedule(
    const std::function<RunReport(const RunOptions &)> &run_once,
    const std::vector<size_t> &schedule, RunOptions options = {},
    bool siteSchedule = false);

} // namespace golite::explore

#endif // GOLITE_EXPLORE_EXPLORER_HH
