/**
 * @file
 * Systematic schedule exploration: bounded-exhaustive enumeration of
 * every scheduling decision (goroutine dispatch and select choice) a
 * golite program can make.
 *
 * Where the paper's reproduction protocol runs a buggy program ~100
 * times and hopes (Section 4: "we needed to run a buggy program a
 * lot of times"), the explorer walks the whole choice tree: for
 * small programs it *proves* that a fixed variant cannot block or
 * panic under any schedule, and counts exactly how many schedules
 * manifest a bug. This is the stateless-model-checking complement
 * (CHESS/dBug-style) to the random and PCT schedulers.
 *
 * Soundness scope: exploration covers every choice the runtime funnels
 * through Scheduler::choose — dispatch order and select's shuffle.
 * Random preemption (preemptProb) is disabled during exploration, so
 * programs whose bugs *only* manifest via preemption between plain
 * shared accesses need the random/PCT testers instead.
 */

#ifndef GOLITE_EXPLORE_EXPLORER_HH
#define GOLITE_EXPLORE_EXPLORER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "runtime/report.hh"
#include "runtime/scheduler.hh"

namespace golite::explore
{

/** Limits for one exploration. */
struct ExploreOptions
{
    /** Stop after this many schedules (0 = unlimited). */
    size_t maxSchedules = 50000;
    /** Base run options; policy is forced to Random and
     *  preemptProb to 0 (see soundness scope above). */
    RunOptions runOptions;
};

/** Aggregate over all explored schedules. */
struct ExploreResult
{
    size_t schedules = 0;
    size_t clean = 0;          ///< completed, no leaks
    size_t globalDeadlocks = 0;
    size_t leakedOnly = 0;     ///< completed but leaked goroutines
    size_t panicked = 0;
    size_t livelocked = 0;
    /** True when the whole choice tree was enumerated (the counts
     *  are then exact over *all* schedules). */
    bool exhaustive = false;
    /** The first non-clean report, for diagnostics. */
    RunReport firstBad;
    /** Choice sequence that produced firstBad (replayable). */
    std::vector<size_t> firstBadSchedule;

    bool
    anyBad() const
    {
        return globalDeadlocks + leakedOnly + panicked + livelocked > 0;
    }
};

/**
 * Enumerate schedules of @p run_once, a callable that executes the
 * program once under the given options (the explorer installs its
 * chooser into them).
 */
ExploreResult exploreAll(
    const std::function<RunReport(const RunOptions &)> &run_once,
    const ExploreOptions &options = {});

/** Convenience: explore a plain program. */
ExploreResult exploreProgram(const std::function<void()> &program,
                             const ExploreOptions &options = {});

/**
 * Re-run one specific schedule (e.g. ExploreResult::firstBadSchedule)
 * for debugging; trailing unspecified choices fall back to 0.
 */
RunReport replaySchedule(
    const std::function<RunReport(const RunOptions &)> &run_once,
    const std::vector<size_t> &schedule, RunOptions options = {});

} // namespace golite::explore

#endif // GOLITE_EXPLORE_EXPLORER_HH
