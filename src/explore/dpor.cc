#include "explore/dpor.hh"

#include <algorithm>

namespace golite::explore
{

namespace
{

/** a = a ⊔ b (component-wise max, growing a as needed). */
void
joinInto(std::vector<uint32_t> &a, const std::vector<uint32_t> &b)
{
    if (b.size() > a.size())
        a.resize(b.size(), 0);
    for (size_t i = 0; i < b.size(); ++i)
        a[i] = std::max(a[i], b[i]);
}

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t
fnv(uint64_t h, uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= kFnvPrime;
    }
    return h;
}

} // namespace

const void *
clockPseudoObj()
{
    static const int tag = 0;
    return &tag;
}

const void *
spawnPseudoObj()
{
    static const int tag = 0;
    return &tag;
}

void
StepFootprint::add(uint64_t key, bool write)
{
    for (Access &a : accesses) {
        if (a.key == key) {
            a.write |= write;
            return;
        }
    }
    accesses.push_back(Access{key, write});
}

void
StepFootprint::addActor(uint64_t gid)
{
    if (!hasActor(gid))
        actors.push_back(gid);
}

bool
StepFootprint::hasActor(uint64_t gid) const
{
    return std::find(actors.begin(), actors.end(), gid) !=
           actors.end();
}

bool
footprintsConflict(const StepFootprint &a, const StepFootprint &b)
{
    for (uint64_t g : a.actors)
        if (b.hasActor(g))
            return true;
    for (const Access &x : a.accesses)
        for (const Access &y : b.accesses)
            if (x.key == y.key && (x.write || y.write))
                return true;
    return false;
}

void
DependenceOracle::beginRun()
{
    curFp_.clear();
    curKind_ = DecisionKind::Pick;
    curAlternatives_ = 0;
    curPick_ = 0;
    curGid_ = 0;
    curNode_ = kNoDporNode;
    curOpens_ = false;
    prologue_ = true;
    steps_.clear();
    nodeCount_ = 0;
    baseClock_.clear();
    slotGid_.clear();
    gidClock_.clear();
    localCount_.clear();
    pendingJoins_.clear();
    log_.clear();
    activeSelects_.clear();
    selectSeq_.clear();
    canon_.clear();
}

uint64_t
DependenceOracle::keyFor(const void *obj, const char *label)
{
    if (label != nullptr) {
        uint64_t h = kFnvOffset;
        for (const char *p = label; *p != '\0'; ++p) {
            h ^= static_cast<uint8_t>(*p);
            h *= kFnvPrime;
        }
        return h | (uint64_t{1} << 63);
    }
    const uint64_t raw =
        static_cast<uint64_t>(reinterpret_cast<uintptr_t>(obj));
    if (raw & (uint64_t{1} << 62))
        return raw; // synthesized select pseudo: stable by design
    if (obj == clockPseudoObj() || obj == spawnPseudoObj())
        return raw; // static sentinels: stable within the process
    const auto [it, inserted] = canon_.try_emplace(
        obj, (uint64_t{1} << 61) | canon_.size());
    return it->second;
}

namespace
{

/** Synthetic non-heap pointer for a blocked select (bit 62 keeps it
 *  clear of canonical user-space addresses). */
const void *
selectPseudoObj(uint64_t gid, uint32_t seq)
{
    const uint64_t tag =
        (uint64_t{1} << 62) | (gid << 20) | uint64_t{seq};
    return reinterpret_cast<const void *>(
        static_cast<uintptr_t>(tag));
}

} // namespace

size_t
DependenceOracle::slotOf(uint64_t gid)
{
    for (size_t i = 0; i < slotGid_.size(); ++i)
        if (slotGid_[i] == gid)
            return i;
    slotGid_.push_back(gid);
    gidClock_.emplace_back();
    localCount_.push_back(0);
    pendingJoins_.emplace_back();
    return slotGid_.size() - 1;
}

void
DependenceOracle::closeStep()
{
    if (prologue_ && curFp_.accesses.empty() && curFp_.actors.empty())
        return; // nothing ever happened in this prologue stretch

    const uint64_t g = curGid_;
    const size_t slot = slotOf(g);
    curFp_.addActor(g);

    std::vector<uint32_t> &vc = scratchClock_;
    vc.assign(gidClock_[slot].begin(), gidClock_[slot].end());
    joinInto(vc, baseClock_);

    // Spawn/unpark edges targeted at this goroutine. Entries that
    // point at the still-open sub-step cannot occur (one sub-step is
    // open at a time and a goroutine never unparks itself), but keep
    // them defensively for the next sub-step rather than indexing out
    // of range.
    std::vector<uint32_t> &joins = pendingJoins_[slot];
    size_t keep = 0;
    for (uint32_t idx : joins) {
        if (idx < steps_.size())
            joinInto(vc, steps_[idx].clock);
        else
            joins[keep++] = idx;
    }
    joins.resize(keep);

    localCount_[slot]++;
    if (vc.size() <= slot)
        vc.resize(slot + 1, 0);
    vc[slot] = localCount_[slot];

    if (prologue_) {
        // The prologue (run setup and the forced pre-first-decision
        // stretch) is identical in every schedule; it is not
        // backtrackable, so it folds into the base clock instead of
        // steps_.
        joinInto(baseClock_, vc);
    } else {
        OracleStep step;
        step.node = curNode_;
        step.opensSpan = curOpens_;
        step.kind = curKind_;
        step.alternatives = curAlternatives_;
        step.pick = curPick_;
        step.gid = g;
        step.fp = curFp_;
        step.clock = vc;
        step.selfLocal = localCount_[slot];
        step.slot = static_cast<uint32_t>(slot);
        steps_.push_back(std::move(step));
    }

    gidClock_[slot] = vc;
    curOpens_ = false;
    curFp_.clear();
}

void
DependenceOracle::openSpan(const RuntimeEvent &ev)
{
    curKind_ = ev.decision;
    curAlternatives_ = static_cast<uint32_t>(ev.a);
    curPick_ = static_cast<uint32_t>(ev.b);
    if (ev.decision == DecisionKind::Pick && ev.candidates != nullptr)
        curGid_ = ev.candidates[curPick_];
    else
        curGid_ = ev.gid;
    curNode_ = nodeCount_++;
    curOpens_ = true;
    prologue_ = false;
    curFp_.addActor(curGid_);
}

void
DependenceOracle::switchActor(uint64_t gid)
{
    if (gid == curGid_)
        return;
    // A forced continuation: the runtime dispatched a different
    // goroutine without consulting the decision engine (single-entry
    // ready queue), or the scheduler itself acted (virtual-clock
    // advance, gid 0). Same span, new sub-step.
    closeStep();
    curGid_ = gid;
    curFp_.addActor(gid);
}

bool
DependenceOracle::happensBefore(size_t i, size_t j) const
{
    const OracleStep &si = steps_[i];
    const OracleStep &sj = steps_[j];
    return si.slot < sj.clock.size() &&
           sj.clock[si.slot] >= si.selfLocal;
}

void
DependenceOracle::noteAccess(uint64_t gid, const void *obj, bool write,
                             const char *label)
{
    switchActor(gid);
    curFp_.add(keyFor(obj, label), write);
    // The fingerprint log keeps raw pointers: it is consumed within
    // the run only, and canonicalizes on its own terms.
    log_.push_back(LogEv{LogEv::AccessEv, gid, obj, write, 0});
}

void
DependenceOracle::touchSelectWatchers(uint64_t gid, const void *chan)
{
    for (const ActiveSelect &s : activeSelects_) {
        if (s.gid == gid)
            continue;
        for (const void *c : s.chans) {
            if (c == chan) {
                noteAccess(gid, s.pseudo, true);
                break;
            }
        }
    }
}

EventMask
DependenceOracle::eventMask() const
{
    return eventBit(EventKind::Decision) |
           eventBit(EventKind::GoSpawn) |
           eventBit(EventKind::GoUnpark) |
           eventBit(EventKind::ClockAdvance) |
           eventBit(EventKind::SyncAcquire) |
           eventBit(EventKind::SyncRelease) |
           eventBit(EventKind::LockRequest) |
           eventBit(EventKind::LockAcquire) |
           eventBit(EventKind::LockRelease) |
           eventBit(EventKind::WgDelta) |
           eventBit(EventKind::WgWait) |
           eventBit(EventKind::SelectBlock) |
           eventBit(EventKind::ChanOp) |
           eventBit(EventKind::OnceOp) |
           eventBit(EventKind::MemRead) |
           eventBit(EventKind::MemWrite);
}

void
DependenceOracle::onEvent(const RuntimeEvent &ev)
{
    switch (ev.kind) {
      case EventKind::Decision:
        closeStep();
        openSpan(ev);
        break;
      case EventKind::GoSpawn:
        // ev.gid = child, ev.a = parent. Spawns are serialized on a
        // pseudo-object: gid assignment is spawn-order-dependent and
        // shows up in reports, so concurrent spawns must not commute.
        noteAccess(ev.a, spawnPseudoObj(), true);
        log_.push_back(LogEv{LogEv::SpawnEv, ev.a, nullptr, false,
                             ev.gid});
        // Prologue edges are covered by baseClock_ (joined by every
        // step), so only record joins for real steps.
        if (!prologue_)
            pendingJoins_[slotOf(ev.gid)].push_back(
                static_cast<uint32_t>(steps_.size()));
        break;
      case EventKind::GoUnpark:
        // ev.gid = the woken goroutine; the waker is the step's actor.
        log_.push_back(
            LogEv{LogEv::UnparkEv, ev.gid, nullptr, false, 0});
        if (!prologue_)
            pendingJoins_[slotOf(ev.gid)].push_back(
                static_cast<uint32_t>(steps_.size()));
        // Note: waking does NOT retire the goroutine's select
        // registration. The race window is co-enabledness, not the
        // executed wake: a send on the losing channel arriving after
        // the winner must still conflict with the winner's
        // pseudo-object write, or the losing arm's schedules get
        // (unsoundly) pruned. Registrations persist for the run;
        // extra dependence only costs executions.
        break;
      case EventKind::ClockAdvance:
        noteAccess(0, clockPseudoObj(), true);
        break;
      case EventKind::SyncAcquire:
        noteAccess(ev.gid, ev.obj, false);
        break;
      case EventKind::SyncRelease:
        noteAccess(ev.gid, ev.obj, true);
        break;
      case EventKind::LockRequest:
        // Emitted when about to block: joining the wait queue mutates
        // wake order, so conservatively a write.
        noteAccess(ev.gid, ev.obj, true);
        break;
      case EventKind::LockAcquire:
      case EventKind::LockRelease:
        // Read-side RWMutex ops commute with each other (flag =
        // is_write), write-side ops conflict with everything.
        noteAccess(ev.gid, ev.obj, ev.flag);
        break;
      case EventKind::WgDelta:
      case EventKind::WgWait:
        noteAccess(ev.gid, ev.obj, true);
        break;
      case EventKind::SelectBlock: {
        std::erase_if(activeSelects_, [&ev](const ActiveSelect &s) {
            return s.gid == ev.gid; // stale registration, if any
        });
        if (ev.waits == nullptr)
            break;
        ActiveSelect sel;
        sel.gid = ev.gid;
        sel.pseudo = selectPseudoObj(ev.gid, ++selectSeq_[ev.gid]);
        noteAccess(ev.gid, sel.pseudo, true);
        for (const SelectWait &w : *ev.waits) {
            noteAccess(ev.gid, w.chan, true);
            touchSelectWatchers(ev.gid, w.chan);
            sel.chans.push_back(w.chan);
        }
        activeSelects_.push_back(std::move(sel));
        break;
      }
      case EventKind::ChanOp:
        noteAccess(ev.gid, ev.obj, true);
        touchSelectWatchers(ev.gid, ev.obj);
        break;
      case EventKind::OnceOp:
        noteAccess(ev.gid, ev.obj, true);
        break;
      case EventKind::MemRead:
      case EventKind::MemWrite:
        noteAccess(ev.gid, ev.obj, ev.kind == EventKind::MemWrite,
                   ev.label);
        break;
      default:
        break;
    }
}

void
DependenceOracle::onMemAccess(const void *addr, const char *label,
                              uint64_t gid, bool is_write)
{
    noteAccess(gid, addr, is_write, label);
}

void
DependenceOracle::finalizeRun(RunReport &report)
{
    (void)report;
    // Close the trailing step (events after the last decision,
    // including drain and teardown).
    closeStep();
    prologue_ = true; // further events (if any) fold into base
}

uint64_t
DependenceOracle::hbFingerprint() const
{
    // Canonical object ids by first appearance in per-goroutine
    // projections (walk gids ascending): equivalent schedules have
    // identical projections, so the numbering — unlike the raw
    // per-run pointers — is invariant across the class.
    std::unordered_map<const void *, uint64_t> objId;
    {
        std::vector<uint64_t> gids;
        for (const LogEv &e : log_)
            if (e.type == LogEv::AccessEv &&
                std::find(gids.begin(), gids.end(), e.gid) ==
                    gids.end())
                gids.push_back(e.gid);
        std::sort(gids.begin(), gids.end());
        for (uint64_t g : gids)
            for (const LogEv &e : log_)
                if (e.type == LogEv::AccessEv && e.gid == g &&
                    objId.find(e.obj) == objId.end())
                    objId.emplace(e.obj, objId.size() + 1);
    }

    // Event-granularity vector clocks over the dependence closure
    // (same-gid program order, conflicting-object order, spawn and
    // unpark edges), keyed by gid. Each event hashes its gid, local
    // index, object, mode, and clock; the run hash is an
    // order-invariant fold, so any two interleavings with the same
    // happens-before partial order collide by construction.
    std::unordered_map<uint64_t, std::vector<uint32_t>> gidVc;
    std::unordered_map<uint64_t, uint32_t> local;
    std::unordered_map<uint64_t, std::vector<uint32_t>> pendingJoin;
    struct ObjVc
    {
        std::vector<uint32_t> lastWrite;
        std::vector<uint32_t> readJoin;
    };
    std::unordered_map<const void *, ObjVc> objVc;
    // Slot assignment for clock components: ascending gid order would
    // need a pre-pass; first-use order is NOT class-invariant, so map
    // gid -> component through a sorted table instead.
    std::vector<uint64_t> slotTable;
    for (const LogEv &e : log_) {
        if (std::find(slotTable.begin(), slotTable.end(), e.gid) ==
            slotTable.end())
            slotTable.push_back(e.gid);
        if (e.type == LogEv::SpawnEv &&
            std::find(slotTable.begin(), slotTable.end(), e.aux) ==
                slotTable.end())
            slotTable.push_back(e.aux);
    }
    std::sort(slotTable.begin(), slotTable.end());
    auto slot = [&slotTable](uint64_t g) -> size_t {
        return static_cast<size_t>(
            std::lower_bound(slotTable.begin(), slotTable.end(), g) -
            slotTable.begin());
    };

    uint64_t hash = 0;
    std::vector<uint32_t> vc;
    std::vector<uint32_t> lastVc; // clock of the previous log event
    for (const LogEv &e : log_) {
        if (e.type == LogEv::UnparkEv) {
            // The waker's most recent event precedes the unpark in
            // emission order; the woken goroutine's next event joins
            // its clock.
            joinInto(pendingJoin[e.gid], lastVc);
            continue;
        }
        const uint64_t g = e.gid;
        vc = gidVc[g];
        joinInto(vc, pendingJoin[g]);
        pendingJoin[g].clear();
        if (e.type == LogEv::AccessEv) {
            ObjVc &ov = objVc[e.obj];
            joinInto(vc, ov.lastWrite);
            if (e.write)
                joinInto(vc, ov.readJoin);
        }
        const uint32_t li = ++local[g];
        const size_t s = slot(g);
        if (vc.size() <= s)
            vc.resize(s + 1, 0);
        vc[s] = li;
        gidVc[g] = vc;
        if (e.type == LogEv::AccessEv) {
            ObjVc &ov = objVc[e.obj];
            if (e.write) {
                ov.lastWrite = vc;
                ov.readJoin.clear();
            } else {
                joinInto(ov.readJoin, vc);
            }
        } else { // SpawnEv
            joinInto(pendingJoin[e.aux], vc);
        }

        uint64_t h = kFnvOffset;
        h = fnv(h, g);
        h = fnv(h, li);
        if (e.type == LogEv::AccessEv) {
            h = fnv(h, objId[e.obj]);
            h = fnv(h, e.write ? 2 : 1);
        } else {
            h = fnv(h, ~uint64_t{0});
            h = fnv(h, e.aux);
        }
        for (size_t i = 0; i < vc.size(); ++i)
            if (vc[i] != 0) {
                h = fnv(h, slotTable[i]);
                h = fnv(h, vc[i]);
            }
        hash += h * 0x9e3779b97f4a7c15ull;
        lastVc = vc;
    }
    return hash;
}

} // namespace golite::explore
