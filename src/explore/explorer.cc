#include "explore/explorer.hh"

namespace golite::explore
{

namespace
{

RunOptions
normalized(RunOptions options)
{
    // Only the Random policy consults choose() for dispatch, and
    // random preemption would leak untracked nondeterminism into the
    // tree (see header).
    options.policy = SchedPolicy::Random;
    options.preemptProb = 0.0;
    return options;
}

void
tally(ExploreResult &result, const RunReport &report,
      const std::vector<size_t> &schedule)
{
    const bool was_bad = result.anyBad();
    result.schedules++;
    if (report.clean()) {
        result.clean++;
        return;
    }
    if (report.globalDeadlock)
        result.globalDeadlocks++;
    else if (report.panicked)
        result.panicked++;
    else if (report.livelocked)
        result.livelocked++;
    else
        result.leakedOnly++;
    if (!was_bad) {
        result.firstBad = report;
        result.firstBadSchedule = schedule;
    }
}

} // namespace

ExploreResult
exploreAll(const std::function<RunReport(const RunOptions &)> &run_once,
           const ExploreOptions &options)
{
    ExploreResult result;

    // DFS over the choice tree. `prefix` holds the choice taken at
    // each decision point of the current schedule; `fanout` the
    // number of alternatives observed there. New decision points
    // default to choice 0; after each run the deepest incrementable
    // position advances and everything below is discarded.
    std::vector<size_t> prefix;
    std::vector<size_t> fanout;

    for (;;) {
        size_t depth = 0;
        RunOptions run_options = normalized(options.runOptions);
        run_options.chooser = [&prefix, &fanout,
                               &depth](size_t n) -> size_t {
            if (depth < prefix.size()) {
                // Replaying the committed prefix. The branching
                // factor can only shrink if the program is
                // nondeterministic beyond our choices; clamp
                // defensively.
                const size_t pick =
                    prefix[depth] < n ? prefix[depth] : n - 1;
                fanout[depth] = n;
                depth++;
                return pick;
            }
            prefix.push_back(0);
            fanout.push_back(n);
            depth++;
            return 0;
        };

        const RunReport report = run_once(run_options);
        tally(result, report, prefix);

        if (options.maxSchedules &&
            result.schedules >= options.maxSchedules) {
            return result; // budget exhausted: not exhaustive
        }

        // Backtrack: drop exhausted tail decisions, advance the
        // deepest one with an untried sibling.
        while (!prefix.empty() &&
               prefix.back() + 1 >= fanout.back()) {
            prefix.pop_back();
            fanout.pop_back();
        }
        if (prefix.empty()) {
            result.exhaustive = true;
            return result;
        }
        prefix.back()++;
    }
}

ExploreResult
exploreProgram(const std::function<void()> &program,
               const ExploreOptions &options)
{
    return exploreAll(
        [&program](const RunOptions &run_options) {
            return run(program, run_options);
        },
        options);
}

RunReport
replaySchedule(
    const std::function<RunReport(const RunOptions &)> &run_once,
    const std::vector<size_t> &schedule, RunOptions options)
{
    options = normalized(options);
    size_t depth = 0;
    options.chooser = [&schedule, &depth](size_t n) -> size_t {
        const size_t pick =
            depth < schedule.size() ? schedule[depth] : 0;
        depth++;
        return pick < n ? pick : n - 1;
    };
    return run_once(options);
}

} // namespace golite::explore
