#include "explore/explorer.hh"

namespace golite::explore
{

namespace
{

RunOptions
normalized(RunOptions options)
{
    // Only the Random policy consults choose() for dispatch, and
    // random preemption would leak untracked nondeterminism into the
    // tree (see header).
    options.policy = SchedPolicy::Random;
    options.preemptProb = 0.0;
    return options;
}

void
tally(ExploreResult &result, const RunReport &report,
      const std::vector<size_t> &schedule)
{
    const bool was_bad = result.anyBad();
    result.schedules++;
    if (report.clean()) {
        result.clean++;
        return;
    }
    if (report.globalDeadlock)
        result.globalDeadlocks++;
    else if (report.panicked)
        result.panicked++;
    else if (report.livelocked)
        result.livelocked++;
    else
        result.leakedOnly++;
    if (!was_bad) {
        result.firstBad = report;
        result.firstBadSchedule = schedule;
        result.firstBadAt = result.schedules;
    }
}

/**
 * Backtrack: drop exhausted tail decisions, advance the deepest one
 * with an untried sibling. False when nothing above the pinned prefix
 * remains to advance — the subtree is fully enumerated.
 */
bool
advance(SubtreeCursor &cursor)
{
    while (cursor.prefix.size() > cursor.pinnedDepth &&
           cursor.prefix.back() + 1 >= cursor.fanout.back()) {
        cursor.prefix.pop_back();
        cursor.fanout.pop_back();
    }
    if (cursor.prefix.size() == cursor.pinnedDepth)
        return false;
    cursor.prefix.back()++;
    return true;
}

} // namespace

void
exploreSubtree(
    const std::function<RunReport(const RunOptions &)> &run_once,
    const ExploreOptions &options, SubtreeCursor &cursor,
    size_t budget, ExploreResult &result)
{
    if (cursor.done)
        return;
    if (!cursor.started) {
        cursor.started = true;
        cursor.pinnedDepth = cursor.prefix.size();
        // Replay overwrites these; sized so the chooser can index.
        cursor.fanout.assign(cursor.prefix.size(), 1);
    } else if (!advance(cursor)) {
        // Resuming right after the subtree's last schedule.
        cursor.done = true;
        return;
    }

    // DFS over the choice (sub)tree. `prefix` holds the choice taken
    // at each decision point of the current schedule; `fanout` the
    // number of alternatives observed there. New decision points
    // default to choice 0; after each run the deepest incrementable
    // position above pinnedDepth advances and everything below is
    // discarded.
    std::vector<size_t> &prefix = cursor.prefix;
    std::vector<size_t> &fanout = cursor.fanout;

    for (size_t used = 0;;) {
        size_t depth = 0;
        RunOptions run_options = normalized(options.runOptions);
        run_options.chooser = [&prefix, &fanout,
                               &depth](size_t n) -> size_t {
            if (depth < prefix.size()) {
                // Replaying the committed prefix. The branching
                // factor can only shrink if the program is
                // nondeterministic beyond our choices; clamp
                // defensively.
                const size_t pick =
                    prefix[depth] < n ? prefix[depth] : n - 1;
                fanout[depth] = n;
                depth++;
                return pick;
            }
            prefix.push_back(0);
            fanout.push_back(n);
            depth++;
            return 0;
        };

        const RunReport report = run_once(run_options);
        tally(result, report, prefix);
        used++;

        if (budget && used >= budget)
            return; // ticket spent; cursor resumes from here
        if (!advance(cursor)) {
            cursor.done = true;
            return;
        }
    }
}

size_t
fanoutAt(const std::function<RunReport(const RunOptions &)> &run_once,
         const std::vector<size_t> &prefix,
         const ExploreOptions &options)
{
    size_t depth = 0;
    size_t observed = 0;
    RunOptions run_options = normalized(options.runOptions);
    run_options.chooser = [&prefix, &depth,
                           &observed](size_t n) -> size_t {
        if (depth < prefix.size()) {
            const size_t pick =
                prefix[depth] < n ? prefix[depth] : n - 1;
            depth++;
            return pick;
        }
        if (depth == prefix.size())
            observed = n;
        depth++;
        return 0;
    };
    run_once(run_options);
    return observed;
}

ExploreResult
exploreAll(const std::function<RunReport(const RunOptions &)> &run_once,
           const ExploreOptions &options)
{
    ExploreResult result;
    SubtreeCursor cursor; // empty pinned prefix: the whole tree
    exploreSubtree(run_once, options, cursor, options.maxSchedules,
                   result);
    result.exhaustive = cursor.done;
    return result;
}

ExploreResult
exploreProgram(const std::function<void()> &program,
               const ExploreOptions &options)
{
    return exploreAll(
        [&program](const RunOptions &run_options) {
            return run(program, run_options);
        },
        options);
}

RunReport
replaySchedule(
    const std::function<RunReport(const RunOptions &)> &run_once,
    const std::vector<size_t> &schedule, RunOptions options)
{
    options = normalized(options);
    size_t depth = 0;
    options.chooser = [&schedule, &depth](size_t n) -> size_t {
        const size_t pick =
            depth < schedule.size() ? schedule[depth] : 0;
        depth++;
        return pick < n ? pick : n - 1;
    };
    return run_once(options);
}

} // namespace golite::explore
