#include "explore/explorer.hh"

#include <algorithm>
#include <stdexcept>

#include "explore/dpor.hh"

namespace golite::explore
{

namespace
{

RunOptions
normalized(RunOptions options)
{
    // Only the Random policy consults the decision engine for
    // dispatch, and random preemption would leak untracked
    // nondeterminism into the tree (see header). Preemption under a
    // bound is explored as explicit choice points via the site
    // chooser, never as a coin.
    options.policy = SchedPolicy::Random;
    options.preemptProb = 0.0;
    return options;
}

void
tally(ExploreResult &result, const RunReport &report,
      const std::vector<size_t> &schedule,
      const ExploreOptions &options)
{
    const bool was_bad = result.anyBad();
    result.schedules++;
    if (options.onSchedule)
        options.onSchedule(report, schedule);
    if (report.clean()) {
        result.clean++;
        return;
    }
    if (report.globalDeadlock)
        result.globalDeadlocks++;
    else if (report.panicked)
        result.panicked++;
    else if (report.livelocked)
        result.livelocked++;
    else if (!report.leaked.empty())
        result.leakedOnly++;
    else
        result.raced++; // completed, nothing leaked: detector reports
    if (!was_bad) {
        result.firstBad = report;
        result.firstBadSchedule = schedule;
        result.firstBadAt = result.executions;
    }
}

/**
 * Backtrack: drop exhausted tail decisions, advance the deepest one
 * with an untried sibling. False when nothing above the pinned prefix
 * remains to advance — the subtree is fully enumerated.
 */
bool
advance(SubtreeCursor &cursor)
{
    while (cursor.prefix.size() > cursor.pinnedDepth &&
           cursor.prefix.back() + 1 >= cursor.fanout.back()) {
        cursor.prefix.pop_back();
        cursor.fanout.pop_back();
    }
    if (cursor.prefix.size() == cursor.pinnedDepth)
        return false;
    cursor.prefix.back()++;
    return true;
}

/** Would advance() find another sibling? (const; used to detect
 *  "budget ran out exactly at the subtree's last schedule"). */
bool
canAdvance(const SubtreeCursor &cursor)
{
    for (size_t d = cursor.prefix.size(); d-- > cursor.pinnedDepth;)
        if (cursor.prefix[d] + 1 < cursor.fanout[d])
            return true;
    return false;
}

} // namespace

// ===================================================================
// DPOR walker state
// ===================================================================

namespace
{

/** A transition put to sleep: exploring it from here on is redundant
 *  until a dependent step wakes it. */
struct SleepEntry
{
    DecisionKind kind = DecisionKind::Pick;
    size_t choice = 0;
    uint64_t gid = 0;
    /** Footprint of the step this transition executed when it was
     *  explored (actor set includes gid). */
    StepFootprint fp;
};

struct DporNode
{
    DecisionKind kind = DecisionKind::Pick;
    size_t alternatives = 0;
    size_t pick = 0;
    /** Acting goroutine of the current pick (chosen gid for Pick). */
    uint64_t gid = 0;
    /** Deciding goroutine at the site (0 for dispatch picks). */
    uint64_t siteGid = 0;
    /** Pick only: runnable gid per choice index. */
    std::vector<uint64_t> cands;
    /** Preemption picks taken at shallower depths on this path. */
    int yieldsBefore = 0;
    /** Untried siblings queued by the persistent-set analysis
     *  (sorted ascending; smallest explored first). */
    std::vector<size_t> pending;
    /** Choices already picked or queued (never re-add). */
    std::vector<char> considered;
    /** Sleep set at this node's state, retired siblings included. */
    std::vector<SleepEntry> sleep;
};

} // namespace

struct DporState
{
    std::vector<DporNode> stack;
    /** Footprint of step d in the last execution (for retiring picks
     *  into sleep entries). */
    std::vector<StepFootprint> lastFp;
    DependenceOracle oracle;
};

namespace
{

bool
sleptChoice(const DporNode &node, size_t c)
{
    for (const SleepEntry &e : node.sleep) {
        if (node.kind == DecisionKind::Pick) {
            // Dispatch transitions are identified by the goroutine
            // they run — its position in the ready queue varies.
            if (e.kind == DecisionKind::Pick &&
                c < node.cands.size() && e.gid == node.cands[c])
                return true;
        } else if (e.kind == node.kind && e.gid == node.siteGid &&
                   e.choice == c) {
            return true;
        }
    }
    return false;
}

bool
addPending(DporNode &node, size_t c)
{
    if (c >= node.alternatives || node.considered[c])
        return false;
    if (sleptChoice(node, c))
        return false; // a sibling subtree already covers it
    node.considered[c] = 1;
    node.pending.insert(
        std::lower_bound(node.pending.begin(), node.pending.end(), c),
        c);
    return true;
}

/**
 * Flanagan–Godefroid backtrack insertion at a Pick node for the race
 * (steps[i], steps[j]): prefer a candidate that leads to steps[j] —
 * its own goroutine, or an intermediate sub-step ordered before it —
 * and fall back to the whole candidate set when none qualifies (the
 * conservative persistent-set closure).
 */
void
backtrackAtPick(DporState &st, DporNode &node, size_t i, size_t j)
{
    const std::vector<OracleStep> &steps = st.oracle.steps();
    const uint64_t want = steps[j].gid;
    size_t chosen = SIZE_MAX;
    for (size_t c = 0; c < node.cands.size() && chosen == SIZE_MAX;
         ++c) {
        if (node.cands[c] == want)
            chosen = c;
    }
    for (size_t c = 0; c < node.cands.size() && chosen == SIZE_MAX;
         ++c) {
        for (size_t k = i + 1; k < j; ++k) {
            if (steps[k].gid == node.cands[c] &&
                st.oracle.happensBefore(k, j)) {
                chosen = c;
                break;
            }
        }
    }
    if (chosen != SIZE_MAX) {
        addPending(node, chosen);
    } else {
        for (size_t c = 0; c < node.cands.size(); ++c)
            addPending(node, c);
    }
}

/**
 * Post-execution persistent-set analysis (Flanagan–Godefroid): for
 * every pair of dependent steps not ordered by happens-before, queue
 * a backtrack point at the earlier one so the conflicting step gets
 * to run first in some later execution.
 */
void
analyze(DporState &st, int bound)
{
    const std::vector<OracleStep> &steps = st.oracle.steps();
    for (size_t j = 1; j < steps.size(); ++j) {
        if (steps[j].node >= st.stack.size())
            break; // beyond the walker's tree (defensive)
        for (size_t i = 0; i < j; ++i) {
            if (st.oracle.happensBefore(i, j))
                continue;
            if (!st.oracle.dependent(i, j))
                continue;
            // A reversible race: backtrack at the decision whose span
            // executed steps[i] so the conflicting transition can run
            // first in some later execution.
            DporNode &node = st.stack[steps[i].node];
            switch (node.kind) {
              case DecisionKind::Pick: {
                if (!steps[i].opensSpan) {
                    // steps[i] is a forced continuation; the state at
                    // the decision is earlier than pre(i), where the
                    // targeted-candidate rule is not justified —
                    // enqueue the whole candidate set.
                    for (size_t c = 0; c < node.cands.size(); ++c)
                        addPending(node, c);
                    break;
                }
                backtrackAtPick(st, node, i, j);
                break;
              }
              case DecisionKind::SelectArm:
                // A select decision is one Fisher–Yates draw, not an
                // arm pick, so no draw targets "the conflicting arm":
                // conservatively enumerate the untried draws.
                for (size_t c = 0; c < node.alternatives; ++c)
                    addPending(node, c);
                break;
              case DecisionKind::Preempt:
                // Yielding here lets the conflicting goroutine
                // interleave before this access — but only within the
                // preemption budget.
                if (node.yieldsBefore + 1 <= bound)
                    addPending(node, 1);
                // Bounded-DPOR conservative rule (Coons et al.): the
                // same reordering may be reachable without spending a
                // preemption by scheduling the racing goroutine at
                // the nearest enclosing Pick — a voluntary switch
                // point. Without this, classes whose only in-bound
                // witness starts from a different dispatch are
                // silently pruned once the yield here is over budget.
                for (uint32_t p = steps[i].node; p-- > 0;) {
                    if (st.stack[p].kind != DecisionKind::Pick)
                        continue;
                    backtrackAtPick(st, st.stack[p], i, j);
                    break;
                }
                break;
            }
        }
    }
}

/** Deepest node with a queued sibling: retire its executed pick into
 *  the sleep set and switch to the sibling. False = tree finished. */
bool
advanceDpor(DporState &st)
{
    while (!st.stack.empty()) {
        DporNode &node = st.stack.back();
        if (!node.pending.empty()) {
            SleepEntry e;
            e.kind = node.kind;
            e.choice = node.pick;
            e.gid = node.kind == DecisionKind::Pick ? node.gid
                                                    : node.siteGid;
            const size_t d = st.stack.size() - 1;
            if (d < st.lastFp.size())
                e.fp = st.lastFp[d];
            e.fp.addActor(node.gid);
            // The span opener alone under-approximates the slept
            // transition when preempt coins split the goroutine's
            // step: its first real access may sit in a deeper Preempt
            // span, and an entry that misses it never wakes — unsound
            // pruning. Widen with everything the goroutine did from
            // this decision onward in the last run (a superset only
            // costs spurious wakes).
            for (const OracleStep &s : st.oracle.steps()) {
                if (s.node >= d && s.gid == node.gid)
                    for (const Access &a : s.fp.accesses)
                        e.fp.add(a.key, a.write);
            }
            node.sleep.push_back(std::move(e));
            node.pick = node.pending.front();
            node.pending.erase(node.pending.begin());
            st.lastFp.resize(st.stack.size());
            return true;
        }
        st.stack.pop_back();
    }
    return false;
}

bool
anyPending(const DporState &st)
{
    for (const DporNode &node : st.stack)
        if (!node.pending.empty())
            return true;
    return false;
}

std::vector<size_t>
stackSchedule(const DporState &st)
{
    std::vector<size_t> sched;
    sched.reserve(st.stack.size());
    for (const DporNode &node : st.stack)
        sched.push_back(node.pick);
    return sched;
}

/** One execution of the program under the walker's site chooser.
 *  Returns true when the run counted as a schedule (not
 *  sleep-set-blocked). */
bool
runOnceDpor(
    const std::function<RunReport(const RunOptions &)> &run_once,
    const ExploreOptions &options, DporState &st,
    ExploreResult &result)
{
    const bool enumerate = options.mode == ExploreMode::Naive;
    const int bound = options.preemptionBound;

    st.oracle.beginRun();
    size_t depth = 0;
    int yields = 0;
    bool redundant = false;
    size_t frozen_depth = SIZE_MAX;

    RunOptions ro = normalized(options.runOptions);
    ro.subscribers.push_back(&st.oracle);
    ro.siteChooser = [&](const ChoiceSite &site) -> size_t {
        const size_t d = depth++;
        if (d >= frozen_depth)
            return 0; // sleep-blocked: finish the run, don't extend
        if (d < st.stack.size()) {
            // Replaying the committed prefix (deterministic: the
            // metadata refresh below re-reads identical values).
            DporNode &node = st.stack[d];
            node.kind = site.kind;
            node.alternatives = site.alternatives;
            node.siteGid = site.gid;
            if (node.pick >= site.alternatives)
                node.pick = site.alternatives - 1; // defensive clamp
            if (site.kind == DecisionKind::Pick &&
                site.candidates != nullptr) {
                node.cands.assign(site.candidates,
                                  site.candidates +
                                      site.alternatives);
                node.gid = node.cands[node.pick];
            } else {
                node.gid = site.gid;
            }
            node.yieldsBefore = yields;
            if (site.kind == DecisionKind::Preempt && node.pick == 1)
                yields++;
            return node.pick;
        }

        // Fresh node: inherit the parent's sleep set, minus entries a
        // dependent step just woke.
        DporNode node;
        node.kind = site.kind;
        node.alternatives = site.alternatives;
        node.siteGid = site.gid;
        if (site.kind == DecisionKind::Pick &&
            site.candidates != nullptr)
            node.cands.assign(site.candidates,
                              site.candidates + site.alternatives);
        node.considered.assign(site.alternatives, 0);
        node.yieldsBefore = yields;
        if (d > 0) {
            // A sleeping transition wakes when any sub-step executed
            // since the parent decision depends on it: the parent
            // span's closed sub-steps (contiguous tail of steps())
            // plus the still-open one.
            const std::vector<OracleStep> &steps = st.oracle.steps();
            const StepFootprint &open = st.oracle.pendingFootprint();
            const uint32_t parent = static_cast<uint32_t>(d - 1);
            for (const SleepEntry &e : st.stack[d - 1].sleep) {
                bool woken = footprintsConflict(e.fp, open);
                for (size_t x = steps.size();
                     !woken && x-- > 0 && steps[x].node == parent;)
                    woken = footprintsConflict(e.fp, steps[x].fp);
                if (!woken)
                    node.sleep.push_back(e);
            }
        }

        // Default pick: the smallest choice not asleep. Preemption is
        // opt-in — choice 1 is only ever taken when the analysis
        // queued it, or (enumerate mode) seeded below; but if the
        // continuation itself is asleep and budget remains, stepping
        // aside is the only non-redundant default.
        size_t pick = SIZE_MAX;
        if (site.kind == DecisionKind::Preempt) {
            if (!sleptChoice(node, 0))
                pick = 0;
            else if (yields + 1 <= bound && !sleptChoice(node, 1))
                pick = 1;
        } else {
            for (size_t c = 0; c < site.alternatives; ++c) {
                if (!sleptChoice(node, c)) {
                    pick = c;
                    break;
                }
            }
        }
        if (pick == SIZE_MAX) {
            // Every enabled choice is asleep: any continuation from
            // here is Mazurkiewicz-equivalent to an explored sibling.
            redundant = true;
            frozen_depth = d;
            return 0;
        }
        node.pick = pick;
        node.considered[pick] = 1;
        if (enumerate) {
            // Bounded-naive mode: seed every sibling up front (full
            // enumeration; no sleep sets, no analysis).
            for (size_t c = 0; c < site.alternatives; ++c) {
                if (c == node.pick)
                    continue;
                if (site.kind == DecisionKind::Preempt && c == 1 &&
                    node.yieldsBefore + 1 > bound)
                    continue;
                node.considered[c] = 1;
                node.pending.push_back(c);
            }
        }
        if (site.kind == DecisionKind::Preempt && node.pick == 1)
            yields++;
        node.gid = site.kind == DecisionKind::Pick &&
                           !node.cands.empty()
                       ? node.cands[node.pick]
                       : site.gid;
        st.stack.push_back(std::move(node));
        return st.stack.back().pick;
    };

    const RunReport report = run_once(ro);
    result.executions++;

    // Remember each decision's chosen transition (its span-opening
    // sub-step) so advanceDpor can retire the pick into a sleep entry
    // with the right footprint.
    if (st.lastFp.size() < st.stack.size())
        st.lastFp.resize(st.stack.size());
    for (const OracleStep &s : st.oracle.steps())
        if (s.opensSpan && s.node < st.stack.size())
            st.lastFp[s.node] = s.fp;

    if (redundant) {
        result.redundant++;
        return false;
    }
    tally(result, report, stackSchedule(st), options);
    if (options.collectHbClasses)
        result.hbClasses.insert(st.oracle.hbFingerprint());
    if (options.mode == ExploreMode::Dpor)
        analyze(st, options.preemptionBound);
    return true;
}

void
exploreSubtreeDpor(
    const std::function<RunReport(const RunOptions &)> &run_once,
    const ExploreOptions &options, SubtreeCursor &cursor,
    size_t budget, ExploreResult &result)
{
    if (cursor.done)
        return;
    if (!cursor.started && !cursor.prefix.empty())
        throw std::logic_error(
            "DPOR/preemption-bounded exploration discovers its "
            "frontier dynamically and does not support pinned "
            "prefixes; use an empty cursor");
    if (!cursor.dpor)
        cursor.dpor = std::make_shared<DporState>();
    DporState &st = *cursor.dpor;

    for (size_t used = 0;;) {
        if (!cursor.started)
            cursor.started = true;
        else if (!advanceDpor(st)) {
            cursor.done = true;
            return;
        }
        runOnceDpor(run_once, options, st, result);
        used++;
        // Mirror the last executed schedule for observability.
        cursor.prefix = stackSchedule(st);
        cursor.fanout.clear();
        for (const DporNode &node : st.stack)
            cursor.fanout.push_back(node.alternatives);
        if (budget && used >= budget) {
            if (!anyPending(st))
                cursor.done = true;
            return;
        }
    }
}

} // namespace

// ===================================================================
// Public API
// ===================================================================

std::string
ExploreResult::certificate() const
{
    if (!certified())
        return "";
    std::string out = "no bug within preemption bound ";
    out += std::to_string(preemptionBound);
    out += " (";
    out += mode == ExploreMode::Dpor ? "dpor" : "naive";
    out += ", ";
    out += std::to_string(schedules);
    out += " schedules / ";
    out += std::to_string(executions);
    out += " executions)";
    return out;
}

void
exploreSubtree(
    const std::function<RunReport(const RunOptions &)> &run_once,
    const ExploreOptions &options, SubtreeCursor &cursor,
    size_t budget, ExploreResult &result)
{
    if (options.mode == ExploreMode::Dpor ||
        options.preemptionBound > 0) {
        exploreSubtreeDpor(run_once, options, cursor, budget, result);
        return;
    }

    if (cursor.done)
        return;
    if (!cursor.started) {
        cursor.started = true;
        cursor.pinnedDepth = cursor.prefix.size();
        // Replay overwrites these; sized so the chooser can index.
        cursor.fanout.assign(cursor.prefix.size(), 1);
    } else if (!advance(cursor)) {
        // Resuming right after the subtree's last schedule.
        cursor.done = true;
        return;
    }

    // DFS over the choice (sub)tree. `prefix` holds the choice taken
    // at each decision point of the current schedule; `fanout` the
    // number of alternatives observed there. New decision points
    // default to choice 0; after each run the deepest incrementable
    // position above pinnedDepth advances and everything below is
    // discarded.
    std::vector<size_t> &prefix = cursor.prefix;
    std::vector<size_t> &fanout = cursor.fanout;

    DependenceOracle oracle; // only attached for collectHbClasses

    for (size_t used = 0;;) {
        size_t depth = 0;
        RunOptions run_options = normalized(options.runOptions);
        // The site chooser sees the preemption coin too (unlike the
        // plain chooser); Naive mode keeps preemption off and gives
        // preempt sites no tree depth, so schedule vectors and counts
        // are unchanged from the historical chooser-based walker.
        run_options.siteChooser =
            [&prefix, &fanout, &depth](const ChoiceSite &site)
            -> size_t {
            if (site.kind == DecisionKind::Preempt)
                return 0;
            const size_t n = site.alternatives;
            if (depth < prefix.size()) {
                // Replaying the committed prefix. The branching
                // factor can only shrink if the program is
                // nondeterministic beyond our choices; clamp
                // defensively.
                const size_t pick =
                    prefix[depth] < n ? prefix[depth] : n - 1;
                fanout[depth] = n;
                depth++;
                return pick;
            }
            prefix.push_back(0);
            fanout.push_back(n);
            depth++;
            return 0;
        };
        if (options.collectHbClasses) {
            oracle.beginRun();
            run_options.subscribers.push_back(&oracle);
        }

        const RunReport report = run_once(run_options);
        result.executions++;
        tally(result, report, prefix, options);
        if (options.collectHbClasses)
            result.hbClasses.insert(oracle.hbFingerprint());
        used++;

        if (budget && used >= budget) {
            // Ticket spent; the cursor resumes from here — unless the
            // budget ran out exactly at the subtree's last schedule,
            // which must still count as complete (exhaustive
            // semantics: only *abandoned* backtrack points may clear
            // the flag).
            if (!canAdvance(cursor))
                cursor.done = true;
            return;
        }
        if (!advance(cursor)) {
            cursor.done = true;
            return;
        }
    }
}

size_t
fanoutAt(const std::function<RunReport(const RunOptions &)> &run_once,
         const std::vector<size_t> &prefix,
         const ExploreOptions &options)
{
    size_t depth = 0;
    size_t observed = 0;
    RunOptions run_options = normalized(options.runOptions);
    run_options.chooser = [&prefix, &depth,
                           &observed](size_t n) -> size_t {
        if (depth < prefix.size()) {
            const size_t pick =
                prefix[depth] < n ? prefix[depth] : n - 1;
            depth++;
            return pick;
        }
        if (depth == prefix.size())
            observed = n;
        depth++;
        return 0;
    };
    run_once(run_options);
    return observed;
}

ExploreResult
exploreAll(const std::function<RunReport(const RunOptions &)> &run_once,
           const ExploreOptions &options)
{
    ExploreResult result;
    result.mode = options.mode;
    result.preemptionBound = options.preemptionBound;
    SubtreeCursor cursor; // empty pinned prefix: the whole tree
    exploreSubtree(run_once, options, cursor, options.maxSchedules,
                   result);
    result.exhaustive = cursor.done;
    return result;
}

ExploreResult
exploreProgram(const std::function<void()> &program,
               const ExploreOptions &options)
{
    return exploreAll(
        [&program](const RunOptions &run_options) {
            return run(program, run_options);
        },
        options);
}

RunReport
replaySchedule(
    const std::function<RunReport(const RunOptions &)> &run_once,
    const std::vector<size_t> &schedule, RunOptions options,
    bool siteSchedule)
{
    options = normalized(options);
    size_t depth = 0;
    if (siteSchedule) {
        // Dpor-mode schedules index every decision site, preemption
        // coins included.
        options.siteChooser = [&schedule,
                               &depth](const ChoiceSite &site)
            -> size_t {
            const size_t pick =
                depth < schedule.size() ? schedule[depth] : 0;
            depth++;
            return pick < site.alternatives ? pick
                                            : site.alternatives - 1;
        };
    } else {
        options.chooser = [&schedule, &depth](size_t n) -> size_t {
            const size_t pick =
                depth < schedule.size() ? schedule[depth] : 0;
            depth++;
            return pick < n ? pick : n - 1;
        };
    }
    return run_once(options);
}

} // namespace golite::explore
