/**
 * @file
 * The dependence oracle behind the DPOR explorer: an event-bus
 * subscriber that segments one run into *sub-steps* — maximal spans of
 * events by a single goroutine — and records, per sub-step, which
 * objects were read or written. Scheduling decisions open a *span*;
 * forced continuations (the runtime dispatching the only runnable
 * goroutine, no choice involved) extend the span with further
 * sub-steps. From that the oracle derives the two relations dynamic
 * partial-order reduction needs:
 *
 *  - dependence: two sub-steps conflict when they share an actor or
 *    touch a common object with at least one write-like access
 *    (channel ops, lock writes, once/waitgroup mutations, instrumented
 *    shared writes, virtual-clock advances, spawns);
 *  - must-happen-before: per-goroutine vector clocks over sub-step
 *    indices joined through program order, spawn edges, and unpark
 *    edges only — the orderings that hold in *every* schedule. Two
 *    dependent sub-steps NOT so ordered form a race the walker must
 *    backtrack on. (Joining through conflicting objects here would be
 *    circular: the direct dependence would order every racing pair and
 *    no race would ever surface.)
 *
 * The dependence relation is deliberately *over*-approximated (extra
 * dependence means extra backtracking: wasted runs, never missed
 * ones) while must-happens-before is *under*-approximated (a missing
 * edge means a spurious backtrack, never a skipped one). The
 * differential harness in tests/explore_dpor_test.cc exists to catch
 * violations of this contract.
 *
 * The oracle also computes a Mazurkiewicz-trace fingerprint of the
 * run: a schedule-order-invariant hash of the happens-before partial
 * order over individual access events (this one *does* close over
 * object conflicts — that is what makes it a trace invariant). Two
 * schedules that differ only by commuting independent steps hash
 * identically, which is what lets the property tests check "every
 * naively-found schedule is equivalent to some DPOR-explored one"
 * without enumerating permutations.
 */

#ifndef GOLITE_EXPLORE_DPOR_HH
#define GOLITE_EXPLORE_DPOR_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "runtime/events.hh"
#include "runtime/sched_trace.hh"

namespace golite::explore
{

/**
 * One object touched by a sub-step (deduplicated; write dominates).
 * The key is a *cross-run stable* canonical identity, never a raw
 * heap pointer: sleep-entry footprints recorded in one execution are
 * compared against spans of later executions, and heap addresses
 * drift between runs (allocator state carries over), which would
 * silently miss wakes — unsound pruning. See
 * DependenceOracle::keyFor for the encoding.
 */
struct Access
{
    uint64_t key = 0;
    bool write = false;
};

/** What one sub-step (single-goroutine event span) did. */
struct StepFootprint
{
    std::vector<Access> accesses;
    /** The acting goroutine (one entry; kept as a vector so sleep
     *  entries can widen it with the retired pick's gid). */
    std::vector<uint64_t> actors;

    void clear()
    {
        accesses.clear();
        actors.clear();
    }

    /** Record one access, OR-ing the write flag into an existing
     *  entry for the same object key. */
    void add(uint64_t key, bool write);

    void addActor(uint64_t gid);

    bool hasActor(uint64_t gid) const;
};

/** True when the footprints conflict: a common object with at least
 *  one write, or a common actor (program order). */
bool footprintsConflict(const StepFootprint &a, const StepFootprint &b);

/** Marker: sub-step belongs to no decision span (never appears on
 *  recorded steps — the prologue folds into the base clock). */
constexpr uint32_t kNoDporNode = UINT32_MAX;

/** One closed sub-step with its must-happens-before clock. */
struct OracleStep
{
    /** Index of the decision (== walker stack depth) whose span this
     *  sub-step belongs to. */
    uint32_t node = kNoDporNode;
    /** First sub-step of its span: the transition the decision
     *  actually chose (later sub-steps are forced continuations). */
    bool opensSpan = false;
    // Span metadata, copied onto every sub-step of the span.
    DecisionKind kind = DecisionKind::Pick;
    uint32_t alternatives = 0;
    uint32_t pick = 0;
    /** The sub-step's acting goroutine. */
    uint64_t gid = 0;
    StepFootprint fp;
    /** Vector clock by goroutine slot; steps[i] must-happens-before
     *  steps[j] iff clock[j][slot(i)] >= selfLocal(i). */
    std::vector<uint32_t> clock;
    uint32_t selfLocal = 0;
    uint32_t slot = 0;
};

/**
 * The oracle proper. Attach to a run driven through
 * RunOptions::siteChooser (the Decision events then carry Pick
 * candidate gids); it needs no cooperation from the chooser — span
 * boundaries are the Decision events themselves, sub-step boundaries
 * are actor switches in the event stream, and finalizeRun closes the
 * trailing sub-step.
 *
 * Reuse across runs via beginRun(). Not thread-safe; one oracle per
 * exploration.
 */
class DependenceOracle final : public Subscriber
{
  public:
    /** Reset for the next run (call before golite::run). */
    void beginRun();

    /** Closed sub-steps of the finished (or in-progress) run, in
     *  execution order. Sub-steps of one span are contiguous. */
    const std::vector<OracleStep> &steps() const { return steps_; }

    /** The still-open sub-step's footprint: events since the most
     *  recent boundary. At a siteChooser callback for depth d this
     *  belongs to span d-1 (the decision event that will close it has
     *  not been published yet). */
    const StepFootprint &pendingFootprint() const { return curFp_; }

    /** Is steps()[i] ordered before steps()[j] in *every* schedule
     *  (program order, spawn, unpark)? (i < j required.) */
    bool happensBefore(size_t i, size_t j) const;

    /** Conflict over recorded sub-steps (actor overlap or object
     *  clash). dependent && !happensBefore == a reversible race. */
    bool
    dependent(size_t i, size_t j) const
    {
        return footprintsConflict(steps_[i].fp, steps_[j].fp);
    }

    /**
     * Schedule-order-invariant hash of the run's happens-before
     * partial order over access events (see file comment). Computed
     * from the event log of the finished run.
     */
    uint64_t hbFingerprint() const;

    // --- Subscriber ------------------------------------------------
    EventMask eventMask() const override;
    void onEvent(const RuntimeEvent &ev) override;
    void onMemAccess(const void *addr, const char *label, uint64_t gid,
                     bool is_write) override;
    void finalizeRun(RunReport &report) override;

  private:
    /** Close the accumulating sub-step: compute its clock, fold it
     *  into the per-goroutine clocks (or the base clock during the
     *  prologue). */
    void closeStep();

    /** Start the span a just-published decision opened. */
    void openSpan(const RuntimeEvent &ev);

    /** Cut a sub-step boundary when the acting goroutine changes
     *  mid-span (forced continuation). */
    void switchActor(uint64_t gid);

    size_t slotOf(uint64_t gid);

    /**
     * Cross-run stable canonical key for an object (see Access):
     * labeled instrumented accesses hash the static label (bit 63
     * tag; distinct variables sharing a label merge — over-
     * dependence, the sound direction); synthesized pseudo-objects
     * (bit 62 tag) and the static sentinels pass through; remaining
     * heap objects get a first-sighting ordinal (bit 61 tag), which
     * is identical across runs sharing a schedule prefix.
     */
    uint64_t keyFor(const void *obj, const char *label);

    void noteAccess(uint64_t gid, const void *obj, bool write,
                    const char *label = nullptr);

    /** An operation on @p chan also writes the pseudo-object of every
     *  *other* goroutine's blocked select watching it (first-wins
     *  wake races — see ActiveSelect). */
    void touchSelectWatchers(uint64_t gid, const void *chan);

    /** Flat log entry for the fingerprint pass. */
    struct LogEv
    {
        enum Type : uint8_t
        {
            AccessEv,
            SpawnEv,  ///< aux = child gid
            UnparkEv, ///< gid = woken goroutine
        };
        Type type = AccessEv;
        uint64_t gid = 0;
        const void *obj = nullptr;
        bool write = false;
        uint64_t aux = 0;
    };

    // Current (open) sub-step.
    StepFootprint curFp_;
    DecisionKind curKind_ = DecisionKind::Pick;
    uint32_t curAlternatives_ = 0;
    uint32_t curPick_ = 0;
    uint64_t curGid_ = 0;
    uint32_t curNode_ = kNoDporNode;
    bool curOpens_ = false;
    bool prologue_ = true; ///< open sub-step precedes the first decision

    std::vector<OracleStep> steps_;
    uint32_t nodeCount_ = 0;
    /** Clock of the prologue pseudo-steps; every sub-step joins it
     *  (the prologue is identical in every schedule and ordered
     *  before everything). */
    std::vector<uint32_t> baseClock_;

    // Goroutine slots and clocks.
    std::vector<uint64_t> slotGid_;
    std::vector<std::vector<uint32_t>> gidClock_;
    std::vector<uint32_t> localCount_;
    /** Sub-step indices whose clocks the gid's next sub-step must
     *  join (spawn and unpark edges). */
    std::vector<std::vector<uint32_t>> pendingJoins_;

    std::vector<LogEv> log_;

    /**
     * A goroutine blocked in select is a first-wins resource: sends
     * on *different* watched channels race to wake it, so each
     * blocked select gets a pseudo-object that every operation on a
     * watched channel writes until the selector wakes. Without it two
     * senders into one select look independent and the losing arm's
     * schedules are (unsoundly) pruned.
     */
    struct ActiveSelect
    {
        uint64_t gid = 0;
        const void *pseudo = nullptr;
        std::vector<const void *> chans;
    };
    std::vector<ActiveSelect> activeSelects_;
    /** Per-gid select counter: makes the pseudo-object identity
     *  stable across runs sharing a schedule prefix. */
    std::unordered_map<uint64_t, uint32_t> selectSeq_;

    /** First-sighting ordinals for unlabeled heap objects (keyFor). */
    std::unordered_map<const void *, uint64_t> canon_;

    std::vector<uint32_t> scratchClock_;
};

/** Pseudo-object for virtual-clock advances (timer order). */
const void *clockPseudoObj();

/** Pseudo-object serializing goroutine spawns (gid assignment is
 *  spawn-order-dependent and observable in reports). */
const void *spawnPseudoObj();

} // namespace golite::explore

#endif // GOLITE_EXPLORE_DPOR_HH
