/**
 * @file
 * Umbrella header: the full golite public API.
 *
 * golite is a Go-like concurrency runtime for C++ built to reproduce
 * the systems studied in "Understanding Real-World Concurrency Bugs in
 * Go" (ASPLOS 2019): goroutines, channels, select, the sync package,
 * time/context/io.Pipe libraries, the two built-in detectors the
 * paper evaluates, and the wait-for-graph partial-deadlock detector
 * that closes the Table 8 blind spot.
 */

#ifndef GOLITE_GOLITE_HH
#define GOLITE_GOLITE_HH

#include "base/panic.hh"
#include "channel/chan.hh"
#include "channel/select.hh"
#include "context/context.hh"
#include "goio/pipe.hh"
#include "gotime/time.hh"
#include "load/soak.hh"
#include "netpoll/netpoll.hh"
#include "obs/histogram.hh"
#include "obs/metrics.hh"
#include "obs/trace_event_sink.hh"
#include "race/detector.hh"
#include "race/shared.hh"
#include "runtime/events.hh"
#include "runtime/report.hh"
#include "runtime/scheduler.hh"
#include "sync/atomic.hh"
#include "sync/cond.hh"
#include "sync/mutex.hh"
#include "sync/once.hh"
#include "sync/pool.hh"
#include "sync/rwmutex.hh"
#include "sync/syncmap.hh"
#include "sync/waitgroup.hh"
#include "vet/vet.hh"
#include "waitgraph/waitgraph.hh"

#endif // GOLITE_GOLITE_HH
