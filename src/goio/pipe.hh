/**
 * @file
 * io.Pipe: a synchronous in-memory byte pipe.
 *
 * The paper's "messaging libraries" blocking-bug class (4 bugs): like a
 * channel, an io.Pipe that is never closed blocks its peer forever.
 * Matching Go's io.Pipe, writes block until a reader consumes the data
 * (no internal buffering), and either end can be closed with an error
 * that the other end observes.
 */

#ifndef GOLITE_GOIO_PIPE_HH
#define GOLITE_GOIO_PIPE_HH

#include <cstddef>
#include <deque>
#include <memory>
#include <string>
#include <utility>

namespace golite
{

class Goroutine;

namespace goio
{

/** Result of a read/write: bytes moved plus an error string. */
struct IoResult
{
    size_t n = 0;
    /** Empty on success; "EOF", "io: read/write on closed pipe", or a
     * CloseWithError cause. */
    std::string err;

    bool ok() const { return err.empty(); }
};

namespace detail
{

struct PipeState;

} // namespace detail

class PipeReader
{
  public:
    /**
     * Read up to @p max bytes into @p out. Blocks until a writer
     * provides data or the write side closes (then err="EOF" or the
     * close cause).
     */
    IoResult read(std::string &out, size_t max = SIZE_MAX);

    /** Close the read side; blocked/future writers get an error. */
    void close(const std::string &cause = "");

  private:
    friend std::pair<PipeReader, class PipeWriter> makePipe();
    std::shared_ptr<detail::PipeState> state_;
};

class PipeWriter
{
  public:
    /**
     * Write all of @p data. Blocks until readers have consumed every
     * byte (no buffering — this is why forgetting to close a pipe
     * blocks the writer forever).
     */
    IoResult write(const std::string &data);

    /** Close the write side; readers drain then see EOF/cause. */
    void close(const std::string &cause = "");

  private:
    friend std::pair<PipeReader, PipeWriter> makePipe();
    std::shared_ptr<detail::PipeState> state_;
};

/** Create a connected reader/writer pair (Go's io.Pipe()). */
std::pair<PipeReader, PipeWriter> makePipe();

} // namespace goio
} // namespace golite

#endif // GOLITE_GOIO_PIPE_HH
