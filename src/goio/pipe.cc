#include "goio/pipe.hh"

#include <algorithm>

#include "base/panic.hh"
#include "runtime/scheduler.hh"

namespace golite::goio
{

namespace detail
{

/**
 * Shared pipe state. At most one pending writer chunk at a time; the
 * writer parks until the chunk is fully consumed (synchronous pipe).
 */
struct PipeState
{
    // Pending write: data the current writer is offering.
    std::string pending;
    size_t offset = 0;
    Goroutine *writer = nullptr;
    bool writerDone = false;

    std::deque<Goroutine *> readq;

    bool readClosed = false;
    bool writeClosed = false;
    std::string readErr;  ///< what readers see once write side closes
    std::string writeErr; ///< what writers see once read side closes
};

} // namespace detail

using detail::PipeState;

IoResult
PipeReader::read(std::string &out, size_t max)
{
    Scheduler *sched = Scheduler::current();
    SchedGuard guard(sched);
    PipeState *p = state_.get();
    out.clear();

    for (;;) {
        if (p->readClosed)
            return {0, "io: read on closed pipe"};
        if (p->writer && p->offset < p->pending.size()) {
            const size_t n =
                std::min(max, p->pending.size() - p->offset);
            out.assign(p->pending, p->offset, n);
            p->offset += n;
            sched->bus().acquire(p, sched->runningId());
            if (p->offset == p->pending.size()) {
                p->writerDone = true;
                sched->unpark(p->writer);
                p->writer = nullptr;
            }
            return {n, ""};
        }
        if (p->writeClosed) {
            sched->bus().acquire(p, sched->runningId());
            return {0, p->readErr.empty() ? "EOF" : p->readErr};
        }
        p->readq.push_back(sched->running());
        sched->park(WaitReason::PipeRead, p);
    }
}

void
PipeReader::close(const std::string &cause)
{
    Scheduler *sched = Scheduler::current();
    SchedGuard guard(sched);
    PipeState *p = state_.get();
    if (p->readClosed)
        return;
    p->readClosed = true;
    p->writeErr =
        cause.empty() ? "io: write on closed pipe" : cause;
    sched->bus().release(p, sched->runningId());
    if (p->writer) {
        p->writerDone = false; // writer wakes to an error
        sched->unpark(p->writer);
        p->writer = nullptr;
    }
    while (!p->readq.empty()) {
        sched->unpark(p->readq.front());
        p->readq.pop_front();
    }
}

IoResult
PipeWriter::write(const std::string &data)
{
    Scheduler *sched = Scheduler::current();
    SchedGuard guard(sched);
    PipeState *p = state_.get();
    if (p->writeClosed)
        return {0, "io: write on closed pipe"};
    if (p->readClosed)
        return {0, p->writeErr};

    // One writer at a time; a concurrent writer would need to queue.
    // The studied bugs use single writers, so assert the simple case.
    if (p->writer)
        goPanic("io: concurrent Pipe writes are not supported");

    p->pending = data;
    p->offset = 0;
    p->writer = sched->running();
    p->writerDone = false;
    sched->bus().release(p, sched->runningId());

    while (!p->readq.empty()) {
        sched->unpark(p->readq.front());
        p->readq.pop_front();
    }

    // Park until readers consume everything or a side closes.
    sched->park(WaitReason::PipeWrite, p);

    const size_t written = p->offset;
    p->pending.clear();
    p->offset = 0;
    if (p->writerDone)
        return {written, ""};
    return {written, p->writeErr.empty()
                         ? "io: write on closed pipe"
                         : p->writeErr};
}

void
PipeWriter::close(const std::string &cause)
{
    Scheduler *sched = Scheduler::current();
    SchedGuard guard(sched);
    PipeState *p = state_.get();
    if (p->writeClosed)
        return;
    p->writeClosed = true;
    p->readErr = cause.empty() ? "EOF" : cause;
    sched->bus().release(p, sched->runningId());
    while (!p->readq.empty()) {
        sched->unpark(p->readq.front());
        p->readq.pop_front();
    }
}

std::pair<PipeReader, PipeWriter>
makePipe()
{
    auto state = std::make_shared<PipeState>();
    PipeReader r;
    PipeWriter w;
    r.state_ = state;
    w.state_ = state;
    return {r, w};
}

} // namespace golite::goio
