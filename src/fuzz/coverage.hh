/**
 * @file
 * Coverage signal for the schedule fuzzer: concurrency-state hashes
 * harvested from the runtime event bus.
 *
 * A schedule mutant is worth keeping iff it drives the program into a
 * concurrency state no earlier execution reached. Two probes define
 * "state":
 *
 *  - BlockingCoverage fingerprints the *blocked set* — which
 *    goroutines are parked on which resources, hashed with the
 *    parking/locking event that produced it. This is the state space
 *    blocking bugs (Section 5 of the paper) live in: a new
 *    fingerprint means a new partial configuration of waiters.
 *
 *  - AccessCoverage hashes *sync-op site pairs* — the
 *    (previous access label, current access label, cross-goroutine?)
 *    triple per shared address. New pairs mean the schedule ordered
 *    two instrumented sites in a way never seen before, the raw
 *    material of non-blocking bugs.
 *
 * Everything hashes through FNV-1a over stable features (goroutine
 * ids, wait reasons, first-seen resource ordinals, label strings) —
 * never raw pointers — so coverage is identical across runs, ASLR,
 * platforms, and workers, which keeps the fuzzer deterministic for a
 * fixed seed and worker count of one.
 */

#ifndef GOLITE_FUZZ_COVERAGE_HH
#define GOLITE_FUZZ_COVERAGE_HH

#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "runtime/events.hh"

namespace golite::fuzz
{

/** 64-bit FNV-1a over a byte range (stable across platforms). */
uint64_t fnv1a(const void *data, size_t len);

/** FNV-1a over a NUL-terminated string (null-safe). */
uint64_t fnv1aStr(const char *s);

/** Mix one 64-bit value into a running FNV-1a hash. */
uint64_t hashMix(uint64_t h, uint64_t v);

/**
 * The global set of concurrency-state hashes observed so far.
 * Workers buffer their runs' states locally and merge in batches
 * under the fuzzer's mutex (CoverageMap itself is not thread-safe).
 */
class CoverageMap
{
  public:
    /** Insert one state; true if it was new. */
    bool
    add(uint64_t state)
    {
        return states_.insert(state).second;
    }

    bool
    contains(uint64_t state) const
    {
        return states_.count(state) != 0;
    }

    /** Insert a batch; returns how many were new. */
    size_t
    merge(const std::vector<uint64_t> &batch)
    {
        size_t fresh = 0;
        for (uint64_t s : batch)
            fresh += states_.insert(s).second;
        return fresh;
    }

    size_t size() const { return states_.size(); }

  private:
    std::unordered_set<uint64_t> states_;
};

/**
 * Blocked-set fingerprint probe. Attach via RunOptions::subscribers
 * (next to any real detectors), call beginRun() before every run,
 * read observed() after.
 */
class BlockingCoverage : public Subscriber
{
  public:
    /** Reset all per-run state (parked set, resource ids, states). */
    void beginRun();

    /** Deduplicated state hashes observed in the current run. */
    const std::vector<uint64_t> &observed() const { return observed_; }

    EventMask eventMask() const override;
    void onEvent(const RuntimeEvent &ev) override;

  private:
    void parked(uint64_t gid, WaitReason reason, const void *obj);
    void lockAcquired(const void *lock, uint64_t gid, bool is_write);
    void wgCounter(const void *wg, int count);
    void selectBlocked(uint64_t gid,
                       const std::vector<SelectWait> &cases);
    /** Stable per-run ordinal for a resource pointer (1-based,
     *  first-seen order — deterministic for a fixed schedule). */
    uint64_t resourceId(const void *obj);

    /** Fold the current parked set into one hash. */
    uint64_t blockedFingerprint() const;

    void note(uint64_t state);

    /** gid -> (wait reason, resource ordinal), ordered by gid so the
     *  fingerprint fold is canonical. */
    std::map<uint64_t, std::pair<WaitReason, uint64_t>> parked_;
    std::unordered_map<const void *, uint64_t> resourceIds_;
    std::unordered_set<uint64_t> seen_;
    std::vector<uint64_t> observed_;
};

/**
 * Access site-pair probe. Attach via RunOptions::subscribers; per
 * shared address it hashes consecutive instrumented-access label
 * pairs plus lock-site transitions.
 */
class AccessCoverage : public Subscriber
{
  public:
    void beginRun();

    const std::vector<uint64_t> &observed() const { return observed_; }

    EventMask eventMask() const override;
    void onEvent(const RuntimeEvent &ev) override;
    void onMemAccess(const void *addr, const char *label, uint64_t gid,
                     bool is_write) override;

  private:
    struct LastAccess
    {
        uint64_t labelHash = 0;
        uint64_t gid = 0;
        bool write = false;
    };

    void lockAcquired(const void *lock_obj, uint64_t gid,
                      bool is_write);
    void lockReleased(const void *lock_obj, uint64_t gid);
    void note(uint64_t state);

    std::unordered_map<const void *, LastAccess> last_;
    std::unordered_map<const void *, uint64_t> objectIds_;
    std::unordered_set<uint64_t> seen_;
    std::vector<uint64_t> observed_;
};

} // namespace golite::fuzz

#endif // GOLITE_FUZZ_COVERAGE_HH
