/**
 * @file
 * Golden replay: run a committed .trace artifact against its corpus
 * kernel under strict replay with both detectors attached, so the
 * resulting RunReport fingerprint can be byte-compared against the
 * committed .report artifact.
 *
 * The mktrace tool (tools/mktrace.cc) and the golden replay test
 * (tests/replay_golden_test.cc) share this one entry point — any
 * drift between the two would defeat the comparison.
 */

#ifndef GOLITE_FUZZ_GOLDEN_HH
#define GOLITE_FUZZ_GOLDEN_HH

#include "corpus/bug.hh"
#include "runtime/sched_trace.hh"

namespace golite::fuzz
{

/** Outcome of one golden replay. */
struct GoldenReplay
{
    /** Report of the strictly replayed buggy-variant run (detector
     *  output included; fingerprint() is the committed artifact). */
    RunReport report;
    /** The kernel's own bug judgement for the replayed run. */
    bool manifested = false;
    /** The attached race detector reported at least one race. */
    bool raced = false;
    /** Strict replay diverged — the trace no longer matches the
     *  kernel (report.replayDivergence has the details). */
    bool diverged = false;
};

/**
 * Strictly replay @p trace against the buggy variant of @p bug with a
 * race detector (shadow depth 4, the Go default) and the wait-for
 * graph detector attached. Deterministic: equal inputs produce a
 * byte-identical report fingerprint.
 */
GoldenReplay goldenReplay(const corpus::BugCase &bug,
                          const ScheduleTrace &trace);

} // namespace golite::fuzz

#endif // GOLITE_FUZZ_GOLDEN_HH
