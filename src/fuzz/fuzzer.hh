/**
 * @file
 * Coverage-guided schedule fuzzing over the deterministic runtime.
 *
 * The paper's reproduction protocol (Section 5) reruns a buggy
 * program under varied schedules and hopes; the systematic explorer
 * (src/explore) enumerates schedules exhaustively but only scales to
 * tiny programs and cannot drive preemption. The fuzzer sits between
 * the two, following GoAT's observation that coverage-guided schedule
 * perturbation finds interleaving bugs orders of magnitude faster
 * than blind rerunning:
 *
 *   1. seed the pool by *recording* a few random runs as
 *      ScheduleTraces (runtime/sched_trace.hh),
 *   2. mutate a recorded trace (flip a pick, force a preemption,
 *      swap adjacent decisions, truncate, havoc),
 *   3. replay the mutant loosely while re-recording the decision
 *      sequence it actually executed (its normalized, exactly
 *      replayable form),
 *   4. keep mutants that reach new coverage — blocked-set
 *      fingerprints and access site pairs from fuzz/coverage.hh —
 *      and report the first execution whose report satisfies the
 *      bug predicate.
 *
 * With workers > 1 the fuzz loop fans across a parallel::WorkerPool:
 * per-worker fuzzer instances (own probes, own RNG) share the
 * coverage map and trace pool under one mutex, merging observations
 * in batches. A single-worker fuzz with a fixed fuzzSeed is fully
 * deterministic, which is what the corpus regression test and the
 * BENCH_fuzz baseline gate rely on.
 */

#ifndef GOLITE_FUZZ_FUZZER_HH
#define GOLITE_FUZZ_FUZZER_HH

#include <cstdint>
#include <functional>

#include "base/rng.hh"
#include "corpus/bug.hh"
#include "runtime/report.hh"
#include "runtime/sched_trace.hh"

namespace golite::fuzz
{

/** One fuzzed execution: the run's report plus the driver's verdict
 *  (kernel-specific manifestation for corpus bugs, a report predicate
 *  for plain programs). */
struct Execution
{
    RunReport report;
    bool bug = false;
};

/**
 * Execute the target once under the given options (which carry the
 * fuzzer's replay/record traces and coverage probes). Must be safe to
 * call concurrently from several OS threads, i.e. all program state
 * is created inside the call — true for every corpus kernel.
 */
using RunProgram = std::function<Execution(const RunOptions &)>;

/** Tuning for one fuzzing campaign. */
struct FuzzOptions
{
    /**
     * Base options for every execution. Policy must be Random (the
     * recordable policy); subscribers must be empty — the fuzzer
     * attaches its own per-worker coverage probes, and a single
     * detector shared across workers would race.
     */
    RunOptions runOptions;

    /** Total execution budget across all workers. */
    size_t maxExecutions = 2000;

    /** Random recordings that seed the trace pool (also interleaved
     *  later as occasional fresh explorations). */
    size_t initialRecordings = 8;

    /** Seed for mutation choices and the derived per-recording run
     *  seeds. Two campaigns with equal options are identical. */
    uint64_t fuzzSeed = 1;

    /** Parallel fuzzer instances; 0 = parallel::defaultWorkers().
     *  1 (the default) is deterministic. */
    unsigned workers = 1;

    /** Executions a worker buffers before merging its coverage
     *  observations into the shared map. */
    size_t mergeBatch = 8;

    /** Keep at most this many traces in the shared pool (ring
     *  replacement beyond it). */
    size_t maxPoolSize = 256;

    /** Stop all workers at the first bug-satisfying execution. */
    bool stopAtFirstBug = true;

    /**
     * Chain a per-worker race detector (shadow depth 4) behind the
     * access-coverage probe. Needed for the corpus kernels whose
     * defect is a pure data race with no observable misbehaviour —
     * like the original reports, such bugs are visible only to the
     * -race build. fuzzKernel widens its predicate to
     * `manifested || raceMessages non-empty` when this is set.
     */
    bool attachRaceDetector = false;

    /**
     * Ablation switch: when false, mutants are kept never (pure
     * random schedule replay — the blind-rerun baseline with the
     * same mutation engine). bench_ext_fuzz uses this to isolate the
     * value of the coverage signal.
     */
    bool coverageGuided = true;
};

/** Outcome of a fuzzing campaign. */
struct FuzzResult
{
    bool bugFound = false;
    /** Executions performed (capped at maxExecutions). */
    size_t executions = 0;
    /** 1-based execution index of the first bug (0 = none). */
    size_t executionsToBug = 0;
    /** Normalized (exactly replayable) trace of the bug execution. */
    ScheduleTrace bugTrace;
    RunReport bugReport;
    /** Distinct concurrency states reached across the campaign. */
    size_t coverageStates = 0;
    /** Traces retained in the pool at the end. */
    size_t poolSize = 0;
};

/** Fuzz an arbitrary target. */
FuzzResult fuzzRun(const RunProgram &run_once,
                   const FuzzOptions &options = {});

/** Fuzz a plain program with a report-level bug predicate. */
FuzzResult fuzzProgram(
    const std::function<void()> &program,
    const std::function<bool(const RunReport &)> &is_bug,
    const FuzzOptions &options = {});

/**
 * Fuzz one corpus kernel variant; the bug predicate is the kernel's
 * own manifestation judgement (BugOutcome::manifested), so wrong-
 * result non-blocking bugs count, not just report-visible ones.
 * This is the uniform driver benches and tests share.
 */
FuzzResult fuzzKernel(const corpus::BugCase &bug,
                      corpus::Variant variant,
                      const FuzzOptions &options = {});

/**
 * Derive one schedule mutant from @p parent (exposed for the property
 * tests). Operators: flip a pick, force/clear a preemption, swap
 * adjacent picks, rotate a pick (delay the chosen goroutine),
 * truncate the tail, or a small havoc burst of the above.
 */
ScheduleTrace mutateTrace(const ScheduleTrace &parent, Rng &rng);

} // namespace golite::fuzz

#endif // GOLITE_FUZZ_FUZZER_HH
