/**
 * @file
 * Delta-debugging shrinker for bug-triggering schedule traces.
 *
 * A fuzzer-found trace is typically hundreds of decisions long, most
 * of them irrelevant. The shrinker reduces it to a locally-minimal
 * guidance sequence the bug still needs:
 *
 *   1. binary-search the shortest bug-triggering prefix (loose replay
 *      past the end of a trace falls back to defaults, so any prefix
 *      is a valid guidance trace),
 *   2. ddmin-style chunk removal, halving the chunk size down to
 *      single decisions,
 *   3. canonicalize surviving picks toward 0 (the default), then
 *      strip trailing default decisions — a replay identity,
 *   4. verify 1-removal local minimality: removing any single
 *      remaining decision stops the bug from triggering.
 *
 * Every candidate is verified by an actual replay; the result carries
 * both the minimized guidance trace and its *normalized* form — the
 * full decision sequence the minimized run actually executed, which
 * is what strict replay and the committed golden artifacts need
 * (removing decisions shifts alignment, so the guidance trace itself
 * is only loose-replayable).
 */

#ifndef GOLITE_FUZZ_SHRINK_HH
#define GOLITE_FUZZ_SHRINK_HH

#include "fuzz/fuzzer.hh"

namespace golite::fuzz
{

/** Tuning for one shrink. */
struct ShrinkOptions
{
    /** Base options for every verification replay. Policy must be
     *  Random; record/replay slots must be free (the shrinker owns
     *  them). Hooks are allowed — shrinking is single-threaded. */
    RunOptions runOptions;

    /** Replay budget; the shrinker returns its best-so-far when the
     *  budget runs out (locallyMinimal then reports false). */
    size_t maxExecutions = 4000;

    /** shrinkKernelTrace only: attach a race detector and widen the
     *  bug predicate to `manifested || raceMessages non-empty`, the
     *  same judgement FuzzOptions::attachRaceDetector applies. */
    bool attachRaceDetector = false;
};

/** Outcome of shrinking one trace. */
struct ShrinkResult
{
    /** False iff the input trace did not trigger the bug (nothing
     *  was shrunk; `trace` echoes the input). */
    bool stillBug = false;
    /** Minimized guidance trace (loose-replayable). */
    ScheduleTrace trace;
    /** Full decision record of the minimized run — strict-replayable;
     *  this is the form to commit as a golden artifact. */
    ScheduleTrace normalized;
    /** Report of the minimized run. */
    RunReport report;
    /** Replays spent. */
    size_t executions = 0;
    /** True when the final 1-removal pass completed within budget
     *  without finding a smaller trigger. */
    bool locallyMinimal = false;
};

/** Shrink @p input against an arbitrary target. */
ShrinkResult shrinkTrace(const RunProgram &run_once,
                         const ScheduleTrace &input,
                         const ShrinkOptions &options = {});

/** Shrink against a corpus kernel variant; the bug predicate is the
 *  kernel's own BugOutcome::manifested, as in fuzzKernel. */
ShrinkResult shrinkKernelTrace(const corpus::BugCase &bug,
                               corpus::Variant variant,
                               const ScheduleTrace &input,
                               const ShrinkOptions &options = {});

} // namespace golite::fuzz

#endif // GOLITE_FUZZ_SHRINK_HH
