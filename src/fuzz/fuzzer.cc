#include "fuzz/fuzzer.hh"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "fuzz/coverage.hh"
#include "parallel/pool.hh"
#include "race/detector.hh"
#include "runtime/scheduler.hh"

namespace golite::fuzz
{

namespace
{

/** splitmix64: decorrelate derived seeds from the campaign seed. */
uint64_t
deriveSeed(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Cross-worker shared campaign state. Everything behind `mu` except
 *  the two atomics, which workers poll without blocking. */
struct CampaignState
{
    std::mutex mu;
    CoverageMap coverage;
    std::vector<ScheduleTrace> pool;
    size_t poolNext = 0; ///< ring cursor once the pool is full

    std::atomic<size_t> tickets{0}; ///< claimed execution slots
    std::atomic<size_t> performed{0};
    std::atomic<bool> stop{false};

    bool bugFound = false;
    size_t bugAt = 0; ///< 1-based ticket of the earliest bug
    ScheduleTrace bugTrace;
    RunReport bugReport;
};

void
validate(const FuzzOptions &options)
{
    if (options.runOptions.policy != SchedPolicy::Random)
        throw std::logic_error(
            "fuzzRun: trace record/replay requires SchedPolicy::Random");
    if (!options.runOptions.subscribers.empty())
        throw std::logic_error(
            "fuzzRun: the fuzzer owns the subscriber list for its "
            "coverage probes; attach detectors when replaying the "
            "found trace");
    if (options.runOptions.recordTrace != nullptr ||
        options.runOptions.replayTrace != nullptr)
        throw std::logic_error(
            "fuzzRun: record/replay traces are managed by the fuzzer");
    if (options.runOptions.chooser)
        throw std::logic_error(
            "fuzzRun: a chooser conflicts with trace replay");
    if (options.maxExecutions == 0)
        throw std::logic_error("fuzzRun: maxExecutions must be > 0");
    if (options.maxPoolSize == 0)
        throw std::logic_error("fuzzRun: maxPoolSize must be > 0");
}

} // namespace

ScheduleTrace
mutateTrace(const ScheduleTrace &parent, Rng &rng)
{
    ScheduleTrace t = parent;
    if (t.empty())
        return t;

    // Re-pick decision i to any different alternative.
    auto flip = [&t, &rng](size_t i) {
        Decision &d = t.decisions[i];
        if (d.alternatives <= 1)
            return;
        d.pick = static_cast<uint32_t>(
            (d.pick + 1 + rng.below(d.alternatives - 1)) %
            d.alternatives);
    };
    // First decision of kind `k` at or cyclically after a random
    // start; t.size() when the trace has none.
    auto findKind = [&t, &rng](DecisionKind k) -> size_t {
        const size_t start = static_cast<size_t>(rng.below(t.size()));
        for (size_t off = 0; off < t.size(); ++off) {
            const size_t i = (start + off) % t.size();
            if (t.decisions[i].kind == k)
                return i;
        }
        return t.size();
    };

    switch (rng.below(6)) {
    case 0: // flip one decision
        flip(static_cast<size_t>(rng.below(t.size())));
        break;
    case 1: { // toggle a preemption point (inject or remove a switch)
        const size_t i = findKind(DecisionKind::Preempt);
        if (i < t.size())
            t.decisions[i].pick ^= 1;
        else
            flip(static_cast<size_t>(rng.below(t.size())));
        break;
    }
    case 2: { // swap adjacent decisions' picks (reorder two events)
        const size_t i = static_cast<size_t>(rng.below(t.size()));
        if (i + 1 < t.size())
            std::swap(t.decisions[i].pick, t.decisions[i + 1].pick);
        else
            flip(i);
        break;
    }
    case 3: { // delay the picked goroutine: rotate a dispatch pick
        const size_t i = findKind(DecisionKind::Pick);
        if (i < t.size()) {
            Decision &d = t.decisions[i];
            d.pick = (d.pick + 1) % d.alternatives;
        } else {
            flip(static_cast<size_t>(rng.below(t.size())));
        }
        break;
    }
    case 4: // truncate: keep a random prefix, defaults after it
        t.decisions.resize(1 + static_cast<size_t>(
                                   rng.below(t.size())));
        break;
    default: { // havoc: a burst of flips
        const size_t flips = 2 + static_cast<size_t>(rng.below(7));
        for (size_t k = 0; k < flips; ++k)
            flip(static_cast<size_t>(rng.below(t.size())));
        break;
    }
    }
    return t;
}

FuzzResult
fuzzRun(const RunProgram &run_once, const FuzzOptions &options)
{
    validate(options);

    const unsigned workers =
        options.workers != 0 ? options.workers
                             : parallel::defaultWorkers();

    CampaignState st;

    auto worker = [&](size_t w) {
        Rng rng(deriveSeed(options.fuzzSeed ^
                           (0x9e3779b97f4a7c15ULL * (w + 1))));
        BlockingCoverage blocking;
        AccessCoverage access;
        race::Detector races(4);

        // States this worker has ever seen (its approximation of the
        // global map between merges) and the batch pending merge.
        std::unordered_set<uint64_t> knownStates;
        std::vector<uint64_t> pendingStates;
        std::vector<ScheduleTrace> pendingTraces;
        size_t sinceMerge = 0;

        // Multi-worker parent cache: phase 2 picks mutation parents
        // from this worker-local snapshot instead of taking st.mu on
        // every iteration, so the shared lock is touched only at
        // mergeBatch cadence. Refreshed inside mergePending while the
        // lock is already held. Single-worker campaigns skip the
        // cache entirely and keep the original (byte-stable) pick
        // sequence straight from the shared pool.
        constexpr size_t kLocalParents = 32;
        std::vector<ScheduleTrace> localPool;

        // Caller holds st.mu. Copies the most recently inserted
        // traces, walking the ring backwards from the write cursor.
        auto refreshLocalPool = [&] {
            if (workers == 1)
                return;
            localPool.clear();
            const size_t n =
                std::min(kLocalParents, st.pool.size());
            for (size_t i = 0; i < n; ++i) {
                size_t idx;
                if (st.pool.size() < options.maxPoolSize)
                    idx = st.pool.size() - 1 - i;
                else
                    idx = (st.poolNext + options.maxPoolSize - 1 -
                           i) %
                          options.maxPoolSize;
                localPool.push_back(st.pool[idx]);
            }
        };

        auto mergePending = [&] {
            sinceMerge = 0;
            if (pendingStates.empty() && pendingTraces.empty()) {
                // Nothing to publish, but other workers may have
                // grown the pool since the last refresh.
                if (workers > 1) {
                    std::lock_guard<std::mutex> lock(st.mu);
                    refreshLocalPool();
                }
                return;
            }
            std::lock_guard<std::mutex> lock(st.mu);
            st.coverage.merge(pendingStates);
            for (ScheduleTrace &t : pendingTraces) {
                if (st.pool.size() < options.maxPoolSize) {
                    st.pool.push_back(std::move(t));
                } else {
                    st.pool[st.poolNext] = std::move(t);
                    st.poolNext =
                        (st.poolNext + 1) % options.maxPoolSize;
                }
            }
            pendingStates.clear();
            pendingTraces.clear();
            refreshLocalPool();
        };

        ScheduleTrace recorded;

        // One fuzzed execution. Returns false once the campaign is
        // over (budget exhausted or stop flagged).
        auto execute = [&](const ScheduleTrace *replay,
                           uint64_t seed) -> bool {
            const size_t ticket = st.tickets.fetch_add(1) + 1;
            if (ticket > options.maxExecutions) {
                st.stop.store(true);
                return false;
            }

            RunOptions ro = options.runOptions;
            ro.seed = seed;
            ro.replayTrace = replay;
            ro.replayStrict = false;
            ro.recordTrace = &recorded;
            if (options.attachRaceDetector)
                ro.subscribers.push_back(&races);
            ro.subscribers.push_back(&access);
            ro.subscribers.push_back(&blocking);
            blocking.beginRun();
            access.beginRun();
            if (options.attachRaceDetector)
                races.reset();

            Execution ex = run_once(ro);
            st.performed.fetch_add(1);

            bool fresh = false;
            for (const auto *obs :
                 {&blocking.observed(), &access.observed()}) {
                for (uint64_t s : *obs) {
                    if (knownStates.insert(s).second) {
                        pendingStates.push_back(s);
                        fresh = true;
                    }
                }
            }
            if (fresh && options.coverageGuided)
                pendingTraces.push_back(recorded);

            if (ex.bug) {
                std::lock_guard<std::mutex> lock(st.mu);
                if (!st.bugFound || ticket < st.bugAt) {
                    st.bugFound = true;
                    st.bugAt = ticket;
                    st.bugTrace = recorded;
                    st.bugReport = ex.report;
                }
                if (options.stopAtFirstBug)
                    st.stop.store(true);
            }
            return !st.stop.load();
        };

        // Phase 1: this worker's share of the seed recordings —
        // plain random runs, recorded.
        for (size_t i = w; i < options.initialRecordings; i += workers) {
            if (st.stop.load() ||
                !execute(nullptr,
                         deriveSeed(options.fuzzSeed + 0x1000 + i)))
                break;
        }
        mergePending();

        // Phase 2: mutate pool traces, with occasional fresh random
        // recordings to keep exploring from new roots.
        uint64_t freshCounter = 0;
        ScheduleTrace parent;
        while (!st.stop.load()) {
            parent.decisions.clear();
            if (workers == 1) {
                std::lock_guard<std::mutex> lock(st.mu);
                if (!st.pool.empty())
                    parent = st.pool[static_cast<size_t>(
                        rng.below(st.pool.size()))];
            } else if (!localPool.empty()) {
                parent = localPool[static_cast<size_t>(
                    rng.below(localPool.size()))];
            }
            const bool explore = parent.empty() || rng.chance(0.15);
            bool keep_going;
            if (explore) {
                keep_going = execute(
                    nullptr,
                    deriveSeed(options.fuzzSeed ^
                               (0xa0761d6478bd642fULL * (w + 1)) ^
                               ++freshCounter));
            } else {
                const ScheduleTrace mutant = mutateTrace(parent, rng);
                keep_going = execute(&mutant, 0);
            }
            if (!keep_going)
                break;
            if (++sinceMerge >= options.mergeBatch)
                mergePending();
        }
        mergePending();
    };

    if (workers == 1) {
        worker(0);
    } else {
        // n == active workers, so the pool's adaptive claiming
        // degenerates to one campaign index per worker — each runs
        // its whole campaign on its own thread, as before.
        parallel::sharedPool().forEach(workers, worker, workers);
    }

    FuzzResult result;
    result.executions = st.performed.load();
    result.bugFound = st.bugFound;
    result.executionsToBug = st.bugAt;
    result.bugTrace = std::move(st.bugTrace);
    result.bugReport = std::move(st.bugReport);
    result.coverageStates = st.coverage.size();
    result.poolSize = st.pool.size();
    return result;
}

FuzzResult
fuzzProgram(const std::function<void()> &program,
            const std::function<bool(const RunReport &)> &is_bug,
            const FuzzOptions &options)
{
    return fuzzRun(
        [&program, &is_bug](const RunOptions &ro) {
            Execution ex;
            ex.report = run(program, ro);
            ex.bug = is_bug && is_bug(ex.report);
            return ex;
        },
        options);
}

FuzzResult
fuzzKernel(const corpus::BugCase &bug, corpus::Variant variant,
           const FuzzOptions &options)
{
    const bool raced = options.attachRaceDetector;
    return fuzzRun(
        [&bug, variant, raced](const RunOptions &ro) {
            corpus::BugOutcome out = bug.run(variant, ro);
            const bool bug_hit =
                out.manifested ||
                (raced && !out.report.raceMessages.empty());
            return Execution{std::move(out.report), bug_hit};
        },
        options);
}

} // namespace golite::fuzz
