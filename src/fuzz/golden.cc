#include "fuzz/golden.hh"

#include "race/detector.hh"
#include "waitgraph/waitgraph.hh"

namespace golite::fuzz
{

GoldenReplay
goldenReplay(const corpus::BugCase &bug, const ScheduleTrace &trace)
{
    race::Detector races(4);
    waitgraph::Detector waits;

    RunOptions ro;
    ro.seed = 1; // irrelevant: every decision comes from the trace
    ro.policy = SchedPolicy::Random;
    ro.replayTrace = &trace;
    ro.replayStrict = true;
    ro.subscribers = {&races, &waits};

    corpus::BugOutcome out = bug.run(corpus::Variant::Buggy, ro);

    GoldenReplay result;
    result.diverged = out.report.replayDivergence.diverged;
    result.manifested = out.manifested;
    result.raced = !out.report.raceMessages.empty();
    result.report = std::move(out.report);
    return result;
}

} // namespace golite::fuzz
