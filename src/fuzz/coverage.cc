#include "fuzz/coverage.hh"

#include <cstring>

namespace golite::fuzz
{

namespace
{

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

// Event-kind tags keep states from different probes/hooks disjoint.
enum : uint64_t
{
    kTagParked = 0x70,
    kTagLock = 0x71,
    kTagWg = 0x72,
    kTagSelect = 0x73,
    kTagAccessPair = 0x74,
    kTagLockSite = 0x75,
};

} // namespace

uint64_t
fnv1a(const void *data, size_t len)
{
    const auto *p = static_cast<const unsigned char *>(data);
    uint64_t h = kFnvOffset;
    for (size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

uint64_t
fnv1aStr(const char *s)
{
    return s ? fnv1a(s, std::strlen(s)) : kFnvOffset;
}

uint64_t
hashMix(uint64_t h, uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= kFnvPrime;
    }
    return h;
}

// --- BlockingCoverage -------------------------------------------------

EventMask
BlockingCoverage::eventMask() const
{
    return eventBit(EventKind::GoPark) |
           eventBit(EventKind::GoUnpark) |
           eventBit(EventKind::GoFinish) |
           eventBit(EventKind::LockAcquire) |
           eventBit(EventKind::WgDelta) |
           eventBit(EventKind::SelectBlock);
}

void
BlockingCoverage::onEvent(const RuntimeEvent &ev)
{
    switch (ev.kind) {
      case EventKind::GoPark:
        parked(ev.gid, ev.reason, ev.obj);
        break;
      case EventKind::GoUnpark:
        parked_.erase(ev.gid);
        break;
      case EventKind::GoFinish:
        // Teardown unwinds are post-run bookkeeping, not coverage.
        if (!ev.flag)
            parked_.erase(ev.gid);
        break;
      case EventKind::LockAcquire:
        lockAcquired(ev.obj, ev.gid, ev.flag);
        break;
      case EventKind::WgDelta:
        wgCounter(ev.obj, static_cast<int>(ev.a));
        break;
      case EventKind::SelectBlock:
        selectBlocked(ev.gid, *ev.waits);
        break;
      default:
        break;
    }
}

void
BlockingCoverage::beginRun()
{
    parked_.clear();
    resourceIds_.clear();
    seen_.clear();
    observed_.clear();
}

uint64_t
BlockingCoverage::resourceId(const void *obj)
{
    if (obj == nullptr)
        return 0;
    auto [it, inserted] =
        resourceIds_.emplace(obj, resourceIds_.size() + 1);
    (void)inserted;
    return it->second;
}

uint64_t
BlockingCoverage::blockedFingerprint() const
{
    uint64_t h = kFnvOffset;
    for (const auto &[gid, what] : parked_) {
        h = hashMix(h, gid);
        h = hashMix(h, static_cast<uint64_t>(what.first));
        h = hashMix(h, what.second);
    }
    return h;
}

void
BlockingCoverage::note(uint64_t state)
{
    if (seen_.insert(state).second)
        observed_.push_back(state);
}

void
BlockingCoverage::parked(uint64_t gid, WaitReason reason,
                         const void *obj)
{
    parked_[gid] = {reason, resourceId(obj)};
    uint64_t h = hashMix(blockedFingerprint(), kTagParked);
    h = hashMix(h, gid);
    h = hashMix(h, static_cast<uint64_t>(reason));
    note(h);
}

void
BlockingCoverage::lockAcquired(const void *lock, uint64_t gid,
                               bool is_write)
{
    uint64_t h = hashMix(blockedFingerprint(), kTagLock);
    h = hashMix(h, resourceId(lock));
    h = hashMix(h, gid);
    h = hashMix(h, is_write);
    note(h);
}

void
BlockingCoverage::wgCounter(const void *wg, int count)
{
    uint64_t h = hashMix(blockedFingerprint(), kTagWg);
    h = hashMix(h, resourceId(wg));
    h = hashMix(h, static_cast<uint64_t>(static_cast<int64_t>(count)));
    note(h);
}

void
BlockingCoverage::selectBlocked(uint64_t gid,
                                const std::vector<SelectWait> &cases)
{
    uint64_t h = hashMix(blockedFingerprint(), kTagSelect);
    h = hashMix(h, gid);
    for (const SelectWait &w : cases) {
        h = hashMix(h, resourceId(w.chan));
        h = hashMix(h, w.isSend);
    }
    note(h);
}

// --- AccessCoverage ---------------------------------------------------

EventMask
AccessCoverage::eventMask() const
{
    return eventBit(EventKind::MemRead) |
           eventBit(EventKind::MemWrite) |
           eventBit(EventKind::LockAcquire) |
           eventBit(EventKind::LockRelease);
}

void
AccessCoverage::onEvent(const RuntimeEvent &ev)
{
    switch (ev.kind) {
      case EventKind::MemRead:
      case EventKind::MemWrite:
        onMemAccess(ev.obj, ev.label, ev.gid,
                    ev.kind == EventKind::MemWrite);
        break;
      case EventKind::LockAcquire:
        lockAcquired(ev.obj, ev.gid, ev.flag);
        break;
      case EventKind::LockRelease:
        lockReleased(ev.obj, ev.gid);
        break;
      default:
        break;
    }
}

void
AccessCoverage::beginRun()
{
    last_.clear();
    objectIds_.clear();
    seen_.clear();
    observed_.clear();
}

void
AccessCoverage::note(uint64_t state)
{
    if (seen_.insert(state).second)
        observed_.push_back(state);
}

void
AccessCoverage::onMemAccess(const void *addr, const char *label,
                            uint64_t gid, bool is_write)
{
    const uint64_t cur = hashMix(fnv1aStr(label), is_write);
    auto [it, inserted] = last_.emplace(addr, LastAccess{});
    const LastAccess &prev = it->second;
    uint64_t h = hashMix(kFnvOffset, kTagAccessPair);
    h = hashMix(h, inserted ? 0 : prev.labelHash);
    h = hashMix(h, cur);
    h = hashMix(h, !inserted && prev.gid != gid);
    note(h);
    it->second = LastAccess{cur, gid, is_write};
}

void
AccessCoverage::lockAcquired(const void *lock_obj, uint64_t gid,
                             bool is_write)
{
    auto [it, inserted] =
        objectIds_.emplace(lock_obj, objectIds_.size() + 1);
    (void)inserted;
    uint64_t h = hashMix(kFnvOffset, kTagLockSite);
    h = hashMix(h, it->second);
    h = hashMix(h, gid);
    h = hashMix(h, is_write);
    note(h);
}

void
AccessCoverage::lockReleased(const void *lock_obj, uint64_t gid)
{
    auto [it, inserted] =
        objectIds_.emplace(lock_obj, objectIds_.size() + 1);
    (void)inserted;
    uint64_t h = hashMix(kFnvOffset, kTagLockSite);
    h = hashMix(h, it->second);
    h = hashMix(h, gid);
    h = hashMix(h, 2);
    note(h);
}

} // namespace golite::fuzz
