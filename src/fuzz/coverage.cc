#include "fuzz/coverage.hh"

#include <cstring>

#include "runtime/scheduler.hh"

namespace golite::fuzz
{

namespace
{

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

// Event-kind tags keep states from different probes/hooks disjoint.
enum : uint64_t
{
    kTagParked = 0x70,
    kTagLock = 0x71,
    kTagWg = 0x72,
    kTagSelect = 0x73,
    kTagAccessPair = 0x74,
    kTagLockSite = 0x75,
};

} // namespace

uint64_t
fnv1a(const void *data, size_t len)
{
    const auto *p = static_cast<const unsigned char *>(data);
    uint64_t h = kFnvOffset;
    for (size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

uint64_t
fnv1aStr(const char *s)
{
    return s ? fnv1a(s, std::strlen(s)) : kFnvOffset;
}

uint64_t
hashMix(uint64_t h, uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= kFnvPrime;
    }
    return h;
}

// --- BlockingCoverage -------------------------------------------------

void
BlockingCoverage::beginRun()
{
    parked_.clear();
    resourceIds_.clear();
    seen_.clear();
    observed_.clear();
}

uint64_t
BlockingCoverage::resourceId(const void *obj)
{
    if (obj == nullptr)
        return 0;
    auto [it, inserted] =
        resourceIds_.emplace(obj, resourceIds_.size() + 1);
    (void)inserted;
    return it->second;
}

uint64_t
BlockingCoverage::blockedFingerprint() const
{
    uint64_t h = kFnvOffset;
    for (const auto &[gid, what] : parked_) {
        h = hashMix(h, gid);
        h = hashMix(h, static_cast<uint64_t>(what.first));
        h = hashMix(h, what.second);
    }
    return h;
}

void
BlockingCoverage::note(uint64_t state)
{
    if (seen_.insert(state).second)
        observed_.push_back(state);
}

void
BlockingCoverage::parked(uint64_t gid, WaitReason reason,
                         const void *obj)
{
    parked_[gid] = {reason, resourceId(obj)};
    uint64_t h = hashMix(blockedFingerprint(), kTagParked);
    h = hashMix(h, gid);
    h = hashMix(h, static_cast<uint64_t>(reason));
    note(h);
}

void
BlockingCoverage::unparked(uint64_t gid)
{
    parked_.erase(gid);
}

void
BlockingCoverage::goroutineFinished(uint64_t gid)
{
    parked_.erase(gid);
}

void
BlockingCoverage::lockAcquired(const void *lock, uint64_t gid,
                               bool is_write)
{
    uint64_t h = hashMix(blockedFingerprint(), kTagLock);
    h = hashMix(h, resourceId(lock));
    h = hashMix(h, gid);
    h = hashMix(h, is_write);
    note(h);
}

void
BlockingCoverage::wgCounter(const void *wg, int count)
{
    uint64_t h = hashMix(blockedFingerprint(), kTagWg);
    h = hashMix(h, resourceId(wg));
    h = hashMix(h, static_cast<uint64_t>(static_cast<int64_t>(count)));
    note(h);
}

void
BlockingCoverage::selectBlocked(uint64_t gid,
                                const std::vector<SelectWait> &cases)
{
    uint64_t h = hashMix(blockedFingerprint(), kTagSelect);
    h = hashMix(h, gid);
    for (const SelectWait &w : cases) {
        h = hashMix(h, resourceId(w.chan));
        h = hashMix(h, w.isSend);
    }
    note(h);
}

// --- AccessCoverage ---------------------------------------------------

void
AccessCoverage::beginRun()
{
    last_.clear();
    objectIds_.clear();
    seen_.clear();
    observed_.clear();
}

uint64_t
AccessCoverage::currentGid() const
{
    Scheduler *sched = Scheduler::current();
    return sched ? sched->runningId() : 0;
}

void
AccessCoverage::note(uint64_t state)
{
    if (seen_.insert(state).second)
        observed_.push_back(state);
}

void
AccessCoverage::access(const void *addr, const char *label, bool write)
{
    const uint64_t gid = currentGid();
    const uint64_t cur = hashMix(fnv1aStr(label), write);
    auto [it, inserted] = last_.emplace(addr, LastAccess{});
    const LastAccess &prev = it->second;
    uint64_t h = hashMix(kFnvOffset, kTagAccessPair);
    h = hashMix(h, inserted ? 0 : prev.labelHash);
    h = hashMix(h, cur);
    h = hashMix(h, !inserted && prev.gid != gid);
    note(h);
    it->second = LastAccess{cur, gid, write};
}

void
AccessCoverage::memRead(const void *addr, const char *label)
{
    access(addr, label, false);
}

void
AccessCoverage::memWrite(const void *addr, const char *label)
{
    access(addr, label, true);
}

void
AccessCoverage::lockAcquired(const void *lock_obj, uint64_t gid,
                             bool is_write)
{
    auto [it, inserted] =
        objectIds_.emplace(lock_obj, objectIds_.size() + 1);
    (void)inserted;
    uint64_t h = hashMix(kFnvOffset, kTagLockSite);
    h = hashMix(h, it->second);
    h = hashMix(h, gid);
    h = hashMix(h, is_write);
    note(h);
}

void
AccessCoverage::lockReleased(const void *lock_obj, uint64_t gid)
{
    auto [it, inserted] =
        objectIds_.emplace(lock_obj, objectIds_.size() + 1);
    (void)inserted;
    uint64_t h = hashMix(kFnvOffset, kTagLockSite);
    h = hashMix(h, it->second);
    h = hashMix(h, gid);
    h = hashMix(h, 2);
    note(h);
}

} // namespace golite::fuzz
