#include "fuzz/shrink.hh"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "race/detector.hh"

namespace golite::fuzz
{

namespace
{

void
validate(const ShrinkOptions &options)
{
    if (options.runOptions.policy != SchedPolicy::Random)
        throw std::logic_error(
            "shrinkTrace: trace replay requires SchedPolicy::Random");
    if (options.runOptions.recordTrace != nullptr ||
        options.runOptions.replayTrace != nullptr)
        throw std::logic_error(
            "shrinkTrace: record/replay traces are managed by the "
            "shrinker");
    if (options.runOptions.chooser)
        throw std::logic_error(
            "shrinkTrace: a chooser conflicts with trace replay");
    if (options.maxExecutions == 0)
        throw std::logic_error("shrinkTrace: maxExecutions must be > 0");
}

ScheduleTrace
withoutRange(const ScheduleTrace &t, size_t start, size_t len)
{
    ScheduleTrace out;
    out.decisions.reserve(t.size() - len);
    out.decisions.insert(out.decisions.end(), t.decisions.begin(),
                         t.decisions.begin() +
                             static_cast<long>(start));
    out.decisions.insert(out.decisions.end(),
                         t.decisions.begin() +
                             static_cast<long>(start + len),
                         t.decisions.end());
    return out;
}

/** Drop trailing default decisions (pick 0) — loose replay past the
 *  end of the trace falls back to the same defaults, so this is a
 *  replay identity and needs no verification run. */
void
stripTrailingDefaults(ScheduleTrace &t)
{
    while (!t.empty() && t.decisions.back().pick == 0)
        t.decisions.pop_back();
}

} // namespace

ShrinkResult
shrinkTrace(const RunProgram &run_once, const ScheduleTrace &input,
            const ShrinkOptions &options)
{
    validate(options);

    ShrinkResult result;

    // Loose-replay one candidate; true iff the bug still triggers.
    auto attempt = [&](const ScheduleTrace &t, ScheduleTrace *record,
                       RunReport *out) -> bool {
        result.executions++;
        RunOptions ro = options.runOptions;
        ro.replayTrace = &t;
        ro.replayStrict = false;
        ro.recordTrace = record;
        Execution ex = run_once(ro);
        if (out != nullptr)
            *out = std::move(ex.report);
        return ex.bug;
    };
    auto budgetLeft = [&] {
        return result.executions < options.maxExecutions;
    };

    if (!attempt(input, nullptr, &result.report)) {
        result.trace = input;
        return result; // stillBug stays false
    }
    result.stillBug = true;

    ScheduleTrace cur = input;

    // 1. Shortest triggering prefix, by binary search. The predicate
    // need not be monotone in the prefix length; the search is a
    // heuristic, but every prefix it commits to was verified to
    // trigger (lo only passes a length whose replay failed, hi only a
    // length whose replay triggered).
    {
        size_t lo = 0;
        size_t hi = cur.size();
        while (lo < hi && budgetLeft()) {
            const size_t mid = lo + (hi - lo) / 2;
            ScheduleTrace cand;
            cand.decisions.assign(
                cur.decisions.begin(),
                cur.decisions.begin() + static_cast<long>(mid));
            if (attempt(cand, nullptr, nullptr))
                hi = mid;
            else
                lo = mid + 1;
        }
        cur.decisions.resize(hi);
    }

    // 2. ddmin chunk removal: try deleting chunks, halving the chunk
    // size; repeat at size 1 until a fixpoint.
    for (size_t chunk = std::max<size_t>(cur.size() / 4, 1);
         budgetLeft();) {
        bool removed = false;
        for (size_t start = 0; start < cur.size() && budgetLeft();) {
            const size_t len = std::min(chunk, cur.size() - start);
            const ScheduleTrace cand = withoutRange(cur, start, len);
            if (attempt(cand, nullptr, nullptr)) {
                cur = cand;
                removed = true; // keep start: next chunk shifted in
            } else {
                start += len;
            }
        }
        if (chunk > 1)
            chunk /= 2;
        else if (!removed)
            break;
    }

    // 3. Canonicalize surviving picks toward the default 0.
    for (bool changed = true; changed && budgetLeft();) {
        changed = false;
        for (size_t i = 0; i < cur.size() && budgetLeft(); ++i) {
            if (cur.decisions[i].pick == 0)
                continue;
            ScheduleTrace cand = cur;
            cand.decisions[i].pick = 0;
            if (attempt(cand, nullptr, nullptr)) {
                cur = std::move(cand);
                changed = true;
            }
        }
    }

    // 4. 1-removal local minimality (canonicalization introduced new
    // defaults, so removal may have reopened): strip trailing
    // defaults, then retry single removals until none survives.
    for (;;) {
        stripTrailingDefaults(cur);
        if (!budgetLeft())
            break;
        bool removed = false;
        for (size_t i = 0; i < cur.size() && budgetLeft(); ++i) {
            const ScheduleTrace cand = withoutRange(cur, i, 1);
            if (attempt(cand, nullptr, nullptr)) {
                cur = cand;
                removed = true;
                break; // indices shifted; restart the pass
            }
        }
        if (!removed) {
            result.locallyMinimal = budgetLeft() || cur.empty();
            break;
        }
    }

    // Final run: re-verify and capture the normalized (full, strictly
    // replayable) decision record plus the minimized run's report.
    result.stillBug =
        attempt(cur, &result.normalized, &result.report);
    result.trace = std::move(cur);
    return result;
}

ShrinkResult
shrinkKernelTrace(const corpus::BugCase &bug, corpus::Variant variant,
                  const ScheduleTrace &input,
                  const ShrinkOptions &options)
{
    if (!options.attachRaceDetector) {
        return shrinkTrace(
            [&bug, variant](const RunOptions &ro) {
                corpus::BugOutcome out = bug.run(variant, ro);
                return Execution{std::move(out.report),
                                 out.manifested};
            },
            input, options);
    }

    race::Detector races(4);
    ShrinkOptions raced = options;
    raced.runOptions.subscribers.push_back(&races);
    return shrinkTrace(
        [&bug, variant, &races](const RunOptions &ro) {
            races.reset();
            corpus::BugOutcome out = bug.run(variant, ro);
            const bool bug_hit = out.manifested ||
                                 !out.report.raceMessages.empty();
            return Execution{std::move(out.report), bug_hit};
        },
        input, raced);
}

} // namespace golite::fuzz
