#include "context/context.hh"

namespace golite::ctx
{

void
ContextState::cancel(const std::string &why)
{
    // One guard for the whole cancellation tree walk (the chan close
    // and timer cancel inside compose reentrantly).
    SchedGuard guard(Scheduler::current());
    if (cancelled())
        return;
    err_ = why;
    if (timer_)
        Scheduler::current()->cancelTimer(timer_);
    if (done_ && ownsDone_)
        done_.close();
    for (auto &weak_child : children_) {
        if (auto child = weak_child.lock())
            child->cancel("context canceled");
    }
    children_.clear();
}

const std::any *
ContextState::value(const std::string &key) const
{
    auto it = values_.find(key);
    if (it != values_.end())
        return &it->second;
    if (valueParent_)
        return valueParent_->value(key);
    return nullptr;
}

Context
withValue(const Context &parent, std::string key, std::any value)
{
    SchedGuard guard(Scheduler::current());
    auto child = std::make_shared<ContextState>();
    child->values_.emplace(std::move(key), std::move(value));
    child->valueParent_ = parent;
    if (parent) {
        // Share the parent's cancellation signal (never close it
        // ourselves: the owning ancestor does).
        child->done_ = parent->done_;
        child->ownsDone_ = false;
        child->err_ = parent->err_;
        if (!parent->cancelled())
            parent->children_.push_back(child);
    }
    return child;
}

Context
background()
{
    // done_ stays nil: background contexts are never cancelled.
    return std::make_shared<ContextState>();
}

std::pair<Context, CancelFunc>
withCancel(const Context &parent)
{
    SchedGuard guard(Scheduler::current());
    auto child = std::make_shared<ContextState>();
    child->done_ = makeChan<Unit>();
    if (parent) {
        if (parent->cancelled()) {
            child->cancel("context canceled");
        } else {
            parent->children_.push_back(child);
        }
    }
    std::weak_ptr<ContextState> weak = child;
    CancelFunc cancel = [weak] {
        if (auto state = weak.lock())
            state->cancel("context canceled");
    };
    return {child, cancel};
}

std::pair<Context, CancelFunc>
withTimeout(const Context &parent, gotime::Duration d)
{
    auto [child, cancel] = withCancel(parent);
    std::weak_ptr<ContextState> weak = child;
    child->timer_ = Scheduler::current()->scheduleTimer(d, [weak] {
        if (auto state = weak.lock())
            state->cancel("context deadline exceeded");
    });
    return {child, cancel};
}

} // namespace golite::ctx
