/**
 * @file
 * The context package: request-scoped cancellation trees.
 *
 * context is one of the "new libraries" the paper singles out: its
 * done-channel plumbing is implicit message passing, and losing the
 * reference to a cancellable context (Figure 6) or sharing a context
 * object unsafely (etcd#7816) causes blocking and non-blocking bugs
 * respectively.
 *
 * Semantics mirrored from Go:
 *  - background() has a nil done channel (waits on it never fire);
 *  - withCancel/withTimeout return a CancelFunc that is idempotent;
 *  - cancelling a parent cancels all descendants;
 *  - err() is empty until done, then "context canceled" or
 *    "context deadline exceeded".
 */

#ifndef GOLITE_CONTEXT_CONTEXT_HH
#define GOLITE_CONTEXT_CONTEXT_HH

#include <any>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "channel/chan.hh"
#include "gotime/time.hh"

namespace golite::ctx
{

class ContextState;

/** Value-semantic context handle (like Go's context.Context). */
using Context = std::shared_ptr<ContextState>;

/** Idempotent cancellation function. */
using CancelFunc = std::function<void()>;

class ContextState : public std::enable_shared_from_this<ContextState>
{
  public:
    /**
     * The done channel: closed when the context is cancelled. Nil for
     * background contexts, so a select on it blocks forever — exactly
     * Go's behaviour.
     */
    Chan<Unit> done() const { return done_; }

    /** Empty until done; then the cancellation cause. */
    const std::string &err() const { return err_; }

    bool cancelled() const { return !err_.empty(); }

    /**
     * Request-scoped value lookup (context.Value): walks up the
     * chain of withValue ancestors. Returns nullptr when absent.
     */
    const std::any *value(const std::string &key) const;

  private:
    friend Context background();
    friend std::pair<Context, CancelFunc> withCancel(const Context &);
    friend std::pair<Context, CancelFunc> withTimeout(const Context &,
                                                      gotime::Duration);
    friend Context withValue(const Context &, std::string, std::any);

    void cancel(const std::string &why);

    Chan<Unit> done_;
    /** False for withValue children, which share the parent's done
     *  channel and must not close it themselves. */
    bool ownsDone_ = true;
    std::string err_;
    std::vector<std::weak_ptr<ContextState>> children_;
    TimerId timer_;
    /** Value chain: this node's payload plus the parent to consult. */
    std::map<std::string, std::any> values_;
    Context valueParent_;
};

/** The root context: never cancelled, nil done channel. */
Context background();

/**
 * Derive a cancellable child. The returned CancelFunc is idempotent;
 * as in Go, *failing to call it leaks whatever waits on done()*.
 */
std::pair<Context, CancelFunc> withCancel(const Context &parent);

/** Derive a child cancelled automatically after @p d. */
std::pair<Context, CancelFunc> withTimeout(const Context &parent,
                                           gotime::Duration d);

/**
 * Derive a child carrying a request-scoped key/value pair
 * (context.WithValue). The child shares the parent's done channel:
 * cancelling the parent is observed through the child.
 */
Context withValue(const Context &parent, std::string key,
                  std::any value);

} // namespace golite::ctx

#endif // GOLITE_CONTEXT_CONTEXT_HH
