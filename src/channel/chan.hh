/**
 * @file
 * Go channels for C++: typed, buffered or unbuffered, closable, with
 * exact Go semantics for the rule violations the paper studies —
 * sending on a closed channel panics, closing twice panics, operations
 * on a nil channel block forever.
 *
 * Chan<T> is a value-semantic handle (like Go's chan T): copying shares
 * the underlying channel; a default-constructed Chan is nil.
 */

#ifndef GOLITE_CHANNEL_CHAN_HH
#define GOLITE_CHANNEL_CHAN_HH

#include <deque>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "base/panic.hh"
#include "channel/waiter.hh"
#include "runtime/scheduler.hh"

namespace golite
{

/** Element type for pure signal channels (Go's struct{}). */
struct Unit
{
};

namespace detail
{

/** Shared state of one channel. */
template <typename T>
struct ChanImpl
{
    explicit ChanImpl(size_t capacity) : capacity(capacity) {}

    /** The impl pointer is the channel's sync-object identity on the
     *  event bus; its destruction retires the detectors' clock state
     *  for it (soak runs churn through millions of channels). */
    ~ChanImpl() { notifyMemFree(this); }

    const size_t capacity;
    std::deque<T> buffer;
    bool closed = false;
    WaitQueue sendq;
    WaitQueue recvq;

    bool unbuffered() const { return capacity == 0; }

    void
    removeWaiter(Waiter *w)
    {
        // The waiter's backpointer makes each of these O(1); at most
        // one of them actually unlinks.
        sendq.remove(w);
        recvq.remove(w);
    }
};

} // namespace detail

/** Result of a receive: the value plus Go's "comma ok" flag. */
template <typename T>
struct RecvResult
{
    T value{};
    bool ok = false;
};

template <typename T>
class Chan
{
  public:
    using Element = T;

    /** A nil channel (no underlying buffer; ops block forever). */
    Chan() = default;

    /** True for non-nil channels. */
    explicit operator bool() const { return impl_ != nullptr; }

    bool operator==(const Chan &o) const { return impl_ == o.impl_; }

    /** Number of elements buffered right now (Go's len). */
    size_t
    len() const
    {
        SchedGuard guard(Scheduler::current());
        return impl_ ? impl_->buffer.size() : 0;
    }

    /** Buffer capacity (Go's cap). */
    size_t
    cap() const
    {
        return impl_ ? impl_->capacity : 0;
    }

    /**
     * Send a value. Blocks until a receiver takes it (unbuffered) or
     * buffer space is available. Panics if the channel is or becomes
     * closed; blocks forever on a nil channel.
     */
    void
    send(T value) const
    {
        Scheduler *sched = Scheduler::current();
        SchedGuard guard(sched);
        if (!impl_) {
            sched->park(WaitReason::ChanSendNil, nullptr);
            return; // unreachable except during teardown unwind
        }
        auto *c = impl_.get();
        sched->bus().chanOp(c, sched->runningId(), ChanOpKind::Send);
        if (c->closed)
            goPanic("send on closed channel");

        sched->bus().release(c, sched->runningId());

        // Direct handoff to a parked receiver.
        while (!c->recvq.empty()) {
            Waiter *w = c->recvq.popFront();
            if (!claimWaiter(w))
                continue;
            *static_cast<T *>(w->slot) = std::move(value);
            w->ok = true;
            w->completed = true;
            if (c->unbuffered())
                sched->bus().acquire(c, sched->runningId());
            sched->unpark(w->g);
            return;
        }

        if (c->buffer.size() < c->capacity) {
            c->buffer.push_back(std::move(value));
            return;
        }

        // Block until a receiver (or close) completes us.
        Waiter self;
        self.g = sched->running();
        self.slot = &value;
        c->sendq.pushBack(&self);
        sched->park(WaitReason::ChanSend, c);
        if (self.closedWake)
            goPanic("send on closed channel");
        if (c->unbuffered())
            sched->bus().acquire(c, sched->runningId());
    }

    /**
     * Receive a value. Blocks until a sender provides one; returns
     * {zero, false} once the channel is closed and drained. Blocks
     * forever on a nil channel.
     */
    RecvResult<T>
    recv() const
    {
        Scheduler *sched = Scheduler::current();
        SchedGuard guard(sched);
        if (!impl_) {
            sched->park(WaitReason::ChanRecvNil, nullptr);
            return {};
        }
        auto *c = impl_.get();
        sched->bus().chanOp(c, sched->runningId(), ChanOpKind::Recv);

        // Buffered data first (FIFO).
        if (!c->buffer.empty()) {
            RecvResult<T> out{std::move(c->buffer.front()), true};
            c->buffer.pop_front();
            sched->bus().acquire(c, sched->runningId());
            // A parked sender can move its value into the freed slot.
            while (!c->sendq.empty()) {
                Waiter *w = c->sendq.popFront();
                if (!claimWaiter(w))
                    continue;
                c->buffer.push_back(std::move(*static_cast<T *>(w->slot)));
                w->completed = true;
                sched->unpark(w->g);
                break;
            }
            return out;
        }

        // Direct handoff from a parked sender (unbuffered channel).
        while (!c->sendq.empty()) {
            Waiter *w = c->sendq.popFront();
            if (!claimWaiter(w))
                continue;
            RecvResult<T> out{std::move(*static_cast<T *>(w->slot)), true};
            w->completed = true;
            sched->bus().acquire(c, sched->runningId());
            if (c->unbuffered())
                sched->bus().release(c, sched->runningId());
            sched->unpark(w->g);
            return out;
        }

        if (c->closed) {
            sched->bus().acquire(c, sched->runningId());
            return {};
        }

        // Block until a sender (or close) completes us.
        RecvResult<T> out;
        Waiter self;
        self.g = sched->running();
        self.slot = &out.value;
        if (c->unbuffered())
            sched->bus().release(c, sched->runningId());
        c->recvq.pushBack(&self);
        sched->park(WaitReason::ChanRecv, c);
        sched->bus().acquire(c, sched->runningId());
        out.ok = self.ok;
        if (!self.ok)
            out.value = T{};
        return out;
    }

    /**
     * Close the channel. Wakes all blocked receivers with ok=false and
     * panics all blocked senders. Panics on double close or nil close.
     */
    void
    close() const
    {
        Scheduler *sched = Scheduler::current();
        SchedGuard guard(sched);
        if (!impl_)
            goPanic("close of nil channel");
        auto *c = impl_.get();
        sched->bus().chanOp(c, sched->runningId(), ChanOpKind::Close);
        if (c->closed)
            goPanic("close of closed channel");
        c->closed = true;
        sched->bus().release(c, sched->runningId());
        // Claim every waiter first, then wake them in one batched
        // readyq splice (identical events and FIFO order to
        // one-by-one unparks; see Scheduler::unparkBatch).
        std::vector<Goroutine *> woken;
        woken.reserve(c->recvq.size() + c->sendq.size());
        while (!c->recvq.empty()) {
            Waiter *w = c->recvq.popFront();
            if (!claimWaiter(w))
                continue;
            w->ok = false;
            w->completed = true;
            woken.push_back(w->g);
        }
        while (!c->sendq.empty()) {
            Waiter *w = c->sendq.popFront();
            if (!claimWaiter(w))
                continue;
            w->closedWake = true;
            w->completed = true;
            woken.push_back(w->g);
        }
        sched->unparkBatch(woken.data(), woken.size());
    }

    /**
     * Non-blocking send. Returns true if the value was delivered or
     * buffered. Panics on a closed channel (as a select send case
     * would). Returns false on a nil channel.
     */
    bool
    trySend(T value) const
    {
        if (!impl_)
            return false;
        Scheduler *sched = Scheduler::current();
        SchedGuard guard(sched);
        auto *c = impl_.get();
        sched->bus().chanOp(c, sched->runningId(), ChanOpKind::TrySend);
        if (c->closed)
            goPanic("send on closed channel");
        while (!c->recvq.empty()) {
            Waiter *w = c->recvq.popFront();
            if (!claimWaiter(w))
                continue;
            sched->bus().release(c, sched->runningId());
            *static_cast<T *>(w->slot) = std::move(value);
            w->ok = true;
            w->completed = true;
            if (c->unbuffered())
                sched->bus().acquire(c, sched->runningId());
            sched->unpark(w->g);
            return true;
        }
        if (c->buffer.size() < c->capacity) {
            sched->bus().release(c, sched->runningId());
            c->buffer.push_back(std::move(value));
            return true;
        }
        return false;
    }

    /**
     * Non-blocking receive. nullopt when the operation would block;
     * otherwise the value with the comma-ok flag (ok=false once the
     * channel is closed and drained).
     */
    std::optional<RecvResult<T>>
    tryRecv() const
    {
        if (!impl_)
            return std::nullopt;
        Scheduler *sched = Scheduler::current();
        SchedGuard guard(sched);
        auto *c = impl_.get();
        sched->bus().chanOp(c, sched->runningId(), ChanOpKind::TryRecv);
        if (!c->buffer.empty()) {
            RecvResult<T> out{std::move(c->buffer.front()), true};
            c->buffer.pop_front();
            sched->bus().acquire(c, sched->runningId());
            while (!c->sendq.empty()) {
                Waiter *w = c->sendq.popFront();
                if (!claimWaiter(w))
                    continue;
                c->buffer.push_back(std::move(*static_cast<T *>(w->slot)));
                w->completed = true;
                sched->unpark(w->g);
                break;
            }
            return out;
        }
        while (!c->sendq.empty()) {
            Waiter *w = c->sendq.popFront();
            if (!claimWaiter(w))
                continue;
            RecvResult<T> out{std::move(*static_cast<T *>(w->slot)), true};
            w->completed = true;
            sched->bus().acquire(c, sched->runningId());
            if (c->unbuffered())
                sched->bus().release(c, sched->runningId());
            sched->unpark(w->g);
            return out;
        }
        if (c->closed) {
            sched->bus().acquire(c, sched->runningId());
            return RecvResult<T>{};
        }
        return std::nullopt;
    }

    /** Internal: the shared state, for the select engine. */
    detail::ChanImpl<T> *internalImpl() const { return impl_.get(); }

  private:
    template <typename U>
    friend Chan<U> makeChan(size_t capacity);

    explicit Chan(std::shared_ptr<detail::ChanImpl<T>> impl)
        : impl_(std::move(impl))
    {
    }

    std::shared_ptr<detail::ChanImpl<T>> impl_;
};

/** Create a channel with the given buffer capacity (0 = unbuffered). */
template <typename T>
Chan<T>
makeChan(size_t capacity = 0)
{
    return Chan<T>(std::make_shared<detail::ChanImpl<T>>(capacity));
}

} // namespace golite

#endif // GOLITE_CHANNEL_CHAN_HH
