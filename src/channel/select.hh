/**
 * @file
 * Go's select statement: wait on multiple channel operations, choose
 * uniformly at random among ready cases (the nondeterminism behind the
 * Figure 11 class of bugs), optionally with a default branch.
 *
 * Usage:
 * @code
 *   int chosen = Select()
 *       .recv(results, [&](Result r, bool ok) { ... })
 *       .recv(timeout, [&](Unit, bool) { ... })
 *       .run();
 * @endcode
 */

#ifndef GOLITE_CHANNEL_SELECT_HH
#define GOLITE_CHANNEL_SELECT_HH

#include <functional>
#include <memory>
#include <vector>

#include "channel/chan.hh"

namespace golite
{

namespace detail
{

/** Type-erased select case. */
class SelectCase
{
  public:
    virtual ~SelectCase() = default;

    /** Nil-channel cases are never ready and never enqueued. */
    virtual bool isNil() const = 0;

    /** Try to complete immediately; true if it did. */
    virtual bool poll() = 0;

    /** Enqueue @p waiter on the channel for a blocking wait. */
    virtual void enqueue(Waiter &waiter) = 0;

    /** Remove @p waiter from the channel queue (losing case). */
    virtual void cancel(Waiter &waiter) = 0;

    /** Finish a blocking completion (HB edges, closed-send panic). */
    virtual void complete(Waiter &waiter) = 0;

    /** Run the user handler. */
    virtual void invoke() = 0;

    /** The channel's shared state (wait-graph identity). */
    virtual const void *channelKey() const = 0;

    /** True for send cases (wait-graph edge direction). */
    virtual bool isSendCase() const = 0;
};

template <typename T>
class RecvCase : public SelectCase
{
  public:
    RecvCase(Chan<T> ch, std::function<void(T, bool)> handler)
        : ch_(std::move(ch)), handler_(std::move(handler))
    {
    }

    bool isNil() const override { return !ch_; }

    bool
    poll() override
    {
        auto r = ch_.tryRecv();
        if (!r)
            return false;
        value_ = std::move(r->value);
        ok_ = r->ok;
        return true;
    }

    void
    enqueue(Waiter &waiter) override
    {
        waiter.slot = &value_;
        if (ch_.internalImpl()->unbuffered()) {
            Scheduler *sched = Scheduler::current();
            sched->bus().release(ch_.internalImpl(),
                                 sched->runningId());
        }
        ch_.internalImpl()->recvq.pushBack(&waiter);
    }

    void
    cancel(Waiter &waiter) override
    {
        ch_.internalImpl()->removeWaiter(&waiter);
    }

    void
    complete(Waiter &waiter) override
    {
        Scheduler *sched = Scheduler::current();
        sched->bus().acquire(ch_.internalImpl(), sched->runningId());
        ok_ = waiter.ok;
        if (!ok_)
            value_ = T{};
    }

    void invoke() override { handler_(std::move(value_), ok_); }

    const void *channelKey() const override
    {
        return ch_.internalImpl();
    }

    bool isSendCase() const override { return false; }

  private:
    Chan<T> ch_;
    std::function<void(T, bool)> handler_;
    T value_{};
    bool ok_ = false;
};

template <typename T>
class SendCase : public SelectCase
{
  public:
    SendCase(Chan<T> ch, T value, std::function<void()> handler)
        : ch_(std::move(ch)), value_(std::move(value)),
          handler_(std::move(handler))
    {
    }

    bool isNil() const override { return !ch_; }

    bool poll() override { return ch_.trySend(value_); }

    void
    enqueue(Waiter &waiter) override
    {
        waiter.slot = &value_;
        Scheduler *sched = Scheduler::current();
        sched->bus().release(ch_.internalImpl(), sched->runningId());
        ch_.internalImpl()->sendq.pushBack(&waiter);
    }

    void
    cancel(Waiter &waiter) override
    {
        ch_.internalImpl()->removeWaiter(&waiter);
    }

    void
    complete(Waiter &waiter) override
    {
        if (waiter.closedWake)
            goPanic("send on closed channel");
        if (ch_.internalImpl()->unbuffered()) {
            Scheduler *sched = Scheduler::current();
            sched->bus().acquire(ch_.internalImpl(),
                                 sched->runningId());
        }
    }

    void invoke() override { handler_(); }

    const void *channelKey() const override
    {
        return ch_.internalImpl();
    }

    bool isSendCase() const override { return true; }

  private:
    Chan<T> ch_;
    T value_;
    std::function<void()> handler_;
};

} // namespace detail

/**
 * Builder/executor for one select statement. Cases are numbered in
 * registration order; run() returns the chosen index (the default
 * branch, when taken, returns its own index).
 */
class Select
{
  public:
    Select() = default;

    /** Add a receive case. Handler gets (value, ok). */
    template <typename T>
    Select &
    recv(Chan<T> ch, std::function<void(T, bool)> handler)
    {
        cases_.push_back(std::make_unique<detail::RecvCase<T>>(
            std::move(ch), std::move(handler)));
        return *this;
    }

    /** Add a send case. */
    template <typename T>
    Select &
    send(Chan<T> ch, T value, std::function<void()> handler)
    {
        cases_.push_back(std::make_unique<detail::SendCase<T>>(
            std::move(ch), std::move(value), std::move(handler)));
        return *this;
    }

    /** Add a default branch: taken when no case is ready. */
    Select &def(std::function<void()> handler);

    /**
     * Execute the select: poll ready cases in random order, fall back
     * to the default branch, or block until a case completes.
     * Returns the index of the executed case (cases in registration
     * order; the default branch counts as index cases().size()).
     */
    int run();

    size_t caseCount() const { return cases_.size(); }

  private:
    std::vector<std::unique_ptr<detail::SelectCase>> cases_;
    std::function<void()> default_;
};

} // namespace golite

#endif // GOLITE_CHANNEL_SELECT_HH
