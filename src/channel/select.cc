#include "channel/select.hh"

#include <algorithm>
#include <numeric>

namespace golite
{

Select &
Select::def(std::function<void()> handler)
{
    default_ = std::move(handler);
    return *this;
}

int
Select::run()
{
    Scheduler *sched = Scheduler::current();
    // One guard covers poll, enqueue, park, cancel, and complete: the
    // waiter/token handshake with racing channel ops must be atomic.
    SchedGuard guard(sched);

    // Phase 1: poll all non-nil cases in random order; the uniform
    // choice among ready cases is the Go semantic the paper's
    // select-related bugs (Figures 1 and 11) depend on.
    std::vector<size_t> order(cases_.size());
    std::iota(order.begin(), order.end(), 0);
    for (size_t i = order.size(); i > 1; --i)
        std::swap(order[i - 1], order[sched->choose(i)]);

    for (size_t index : order) {
        detail::SelectCase &c = *cases_[index];
        if (c.isNil())
            continue;
        if (c.poll()) {
            c.invoke();
            return static_cast<int>(index);
        }
    }

    if (default_) {
        default_();
        return static_cast<int>(cases_.size());
    }

    // Phase 2: block. Enqueue a waiter per live case; first channel
    // operation to claim the shared token wins.
    SelectToken token;
    std::vector<Waiter> waiters(cases_.size());
    std::vector<bool> enqueued(cases_.size(), false);
    std::vector<SelectWait> waits;
    for (size_t i = 0; i < cases_.size(); ++i) {
        detail::SelectCase &c = *cases_[i];
        if (c.isNil())
            continue;
        Waiter &w = waiters[i];
        w.g = sched->running();
        w.token = &token;
        w.caseIndex = static_cast<int>(i);
        c.enqueue(w);
        enqueued[i] = true;
        waits.push_back(SelectWait{c.channelKey(), c.isSendCase()});
    }

    if (waits.empty()) {
        // select{} or all-nil channels: block forever. The null wait
        // object is how the wait-graph detector recognizes this as a
        // certain stall.
        sched->park(WaitReason::Select, nullptr);
        return -1; // unreachable except during teardown unwind
    }

    sched->bus().selectBlock(sched->runningId(), waits);
    sched->park(WaitReason::Select, this);

    const int winner = token.winner;
    for (size_t i = 0; i < cases_.size(); ++i) {
        if (enqueued[i] && static_cast<int>(i) != winner)
            cases_[i]->cancel(waiters[i]);
    }

    detail::SelectCase &chosen = *cases_[winner];
    chosen.complete(waiters[winner]);
    chosen.invoke();
    return winner;
}

} // namespace golite
