/**
 * @file
 * Waiter records shared between channels and the select engine.
 *
 * A goroutine blocking on a channel operation enqueues a Waiter on that
 * channel; a select enqueues one Waiter per case, all pointing at a
 * shared SelectToken so that exactly one case can win.
 */

#ifndef GOLITE_CHANNEL_WAITER_HH
#define GOLITE_CHANNEL_WAITER_HH

namespace golite
{

class Goroutine;

/**
 * First-winner election among the cases of one select. Also used (with
 * a single case) to guard against double completion.
 */
struct SelectToken
{
    int winner = -1;

    /** Try to make case @p case_index the chosen one. */
    bool
    tryWin(int case_index)
    {
        if (winner != -1)
            return false;
        winner = case_index;
        return true;
    }
};

/**
 * One parked channel operation. Lives on the stack of the parked
 * goroutine; the completing goroutine fills it in and unparks.
 */
struct Waiter
{
    Goroutine *g = nullptr;
    /** Points at the T being sent / the T to receive into. */
    void *slot = nullptr;
    /** Recv: false when the wake came from close. */
    bool ok = false;
    /** Send: true when the channel was closed under us (-> panic). */
    bool closedWake = false;
    /** Data was actually transferred. */
    bool completed = false;
    /** Select election; null for plain (single-op) waits. */
    SelectToken *token = nullptr;
    int caseIndex = -1;
};

/**
 * Claim a waiter for completion. Plain waiters always claim; select
 * waiters claim only if their select has not chosen another case.
 */
inline bool
claimWaiter(Waiter *w)
{
    if (!w->token)
        return true;
    return w->token->tryWin(w->caseIndex);
}

} // namespace golite

#endif // GOLITE_CHANNEL_WAITER_HH
