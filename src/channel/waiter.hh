/**
 * @file
 * Waiter records shared between channels and the select engine.
 *
 * A goroutine blocking on a channel operation enqueues a Waiter on that
 * channel; a select enqueues one Waiter per case, all pointing at a
 * shared SelectToken so that exactly one case can win.
 */

#ifndef GOLITE_CHANNEL_WAITER_HH
#define GOLITE_CHANNEL_WAITER_HH

namespace golite
{

class Goroutine;

/**
 * First-winner election among the cases of one select. Also used (with
 * a single case) to guard against double completion.
 */
struct SelectToken
{
    int winner = -1;

    /** Try to make case @p case_index the chosen one. */
    bool
    tryWin(int case_index)
    {
        if (winner != -1)
            return false;
        winner = case_index;
        return true;
    }
};

class WaitQueue;

/**
 * One parked channel operation. Lives on the stack of the parked
 * goroutine; the completing goroutine fills it in and unparks.
 */
struct Waiter
{
    Goroutine *g = nullptr;
    /** Points at the T being sent / the T to receive into. */
    void *slot = nullptr;
    /** Recv: false when the wake came from close. */
    bool ok = false;
    /** Send: true when the channel was closed under us (-> panic). */
    bool closedWake = false;
    /** Data was actually transferred. */
    bool completed = false;
    /** Select election; null for plain (single-op) waits. */
    SelectToken *token = nullptr;
    int caseIndex = -1;

    // Intrusive WaitQueue links (owned by the queue while enqueued).
    Waiter *prev = nullptr;
    Waiter *next = nullptr;
    WaitQueue *queue = nullptr;
};

/**
 * Intrusive FIFO of parked Waiters, the channel send/recv queue. A
 * Waiter lives on its goroutine's stack and carries its own links, so
 * enqueue, dequeue, and — crucially — removing a losing select case
 * from the middle are all O(1) with zero allocation. The previous
 * std::deque<Waiter*> made that middle removal a linear scan, which
 * under soak load (100k+ parked goroutines per channel) turned every
 * select cancellation into a full-queue walk.
 */
class WaitQueue
{
  public:
    bool empty() const { return head_ == nullptr; }

    size_t size() const { return size_; }

    Waiter *front() const { return head_; }

    void
    pushBack(Waiter *w)
    {
        w->queue = this;
        w->prev = tail_;
        w->next = nullptr;
        (tail_ != nullptr ? tail_->next : head_) = w;
        tail_ = w;
        size_++;
    }

    /** Dequeue the oldest waiter (queue must be non-empty). */
    Waiter *
    popFront()
    {
        Waiter *w = head_;
        unlink(w);
        return w;
    }

    /** Remove @p w if it is enqueued here; no-op otherwise. */
    void
    remove(Waiter *w)
    {
        if (w->queue == this)
            unlink(w);
    }

  private:
    void
    unlink(Waiter *w)
    {
        (w->prev != nullptr ? w->prev->next : head_) = w->next;
        (w->next != nullptr ? w->next->prev : tail_) = w->prev;
        w->prev = nullptr;
        w->next = nullptr;
        w->queue = nullptr;
        size_--;
    }

    Waiter *head_ = nullptr;
    Waiter *tail_ = nullptr;
    size_t size_ = 0;
};

/**
 * Claim a waiter for completion. Plain waiters always claim; select
 * waiters claim only if their select has not chosen another case.
 */
inline bool
claimWaiter(Waiter *w)
{
    if (!w->token)
        return true;
    return w->token->tryWin(w->caseIndex);
}

} // namespace golite

#endif // GOLITE_CHANNEL_WAITER_HH
