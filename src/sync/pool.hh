/**
 * @file
 * sync.Pool: a cache of reusable values (a "Misc" primitive in the
 * paper's Table 4 taxonomy).
 *
 * Like Go's: get() returns a pooled value or calls the factory;
 * put() returns a value to the pool. golite's runtime is
 * single-threaded, so this is semantically a free list with
 * happens-before edges (put releases; get acquires).
 */

#ifndef GOLITE_SYNC_POOL_HH
#define GOLITE_SYNC_POOL_HH

#include <functional>
#include <utility>
#include <vector>

#include "runtime/scheduler.hh"

namespace golite
{

template <typename T>
class Pool
{
  public:
    /** @param factory Called by get() when the pool is empty. */
    explicit Pool(std::function<T()> factory)
        : factory_(std::move(factory))
    {
    }

    Pool(const Pool &) = delete;
    Pool &operator=(const Pool &) = delete;

    /** Take a value from the pool (or make a fresh one). */
    T
    get()
    {
        Scheduler *sched = Scheduler::current();
        SchedGuard guard(sched);
        sched->bus().acquire(this, sched->runningId());
        if (items_.empty())
            return factory_();
        T out = std::move(items_.back());
        items_.pop_back();
        return out;
    }

    /** Return a value to the pool. */
    void
    put(T value)
    {
        Scheduler *sched = Scheduler::current();
        SchedGuard guard(sched);
        items_.push_back(std::move(value));
        sched->bus().release(this, sched->runningId());
    }

    size_t idle() const { return items_.size(); }

  private:
    std::function<T()> factory_;
    std::vector<T> items_;
};

} // namespace golite

#endif // GOLITE_SYNC_POOL_HH
