#include "sync/mutex.hh"

#include "base/panic.hh"
#include "runtime/scheduler.hh"

namespace golite
{

void
Mutex::lock()
{
    Scheduler *sched = Scheduler::current();
    if (!locked_) {
        locked_ = true;
        holder_ = sched->runningId();
        sched->hooks()->lockAcquired(this, holder_, true);
        sched->deadlockHooks()->lockAcquired(this, holder_, true);
        sched->hooks()->acquire(this);
        return;
    }
    // Note: no reentrancy check — locking a mutex the current
    // goroutine already holds blocks forever, exactly as in Go.
    sched->hooks()->lockRequested(this, sched->runningId(), true);
    waitq_.push_back(sched->running());
    sched->park(WaitReason::MutexLock, this);
    // Ownership was handed to us by unlock().
    holder_ = sched->runningId();
    sched->hooks()->lockAcquired(this, holder_, true);
    sched->deadlockHooks()->lockAcquired(this, holder_, true);
    sched->hooks()->acquire(this);
}

void
Mutex::unlock()
{
    Scheduler *sched = Scheduler::current();
    if (!locked_)
        goPanic("sync: unlock of unlocked mutex");
    sched->hooks()->lockReleased(this, sched->runningId());
    sched->deadlockHooks()->lockReleased(this, sched->runningId(),
                                         true);
    sched->hooks()->release(this);
    if (!waitq_.empty()) {
        Goroutine *next = waitq_.front();
        waitq_.pop_front();
        // Lock stays held; ownership transfers to `next`.
        sched->unpark(next);
        return;
    }
    locked_ = false;
    holder_ = 0;
}

bool
Mutex::tryLock()
{
    if (locked_)
        return false;
    lock();
    return true;
}

} // namespace golite
