#include "sync/mutex.hh"

#include "base/panic.hh"
#include "runtime/scheduler.hh"

namespace golite
{

Mutex::~Mutex()
{
    notifyMemFree(this);
}

void
Mutex::lock()
{
    Scheduler *sched = Scheduler::current();
    SchedGuard guard(sched);
    EventBus &bus = sched->bus();
    if (!locked_) {
        locked_ = true;
        holder_ = sched->runningId();
        bus.lockAcquire(this, holder_, true);
        bus.acquire(this, holder_);
        return;
    }
    // Note: no reentrancy check — locking a mutex the current
    // goroutine already holds blocks forever, exactly as in Go.
    bus.lockRequest(this, sched->runningId(), true);
    waitq_.push_back(sched->running());
    sched->park(WaitReason::MutexLock, this);
    // Ownership was handed to us by unlock().
    holder_ = sched->runningId();
    bus.lockAcquire(this, holder_, true);
    bus.acquire(this, holder_);
}

void
Mutex::unlock()
{
    Scheduler *sched = Scheduler::current();
    SchedGuard guard(sched);
    if (!locked_)
        goPanic("sync: unlock of unlocked mutex");
    const uint64_t gid = sched->runningId();
    sched->bus().lockRelease(this, gid, true);
    sched->bus().release(this, gid);
    if (!waitq_.empty()) {
        Goroutine *next = waitq_.front();
        waitq_.pop_front();
        // Lock stays held; ownership transfers to `next`.
        sched->unpark(next);
        return;
    }
    locked_ = false;
    holder_ = 0;
}

bool
Mutex::tryLock()
{
    SchedGuard guard(Scheduler::current());
    if (locked_)
        return false;
    lock();
    return true;
}

} // namespace golite
