#include "sync/waitgroup.hh"

#include "base/panic.hh"
#include "runtime/scheduler.hh"

namespace golite
{

WaitGroup::~WaitGroup()
{
    notifyMemFree(this);
}

void
WaitGroup::add(int delta)
{
    Scheduler *sched = Scheduler::current();
    SchedGuard guard(sched);
    count_ += delta;
    if (count_ < 0)
        goPanic("sync: negative WaitGroup counter");
    sched->bus().wgDelta(this, sched->runningId(), delta, count_);
    if (delta < 0)
        sched->bus().release(this, sched->runningId());
    if (count_ == 0 && !waitq_.empty()) {
        while (!waitq_.empty()) {
            sched->unpark(waitq_.front());
            waitq_.pop_front();
        }
    }
}

void
WaitGroup::wait()
{
    Scheduler *sched = Scheduler::current();
    SchedGuard guard(sched);
    sched->bus().wgWait(this, sched->runningId());
    if (count_ > 0) {
        waitq_.push_back(sched->running());
        sched->park(WaitReason::WaitGroupWait, this);
    }
    sched->bus().acquire(this, sched->runningId());
}

} // namespace golite
