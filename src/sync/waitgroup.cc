#include "sync/waitgroup.hh"

#include "base/panic.hh"
#include "runtime/scheduler.hh"

namespace golite
{

void
WaitGroup::add(int delta)
{
    Scheduler *sched = Scheduler::current();
    count_ += delta;
    if (count_ < 0)
        goPanic("sync: negative WaitGroup counter");
    sched->hooks()->wgAdd(this, delta, count_);
    sched->deadlockHooks()->wgCounter(this, count_);
    if (delta < 0)
        sched->hooks()->release(this);
    if (count_ == 0 && !waitq_.empty()) {
        while (!waitq_.empty()) {
            sched->unpark(waitq_.front());
            waitq_.pop_front();
        }
    }
}

void
WaitGroup::wait()
{
    Scheduler *sched = Scheduler::current();
    sched->hooks()->wgWait(this);
    if (count_ > 0) {
        waitq_.push_back(sched->running());
        sched->park(WaitReason::WaitGroupWait, this);
    }
    sched->hooks()->acquire(this);
}

} // namespace golite
