/**
 * @file
 * sync.Cond: condition variable bound to a Mutex.
 *
 * As in Go (and unlike lost-wakeup-tolerant designs), a Wait with no
 * subsequent Signal/Broadcast blocks forever — two of the paper's
 * blocking bugs are exactly that missing-signal pattern.
 */

#ifndef GOLITE_SYNC_COND_HH
#define GOLITE_SYNC_COND_HH

#include <cstddef>
#include <deque>

#include "sync/mutex.hh"

namespace golite
{

class Goroutine;

class Cond
{
  public:
    explicit Cond(Mutex &mutex) : mutex_(mutex) {}
    Cond(const Cond &) = delete;
    Cond &operator=(const Cond &) = delete;

    /**
     * Atomically release the mutex and park; re-acquire before
     * returning. The mutex must be held. No spurious wakeups.
     */
    void wait();

    /** Wake one waiter (no-op when none). */
    void signal();

    /** Wake all waiters. */
    void broadcast();

    size_t waiters() const { return waitq_.size(); }

  private:
    Mutex &mutex_;
    std::deque<Goroutine *> waitq_;
};

} // namespace golite

#endif // GOLITE_SYNC_COND_HH
