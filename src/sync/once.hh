/**
 * @file
 * sync.Once: run a function exactly once across goroutines.
 *
 * Go programmers use Once both for one-time initialization and — as in
 * the Docker#24007 fix (Figure 10) — to make a channel close idempotent.
 */

#ifndef GOLITE_SYNC_ONCE_HH
#define GOLITE_SYNC_ONCE_HH

#include <deque>
#include <functional>

namespace golite
{

class Goroutine;

class Once
{
  public:
    Once() = default;
    /** Emits MemFree so detectors drop this object's clock state. */
    ~Once();
    Once(const Once &) = delete;
    Once &operator=(const Once &) = delete;

    /**
     * Run @p fn if no previous doOnce on this Once has run it.
     * Concurrent callers block until the first caller's fn returns
     * (Go's semantics), then return without running fn.
     */
    void doOnce(const std::function<void()> &fn);

    bool done() const { return done_; }

  private:
    bool done_ = false;
    bool running_ = false;
    std::deque<Goroutine *> waitq_;
};

} // namespace golite

#endif // GOLITE_SYNC_ONCE_HH
