/**
 * @file
 * sync/atomic: atomic loads/stores/adds/CAS that, as in Go's race
 * detector, count as synchronization (they create happens-before
 * edges and never race with each other).
 */

#ifndef GOLITE_SYNC_ATOMIC_HH
#define GOLITE_SYNC_ATOMIC_HH

#include "runtime/scheduler.hh"

namespace golite
{

template <typename T>
class Atomic
{
  public:
    Atomic() = default;
    explicit Atomic(T initial) : value_(initial) {}
    Atomic(const Atomic &) = delete;
    Atomic &operator=(const Atomic &) = delete;

    T
    load() const
    {
        Scheduler *sched = Scheduler::current();
        SchedGuard guard(sched);
        sched->bus().acquire(this, sched->runningId());
        return value_;
    }

    void
    store(T value)
    {
        Scheduler *sched = Scheduler::current();
        SchedGuard guard(sched);
        value_ = value;
        sched->bus().release(this, sched->runningId());
    }

    /** Atomic add; returns the new value (Go's AddInt64 convention). */
    T
    add(T delta)
    {
        Scheduler *sched = Scheduler::current();
        SchedGuard guard(sched);
        sched->bus().acquire(this, sched->runningId());
        value_ += delta;
        sched->bus().release(this, sched->runningId());
        return value_;
    }

    /** Compare-and-swap; true on success. */
    bool
    compareAndSwap(T expect, T desired)
    {
        Scheduler *sched = Scheduler::current();
        SchedGuard guard(sched);
        sched->bus().acquire(this, sched->runningId());
        const bool swapped = (value_ == expect);
        if (swapped)
            value_ = desired;
        sched->bus().release(this, sched->runningId());
        return swapped;
    }

    /** Uninstrumented access for use outside a run (e.g. asserts). */
    T raw() const { return value_; }

  private:
    T value_{};
};

} // namespace golite

#endif // GOLITE_SYNC_ATOMIC_HH
