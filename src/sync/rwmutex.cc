#include "sync/rwmutex.hh"

#include <algorithm>

#include "base/panic.hh"
#include "runtime/scheduler.hh"

namespace golite
{

RWMutex::~RWMutex()
{
    notifyMemFree(this);
}

void
RWMutex::rlock()
{
    Scheduler *sched = Scheduler::current();
    SchedGuard guard(sched);
    EventBus &bus = sched->bus();
    // Writer privilege: a waiting writer blocks new readers even
    // though readers currently hold the lock. This is what makes the
    // recursive-read-lock pattern deadlock in Go.
    if (writerActive_ || !writerq_.empty()) {
        bus.lockRequest(this, sched->runningId(), false);
        readerq_.push_back(sched->running());
        sched->park(WaitReason::RWMutexRLock, this);
    } else {
        readers_++;
    }
    readerGids_.push_back(sched->runningId());
    bus.lockAcquire(this, sched->runningId(), false);
    bus.acquire(this, sched->runningId());
}

void
RWMutex::runlock()
{
    Scheduler *sched = Scheduler::current();
    SchedGuard guard(sched);
    EventBus &bus = sched->bus();
    if (readers_ == 0)
        goPanic("sync: RUnlock of unlocked RWMutex");
    bus.lockRelease(this, sched->runningId(), false);
    bus.release(this, sched->runningId());
    auto it = std::find(readerGids_.begin(), readerGids_.end(),
                        sched->runningId());
    if (it != readerGids_.end())
        readerGids_.erase(it);
    readers_--;
    if (readers_ == 0 && !writerq_.empty()) {
        Goroutine *w = writerq_.front();
        writerq_.pop_front();
        writerActive_ = true;
        sched->unpark(w);
    }
}

void
RWMutex::lock()
{
    Scheduler *sched = Scheduler::current();
    SchedGuard guard(sched);
    EventBus &bus = sched->bus();
    if (readers_ == 0 && !writerActive_ && writerq_.empty()) {
        writerActive_ = true;
    } else {
        bus.lockRequest(this, sched->runningId(), true);
        writerq_.push_back(sched->running());
        sched->park(WaitReason::RWMutexWLock, this);
        // writerActive_ was set on our behalf by the waker.
    }
    writerGid_ = sched->runningId();
    bus.lockAcquire(this, sched->runningId(), true);
    bus.acquire(this, sched->runningId());
}

void
RWMutex::unlock()
{
    Scheduler *sched = Scheduler::current();
    SchedGuard guard(sched);
    EventBus &bus = sched->bus();
    if (!writerActive_)
        goPanic("sync: Unlock of unlocked RWMutex");
    bus.lockRelease(this, sched->runningId(), true);
    bus.release(this, sched->runningId());
    writerActive_ = false;
    writerGid_ = 0;
    if (!readerq_.empty()) {
        // Go releases the readers that queued behind us first.
        while (!readerq_.empty()) {
            Goroutine *r = readerq_.front();
            readerq_.pop_front();
            readers_++;
            sched->unpark(r);
        }
        return;
    }
    if (!writerq_.empty()) {
        Goroutine *w = writerq_.front();
        writerq_.pop_front();
        writerActive_ = true;
        sched->unpark(w);
    }
}

} // namespace golite
