#include "sync/once.hh"

#include "runtime/scheduler.hh"

namespace golite
{

Once::~Once()
{
    notifyMemFree(this);
}

void
Once::doOnce(const std::function<void()> &fn)
{
    Scheduler *sched = Scheduler::current();
    SchedGuard guard(sched);
    EventBus &bus = sched->bus();
    if (done_) {
        bus.acquire(this, sched->runningId());
        bus.onceOp(this, sched->runningId(), false);
        return;
    }
    if (running_) {
        waitq_.push_back(sched->running());
        sched->park(WaitReason::OnceWait, this);
        bus.acquire(this, sched->runningId());
        bus.onceOp(this, sched->runningId(), false);
        return;
    }
    running_ = true;
    fn();
    running_ = false;
    done_ = true;
    bus.release(this, sched->runningId());
    while (!waitq_.empty()) {
        sched->unpark(waitq_.front());
        waitq_.pop_front();
    }
    bus.onceOp(this, sched->runningId(), true);
}

} // namespace golite
