#include "sync/once.hh"

#include "runtime/scheduler.hh"

namespace golite
{

void
Once::doOnce(const std::function<void()> &fn)
{
    Scheduler *sched = Scheduler::current();
    if (done_) {
        sched->hooks()->acquire(this);
        return;
    }
    if (running_) {
        waitq_.push_back(sched->running());
        sched->park(WaitReason::OnceWait, this);
        sched->hooks()->acquire(this);
        return;
    }
    running_ = true;
    fn();
    running_ = false;
    done_ = true;
    sched->hooks()->release(this);
    while (!waitq_.empty()) {
        sched->unpark(waitq_.front());
        waitq_.pop_front();
    }
}

} // namespace golite
