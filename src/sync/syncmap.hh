/**
 * @file
 * sync.Map: a goroutine-safe map (one of the "Misc" primitives in the
 * paper's Table 4 taxonomy, alongside sync.Pool).
 *
 * Semantics follow Go's sync.Map surface: load, store,
 * loadOrStore, loadAndDelete, del, and range. All operations
 * synchronize (they create happens-before edges), so using a
 * SyncMap instead of a plain map removes data races on the map
 * itself — but, as with Go's, *not* on the values stored in it.
 */

#ifndef GOLITE_SYNC_SYNCMAP_HH
#define GOLITE_SYNC_SYNCMAP_HH

#include <functional>
#include <map>
#include <optional>
#include <utility>

#include "runtime/scheduler.hh"

namespace golite
{

template <typename K, typename V>
class SyncMap
{
  public:
    SyncMap() = default;
    SyncMap(const SyncMap &) = delete;
    SyncMap &operator=(const SyncMap &) = delete;

    /** Look up @p key; nullopt when absent. */
    std::optional<V>
    load(const K &key) const
    {
        Scheduler *sched = Scheduler::current();
        SchedGuard guard(sched);
        sched->bus().acquire(this, sched->runningId());
        auto it = map_.find(key);
        if (it == map_.end())
            return std::nullopt;
        return it->second;
    }

    /** Insert or overwrite. */
    void
    store(const K &key, V value)
    {
        Scheduler *sched = Scheduler::current();
        SchedGuard guard(sched);
        map_[key] = std::move(value);
        sched->bus().release(this, sched->runningId());
    }

    /**
     * Go's LoadOrStore: returns {existing, true} when the key was
     * present, else stores @p value and returns {value, false}.
     */
    std::pair<V, bool>
    loadOrStore(const K &key, V value)
    {
        Scheduler *sched = Scheduler::current();
        SchedGuard guard(sched);
        sched->bus().acquire(this, sched->runningId());
        auto it = map_.find(key);
        if (it != map_.end())
            return {it->second, true};
        map_[key] = value;
        sched->bus().release(this, sched->runningId());
        return {std::move(value), false};
    }

    /** Go's LoadAndDelete: remove and return the previous value. */
    std::optional<V>
    loadAndDelete(const K &key)
    {
        Scheduler *sched = Scheduler::current();
        SchedGuard guard(sched);
        sched->bus().acquire(this, sched->runningId());
        auto it = map_.find(key);
        if (it == map_.end())
            return std::nullopt;
        V out = std::move(it->second);
        map_.erase(it);
        sched->bus().release(this, sched->runningId());
        return out;
    }

    /** Remove @p key if present. */
    void
    del(const K &key)
    {
        Scheduler *sched = Scheduler::current();
        SchedGuard guard(sched);
        map_.erase(key);
        sched->bus().release(this, sched->runningId());
    }

    /**
     * Iterate over a snapshot; stop early when fn returns false.
     * Like Go's Range, concurrent mutation during fn is allowed (fn
     * sees the snapshot).
     */
    void
    range(const std::function<bool(const K &, const V &)> &fn) const
    {
        Scheduler *sched = Scheduler::current();
        std::map<K, V> snapshot;
        {
            SchedGuard guard(sched);
            sched->bus().acquire(this, sched->runningId());
            snapshot = map_;
        }
        for (const auto &[key, value] : snapshot) {
            if (!fn(key, value))
                return;
        }
    }

    size_t size() const { return map_.size(); }

  private:
    std::map<K, V> map_;
};

} // namespace golite

#endif // GOLITE_SYNC_SYNCMAP_HH
