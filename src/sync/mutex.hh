/**
 * @file
 * sync.Mutex: Go's mutual-exclusion lock.
 *
 * Like Go's (and unlike std::mutex), it is not reentrant and has no
 * owner check on lock: a goroutine locking a mutex it already holds
 * blocks forever — the classic double-lock blocking bug (28 of the
 * paper's 85 blocking bugs are Mutex misuses). Unlocking an unlocked
 * mutex panics, as in Go.
 */

#ifndef GOLITE_SYNC_MUTEX_HH
#define GOLITE_SYNC_MUTEX_HH

#include <cstdint>
#include <deque>

namespace golite
{

class Goroutine;

class Mutex
{
  public:
    Mutex() = default;
    /** Emits MemFree so detectors drop this lock's clock state. */
    ~Mutex();
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    /** Acquire the lock, blocking (possibly forever) if held. */
    void lock();

    /** Release the lock. Panics if the mutex is not locked. */
    void unlock();

    /** Non-blocking acquire (Go 1.18's TryLock). */
    bool tryLock();

    /** True while some goroutine holds the lock. */
    bool locked() const { return locked_; }

    /** Id of the goroutine that locked last (diagnostics only). */
    uint64_t holder() const { return holder_; }

  private:
    bool locked_ = false;
    uint64_t holder_ = 0;
    std::deque<Goroutine *> waitq_;
};

/** RAII helper for scoped lock/unlock (not a Go construct; a C++ aid). */
class MutexGuard
{
  public:
    explicit MutexGuard(Mutex &mutex) : mutex_(mutex) { mutex_.lock(); }
    ~MutexGuard() { mutex_.unlock(); }
    MutexGuard(const MutexGuard &) = delete;
    MutexGuard &operator=(const MutexGuard &) = delete;

  private:
    Mutex &mutex_;
};

} // namespace golite

#endif // GOLITE_SYNC_MUTEX_HH
