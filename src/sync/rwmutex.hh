/**
 * @file
 * sync.RWMutex with Go's writer-priority semantics.
 *
 * Go's write-lock requests have higher privilege than read-lock
 * requests: once a writer is waiting, new readers queue behind it even
 * while other readers still hold the lock. pthread_rwlock_t (default
 * attrs) prioritizes readers instead. This difference is the root cause
 * of the paper's RWMutex blocking-bug class (Section 5.1.1): a
 * goroutine that read-locks twice, interleaved by another goroutine's
 * write-lock request, deadlocks in Go but not in C.
 */

#ifndef GOLITE_SYNC_RWMUTEX_HH
#define GOLITE_SYNC_RWMUTEX_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace golite
{

class Goroutine;

class RWMutex
{
  public:
    RWMutex() = default;
    /** Emits MemFree so detectors drop this lock's clock state. */
    ~RWMutex();
    RWMutex(const RWMutex &) = delete;
    RWMutex &operator=(const RWMutex &) = delete;

    /**
     * Acquire a read lock. Blocks while a writer holds the lock or —
     * the Go-specific part — while any writer is waiting for it.
     */
    void rlock();

    /** Release a read lock. Panics if no read lock is held. */
    void runlock();

    /** Acquire the write lock (exclusive). */
    void lock();

    /** Release the write lock. Panics if not write-locked. */
    void unlock();

    size_t readers() const { return readers_; }
    bool writeLocked() const { return writerActive_; }

    /** True when some writer is queued (diagnostics / tests). */
    bool writerPending() const { return !writerq_.empty(); }

    // --- Owner tracking (diagnostics; feeds the wait-for-graph) ----

    /** Id of the goroutine write-holding the lock (0 if none). */
    uint64_t writerHolder() const { return writerGid_; }

    /** Ids of the goroutines currently read-holding the lock. A
     *  goroutine that read-locked twice appears twice. */
    const std::vector<uint64_t> &readerHolders() const
    {
        return readerGids_;
    }

  private:
    size_t readers_ = 0;
    bool writerActive_ = false;
    uint64_t writerGid_ = 0;
    std::vector<uint64_t> readerGids_;
    std::deque<Goroutine *> readerq_;
    std::deque<Goroutine *> writerq_;
};

} // namespace golite

#endif // GOLITE_SYNC_RWMUTEX_HH
