#include "sync/cond.hh"

#include "base/panic.hh"
#include "runtime/scheduler.hh"

namespace golite
{

void
Cond::wait()
{
    Scheduler *sched = Scheduler::current();
    SchedGuard guard(sched);
    if (!mutex_.locked())
        goPanic("sync: Cond.Wait without holding the mutex");
    waitq_.push_back(sched->running());
    mutex_.unlock();
    sched->park(WaitReason::CondWait, this);
    mutex_.lock();
}

void
Cond::signal()
{
    Scheduler *sched = Scheduler::current();
    SchedGuard guard(sched);
    if (waitq_.empty())
        return;
    sched->unpark(waitq_.front());
    waitq_.pop_front();
}

void
Cond::broadcast()
{
    Scheduler *sched = Scheduler::current();
    SchedGuard guard(sched);
    while (!waitq_.empty()) {
        sched->unpark(waitq_.front());
        waitq_.pop_front();
    }
}

} // namespace golite
