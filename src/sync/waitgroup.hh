/**
 * @file
 * sync.WaitGroup: wait for a collection of goroutines to finish.
 *
 * The Go rule the paper highlights: Add must happen-before Wait.
 * Violating it does not block; it lets Wait return too early — the
 * non-blocking WaitGroup misuse class (Figure 9, 6 of the studied
 * bugs). Calling Wait inside the loop that spawns the workers is the
 * blocking variant (Figure 5, Docker#25384).
 */

#ifndef GOLITE_SYNC_WAITGROUP_HH
#define GOLITE_SYNC_WAITGROUP_HH

#include <deque>

namespace golite
{

class Goroutine;

class WaitGroup
{
  public:
    WaitGroup() = default;
    /** Emits MemFree so detectors drop this object's clock state. */
    ~WaitGroup();
    WaitGroup(const WaitGroup &) = delete;
    WaitGroup &operator=(const WaitGroup &) = delete;

    /**
     * Add @p delta (may be negative) to the counter. Panics if the
     * counter goes negative, as in Go.
     */
    void add(int delta);

    /** Decrement the counter by one (Add(-1)). */
    void done() { add(-1); }

    /**
     * Block until the counter is zero. Returns immediately when the
     * counter is already zero — even if Adds are still coming, which
     * is exactly the misuse bug class.
     */
    void wait();

    int count() const { return count_; }

  private:
    int count_ = 0;
    std::deque<Goroutine *> waitq_;
};

} // namespace golite

#endif // GOLITE_SYNC_WAITGROUP_HH
