#include "vet/vet.hh"

#include <deque>
#include <sstream>

namespace golite::vet
{

const char *
ruleKindName(RuleKind kind)
{
    switch (kind) {
      case RuleKind::DoubleLock: return "double lock";
      case RuleKind::LockOrderCycle: return "conflicting lock order";
      case RuleKind::RecursiveRLock:
        return "recursive RLock with pending writer";
      case RuleKind::WaitGroupMisuse:
        return "WaitGroup.Add after Wait";
    }
    return "unknown";
}

EventMask
BlockingVet::eventMask() const
{
    return eventBit(EventKind::LockRequest) |
           eventBit(EventKind::LockAcquire) |
           eventBit(EventKind::LockRelease) |
           eventBit(EventKind::WgDelta) | eventBit(EventKind::WgWait);
}

void
BlockingVet::onEvent(const RuntimeEvent &ev)
{
    switch (ev.kind) {
      case EventKind::LockRequest:
        lockRequested(ev.obj, ev.gid, ev.flag);
        break;
      case EventKind::LockAcquire:
        lockAcquired(ev.obj, ev.gid, ev.flag);
        break;
      case EventKind::LockRelease:
        lockReleased(ev.obj, ev.gid);
        break;
      case EventKind::WgDelta:
        wgAdd(ev.obj, static_cast<int>(ev.b),
              static_cast<int>(ev.a));
        break;
      case EventKind::WgWait:
        wgWait(ev.obj);
        break;
      default:
        break;
    }
}

void
BlockingVet::report(RuleKind kind, const void *object, uint64_t gid,
                    std::string message)
{
    if (!seen_.insert({static_cast<int>(kind), object}).second)
        return;
    std::ostringstream os;
    os << "VET: " << ruleKindName(kind) << " (goroutine " << gid
       << "): " << message;
    pendingMessages_.push_back(os.str());
    reports_.push_back(VetReport{kind, object, gid, std::move(message)});
}

bool
BlockingVet::reachable(const void *from, const void *to) const
{
    if (from == to)
        return true;
    std::set<const void *> visited;
    std::deque<const void *> frontier{from};
    while (!frontier.empty()) {
        const void *node = frontier.front();
        frontier.pop_front();
        if (!visited.insert(node).second)
            continue;
        auto it = orderEdges_.find(node);
        if (it == orderEdges_.end())
            continue;
        for (const void *next : it->second) {
            if (next == to)
                return true;
            frontier.push_back(next);
        }
    }
    return false;
}

void
BlockingVet::noteOrder(const void *lock_obj, uint64_t gid)
{
    auto it = held_.find(gid);
    if (it == held_.end())
        return;
    for (const Held &h : it->second) {
        if (h.lock == lock_obj)
            continue;
        // Adding h.lock -> lock_obj: a cycle exists if lock_obj
        // already reaches h.lock.
        if (reachable(lock_obj, h.lock)) {
            report(RuleKind::LockOrderCycle, lock_obj, gid,
                   "locks are acquired in conflicting orders across "
                   "goroutines (potential AB-BA deadlock)");
        }
        orderEdges_[h.lock].insert(lock_obj);
    }
}

void
BlockingVet::lockRequested(const void *lock_obj, uint64_t gid,
                           bool is_write)
{
    // The goroutine is about to block. If it already holds the very
    // lock it is requesting, this is a guaranteed self-deadlock.
    auto it = held_.find(gid);
    if (it != held_.end()) {
        for (const Held &h : it->second) {
            if (h.lock != lock_obj)
                continue;
            if (h.isWrite || is_write) {
                report(RuleKind::DoubleLock, lock_obj, gid,
                       "goroutine blocks acquiring a lock it already "
                       "holds");
            } else {
                // Read lock re-entered while blocked: only possible
                // when a writer is pending (writer-priority RWMutex).
                report(RuleKind::RecursiveRLock, lock_obj, gid,
                       "second RLock queued behind a pending writer "
                       "while the first is still held");
            }
            return;
        }
    }
    // A blocked request still establishes lock order (held ->
    // requested), so AB-BA cycles are caught in the deadlocking
    // interleaving too, not only in lucky ones.
    noteOrder(lock_obj, gid);
}

void
BlockingVet::lockAcquired(const void *lock_obj, uint64_t gid,
                          bool is_write)
{
    noteOrder(lock_obj, gid);
    held_[gid].push_back(Held{lock_obj, is_write});
}

void
BlockingVet::lockReleased(const void *lock_obj, uint64_t gid)
{
    auto it = held_.find(gid);
    if (it == held_.end())
        return;
    auto &stack = it->second;
    // Remove the most recent matching acquisition.
    for (auto rit = stack.rbegin(); rit != stack.rend(); ++rit) {
        if (rit->lock == lock_obj) {
            stack.erase(std::next(rit).base());
            return;
        }
    }
}

void
BlockingVet::wgAdd(const void *wg, int delta, int new_count)
{
    // The Go rule (Figure 9): calls with positive delta that start
    // when the counter is zero must happen before Wait.
    if (delta > 0 && new_count == delta && waitedOn_.count(wg)) {
        report(RuleKind::WaitGroupMisuse, wg,
               /*gid=*/0,
               "Add with positive delta from a zero counter after "
               "Wait was already called");
    }
}

void
BlockingVet::wgWait(const void *wg)
{
    waitedOn_.insert(wg);
}

std::vector<std::string>
BlockingVet::drainReports()
{
    std::vector<std::string> out;
    out.swap(pendingMessages_);
    return out;
}

bool
BlockingVet::flagged(RuleKind kind) const
{
    for (const VetReport &r : reports_) {
        if (r.kind == kind)
            return true;
    }
    return false;
}

} // namespace golite::vet
