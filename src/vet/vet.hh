/**
 * @file
 * golite-vet: dynamic rule checkers for blocking-bug patterns.
 *
 * This module implements what the paper's Implication 4 and Section 7
 * call for: blocking-bug detection beyond the runtime's global
 * "all goroutines are asleep" check, built from the buggy code
 * patterns the study catalogues. Four checkers run off the runtime's
 * structured primitive events:
 *
 *  - DoubleLock      — a goroutine (re)acquires a lock it holds
 *                      (boltdb-392, moby-17176, grpc-795, ...);
 *  - LockOrderCycle  — dynamic lock-order graph finds AB-BA and
 *                      longer cycles (etcd-10492, cockroach-6181);
 *  - RecursiveRLock  — a read lock re-entered while a writer waits:
 *                      Go's writer-priority RWMutex deadlock
 *                      (Section 5.1.1, cockroach-10214);
 *  - WaitGroupMisuse — a positive Add from zero after Wait was
 *                      already called on the WaitGroup (the Figure 9
 *                      rule: "Add must happen before Wait").
 *
 * Like the paper's own preliminary detector, these are pattern
 * checkers: sound for the patterns they model (no false positives on
 * the corpus' fixed variants — tested), but they say nothing about
 * channel-only blocking, which the paper argues needs new techniques.
 */

#ifndef GOLITE_VET_VET_HH
#define GOLITE_VET_VET_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "runtime/events.hh"

namespace golite::vet
{

/** Which rule a report comes from. */
enum class RuleKind
{
    DoubleLock,
    LockOrderCycle,
    RecursiveRLock,
    WaitGroupMisuse,
};

const char *ruleKindName(RuleKind kind);

/** One rule violation. */
struct VetReport
{
    RuleKind kind;
    const void *object;
    uint64_t gid;
    std::string message;
};

/**
 * The checker. Install via RunOptions::subscribers (alone, or next to
 * the race detector — the bus fans events out to both).
 */
class BlockingVet : public Subscriber
{
  public:
    BlockingVet() = default;

    // Subscriber interface ----------------------------------------
    EventMask eventMask() const override;
    void onEvent(const RuntimeEvent &ev) override;
    std::vector<std::string> drainReports() override;

    // Event handlers (public for direct-drive unit tests).
    void lockRequested(const void *lock_obj, uint64_t gid,
                       bool is_write);
    void lockAcquired(const void *lock_obj, uint64_t gid,
                      bool is_write);
    void lockReleased(const void *lock_obj, uint64_t gid);
    void wgAdd(const void *wg, int delta, int new_count);
    void wgWait(const void *wg);

    /** All structured reports (not cleared by drainReports). */
    const std::vector<VetReport> &reports() const { return reports_; }

    /** True if any report of @p kind was filed. */
    bool flagged(RuleKind kind) const;

  private:
    struct Held
    {
        const void *lock;
        bool isWrite;
    };

    void report(RuleKind kind, const void *object, uint64_t gid,
                std::string message);

    /** Record held->lock_obj order edges and check for cycles. */
    void noteOrder(const void *lock_obj, uint64_t gid);

    /** True when `from` can already reach `to` in the order graph. */
    bool reachable(const void *from, const void *to) const;

    // Locks currently held, per goroutine, in acquisition order.
    std::map<uint64_t, std::vector<Held>> held_;
    // Lock-order graph: edges lock A -> lock B ("B acquired while A
    // held").
    std::map<const void *, std::set<const void *>> orderEdges_;
    // WaitGroups on which wait() has been called at least once.
    std::set<const void *> waitedOn_;
    // Dedup: one report per (kind, object).
    std::set<std::pair<int, const void *>> seen_;

    std::vector<VetReport> reports_;
    std::vector<std::string> pendingMessages_;
};

} // namespace golite::vet

#endif // GOLITE_VET_VET_HH
