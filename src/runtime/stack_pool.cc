#include "runtime/stack_pool.hh"

#include <sys/mman.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <new>

#if defined(__SANITIZE_ADDRESS__)
#define GOLITE_ASAN_STACKS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define GOLITE_ASAN_STACKS 1
#endif
#endif

#ifdef GOLITE_ASAN_STACKS
#include <sanitizer/asan_interface.h>
#endif

namespace golite
{

namespace
{

std::atomic<bool> poolEnabled{[] {
    const char *env = std::getenv("GOLITE_STACK_POOL");
    return !(env && env[0] == '0' && env[1] == '\0');
}()};

size_t
pageSize()
{
    static const size_t page =
        static_cast<size_t>(sysconf(_SC_PAGESIZE));
    return page;
}

uint8_t *
mapStack(size_t bytes)
{
    void *p = mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p == MAP_FAILED)
        throw std::bad_alloc{};
    return static_cast<uint8_t *>(p);
}

void
unmapStack(uint8_t *stack, size_t bytes)
{
    munmap(stack, bytes);
}

/**
 * A recycled stack may carry ASan poison from the previous fiber's
 * redzones (frames that never formally unwound after a teardown);
 * scrub it before the next fiber builds frames there.
 */
void
scrub(uint8_t *stack, size_t bytes)
{
#ifdef GOLITE_ASAN_STACKS
    __asan_unpoison_memory_region(stack, bytes);
#else
    (void)stack;
    (void)bytes;
#endif
}

} // namespace

StackPool &
StackPool::local()
{
    thread_local StackPool pool;
    return pool;
}

bool
StackPool::enabled()
{
    return poolEnabled.load(std::memory_order_relaxed);
}

void
StackPool::setEnabled(bool on)
{
    poolEnabled.store(on, std::memory_order_relaxed);
}

size_t
StackPool::bucketSize(size_t bytes)
{
    const size_t page = pageSize();
    if (bytes < page)
        bytes = page;
    return (bytes + page - 1) & ~(page - 1);
}

uint8_t *
StackPool::acquire(size_t bytes)
{
    const size_t size = bucketSize(bytes);
    if (enabled()) {
        auto it = buckets_.find(size);
        if (it != buckets_.end() && !it->second.empty()) {
            uint8_t *stack = it->second.back();
            it->second.pop_back();
            stats_.reused++;
            stats_.cachedBytes -= size;
            return stack;
        }
    }
    stats_.mapped++;
    return mapStack(size);
}

void
StackPool::give(uint8_t *stack, size_t bytes)
{
    const size_t size = bucketSize(bytes);
    if (!enabled()) {
        unmapStack(stack, size);
        return;
    }
    scrub(stack, size);
    buckets_[size].push_back(stack);
    stats_.returned++;
    stats_.cachedBytes += size;
    if (stats_.cachedBytes > maxCachedBytes_)
        evictOverflow();
}

void
StackPool::reserve(size_t count, size_t bytes)
{
    if (!enabled())
        return;
    const size_t size = bucketSize(bytes);
    std::vector<uint8_t *> &bucket = buckets_[size];
    while (bucket.size() < count &&
           stats_.cachedBytes + size <= maxCachedBytes_) {
        bucket.push_back(mapStack(size));
        stats_.mapped++;
        stats_.cachedBytes += size;
    }
}

void
StackPool::evictOverflow()
{
    // Evict from the largest bucket first: big stacks cost the most
    // to cache and the least to re-map relative to their use.
    for (auto it = buckets_.rbegin();
         it != buckets_.rend() && stats_.cachedBytes > maxCachedBytes_;
         ++it) {
        while (!it->second.empty() &&
               stats_.cachedBytes > maxCachedBytes_) {
            unmapStack(it->second.back(), it->first);
            it->second.pop_back();
            stats_.cachedBytes -= it->first;
            stats_.evicted++;
        }
    }
}

void
StackPool::trim()
{
    for (auto &[size, stacks] : buckets_) {
        for (uint8_t *stack : stacks) {
            madvise(stack, size, MADV_DONTNEED);
            stats_.trimmed++;
        }
    }
}

void
StackPool::clear()
{
    for (auto &[size, stacks] : buckets_) {
        for (uint8_t *stack : stacks) {
            unmapStack(stack, size);
            stats_.cachedBytes -= size;
        }
        stacks.clear();
    }
    buckets_.clear();
}

void
StackPool::setMaxCachedBytes(size_t bytes)
{
    maxCachedBytes_ = bytes;
    if (stats_.cachedBytes > maxCachedBytes_)
        evictOverflow();
}

StackPool::~StackPool()
{
    clear();
}

} // namespace golite
