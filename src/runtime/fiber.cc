#include "runtime/fiber.hh"

#include <cassert>
#include <cstring>

namespace golite
{

namespace
{

// makecontext only passes int arguments portably; split a pointer into
// two 32-bit halves and reassemble in the trampoline.
void
trampoline(unsigned int entry_hi, unsigned int entry_lo,
           unsigned int arg_hi, unsigned int arg_lo)
{
    auto join = [](unsigned int hi, unsigned int lo) {
        return (static_cast<uintptr_t>(hi) << 32) |
               static_cast<uintptr_t>(lo);
    };
    auto entry = reinterpret_cast<Fiber::EntryFn>(join(entry_hi, entry_lo));
    auto *arg = reinterpret_cast<void *>(join(arg_hi, arg_lo));
    entry(arg);
}

unsigned int
hiHalf(const void *p)
{
    return static_cast<unsigned int>(reinterpret_cast<uintptr_t>(p) >> 32);
}

unsigned int
loHalf(const void *p)
{
    return static_cast<unsigned int>(reinterpret_cast<uintptr_t>(p) &
                                     0xffffffffu);
}

} // namespace

Fiber::Fiber(size_t stack_bytes) : stackBytes_(stack_bytes)
{
    std::memset(&context_, 0, sizeof(context_));
}

Fiber::~Fiber() = default;

void
Fiber::release()
{
    stack_.reset();
}

void
Fiber::start(ucontext_t *from, EntryFn entry, void *arg)
{
    assert(!started_);
    // Stacks are allocated lazily so that spawning many goroutines
    // that have not run yet stays cheap.
    stack_.reset(new uint8_t[stackBytes_]);
    getcontext(&context_);
    context_.uc_stack.ss_sp = stack_.get();
    context_.uc_stack.ss_size = stackBytes_;
    // When the entry function returns, resume the scheduler context.
    context_.uc_link = from;
    makecontext(&context_, reinterpret_cast<void (*)()>(trampoline), 4,
                hiHalf(reinterpret_cast<void *>(entry)),
                loHalf(reinterpret_cast<void *>(entry)), hiHalf(arg),
                loHalf(arg));
    started_ = true;
    swapcontext(from, &context_);
}

void
Fiber::resume(ucontext_t *from)
{
    assert(started_);
    swapcontext(from, &context_);
}

void
Fiber::suspendTo(ucontext_t *to)
{
    swapcontext(&context_, to);
}

} // namespace golite
