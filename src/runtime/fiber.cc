#include "runtime/fiber.hh"

#include <cassert>
#include <cstring>

#include "runtime/stack_pool.hh"

// ASan tracks which stack is live; without fiber-switch annotations
// every swapcontext looks like a wild stack change and the first
// goroutine switch reports stack-use-after-scope.
#if defined(__SANITIZE_ADDRESS__)
#define GOLITE_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define GOLITE_ASAN_FIBERS 1
#endif
#endif

// TSan models each goroutine stack as a "fiber". The annotations are
// Clang-only: GCC's libtsan crashes in its own fiber API
// (FiberCreate -> CurrentStackId SEGV, observed with GCC 12), and its
// swapcontext interceptor copes with unannotated same-thread fiber
// switches — the TSan CI job validates exactly that configuration.
// GOLITE_NO_TSAN_FIBERS force-disables the annotations under Clang.
#if defined(__clang__) && !defined(GOLITE_NO_TSAN_FIBERS) &&           \
    defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define GOLITE_TSAN_FIBERS 1
#endif
#endif

#ifdef GOLITE_ASAN_FIBERS
#include <sanitizer/common_interface_defs.h>
#endif
#ifdef GOLITE_TSAN_FIBERS
#include <sanitizer/tsan_interface.h>
#endif

namespace golite
{

namespace
{

#ifdef GOLITE_ASAN_FIBERS
// Stack bounds of the context that last switched into the running
// fiber — always the scheduler's host stack, captured on fiber entry
// so suspendTo() can announce where it is switching back to.
thread_local const void *schedStackBottom = nullptr;
thread_local size_t schedStackSize = 0;
#endif

#ifdef GOLITE_TSAN_FIBERS
// TSan handle of the scheduler's host context, captured before every
// switch into a fiber so the fiber can announce the switch back.
thread_local void *schedTsanFiber = nullptr;
#endif

// makecontext only passes int arguments portably; split a pointer into
// two 32-bit halves and reassemble in the trampoline.
void
trampoline(unsigned int entry_hi, unsigned int entry_lo,
           unsigned int arg_hi, unsigned int arg_lo)
{
#ifdef GOLITE_ASAN_FIBERS
    __sanitizer_finish_switch_fiber(nullptr, &schedStackBottom,
                                    &schedStackSize);
#endif
    auto join = [](unsigned int hi, unsigned int lo) {
        return (static_cast<uintptr_t>(hi) << 32) |
               static_cast<uintptr_t>(lo);
    };
    auto entry = reinterpret_cast<Fiber::EntryFn>(join(entry_hi, entry_lo));
    auto *arg = reinterpret_cast<void *>(join(arg_hi, arg_lo));
    entry(arg);
    // The return through uc_link abandons this stack for good.
#ifdef GOLITE_ASAN_FIBERS
    // Pass a null save slot so ASan releases the fiber's fake stack.
    __sanitizer_start_switch_fiber(nullptr, schedStackBottom,
                                   schedStackSize);
#endif
#ifdef GOLITE_TSAN_FIBERS
    __tsan_switch_to_fiber(schedTsanFiber, 0);
#endif
}

unsigned int
hiHalf(const void *p)
{
    return static_cast<unsigned int>(reinterpret_cast<uintptr_t>(p) >> 32);
}

unsigned int
loHalf(const void *p)
{
    return static_cast<unsigned int>(reinterpret_cast<uintptr_t>(p) &
                                     0xffffffffu);
}

} // namespace

Fiber::Fiber(size_t stack_bytes) : stackBytes_(stack_bytes)
{
    std::memset(&context_, 0, sizeof(context_));
}

Fiber::~Fiber()
{
    release();
}

void
Fiber::release()
{
    if (stack_) {
        StackPool::local().give(stack_, stackBytes_);
        stack_ = nullptr;
    }
#ifdef GOLITE_TSAN_FIBERS
    if (tsanFiber_) {
        __tsan_destroy_fiber(tsanFiber_);
        tsanFiber_ = nullptr;
    }
#endif
}

void
Fiber::start(ucontext_t *from, EntryFn entry, void *arg)
{
    assert(!started_);
    // Stacks are acquired lazily so that spawning many goroutines
    // that have not run yet stays cheap.
    stack_ = StackPool::local().acquire(stackBytes_);
    getcontext(&context_);
    context_.uc_stack.ss_sp = stack_;
    context_.uc_stack.ss_size = stackBytes_;
    // When the entry function returns, resume the scheduler context.
    context_.uc_link = from;
    makecontext(&context_, reinterpret_cast<void (*)()>(trampoline), 4,
                hiHalf(reinterpret_cast<void *>(entry)),
                loHalf(reinterpret_cast<void *>(entry)), hiHalf(arg),
                loHalf(arg));
    started_ = true;
#ifdef GOLITE_ASAN_FIBERS
    void *fake = nullptr;
    __sanitizer_start_switch_fiber(&fake, stack_, stackBytes_);
#endif
#ifdef GOLITE_TSAN_FIBERS
    tsanFiber_ = __tsan_create_fiber(0);
    schedTsanFiber = __tsan_get_current_fiber();
    __tsan_switch_to_fiber(tsanFiber_, 0);
#endif
    swapcontext(from, &context_);
#ifdef GOLITE_ASAN_FIBERS
    __sanitizer_finish_switch_fiber(fake, nullptr, nullptr);
#endif
}

void
Fiber::resume(ucontext_t *from)
{
    assert(started_);
#ifdef GOLITE_ASAN_FIBERS
    void *fake = nullptr;
    __sanitizer_start_switch_fiber(&fake, stack_, stackBytes_);
#endif
#ifdef GOLITE_TSAN_FIBERS
    schedTsanFiber = __tsan_get_current_fiber();
    __tsan_switch_to_fiber(tsanFiber_, 0);
#endif
    swapcontext(from, &context_);
#ifdef GOLITE_ASAN_FIBERS
    __sanitizer_finish_switch_fiber(fake, nullptr, nullptr);
#endif
}

void
Fiber::suspendTo(ucontext_t *to)
{
#ifdef GOLITE_ASAN_FIBERS
    void *fake = nullptr;
    __sanitizer_start_switch_fiber(&fake, schedStackBottom,
                                   schedStackSize);
#endif
#ifdef GOLITE_TSAN_FIBERS
    __tsan_switch_to_fiber(schedTsanFiber, 0);
#endif
    swapcontext(&context_, to);
#ifdef GOLITE_ASAN_FIBERS
    __sanitizer_finish_switch_fiber(fake, &schedStackBottom,
                                    &schedStackSize);
#endif
}

} // namespace golite
