/**
 * @file
 * Pending-timer storage for the scheduler: a hashed timer wheel with a
 * heap spillover, A/B-selectable against the original binary heap.
 *
 * The soak workload (src/load) keeps 100k-1M goroutines sleeping at
 * once; with the binary heap every push/pop pays O(log n) comparisons
 * on one ever-growing array. The wheel spreads near-term deadlines
 * (within ~2s of the cursor) over kSlots hash buckets — O(1) push,
 * O(1) amortized expiry — and spills far deadlines into a small heap
 * that drains into the wheel as the cursor advances. An occupancy
 * bitmap makes "next occupied slot" a few word scans, so the virtual
 * clock can still jump straight to the next deadline.
 *
 * Exactness contract: nextDeadline() returns the exact minimum `when`
 * and popDue() yields due entries in exactly the (when, seq) order the
 * heap produced, so golden traces and fingerprints are byte-identical
 * under either implementation. GOLITE_TIMER_WHEEL=0 selects the heap
 * (the A/B baseline measured by bench_soak).
 */

#ifndef GOLITE_RUNTIME_TIMER_WHEEL_HH
#define GOLITE_RUNTIME_TIMER_WHEEL_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace golite
{

class TimerToken;
using TimerId = std::shared_ptr<TimerToken>;

/** One pending timer: deadline, tiebreak sequence, token, callback. */
struct TimerEntry
{
    int64_t when = 0;  ///< absolute deadline (run clock, ns)
    uint64_t seq = 0;  ///< scheduling order tiebreak (unique)
    TimerId token;     ///< cancellation/fired flags
    std::function<void()> fn;
};

/**
 * Storage for the scheduler's pending timers. Implementations must
 * agree on observable behaviour: popDue() returns every entry with
 * when <= now, sorted by (when, seq); nextDeadline() is the exact
 * minimum pending deadline. Cancelled entries are kept until due (the
 * token is checked at fire time), matching the original heap.
 */
class TimerQueue
{
  public:
    virtual ~TimerQueue() = default;

    virtual void push(TimerEntry entry) = 0;

    virtual bool empty() const = 0;

    virtual size_t size() const = 0;

    /** Exact earliest pending deadline; INT64_MAX when empty. */
    virtual int64_t nextDeadline() const = 0;

    /**
     * Move every entry with when <= now into @p out, ordered by
     * (when, seq). @p now must be monotonically non-decreasing across
     * calls. Appends to @p out.
     */
    virtual void popDue(int64_t now, std::vector<TimerEntry> &out) = 0;

    /**
     * Drop every pending entry and rewind to the freshly-constructed
     * state (including any internal cursor), keeping allocated
     * capacity. Scheduler::reset uses this so a reused scheduler's
     * timer behaviour is bit-identical to a fresh one.
     */
    virtual void clear() = 0;
};

/** The original binary heap (std::priority_queue equivalent). */
std::unique_ptr<TimerQueue> makeHeapTimerQueue();

/** The hashed wheel + spillover heap. */
std::unique_ptr<TimerQueue> makeWheelTimerQueue();

/**
 * The configured implementation: the wheel, unless GOLITE_TIMER_WHEEL=0
 * selects the heap baseline (read once per process).
 */
std::unique_ptr<TimerQueue> makeTimerQueue();

/** True when makeTimerQueue() returns the wheel (for diagnostics). */
bool timerWheelEnabled();

} // namespace golite

#endif // GOLITE_RUNTIME_TIMER_WHEEL_HH
