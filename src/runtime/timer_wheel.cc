#include "runtime/timer_wheel.hh"

#include <algorithm>
#include <climits>
#include <cstdlib>
#include <queue>

namespace golite
{

namespace
{

/** (when, seq) min-order, the firing order both implementations share. */
struct EntryAfter
{
    bool
    operator()(const TimerEntry &a, const TimerEntry &b) const
    {
        return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
};

bool
entryBefore(const TimerEntry &a, const TimerEntry &b)
{
    return a.when != b.when ? a.when < b.when : a.seq < b.seq;
}

// --- Heap (the original std::priority_queue implementation) -----------

class HeapTimerQueue : public TimerQueue
{
  public:
    void
    push(TimerEntry entry) override
    {
        heap_.push(std::move(entry));
    }

    bool empty() const override { return heap_.empty(); }

    size_t size() const override { return heap_.size(); }

    int64_t
    nextDeadline() const override
    {
        return heap_.empty() ? INT64_MAX : heap_.top().when;
    }

    void
    popDue(int64_t now, std::vector<TimerEntry> &out) override
    {
        while (!heap_.empty() && heap_.top().when <= now) {
            // priority_queue::top is const; the entry is moved out via
            // const_cast immediately before pop, the standard idiom.
            out.push_back(
                std::move(const_cast<TimerEntry &>(heap_.top())));
            heap_.pop();
        }
    }

    void
    clear() override
    {
        while (!heap_.empty())
            heap_.pop();
    }

  private:
    std::priority_queue<TimerEntry, std::vector<TimerEntry>, EntryAfter>
        heap_;
};

// --- Hashed wheel + spillover heap ------------------------------------

class WheelTimerQueue : public TimerQueue
{
    /** Tick resolution: 2^18 ns = 262.1 us. */
    static constexpr int kTickShift = 18;
    /** Slots (one tick each): 8192 ticks = 2.15 s of near horizon. */
    static constexpr size_t kSlots = 8192;
    static constexpr size_t kWords = kSlots / 64;

  public:
    void
    push(TimerEntry entry) override
    {
        size_++;
        const int64_t tick = tickOf(entry.when);
        if (tick - curTick_ >= static_cast<int64_t>(kSlots)) {
            spill_.push(std::move(entry));
            return;
        }
        place(std::move(entry), tick);
    }

    bool empty() const override { return size_ == 0; }

    size_t size() const override { return size_; }

    int64_t
    nextDeadline() const override
    {
        int64_t best = spill_.empty() ? INT64_MAX : spill_.top().when;
        const size_t idx = firstOccupiedSlot();
        if (idx != kSlots) {
            for (const TimerEntry &e : slots_[idx])
                best = std::min(best, e.when);
        }
        return best;
    }

    void
    popDue(int64_t now, std::vector<TimerEntry> &out) override
    {
        if (size_ == 0) {
            curTick_ = std::max(curTick_, tickOf(now));
            return;
        }
        const int64_t now_tick = tickOf(now);
        const size_t first = out.size();

        // Collect wheel slots whose tick the cursor passes. Slots map
        // back to ticks via their cyclic distance from the cursor, so
        // the occupancy bitmap walk visits only non-empty slots.
        if (!slots_.empty()) {
            const size_t cur_idx = slotOf(curTick_);
            for (size_t idx = firstOccupiedSlot(); idx != kSlots;
                 idx = nextOccupiedSlot(idx)) {
                const int64_t dist = static_cast<int64_t>(
                    (idx + kSlots - cur_idx) % kSlots);
                const int64_t tick = curTick_ + dist;
                if (tick > now_tick)
                    break;
                takeDue(slots_[idx], idx, tick == now_tick, now, out);
                if (tick == now_tick)
                    break;
            }
        }
        curTick_ = std::max(curTick_, now_tick);

        // Entries whose deadline now falls inside the near horizon
        // migrate out of the spillover heap (or fire directly).
        while (!spill_.empty()) {
            const TimerEntry &top = spill_.top();
            const int64_t tick = tickOf(top.when);
            if (tick - curTick_ >= static_cast<int64_t>(kSlots))
                break;
            TimerEntry e = std::move(const_cast<TimerEntry &>(top));
            spill_.pop();
            if (e.when <= now) {
                out.push_back(std::move(e));
            } else {
                size_--; // place() is reached via push() accounting
                size_++;
                place(std::move(e), tick);
            }
        }

        size_ -= out.size() - first;
        std::sort(out.begin() + static_cast<ptrdiff_t>(first),
                  out.end(), entryBefore);
    }

    void
    clear() override
    {
        // Visit only occupied slots (bitmap scan over kWords words),
        // not all kSlots vectors — reset cost is proportional to use.
        if (!slots_.empty()) {
            for (size_t word = 0; word < kWords; ++word) {
                uint64_t bits = occupied_[word];
                while (bits != 0) {
                    const size_t idx =
                        word * 64 +
                        static_cast<size_t>(__builtin_ctzll(bits));
                    bits &= bits - 1;
                    slots_[idx].clear();
                }
                occupied_[word] = 0;
            }
        }
        while (!spill_.empty())
            spill_.pop();
        // The cursor must rewind even when the wheel is empty:
        // otherwise the next run's early deadlines would hash
        // relative to the previous run's final virtual time.
        curTick_ = 0;
        size_ = 0;
    }

  private:
    static int64_t
    tickOf(int64_t when_ns)
    {
        return (when_ns < 0 ? 0 : when_ns) >> kTickShift;
    }

    static size_t
    slotOf(int64_t tick)
    {
        return static_cast<size_t>(tick) & (kSlots - 1);
    }

    void
    place(TimerEntry entry, int64_t tick)
    {
        if (slots_.empty()) {
            slots_.resize(kSlots);
            occupied_.assign(kWords, 0);
        }
        // Past-due deadlines park in the cursor slot so the next
        // popDue picks them up immediately.
        const size_t idx = slotOf(std::max(tick, curTick_));
        slots_[idx].push_back(std::move(entry));
        occupied_[idx / 64] |= uint64_t{1} << (idx % 64);
    }

    /** Move due entries (boundary slots filter by exact `when`). */
    void
    takeDue(std::vector<TimerEntry> &slot, size_t idx, bool boundary,
            int64_t now, std::vector<TimerEntry> &out)
    {
        if (!boundary) {
            for (TimerEntry &e : slot)
                out.push_back(std::move(e));
            slot.clear();
        } else {
            size_t keep = 0;
            for (TimerEntry &e : slot) {
                if (e.when <= now)
                    out.push_back(std::move(e));
                else
                    slot[keep++] = std::move(e);
            }
            slot.resize(keep);
        }
        if (slot.empty())
            occupied_[idx / 64] &= ~(uint64_t{1} << (idx % 64));
    }

    /** First occupied slot cyclically at/after the cursor (kSlots when
     *  the wheel is empty). Cyclic order equals deadline order because
     *  every resident tick lies within one revolution of the cursor. */
    size_t
    firstOccupiedSlot() const
    {
        return slots_.empty() ? kSlots
                              : scanFrom(slotOf(curTick_), kSlots);
    }

    size_t
    nextOccupiedSlot(size_t idx) const
    {
        const size_t cur_idx = slotOf(curTick_);
        const size_t walked = (idx + kSlots - cur_idx) % kSlots + 1;
        return walked >= kSlots
                   ? kSlots
                   : scanFrom((idx + 1) % kSlots, kSlots - walked);
    }

    /** Scan the occupancy bitmap cyclically from @p start, visiting at
     *  most @p limit slots; kSlots when none is set. */
    size_t
    scanFrom(size_t start, size_t limit) const
    {
        size_t remaining = limit;
        size_t word = start / 64;
        uint64_t mask = ~uint64_t{0} << (start % 64);
        size_t base_covered = 64 - start % 64;
        while (remaining > 0) {
            const uint64_t bits = occupied_[word] & mask;
            if (bits != 0) {
                const size_t idx =
                    word * 64 +
                    static_cast<size_t>(__builtin_ctzll(bits));
                const size_t dist = (idx + kSlots - start) % kSlots;
                return dist < limit ? idx : kSlots;
            }
            remaining = remaining > base_covered
                            ? remaining - base_covered
                            : 0;
            word = (word + 1) % kWords;
            mask = ~uint64_t{0};
            base_covered = 64;
        }
        return kSlots;
    }

    std::vector<std::vector<TimerEntry>> slots_; ///< lazily allocated
    std::vector<uint64_t> occupied_;
    std::priority_queue<TimerEntry, std::vector<TimerEntry>,
                        EntryAfter> spill_;
    int64_t curTick_ = 0;
    size_t size_ = 0;
};

} // namespace

std::unique_ptr<TimerQueue>
makeHeapTimerQueue()
{
    return std::make_unique<HeapTimerQueue>();
}

std::unique_ptr<TimerQueue>
makeWheelTimerQueue()
{
    return std::make_unique<WheelTimerQueue>();
}

bool
timerWheelEnabled()
{
    static const bool enabled = [] {
        const char *env = std::getenv("GOLITE_TIMER_WHEEL");
        return env == nullptr || env[0] != '0';
    }();
    return enabled;
}

std::unique_ptr<TimerQueue>
makeTimerQueue()
{
    return timerWheelEnabled() ? makeWheelTimerQueue()
                               : makeHeapTimerQueue();
}

} // namespace golite
