/**
 * @file
 * Stackful fiber (user-level context) used to implement goroutines.
 *
 * golite multiplexes all goroutines onto the OS thread that called
 * golite::run(). Each goroutine owns a Fiber: a pooled stack plus a
 * ucontext_t. Context switches happen only at golite operations
 * (channel ops, lock ops, yield, preemption points), which makes every
 * interleaving reproducible from the scheduler seed.
 *
 * Stacks come from the per-thread StackPool: start() acquires one,
 * release() (or the destructor) returns it, so spawn-heavy workloads
 * recycle a handful of stacks instead of allocating per goroutine.
 */

#ifndef GOLITE_RUNTIME_FIBER_HH
#define GOLITE_RUNTIME_FIBER_HH

#include <ucontext.h>

#include <cstddef>
#include <cstdint>

namespace golite
{

/**
 * A suspendable execution context with its own stack.
 *
 * The fiber is created lazily: start() installs the entry trampoline and
 * performs the first switch. Fibers are not movable once started (the
 * ucontext refers to the stack memory).
 */
class Fiber
{
  public:
    using EntryFn = void (*)(void *arg);

    explicit Fiber(size_t stack_bytes);
    ~Fiber();

    Fiber(const Fiber &) = delete;
    Fiber &operator=(const Fiber &) = delete;

    /**
     * Prepare the fiber to run entry(arg) on its own stack and switch to
     * it from the caller context. Control returns to @p from when the
     * fiber switches back or its entry function returns.
     */
    void start(ucontext_t *from, EntryFn entry, void *arg);

    /** Switch from @p from into this (already started) fiber. */
    void resume(ucontext_t *from);

    /** Switch out of this fiber back into @p to. */
    void suspendTo(ucontext_t *to);

    bool started() const { return started_; }

    /**
     * Return the stack to the pool once the fiber has finished (must
     * not be called while the fiber could still be resumed). Keeps
     * thousands of short-lived goroutines cheap.
     */
    void release();

  private:
    uint8_t *stack_ = nullptr; ///< owned by the thread's StackPool
    size_t stackBytes_;
    ucontext_t context_;
    bool started_ = false;
    /** ThreadSanitizer fiber handle (null unless built with TSan). */
    void *tsanFiber_ = nullptr;
};

} // namespace golite

#endif // GOLITE_RUNTIME_FIBER_HH
