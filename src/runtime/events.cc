#include "runtime/events.hh"

#include <cstdlib>

namespace golite
{

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::GoSpawn: return "go spawn";
      case EventKind::GoFinish: return "go finish";
      case EventKind::GoPark: return "go park";
      case EventKind::GoUnpark: return "go unpark";
      case EventKind::GoDispatch: return "go dispatch";
      case EventKind::GoDesched: return "go desched";
      case EventKind::Decision: return "decision";
      case EventKind::ClockAdvance: return "clock advance";
      case EventKind::SyncAcquire: return "sync acquire";
      case EventKind::SyncRelease: return "sync release";
      case EventKind::LockRequest: return "lock request";
      case EventKind::LockAcquire: return "lock acquire";
      case EventKind::LockRelease: return "lock release";
      case EventKind::WgDelta: return "wg delta";
      case EventKind::WgWait: return "wg wait";
      case EventKind::SelectBlock: return "select block";
      case EventKind::ChanOp: return "chan op";
      case EventKind::OnceOp: return "once op";
      case EventKind::MemRead: return "mem read";
      case EventKind::MemWrite: return "mem write";
      case EventKind::MemFree: return "mem free";
    }
    return "unknown";
}

const char *
chanOpKindName(ChanOpKind op)
{
    switch (op) {
      case ChanOpKind::Send: return "send";
      case ChanOpKind::Recv: return "recv";
      case ChanOpKind::Close: return "close";
      case ChanOpKind::TrySend: return "try send";
      case ChanOpKind::TryRecv: return "try recv";
    }
    return "unknown";
}

bool
EventBus::maskedDispatch()
{
    static const bool masked = [] {
        const char *env = std::getenv("GOLITE_EVENT_BUS");
        return !(env && env[0] == '0' && env[1] == '\0');
    }();
    return masked;
}

EventBus::EventBus() : masked_(maskedDispatch()) {}

void
EventBus::attach(Subscriber *sub)
{
    subs_.push_back(sub);
    if (masked_) {
        const EventMask mask = sub->eventMask();
        active_ |= mask;
        for (int k = 0; k < kEventKindCount; ++k) {
            if (mask & (EventMask{1} << k))
                byKind_[k].push_back(sub);
        }
    } else {
        // Broadcast mode: everyone gets everything, so any attached
        // subscriber makes every kind live.
        active_ = kEventMaskAll;
    }
}

void
EventBus::reset()
{
    subs_.clear();
    for (auto &list : byKind_)
        list.clear();
    active_ = 0;
}

} // namespace golite
