#include "runtime/report.hh"

#include <sstream>

namespace golite
{

const char *
traceKindName(TraceKind kind)
{
    switch (kind) {
      case TraceKind::Spawn: return "spawn";
      case TraceKind::Dispatch: return "run";
      case TraceKind::Park: return "park";
      case TraceKind::Unpark: return "unpark";
      case TraceKind::Finish: return "finish";
      case TraceKind::ClockAdvance: return "clock";
    }
    return "?";
}

const char *
execModeName(ExecMode mode)
{
    switch (mode) {
      case ExecMode::Deterministic: return "deterministic";
      case ExecMode::Parallel: return "parallel";
    }
    return "?";
}

const char *
deadlockCauseName(DeadlockCause cause)
{
    switch (cause) {
      case DeadlockCause::LockCycle: return "lock cycle";
      case DeadlockCause::LockOrphaned: return "lock holder exited";
      case DeadlockCause::LockChain: return "lock held by stuck goroutine";
      case DeadlockCause::ChanNilOp: return "nil channel operation";
      case DeadlockCause::ChanNoSender: return "chan recv, no sender";
      case DeadlockCause::ChanNoReceiver: return "chan send, no receiver";
      case DeadlockCause::SelectStuck: return "select never ready";
      case DeadlockCause::WaitGroupStuck: return "WaitGroup never reaches 0";
      case DeadlockCause::CondStuck: return "Cond.Wait never signalled";
      case DeadlockCause::PipeStuck: return "io pipe peer gone";
      case DeadlockCause::NetIoStuck: return "network I/O never ready";
      case DeadlockCause::SleepOrphan: return "asleep at exit";
      case DeadlockCause::Unknown: return "unclassified";
    }
    return "?";
}

std::string
PartialDeadlock::describe() const
{
    std::ostringstream os;
    os << (certain ? "partial deadlock (certain): "
                   : "partial deadlock (post-mortem): ")
       << deadlockCauseName(cause) << " [";
    for (size_t i = 0; i < goids.size(); ++i)
        os << (i ? " " : "") << "g" << goids[i];
    os << "] blocked on " << waitReasonName(reason);
    if (!chain.empty())
        os << ": " << chain;
    return os.str();
}

std::string
ReplayDivergence::describe() const
{
    std::ostringstream os;
    os << "replay divergence at decision " << index << ": trace "
       << "recorded " << decisionKindName(expectedKind) << " among "
       << expectedAlternatives << ", program offered "
       << decisionKindName(actualKind) << " among "
       << actualAlternatives;
    if (!runnable.empty())
        os << "; runnable: " << runnable;
    return os.str();
}

std::string
RunMetrics::json() const
{
    // Fixed key order, no whitespace variation: CI diffs this output
    // byte-for-byte against a committed expectation.
    std::ostringstream os;
    os << "{\"chanSends\":" << chanSends
       << ",\"chanRecvs\":" << chanRecvs
       << ",\"chanCloses\":" << chanCloses
       << ",\"chanTryOps\":" << chanTryOps
       << ",\"lockWriteAcquires\":" << lockWriteAcquires
       << ",\"lockReadAcquires\":" << lockReadAcquires
       << ",\"lockReleases\":" << lockReleases
       << ",\"onceOps\":" << onceOps
       << ",\"wgDeltas\":" << wgDeltas
       << ",\"wgWaits\":" << wgWaits
       << ",\"selectBlocks\":" << selectBlocks
       << ",\"memReads\":" << memReads
       << ",\"memWrites\":" << memWrites
       << ",\"dispatches\":" << dispatches
       << ",\"contextSwitches\":" << contextSwitches
       << ",\"parks\":" << parks
       << ",\"spawns\":" << spawns
       << ",\"maxLiveGoroutines\":" << maxLiveGoroutines
       << ",\"lifetimesCounted\":" << lifetimesCounted
       << ",\"lifetimeSumNs\":" << lifetimeSumNs
       << ",\"lifetimeMaxNs\":" << lifetimeMaxNs
       << ",\"blocksByReason\":{";
    bool first = true;
    for (size_t i = 0; i < blocksByReason.size(); ++i) {
        if (blocksByReason[i] == 0)
            continue;
        if (!first)
            os << ",";
        first = false;
        os << "\"" << waitReasonName(static_cast<WaitReason>(i))
           << "\":" << blocksByReason[i];
    }
    os << "}";
    // The detector footprint only appears when a race detector ran,
    // so fixed-kernel expectations without one stay byte-stable.
    if (detector.collected) {
        os << ",\"detector\":{\"liveClockSlots\":"
           << detector.liveClockSlots
           << ",\"peakClockSlots\":" << detector.peakClockSlots
           << ",\"slotSpace\":" << detector.slotSpace
           << ",\"shadowEntries\":" << detector.shadowEntries
           << ",\"peakShadowEntries\":" << detector.peakShadowEntries
           << ",\"shadowFreed\":" << detector.shadowFreed
           << ",\"arenaBytes\":" << detector.arenaBytes << "}";
    }
    os << "}";
    return os.str();
}

std::string
RunMetrics::describe() const
{
    std::ostringstream os;
    os << "scheduler: " << dispatches << " dispatches, "
       << contextSwitches << " context switches, " << spawns
       << " spawns, " << maxLiveGoroutines << " max live\n";
    if (lifetimesCounted > 0) {
        os << "lifetimes: " << lifetimesCounted << " finished, mean "
           << lifetimeSumNs / static_cast<int64_t>(lifetimesCounted) /
                  1000
           << "us, max " << lifetimeMaxNs / 1000 << "us\n";
    }
    os << "channels: " << chanSends << " sends, " << chanRecvs
       << " recvs, " << chanCloses << " closes, " << chanTryOps
       << " try-ops\n";
    os << "locks: " << lockWriteAcquires << " write acquires, "
       << lockReadAcquires << " read acquires, " << lockReleases
       << " releases\n";
    os << "misc: " << onceOps << " once ops, " << wgDeltas
       << " wg deltas, " << wgWaits << " wg waits, " << selectBlocks
       << " select blocks\n";
    os << "memory: " << memReads << " reads, " << memWrites
       << " writes\n";
    os << "blocks (" << parks << " total):";
    bool any = false;
    for (size_t i = 0; i < blocksByReason.size(); ++i) {
        if (blocksByReason[i] == 0)
            continue;
        any = true;
        os << " " << waitReasonName(static_cast<WaitReason>(i)) << "="
           << blocksByReason[i];
    }
    if (!any)
        os << " none";
    os << "\n";
    return os.str();
}

std::string
RunReport::formatTrace() const
{
    std::ostringstream os;
    for (const TraceEvent &ev : trace) {
        os << "[" << ev.tick << " @" << ev.timeNs / 1000 << "us] ";
        if (ev.kind == TraceKind::ClockAdvance) {
            os << "clock -> " << ev.detail << "\n";
            continue;
        }
        os << "g" << ev.gid << " " << traceKindName(ev.kind);
        if (!ev.detail.empty())
            os << " (" << ev.detail << ")";
        os << "\n";
    }
    return os.str();
}

std::string
RunReport::fingerprint() const
{
    std::ostringstream os;
    os << "completed=" << completed << ";deadlock=" << globalDeadlock
       << ";panicked=" << panicked << ";panic=" << panicMessage
       << ";livelocked=" << livelocked << ";created="
       << goroutinesCreated << ";ticks=" << ticks << ";time="
       << finalTimeNs << "\n";
    // Only emitted when set, so pre-replay fingerprints stay
    // byte-identical (committed baselines depend on that).
    if (replayDivergence.diverged)
        os << "divergence:" << replayDivergence.describe() << "\n";
    for (const LeakInfo &leak : leaked)
        os << "leak:" << leak.goid << ","
           << static_cast<int>(leak.reason) << "," << leak.label
           << "\n";
    for (const std::string &msg : raceMessages)
        os << "race:" << msg << "\n";
    for (const PartialDeadlock &pd : partialDeadlocks)
        os << "pd:" << pd.describe() << "\n";
    for (const GoroutineStat &stat : stats)
        os << "stat:" << stat.goid << "," << stat.createdTick << ","
           << stat.finishedTick << "," << stat.finished << "\n";
    for (const TraceEvent &ev : trace)
        os << "ev:" << ev.tick << "," << ev.timeNs << "," << ev.gid
           << "," << static_cast<int>(ev.kind) << "," << ev.detail
           << "\n";
    return os.str();
}

std::string
RunReport::describe() const
{
    std::ostringstream os;
    if (replayDivergence.diverged) {
        os << "fatal error: " << replayDivergence.describe() << "\n";
    } else if (panicked) {
        os << "panic: " << panicMessage << "\n";
    } else if (globalDeadlock) {
        os << "fatal error: all goroutines are asleep - deadlock!\n";
    } else if (livelocked) {
        os << "fatal error: dispatch budget exhausted (livelock?)\n";
    } else {
        os << "program exited\n";
    }
    os << "goroutines created: " << goroutinesCreated
       << ", scheduler ticks: " << ticks << ", virtual time: "
       << finalTimeNs / 1000000 << "ms\n";
    if (!leaked.empty()) {
        os << leaked.size() << " goroutine(s) still blocked:\n";
        for (const LeakInfo &leak : leaked) {
            os << "  goroutine " << leak.goid;
            if (!leak.label.empty())
                os << " [" << leak.label << "]";
            os << ": blocked on " << waitReasonName(leak.reason)
               << "\n";
        }
    }
    for (const PartialDeadlock &pd : partialDeadlocks)
        os << pd.describe() << "\n";
    for (const std::string &msg : raceMessages)
        os << msg << "\n";
    return os.str();
}

} // namespace golite
