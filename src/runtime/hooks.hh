/**
 * @file
 * Instrumentation interfaces between the runtime and bug detectors.
 *
 * The scheduler and every synchronization primitive report events
 * through these interfaces. The happens-before race detector
 * (src/race) implements RaceHooks; passing one in RunOptions is the
 * golite equivalent of building a Go program with '-race'. The
 * wait-for-graph partial-deadlock detector (src/waitgraph) implements
 * DeadlockHooks, the blocking-side counterpart: it consumes park /
 * unpark / ownership events and diagnoses the partial deadlocks that
 * Go's built-in all-goroutines-asleep check misses (Table 8).
 */

#ifndef GOLITE_RUNTIME_HOOKS_HH
#define GOLITE_RUNTIME_HOOKS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/goroutine.hh"

namespace golite
{

struct RunReport;

/**
 * Callbacks fired by the runtime on concurrency-relevant events.
 *
 * The default implementation ignores everything, so primitives can call
 * unconditionally through Scheduler::hooks() (never null inside a run).
 */
class RaceHooks
{
  public:
    virtual ~RaceHooks() = default;

    /** A goroutine was spawned; child inherits parent's clock. */
    virtual void goroutineCreated(uint64_t parent, uint64_t child)
    {
        (void)parent;
        (void)child;
    }

    /** A goroutine finished. */
    virtual void goroutineFinished(uint64_t gid) { (void)gid; }

    /**
     * The current goroutine acquired happens-before ordering from
     * @p sync_obj (e.g. returned from Mutex::lock, received from a
     * channel).
     */
    virtual void acquire(const void *sync_obj) { (void)sync_obj; }

    /**
     * The current goroutine published its clock into @p sync_obj (e.g.
     * Mutex::unlock, channel send, WaitGroup::done).
     */
    virtual void release(const void *sync_obj) { (void)sync_obj; }

    /** A plain (unsynchronized-unless-proven) read of @p addr. */
    virtual void memRead(const void *addr, const char *label)
    {
        (void)addr;
        (void)label;
    }

    /** A plain write of @p addr. */
    virtual void memWrite(const void *addr, const char *label)
    {
        (void)addr;
        (void)label;
    }

    // --- Structured primitive events (used by the vet checkers) ---

    /** A goroutine is about to block acquiring a lock. */
    virtual void
    lockRequested(const void *lock_obj, uint64_t gid, bool is_write)
    {
        (void)lock_obj;
        (void)gid;
        (void)is_write;
    }

    /** A goroutine now holds a lock. */
    virtual void
    lockAcquired(const void *lock_obj, uint64_t gid, bool is_write)
    {
        (void)lock_obj;
        (void)gid;
        (void)is_write;
    }

    /** A goroutine released a lock. */
    virtual void
    lockReleased(const void *lock_obj, uint64_t gid)
    {
        (void)lock_obj;
        (void)gid;
    }

    /** WaitGroup counter changed by delta, now new_count. */
    virtual void
    wgAdd(const void *wg, int delta, int new_count)
    {
        (void)wg;
        (void)delta;
        (void)new_count;
    }

    /** A goroutine entered WaitGroup::wait. */
    virtual void wgWait(const void *wg) { (void)wg; }

    /** Human-readable reports accumulated so far; cleared by the call. */
    virtual std::vector<std::string> drainReports() { return {}; }
};

/**
 * Fan-out combinator: forwards every event to each attached hook
 * (e.g. the race detector plus a vet checker in one run).
 */
class MultiHooks : public RaceHooks
{
  public:
    explicit MultiHooks(std::vector<RaceHooks *> sinks)
        : sinks_(std::move(sinks))
    {
    }

    void
    goroutineCreated(uint64_t parent, uint64_t child) override
    {
        for (auto *s : sinks_)
            s->goroutineCreated(parent, child);
    }

    void
    goroutineFinished(uint64_t gid) override
    {
        for (auto *s : sinks_)
            s->goroutineFinished(gid);
    }

    void
    acquire(const void *sync_obj) override
    {
        for (auto *s : sinks_)
            s->acquire(sync_obj);
    }

    void
    release(const void *sync_obj) override
    {
        for (auto *s : sinks_)
            s->release(sync_obj);
    }

    void
    memRead(const void *addr, const char *label) override
    {
        for (auto *s : sinks_)
            s->memRead(addr, label);
    }

    void
    memWrite(const void *addr, const char *label) override
    {
        for (auto *s : sinks_)
            s->memWrite(addr, label);
    }

    void
    lockRequested(const void *lock_obj, uint64_t gid,
                  bool is_write) override
    {
        for (auto *s : sinks_)
            s->lockRequested(lock_obj, gid, is_write);
    }

    void
    lockAcquired(const void *lock_obj, uint64_t gid,
                 bool is_write) override
    {
        for (auto *s : sinks_)
            s->lockAcquired(lock_obj, gid, is_write);
    }

    void
    lockReleased(const void *lock_obj, uint64_t gid) override
    {
        for (auto *s : sinks_)
            s->lockReleased(lock_obj, gid);
    }

    void
    wgAdd(const void *wg, int delta, int new_count) override
    {
        for (auto *s : sinks_)
            s->wgAdd(wg, delta, new_count);
    }

    void
    wgWait(const void *wg) override
    {
        for (auto *s : sinks_)
            s->wgWait(wg);
    }

    std::vector<std::string>
    drainReports() override
    {
        std::vector<std::string> all;
        for (auto *s : sinks_) {
            for (auto &r : s->drainReports())
                all.push_back(std::move(r));
        }
        return all;
    }

  private:
    std::vector<RaceHooks *> sinks_;
};

/** One channel operation a blocked select is parked on. */
struct SelectWait
{
    const void *chan = nullptr; ///< the channel's shared state
    bool isSend = false;        ///< send case (else receive)
};

/**
 * Callbacks fired by the runtime on blocking-relevant events: goroutine
 * lifecycle, park/unpark, lock ownership, select-case registration, and
 * WaitGroup counter changes.
 *
 * The wait-for-graph detector builds its bipartite
 * goroutine/resource graph from exactly these events. As with
 * RaceHooks, the default implementation ignores everything so the
 * runtime can call unconditionally through
 * Scheduler::deadlockHooks() (never null inside a run).
 */
class DeadlockHooks
{
  public:
    virtual ~DeadlockHooks() = default;

    /** A goroutine was spawned (parent 0 = the run's main). */
    virtual void
    goroutineCreated(uint64_t parent, uint64_t child,
                     const std::string &label)
    {
        (void)parent;
        (void)child;
        (void)label;
    }

    /** A goroutine finished normally (not fired during teardown). */
    virtual void goroutineFinished(uint64_t gid) { (void)gid; }

    /** A goroutine parked on @p obj with @p reason. */
    virtual void
    parked(uint64_t gid, WaitReason reason, const void *obj)
    {
        (void)gid;
        (void)reason;
        (void)obj;
    }

    /** A parked goroutine was made runnable again. */
    virtual void unparked(uint64_t gid) { (void)gid; }

    /**
     * @p gid now owns @p lock (Mutex / RWMutex write when
     * @p is_write, RWMutex read otherwise). Readers accumulate.
     */
    virtual void
    lockAcquired(const void *lock, uint64_t gid, bool is_write)
    {
        (void)lock;
        (void)gid;
        (void)is_write;
    }

    /** @p gid released @p lock (@p was_write as in lockAcquired). */
    virtual void
    lockReleased(const void *lock, uint64_t gid, bool was_write)
    {
        (void)lock;
        (void)gid;
        (void)was_write;
    }

    /**
     * A select is about to park; @p cases lists every channel
     * operation that could complete it. Fired immediately before the
     * corresponding parked(gid, WaitReason::Select, ...) event.
     */
    virtual void
    selectBlocked(uint64_t gid, const std::vector<SelectWait> &cases)
    {
        (void)gid;
        (void)cases;
    }

    /** WaitGroup counter changed; @p count is the new value. */
    virtual void
    wgCounter(const void *wg, int count)
    {
        (void)wg;
        (void)count;
    }

    /**
     * The run ended and @p report holds the final leak list. The
     * detector appends its structured PartialDeadlock diagnoses
     * (mid-run certain reports plus end-of-run orphan analysis).
     */
    virtual void finalizeRun(RunReport &report) { (void)report; }
};

} // namespace golite

#endif // GOLITE_RUNTIME_HOOKS_HH
