/**
 * @file
 * ScheduleTrace: the exact record of every nondeterministic decision a
 * run made, replayable independently of the seed that produced it.
 *
 * The scheduler funnels all nondeterminism through three decision
 * kinds — the dispatch pick among runnable goroutines, select's
 * shuffle draw, and the per-access preemption coin — so a recorded
 * decision sequence pins the entire interleaving. Record a run with
 * RunOptions::recordTrace, replay it with RunOptions::replayTrace:
 * strict replay reproduces the recorded run decision for decision and
 * fails fast with a structured ReplayDivergence if the program no
 * longer offers the recorded alternatives; loose replay (the fuzzer's
 * mode) treats the trace as guidance and clamps mismatches.
 *
 * Traces serialize to a line-oriented text format ("golite-trace v1")
 * compact enough to commit as regression artifacts; see
 * DESIGN.md ("Fuzzing & replay") for the format specification.
 */

#ifndef GOLITE_RUNTIME_SCHED_TRACE_HH
#define GOLITE_RUNTIME_SCHED_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace golite
{

/** Kind of one recorded scheduling decision. */
enum class DecisionKind : uint8_t
{
    Pick,      ///< dispatch pick among the runnable goroutines
    SelectArm, ///< select's shuffle draw over its cases
    Preempt,   ///< preemption coin at an instrumented shared access
};

/** Number of DecisionKind values (for the exhaustiveness test). */
constexpr int kDecisionKindCount =
    static_cast<int>(DecisionKind::Preempt) + 1;

const char *decisionKindName(DecisionKind kind);

/** One recorded decision: which alternative of how many was taken. */
struct Decision
{
    DecisionKind kind = DecisionKind::Pick;
    /** Alternatives offered (>= 2; 1-way choices are never recorded).
     *  Preempt decisions always offer 2: 0 = keep running, 1 = yield. */
    uint32_t alternatives = 2;
    uint32_t pick = 0;

    bool
    operator==(const Decision &o) const
    {
        return kind == o.kind && alternatives == o.alternatives &&
               pick == o.pick;
    }
    bool operator!=(const Decision &o) const { return !(*this == o); }
};

/**
 * A replayable schedule: the decision sequence of one run, in the
 * order the runtime consumed it. A trace may also be a *prefix*:
 * replay past the last decision falls back to defaults (first
 * runnable goroutine, no preemption), which is what lets the shrinker
 * cut a bug-triggering trace down to its essential prefix.
 */
struct ScheduleTrace
{
    std::vector<Decision> decisions;

    size_t size() const { return decisions.size(); }
    bool empty() const { return decisions.empty(); }

    /** Decisions that deviate from the replay default (pick != 0) —
     *  the measure the shrinker minimizes after prefix truncation. */
    size_t nonDefaultCount() const;

    bool
    operator==(const ScheduleTrace &o) const
    {
        return decisions == o.decisions;
    }

    /**
     * Render as the committable "golite-trace v1" text format.
     * Runs of no-preempt decisions are run-length encoded, so traces
     * of preemption-heavy runs stay compact.
     */
    std::string serialize() const;

    /**
     * Parse the text format. Returns false (and sets @p error, when
     * non-null, to a message naming the offending line) on malformed
     * input; @p out is unchanged on failure.
     */
    static bool parse(const std::string &text, ScheduleTrace &out,
                      std::string *error = nullptr);

    /** Write serialize() to @p path; false (with errno intact) on
     *  I/O failure. */
    bool saveFile(const std::string &path) const;

    /** Read and parse @p path; false on I/O or parse failure. */
    static bool loadFile(const std::string &path, ScheduleTrace &out,
                         std::string *error = nullptr);
};

} // namespace golite

#endif // GOLITE_RUNTIME_SCHED_TRACE_HH
