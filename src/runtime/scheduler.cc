#include "runtime/scheduler.hh"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <ctime>
#include <stdexcept>
#include <thread>

#include "base/panic.hh"

namespace golite
{

// One scheduler slot per OS thread: N threads can each drive an
// independent deterministic run concurrently (the parallel sweep
// harness in src/parallel relies on exactly this).
thread_local Scheduler *Scheduler::current_ = nullptr;

// Parallel-mode thread state: the worker context a pool thread is
// executing as, and the scheduler whose big lock this thread holds
// (the SchedGuard reentrancy key — see scheduler.hh).
thread_local Scheduler::Worker *Scheduler::tlWorker_ = nullptr;
thread_local Scheduler *Scheduler::lockHolder_ = nullptr;

const char *
waitReasonName(WaitReason reason)
{
    switch (reason) {
      case WaitReason::None: return "none";
      case WaitReason::ChanSend: return "chan send";
      case WaitReason::ChanRecv: return "chan receive";
      case WaitReason::ChanSendNil: return "chan send (nil chan)";
      case WaitReason::ChanRecvNil: return "chan receive (nil chan)";
      case WaitReason::Select: return "select";
      case WaitReason::MutexLock: return "sync.Mutex.Lock";
      case WaitReason::RWMutexRLock: return "sync.RWMutex.RLock";
      case WaitReason::RWMutexWLock: return "sync.RWMutex.Lock";
      case WaitReason::CondWait: return "sync.Cond.Wait";
      case WaitReason::WaitGroupWait: return "sync.WaitGroup.Wait";
      case WaitReason::OnceWait: return "sync.Once.Do";
      case WaitReason::Sleep: return "sleep";
      case WaitReason::PipeRead: return "io pipe read";
      case WaitReason::PipeWrite: return "io pipe write";
      case WaitReason::NetIO: return "network I/O wait";
      case WaitReason::Other: return "other";
    }
    return "unknown";
}

const char *
schedPolicyName(SchedPolicy policy)
{
    switch (policy) {
      case SchedPolicy::Random: return "random";
      case SchedPolicy::Fifo: return "fifo";
      case SchedPolicy::Lifo: return "lifo";
      case SchedPolicy::Pct: return "pct";
    }
    return "unknown";
}

namespace
{

/** Batched readyq wakes (unparkBatch); GOLITE_BATCH_WAKE=0 selects
 *  the one-at-a-time baseline for A/B measurement. */
bool
batchWakeEnabled()
{
    static const bool enabled = [] {
        const char *env = std::getenv("GOLITE_BATCH_WAKE");
        return env == nullptr || env[0] != '0';
    }();
    return enabled;
}

/**
 * Internal subscriber behind RunOptions::collectTrace: renders the
 * lifecycle/scheduling events into the RunReport::trace timeline,
 * preserving the exact entries the scheduler used to append by hand.
 */
class ReportTraceSink : public Subscriber
{
  public:
    explicit ReportTraceSink(std::vector<TraceEvent> *out) : out_(out) {}

    EventMask
    eventMask() const override
    {
        return eventBit(EventKind::GoSpawn) |
               eventBit(EventKind::GoFinish) |
               eventBit(EventKind::GoPark) |
               eventBit(EventKind::GoUnpark) |
               eventBit(EventKind::GoDispatch) |
               eventBit(EventKind::ClockAdvance);
    }

    void
    onEvent(const RuntimeEvent &ev) override
    {
        switch (ev.kind) {
          case EventKind::GoSpawn:
            // The main goroutine's registration is synthetic — the
            // timeline starts at its first dispatch, as always.
            if (!ev.flag)
                push(TraceKind::Spawn, ev, *ev.name);
            break;
          case EventKind::GoFinish:
            push(TraceKind::Finish, ev, {});
            break;
          case EventKind::GoPark:
            push(TraceKind::Park, ev, waitReasonName(ev.reason));
            break;
          case EventKind::GoUnpark:
            push(TraceKind::Unpark, ev, {});
            break;
          case EventKind::GoDispatch:
            push(TraceKind::Dispatch, ev, *ev.name);
            break;
          case EventKind::ClockAdvance:
            push(TraceKind::ClockAdvance, ev,
                 std::to_string(ev.b / 1000) + "us");
            break;
          default:
            break;
        }
    }

  private:
    void
    push(TraceKind kind, const RuntimeEvent &ev, std::string detail)
    {
        out_->push_back(TraceEvent{ev.tick, ev.timeNs, ev.gid, kind,
                                   std::move(detail)});
    }

    std::vector<TraceEvent> *out_;
};

/**
 * Internal subscriber behind RunOptions::recordTrace: every Decision
 * event becomes one recorded trace entry, replacing the append the
 * decision engine used to hard-code.
 */
class TraceRecorderSub : public Subscriber
{
  public:
    explicit TraceRecorderSub(ScheduleTrace *out) : out_(out) {}

    EventMask
    eventMask() const override
    {
        return eventBit(EventKind::Decision);
    }

    void
    onEvent(const RuntimeEvent &ev) override
    {
        if (ev.kind != EventKind::Decision)
            return;
        out_->decisions.push_back(
            Decision{ev.decision, static_cast<uint32_t>(ev.a),
                     static_cast<uint32_t>(ev.b)});
    }

  private:
    ScheduleTrace *out_;
};

/** Process-wide thread-team provider for ExecMode::Parallel runs
 *  (Scheduler::setParallelExecutor). */
Scheduler::ParallelExecutor &
parallelExecutorSlot()
{
    static Scheduler::ParallelExecutor executor;
    return executor;
}

std::mutex &
parallelExecutorMu()
{
    static std::mutex mu;
    return mu;
}

/** Default thread team: nthreads-1 fresh std::threads per run. The
 *  parallel sweep installs a pool-backed executor instead so M:N runs
 *  reuse warm threads (parallel::installParallelExecutor). */
void
defaultParallelExecutor(unsigned nthreads,
                        const std::function<void(unsigned)> &body)
{
    std::vector<std::thread> extra;
    extra.reserve(nthreads - 1);
    for (unsigned i = 1; i < nthreads; ++i)
        extra.emplace_back([&body, i] { body(i); });
    body(0);
    for (std::thread &t : extra)
        t.join();
}

} // namespace

void
Scheduler::setParallelExecutor(ParallelExecutor executor)
{
    std::lock_guard<std::mutex> lk(parallelExecutorMu());
    parallelExecutorSlot() = std::move(executor);
}

void
Scheduler::lockSched()
{
    schedMu_.lock();
    lockHolder_ = this;
}

void
Scheduler::unlockSched()
{
    lockHolder_ = nullptr;
    schedMu_.unlock();
}

Scheduler::Scheduler(const RunOptions &options)
    : options_(options), rng_(options.seed), timerq_(makeTimerQueue())
{
    parallelMode_ = options.execMode == ExecMode::Parallel;
    drawPctChangePoints();
}

void
Scheduler::drawPctChangePoints()
{
    if (options_.policy != SchedPolicy::Pct)
        return;
    // Draw d-1 priority-change points over the expected run length
    // (PCT: Burckhardt et al.). Must be the first draws from a
    // freshly seeded RNG — reset() reseeds and then calls this, so a
    // reused scheduler consumes the identical stream.
    const uint64_t horizon =
        std::max<uint64_t>(options_.pctExpectedSteps, 2);
    for (int i = 0; i + 1 < options_.pctDepth; ++i)
        pctChangePoints_.insert(1 + rng_.below(horizon));
}

void
Scheduler::reset(const RunOptions &options)
{
    if (current_ == this) {
        throw std::logic_error(
            "Scheduler::reset while the instance is driving a run");
    }
    options_ = options;
    parallelMode_ = options.execMode == ExecMode::Parallel;
    rng_.seed(options.seed);
    traceSink_.reset();
    recorderSub_.reset();
    // clear() keeps the map/deque/wheel capacity allocated — the
    // whole point of the arena — while every observable field goes
    // back to its constructed value.
    goroutines_.clear();
    pctPriority_.clear();
    pctChangePoints_.clear();
    pctLowCounter_ = 0;
    readyq_.clear();
    nextId_ = 1;
    running_ = nullptr;
    main_ = nullptr;
    mainDone_ = false;
    aborting_ = false;
    nowNs_ = 0;
    timerq_->clear();
    nextDeadline_ = INT64_MAX;
    dueBuf_.clear();
    timerSeq_ = 0;
    ioPoller_ = nullptr;
    sincePoll_ = 0;
    realStartNs_ = 0;
    replayAt_ = 0;
    report_ = RunReport{};
    // Parallel-mode state (quiescent between runs: no workers exist).
    workers_.clear();
    injectq_.clear();
    workSeq_ = 0;
    idleCount_ = 0;
    stopping_ = false;
    ticksAtomic_.store(0, std::memory_order_relaxed);
    nowAtomic_.store(0, std::memory_order_relaxed);
    drawPctChangePoints();
}

Scheduler::~Scheduler() = default;

Scheduler *
Scheduler::current()
{
    return current_;
}

void
Scheduler::fiberEntry(void *arg)
{
    auto *g = static_cast<Goroutine *>(arg);
    Scheduler *sched = Scheduler::current_;
    if (sched->parallelMode_)
        sched->goroutineBodyParallel(g);
    else
        sched->goroutineBody(g);
}

void
Scheduler::goroutineBody(Goroutine *g)
{
    try {
        g->entry();
    } catch (const GoPanic &panic) {
        if (!report_.panicked) {
            report_.panicked = true;
            report_.panicMessage = panic.message();
        }
        aborting_ = true;
    } catch (const RunAborted &) {
        // Teardown unwind; fall through to Done.
        g->unwound = true;
    }
    g->state = GoState::Done;
    g->finishedTick = report_.ticks;
    // The teardown flag tells subscribers this finish is an abort
    // unwind, not a real completion: the wait-graph keeps its
    // pre-teardown snapshot for the end-of-run analysis, while the
    // race detector and the trace timeline consume it as always.
    bus_.goFinish(g->id, aborting_);
    if (g == main_)
        mainDone_ = true;
    // Returning resumes schedContext_ via uc_link.
}

void
Scheduler::spawn(std::function<void()> fn, std::string label)
{
    // No-op in deterministic mode; in parallel mode the goroutine
    // table, id counter, and run queues are shared scheduling state.
    SchedGuard guard(this);
    const uint64_t id = ++nextId_;
    auto g = std::make_unique<Goroutine>(id, std::move(fn),
                                         options_.stackBytes);
    g->label = std::move(label);
    g->createdTick = parallelMode_
                         ? ticksAtomic_.load(std::memory_order_relaxed)
                         : report_.ticks;
    if (options_.policy == SchedPolicy::Pct && !parallelMode_) {
        // Fresh goroutines get a random high priority band.
        pctPriority_[g.get()] = 1'000'000 + rng_.below(1'000'000);
    }
    report_.goroutinesCreated++;
    bus_.goSpawn(runningId(), id, g->label);
    if (parallelMode_)
        enqueueLocked(g.get());
    else
        readyq_.push_back(g.get());
    goroutines_.emplace(id, std::move(g));
}

void
Scheduler::yield()
{
    if (parallelMode_) {
        yieldParallel();
        return;
    }
    Goroutine *g = running_;
    assert(g && "yield outside a goroutine");
    if (aborting_)
        throw RunAborted{};
    g->state = GoState::Runnable;
    readyq_.push_back(g);
    g->fiber.suspendTo(&schedContext_);
    if (aborting_)
        throw RunAborted{};
}

void
Scheduler::park(WaitReason reason, const void *wait_object)
{
    if (parallelMode_) {
        parkParallel(reason, wait_object);
        return;
    }
    Goroutine *g = running_;
    assert(g && "park outside a goroutine");
    if (aborting_)
        throw RunAborted{};
    g->state = GoState::Waiting;
    g->reason = reason;
    g->waitObject = wait_object;
    // Fires while the goroutine is already marked Waiting, so the
    // wait-graph's incremental cycle check sees the complete graph.
    bus_.goPark(g->id, reason, wait_object);
    g->fiber.suspendTo(&schedContext_);
    if (aborting_)
        throw RunAborted{};
    g->reason = WaitReason::None;
    g->waitObject = nullptr;
}

void
Scheduler::unpark(Goroutine *g)
{
    if (parallelMode_) {
        unparkParallel(g);
        return;
    }
    assert(g->state == GoState::Waiting);
    g->state = GoState::Runnable;
    bus_.goUnpark(g->id);
    readyq_.push_back(g);
}

void
Scheduler::unparkBatch(Goroutine *const *gs, size_t n)
{
    if (n == 0)
        return;
    if (parallelMode_) {
        // One guard for the whole batch; the deque pushes go to the
        // calling worker and thieves spread them out.
        SchedGuard guard(this);
        for (size_t i = 0; i < n; ++i)
            unparkParallel(gs[i]);
        return;
    }
    if (!batchWakeEnabled()) {
        for (size_t i = 0; i < n; ++i)
            unpark(gs[i]);
        return;
    }
    // Same per-goroutine events and FIFO order as n unpark() calls;
    // only the readyq insertion is batched.
    for (size_t i = 0; i < n; ++i) {
        Goroutine *g = gs[i];
        assert(g->state == GoState::Waiting);
        g->state = GoState::Runnable;
        bus_.goUnpark(g->id);
    }
    readyq_.insert(readyq_.end(), gs, gs + n);
}

size_t
Scheduler::choose(size_t n)
{
    if (n <= 1)
        return 0;
    if (parallelMode_) {
        // No decision engine in parallel mode (schedules are not a
        // replayable decision stream); draw from the worker-local RNG.
        Worker *w = tlWorker_;
        return w != nullptr ? w->rng.below(n) : 0;
    }
    return decide(DecisionKind::SelectArm, n);
}

std::string
Scheduler::runnableDescription() const
{
    std::string out;
    for (const Goroutine *g : readyq_) {
        if (!out.empty())
            out += " ";
        out += "g" + std::to_string(g->id);
        if (!g->label.empty())
            out += "[" + g->label + "]";
    }
    if (running_) {
        if (!out.empty())
            out += " ";
        out += "g" + std::to_string(running_->id) + "(running)";
    }
    return out;
}

size_t
Scheduler::replayPick(DecisionKind kind, size_t n)
{
    const std::vector<Decision> &decisions =
        options_.replayTrace->decisions;
    if (replayAt_ >= decisions.size()) {
        // Past the recorded prefix: a (possibly shrunk) trace is
        // guidance; the remainder of the run takes defaults.
        return 0;
    }
    const Decision &d = decisions[replayAt_];
    if (options_.replayStrict &&
        (d.kind != kind || d.alternatives != n)) {
        // The program no longer offers the recorded choice: fail
        // fast with the structured mismatch instead of silently
        // replaying a different interleaving.
        ReplayDivergence &div = report_.replayDivergence;
        div.diverged = true;
        div.index = replayAt_;
        div.expectedKind = d.kind;
        div.actualKind = kind;
        div.expectedAlternatives = d.alternatives;
        div.actualAlternatives = n;
        div.runnable = runnableDescription();
        aborting_ = true;
        if (running_ != nullptr) {
            // Goroutine context (select arm / preemption coin):
            // unwind this goroutine now; the run loop then aborts.
            throw RunAborted{};
        }
        return 0; // dispatch pick: the run loop aborts before dispatch
    }
    replayAt_++;
    return d.pick < n ? d.pick : n - 1;
}

size_t
Scheduler::decide(DecisionKind kind, size_t n, const uint64_t *cands)
{
    size_t pick;
    if (options_.replayTrace != nullptr) {
        pick = replayPick(kind, n);
    } else if (options_.siteChooser) {
        // A site chooser sees every decision kind — including the
        // preemption coin, which the plain chooser never receives —
        // so a systematic explorer can bound preemptions explicitly
        // instead of inheriting the probabilistic coin.
        ChoiceSite site;
        site.kind = kind;
        site.alternatives = n;
        site.gid = runningId();
        site.candidates = cands;
        pick = options_.siteChooser(site);
        if (pick >= n)
            pick = n - 1;
    } else if (kind == DecisionKind::Preempt) {
        pick = rng_.chance(options_.preemptProb) ? 1 : 0;
    } else if (options_.chooser) {
        pick = options_.chooser(n);
        if (pick >= n)
            pick = n - 1;
    } else {
        pick = rng_.below(n);
    }
    // Every resolved choice is one Decision event; the trace recorder
    // (RunOptions::recordTrace) is just a subscriber of these.
    bus_.decision(kind, n, pick, runningId(), cands);
    return pick;
}

void
Scheduler::maybePreempt()
{
    if (parallelMode_) {
        // Parallel mode has real preemption (other workers run
        // concurrently); the coin still adds same-worker interleaving
        // diversity at instrumented accesses. Worker-local RNG, no
        // lock, no Decision event — this is the mem-access fast path.
        Worker *w = tlWorker_;
        if (w != nullptr && w->running != nullptr &&
            w->rng.chance(options_.preemptProb))
            yieldParallel();
        return;
    }
    // The natural draw inside decide() is the same
    // rng_.chance(preemptProb) coin as always, so seed sweeps and
    // committed baselines see an unchanged stream.
    if (running_ && decide(DecisionKind::Preempt, 2) == 1)
        yield();
}

TimerId
Scheduler::scheduleTimer(int64_t delay_ns, std::function<void()> fn)
{
    // Parallel mode: the timer queue and deadline mirror are
    // scheduler state; nowNs_ is authoritative under the lock.
    SchedGuard guard(this);
    auto token = std::make_shared<TimerToken>();
    token->when = nowNs_ + std::max<int64_t>(delay_ns, 0);
    timerq_->push(TimerEntry{token->when, timerSeq_++, token,
                             std::move(fn)});
    if (token->when < nextDeadline_)
        nextDeadline_ = token->when;
    return token;
}

bool
Scheduler::cancelTimer(const TimerId &id)
{
    SchedGuard guard(this);
    if (!id || id->fired || id->cancelled)
        return false;
    id->cancelled = true;
    return true;
}

void
Scheduler::sleep(int64_t delay_ns)
{
    if (parallelMode_) {
        sleepParallel(delay_ns);
        return;
    }
    Goroutine *g = running_;
    assert(g && "sleep outside a goroutine");
    if (delay_ns <= 0) {
        yield();
        return;
    }
    scheduleTimer(delay_ns, [this, g] { unpark(g); });
    park(WaitReason::Sleep, nullptr);
}

void
Scheduler::fireDueTimers()
{
    // Batch-then-refetch keeps the heap's exact semantics: a fired
    // callback can only push deadlines >= nowNs_ with a larger seq,
    // so they sort after every entry of the current batch and are
    // picked up by the next popDue round.
    while (true) {
        dueBuf_.clear();
        timerq_->popDue(nowNs_, dueBuf_);
        if (dueBuf_.empty())
            break;
        for (TimerEntry &t : dueBuf_) {
            if (t.token->cancelled)
                continue;
            t.token->fired = true;
            t.fn();
        }
    }
    dueBuf_.clear();
    nextDeadline_ = timerq_->nextDeadline();
}

int64_t
Scheduler::realElapsedNs() const
{
    timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return ts.tv_sec * 1'000'000'000LL + ts.tv_nsec - realStartNs_;
}

bool
Scheduler::idleWait()
{
    if (mainDone_) {
        // Program over (Go exits when main returns). Parked
        // goroutines are leaks; timer-only and I/O waiters count too.
        return false;
    }
    if (ioPoller_ != nullptr && ioPoller_->ioWaiters() > 0) {
        // Block in the poller up to the next timer deadline (capped so
        // an external stall never wedges the loop for good).
        int timeout_ms = 1000;
        if (nextDeadline_ != INT64_MAX) {
            timeout_ms =
                options_.realTime
                    ? static_cast<int>(std::clamp<int64_t>(
                          (nextDeadline_ - nowNs_ + 999'999) /
                              1'000'000,
                          0, 1000))
                    : 0; // virtual clock: check readiness, don't wait
        }
        const size_t woken = ioPoller_->poll(timeout_ms);
        if (options_.realTime) {
            const int64_t t = realElapsedNs();
            if (t > nowNs_)
                nowNs_ = t;
        } else if (woken == 0 && nextDeadline_ != INT64_MAX) {
            // Nothing ready: discrete-event step to the next timer.
            nowNs_ = nextDeadline_;
            bus_.clockAdvance(nowNs_);
        }
        return true;
    }
    if (nextDeadline_ != INT64_MAX) {
        if (options_.realTime) {
            const int64_t remain = nextDeadline_ - realElapsedNs();
            if (remain > 0) {
                timespec ts{
                    static_cast<time_t>(remain / 1'000'000'000),
                    static_cast<long>(remain % 1'000'000'000)};
                nanosleep(&ts, nullptr);
            }
            nowNs_ =
                std::max(nextDeadline_,
                         std::max(nowNs_, realElapsedNs()));
        } else {
            // Discrete-event step: advance virtual time.
            nowNs_ = nextDeadline_;
            bus_.clockAdvance(nowNs_);
        }
        return true;
    }
    // Every goroutine is asleep with nothing to wake it: the exact
    // condition Go's built-in detector reports.
    report_.globalDeadlock = true;
    return false;
}

Goroutine *
Scheduler::pickNext()
{
    assert(!readyq_.empty());
    size_t index = 0;
    switch (options_.policy) {
      case SchedPolicy::Random:
        if (readyq_.size() > 1) {
            const uint64_t *cands = nullptr;
            if (options_.siteChooser) {
                // Candidate gids let the chooser (and the Decision
                // event) know *which goroutine* each index dispatches.
                // Built only on demand: plain runs pay nothing.
                pickCands_.clear();
                for (const Goroutine *g : readyq_)
                    pickCands_.push_back(g->id);
                cands = pickCands_.data();
            }
            index = decide(DecisionKind::Pick, readyq_.size(), cands);
        }
        break;
      case SchedPolicy::Fifo:
        index = 0;
        break;
      case SchedPolicy::Lifo:
        index = readyq_.size() - 1;
        break;
      case SchedPolicy::Pct:
        return pickNextPct();
    }
    Goroutine *g = readyq_[index];
    readyq_.erase(readyq_.begin() + static_cast<ptrdiff_t>(index));
    return g;
}

Goroutine *
Scheduler::pickNextPct()
{
    size_t best = 0;
    uint64_t best_priority = 0;
    for (size_t i = 0; i < readyq_.size(); ++i) {
        const uint64_t p = pctPriority_[readyq_[i]];
        if (p >= best_priority) {
            best_priority = p;
            best = i;
        }
    }
    Goroutine *g = readyq_[best];
    readyq_.erase(readyq_.begin() + static_cast<ptrdiff_t>(best));
    // At a change point, demote the goroutine that is about to run
    // below every base priority (later demotions go lower still).
    if (pctChangePoints_.count(report_.ticks))
        pctPriority_[g] = 1000 - (pctLowCounter_++);
    return g;
}

void
Scheduler::dispatch(Goroutine *g)
{
    report_.ticks++;
    bus_.goDispatch(g->id, g->label);
    g->state = GoState::Running;
    running_ = g;
    if (!g->fiber.started())
        g->fiber.start(&schedContext_, &Scheduler::fiberEntry, g);
    else
        g->fiber.resume(&schedContext_);
    running_ = nullptr;
    bus_.goDesched(g->id);
    if (g->state == GoState::Done) {
        g->fiber.release();
        g->entry = nullptr;
    }
}

void
Scheduler::abortAll()
{
    aborting_ = true;
    // Resume every live, already-started goroutine once; park/yield
    // throw RunAborted, unwinding the stack so destructors run.
    // Never-started goroutines have no stack state to unwind.
    for (auto &[id, g] : goroutines_) {
        (void)id;
        if (g->state == GoState::Done)
            continue;
        if (!g->fiber.started()) {
            g->state = GoState::Done;
            g->unwound = true;
            continue;
        }
        dispatch(g.get());
    }
}

void
Scheduler::finalize()
{
    if (options_.collectStats) {
        for (auto &[id, g] : goroutines_) {
            (void)id;
            report_.stats.push_back(GoroutineStat{
                g->id, g->createdTick, g->finishedTick,
                g->state == GoState::Done && !g->unwound});
        }
    }
    report_.finalTimeNs = nowNs_;
    // Drain everyone first, then finalize everyone, in attach order —
    // finalizers may read the full raceMessages list.
    for (Subscriber *s : bus_.subscribers()) {
        std::vector<std::string> msgs = s->drainReports();
        report_.raceMessages.insert(report_.raceMessages.end(),
                                    msgs.begin(), msgs.end());
    }
    for (Subscriber *s : bus_.subscribers())
        s->finalizeRun(report_);
    report_.completed = !report_.globalDeadlock && !report_.panicked &&
                        !report_.livelocked &&
                        !report_.replayDivergence.diverged;
}

RunReport
Scheduler::run(std::function<void()> main)
{
    if (current_ != nullptr) {
        // Loud in release builds too: silently overwriting current_
        // would corrupt the outer run's scheduler slot.
        throw std::logic_error(
            "nested golite::run is not supported: a run is already "
            "active on this thread (start independent runs on their "
            "own threads, e.g. via golite::parallel)");
    }
    if (parallelMode_)
        return runParallel(std::move(main));
    if ((options_.recordTrace || options_.replayTrace) &&
        options_.policy != SchedPolicy::Random) {
        // Fifo/Lifo/Pct picks bypass the decision engine, so a trace
        // would miss (or could not drive) the dispatch choices.
        throw std::logic_error(
            "schedule trace record/replay requires SchedPolicy::Random");
    }
    if (options_.replayTrace && options_.chooser) {
        throw std::logic_error(
            "RunOptions::replayTrace and RunOptions::chooser are both "
            "decision drivers; set only one");
    }
    if (options_.siteChooser &&
        (options_.chooser || options_.replayTrace)) {
        throw std::logic_error(
            "RunOptions::siteChooser conflicts with chooser/"
            "replayTrace; set only one decision driver");
    }
    if (options_.siteChooser && options_.policy != SchedPolicy::Random) {
        throw std::logic_error(
            "RunOptions::siteChooser requires SchedPolicy::Random "
            "(other policies bypass the decision engine)");
    }
    if (options_.recordTrace &&
        options_.recordTrace == options_.replayTrace) {
        throw std::logic_error(
            "recordTrace must be a different object than replayTrace");
    }
    if (options_.reapFinished && options_.collectStats) {
        throw std::logic_error(
            "RunOptions::reapFinished destroys the per-goroutine "
            "records RunOptions::collectStats reads; set only one");
    }
    current_ = this;
    report_ = RunReport{};
    replayAt_ = 0;
    if (options_.recordTrace)
        options_.recordTrace->decisions.clear();

    // Wire the bus: caller subscribers in declared order, then the
    // internal recorder and trace sinks.
    bus_.reset();
    for (Subscriber *s : options_.subscribers)
        bus_.attach(s);
    if (options_.recordTrace) {
        recorderSub_ =
            std::make_unique<TraceRecorderSub>(options_.recordTrace);
        bus_.attach(recorderSub_.get());
    }
    if (options_.collectTrace) {
        traceSink_ = std::make_unique<ReportTraceSink>(&report_.trace);
        bus_.attach(traceSink_.get());
    }
    bus_.bindClocks(&report_.ticks, &nowNs_);

    const uint64_t id = nextId_;
    auto g = std::make_unique<Goroutine>(id, std::move(main),
                                         options_.stackBytes);
    g->label = "main";
    if (options_.policy == SchedPolicy::Pct)
        pctPriority_[g.get()] = 1'000'000 + rng_.below(1'000'000);
    main_ = g.get();
    report_.goroutinesCreated = 1;
    bus_.goSpawn(0, id, g->label, /*synthetic=*/true);
    readyq_.push_back(g.get());
    goroutines_.emplace(id, std::move(g));

    if (options_.realTime) {
        // Two-step so realElapsedNs() measures from this instant.
        realStartNs_ = 0;
        realStartNs_ = realElapsedNs();
    }

    while (true) {
        if (options_.realTime) {
            const int64_t t = realElapsedNs();
            if (t > nowNs_)
                nowNs_ = t;
        }
        if (nextDeadline_ <= nowNs_)
            fireDueTimers();

        if (report_.ticks >= options_.maxTicks) {
            report_.livelocked = true;
            break;
        }

        if (readyq_.empty()) {
            if (!idleWait())
                break;
            continue;
        }

        if (mainDone_ && !options_.drainAfterMain)
            break;

        Goroutine *next = pickNext();
        if (aborting_) {
            // Strict replay diverged during the pick; the goroutine
            // was never dispatched, abortAll() unwinds it below.
            break;
        }
        dispatch(next);

        if (aborting_) {
            // A goroutine panicked: crash the program (unwind all).
            break;
        }

        if (options_.reapFinished && next != main_ &&
            next->state == GoState::Done) {
            pctPriority_.erase(next);
            goroutines_.erase(next->id);
        }

        if (ioPoller_ != nullptr &&
            ++sincePoll_ >= options_.ioPollEvery) {
            // Keep sockets progressing while the run queue never
            // empties (the open-loop soak's steady state).
            sincePoll_ = 0;
            if (ioPoller_->ioWaiters() > 0)
                ioPoller_->poll(0);
        }
    }

    // Snapshot the leaks (goroutines parked forever) before tearing
    // the world down, then unwind every live goroutine so that C++
    // destructors run even on abnormal exits.
    for (auto &[gid, gptr] : goroutines_) {
        (void)gid;
        if (gptr->state == GoState::Waiting) {
            report_.leaked.push_back(
                LeakInfo{gptr->id, gptr->reason, gptr->label});
        }
    }
    abortAll();
    finalize();
    // Destroy the goroutines (returning their fiber stacks to this
    // thread's StackPool) before the scheduler can migrate: the pool
    // is thread_local and fibers must be freed where they ran.
    running_ = nullptr;
    main_ = nullptr;
    readyq_.clear();
    pctPriority_.clear();
    goroutines_.clear();
    current_ = nullptr;
    return report_;
}

// --- ExecMode::Parallel: the M:N work-stealing runtime ---------------
//
// One run, N OS threads. Scheduling state lives under schedMu_;
// primitives take it once per operation (SchedGuard) and user code
// plus the mem-access instrumentation run lock-free. Runnable
// goroutines sit in per-worker Chase-Lev deques (owner pops LIFO,
// thieves steal FIFO) plus an inject queue for non-worker enqueues.
// The discrete-event virtual clock survives: when every worker is
// idle, the last idler advances the clock to the next timer deadline
// or declares the global deadlock, exactly like the serial idleWait.

unsigned
Scheduler::resolveParallelThreads() const
{
    unsigned n = options_.parallelThreads;
    if (n == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        n = std::min(hw != 0 ? hw : 2u, 8u);
    }
    return std::max(n, 2u);
}

void
Scheduler::validateParallelOptions() const
{
    if (options_.recordTrace != nullptr ||
        options_.replayTrace != nullptr) {
        throw std::logic_error(
            "ExecMode::Parallel cannot record or replay schedule "
            "traces: parallel schedules are not a deterministic "
            "decision stream (use ExecMode::Deterministic)");
    }
    if (options_.chooser || options_.siteChooser) {
        throw std::logic_error(
            "ExecMode::Parallel does not route scheduling through the "
            "decision engine; RunOptions::chooser/siteChooser require "
            "ExecMode::Deterministic");
    }
    if (options_.realTime) {
        throw std::logic_error(
            "RunOptions::realTime is not supported in "
            "ExecMode::Parallel (the parallel clock is discrete-event "
            "only)");
    }
    if (options_.collectTrace) {
        throw std::logic_error(
            "RunOptions::collectTrace has no defined event order in "
            "ExecMode::Parallel; use ExecMode::Deterministic");
    }
    if (options_.reapFinished && options_.collectStats) {
        throw std::logic_error(
            "RunOptions::reapFinished destroys the per-goroutine "
            "records RunOptions::collectStats reads; set only one");
    }
    constexpr EventMask mem_lane =
        eventBit(EventKind::MemRead) | eventBit(EventKind::MemWrite);
    for (Subscriber *s : options_.subscribers) {
        if ((s->eventMask() & mem_lane) != 0 && !s->parallelSafe()) {
            throw std::logic_error(
                "ExecMode::Parallel fans MemRead/MemWrite out from "
                "every worker thread concurrently, and this mem-lane "
                "subscriber is not parallel-safe "
                "(Subscriber::parallelSafe); use race::Sharded or "
                "ExecMode::Deterministic");
        }
    }
}

RunReport
Scheduler::runParallel(std::function<void()> main)
{
    validateParallelOptions();
    current_ = this;
    report_ = RunReport{};
    replayAt_ = 0;

    bus_.reset();
    for (Subscriber *s : options_.subscribers)
        bus_.attach(s);
    bus_.bindClocks(&report_.ticks, &nowNs_);
    ticksAtomic_.store(0, std::memory_order_relaxed);
    nowAtomic_.store(0, std::memory_order_relaxed);
    bus_.beginParallel(&ticksAtomic_, &nowAtomic_);

    const unsigned nthreads = resolveParallelThreads();
    workers_.clear();
    workers_.reserve(nthreads);
    for (unsigned i = 0; i < nthreads; ++i) {
        auto w = std::make_unique<Worker>();
        w->index = i;
        // Decorrelated per-worker streams derived from the run seed.
        w->rng.seed(options_.seed ^
                    (0x9E3779B97F4A7C15ULL * (i + 1)));
        workers_.push_back(std::move(w));
    }
    injectq_.clear();
    stopping_ = false;
    workSeq_ = 0;
    idleCount_ = 0;

    const uint64_t id = nextId_;
    auto g = std::make_unique<Goroutine>(id, std::move(main),
                                         options_.stackBytes);
    g->label = "main";
    main_ = g.get();
    report_.goroutinesCreated = 1;
    bus_.goSpawn(0, id, g->label, /*synthetic=*/true);
    injectq_.push_back(g.get());
    workSeq_++;
    goroutines_.emplace(id, std::move(g));

    ParallelExecutor executor;
    {
        std::lock_guard<std::mutex> lk(parallelExecutorMu());
        executor = parallelExecutorSlot();
    }
    auto body = [this](unsigned index) {
        Worker *w = workers_[index].get();
        Scheduler *prev_sched = current_;
        Worker *prev_worker = tlWorker_;
        current_ = this;
        tlWorker_ = w;
        workerLoop(w);
        tlWorker_ = prev_worker;
        current_ = prev_sched;
    };
    if (executor)
        executor(nthreads, body);
    else
        defaultParallelExecutor(nthreads, body);

    // Workers have joined; teardown is serial on the driver thread
    // but keeps the locking protocol — the abort unwind resumes
    // parked fibers, and every fiber switch expects schedMu_ held.
    // The driver borrows worker 0's context slot for the switches.
    tlWorker_ = workers_[0].get();
    lockSched();
    for (auto &[gid, gptr] : goroutines_) {
        (void)gid;
        if (gptr->state == GoState::Waiting) {
            report_.leaked.push_back(
                LeakInfo{gptr->id, gptr->reason, gptr->label});
        }
    }
    aborting_ = true;
    for (auto &[gid, gptr] : goroutines_) {
        (void)gid;
        Goroutine *live = gptr.get();
        if (live->state == GoState::Done)
            continue;
        if (!live->fiber.started()) {
            live->state = GoState::Done;
            live->unwound = true;
            continue;
        }
        // Resume once: park/yield rethrow RunAborted, the stack
        // unwinds (running C++ destructors), goroutineBodyParallel
        // marks Done and switches back here.
        bus_.goDispatch(live->id, live->label);
        live->state = GoState::Running;
        tlWorker_->running = live;
        live->fiber.resume(&tlWorker_->schedContext);
        tlWorker_->running = nullptr;
        bus_.goDesched(live->id);
        if (live->state == GoState::Done) {
            live->fiber.release();
            live->entry = nullptr;
        }
    }
    report_.ticks = ticksAtomic_.load(std::memory_order_relaxed);
    unlockSched();
    tlWorker_ = nullptr;
    bus_.endParallel();
    finalize();
    // Destroy the goroutines on the driver thread (their stacks go to
    // this thread's StackPool shard).
    running_ = nullptr;
    main_ = nullptr;
    readyq_.clear();
    injectq_.clear();
    goroutines_.clear();
    workers_.clear();
    current_ = nullptr;
    return report_;
}

void
Scheduler::workerLoop(Worker *w)
{
    // condition_variable_any adapter that keeps lockHolder_ correct
    // across the cv's internal unlock/relock.
    struct LockRef
    {
        Scheduler *s;
        void lock() { s->lockSched(); }
        void unlock() { s->unlockSched(); }
    } lock_ref{this};

    while (true) {
        Goroutine *g = findWork(w);
        if (g != nullptr) {
            runOne(w, g);
            continue;
        }
        lockSched();
        if (stopping_) {
            unlockSched();
            return;
        }
        if (!injectq_.empty()) {
            g = injectq_.front();
            injectq_.pop_front();
            unlockSched();
            runOne(w, g);
            continue;
        }
        // Idle. Every enqueue happens under schedMu_ (and bumps
        // workSeq_), so the locked re-checks below cannot miss work.
        idleCount_++;
        while (g == nullptr) {
            if (stopping_)
                break;
            if (!injectq_.empty()) {
                g = injectq_.front();
                injectq_.pop_front();
                break;
            }
            if (idleCount_ == workers_.size()) {
                // Everyone is idle. One locked sweep of the deques (a
                // racing push could have landed after our lock-free
                // search), then coordinate the virtual clock.
                g = findWork(w);
                if (g != nullptr)
                    break;
                if (!coordinateIdle()) {
                    stopping_ = true;
                    workSeq_++;
                    workCv_.notify_all();
                    break;
                }
                // The clock advanced and timers fired; re-check.
                continue;
            }
            const uint64_t seen = workSeq_;
            workCv_.wait(lock_ref, [this, seen] {
                return workSeq_ != seen || stopping_;
            });
            // Work appeared somewhere (it may sit in another worker's
            // deque, reachable only by stealing): leave the idle set
            // and search lock-free again.
            break;
        }
        idleCount_--;
        unlockSched();
        if (g != nullptr)
            runOne(w, g);
    }
}

Goroutine *
Scheduler::findWork(Worker *w)
{
    if (Goroutine *g = w->deque.pop())
        return g;
    const size_t n = workers_.size();
    if (n <= 1)
        return nullptr;
    // Randomized steal sweep over the other workers. Missing a
    // concurrent push is fine: pushes are lock-serialized and the
    // idle path re-checks under the lock before sleeping.
    const size_t start = w->rng.below(n);
    for (size_t k = 0; k < n; ++k) {
        Worker *victim = workers_[(start + k) % n].get();
        if (victim == w)
            continue;
        if (Goroutine *g = victim->deque.steal())
            return g;
    }
    return nullptr;
}

void
Scheduler::runOne(Worker *w, Goroutine *g)
{
    lockSched();
    if (stopping_ || aborting_) {
        // The run is over; leave g Runnable for the teardown unwind.
        unlockSched();
        return;
    }
    const uint64_t tick =
        ticksAtomic_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (tick > options_.maxTicks) {
        report_.livelocked = true;
        stopping_ = true;
        workSeq_++;
        workCv_.notify_all();
        unlockSched();
        return;
    }
    bus_.goDispatch(g->id, g->label);
    g->state = GoState::Running;
    w->running = g;
    if (!g->fiber.started())
        g->fiber.start(&w->schedContext, &Scheduler::fiberEntry, g);
    else
        g->fiber.resume(&w->schedContext);
    // The switch back handed schedMu_ to this thread (see the locking
    // protocol in scheduler.hh).
    w->running = nullptr;
    bus_.goDesched(g->id);
    if (w->pendingYield != nullptr) {
        // The yielded goroutine's stack has switched out; only now is
        // it safe to expose it to thieves.
        Goroutine *yielded = w->pendingYield;
        w->pendingYield = nullptr;
        enqueueLocked(yielded);
    }
    const bool done = g->state == GoState::Done;
    if (done) {
        g->fiber.release();
        g->entry = nullptr;
    }
    if (mainDone_ && !options_.drainAfterMain && !stopping_) {
        stopping_ = true;
        workSeq_++;
        workCv_.notify_all();
    }
    if (done && options_.reapFinished && g != main_)
        goroutines_.erase(g->id);
    unlockSched();
}

bool
Scheduler::coordinateIdle()
{
    if (aborting_ || stopping_)
        return false;
    if (mainDone_) {
        // Program over (Go exits when main returns); parked
        // goroutines are leaks, timer-only waiters count too.
        return false;
    }
    if (nextDeadline_ != INT64_MAX) {
        // Discrete-event step: all workers idle, so the virtual clock
        // jumps to the next timer exactly as in the serial idleWait.
        nowNs_ = nextDeadline_;
        nowAtomic_.store(nowNs_, std::memory_order_relaxed);
        bus_.clockAdvance(nowNs_);
        fireDueTimers();
        return true;
    }
    // Every goroutine is asleep with nothing to wake it.
    report_.globalDeadlock = true;
    return false;
}

void
Scheduler::goroutineBodyParallel(Goroutine *g)
{
    // The first dispatch arrives holding schedMu_ (the dispatch
    // handoff); user code runs without it.
    unlockSched();
    try {
        g->entry();
    } catch (const GoPanic &panic) {
        // Thrown from user code, outside any guard.
        if (!schedLockHeld())
            lockSched();
        if (!report_.panicked) {
            report_.panicked = true;
            report_.panicMessage = panic.message();
        }
        aborting_ = true;
        stopping_ = true;
        workSeq_++;
        workCv_.notify_all();
    } catch (const RunAborted &) {
        // Teardown unwind; every SchedGuard on the unwound frames has
        // released the lock.
        g->unwound = true;
    }
    if (!schedLockHeld())
        lockSched();
    g->state = GoState::Done;
    g->finishedTick = ticksAtomic_.load(std::memory_order_relaxed);
    bus_.goFinish(g->id, aborting_);
    if (g == main_)
        mainDone_ = true;
    // Never return: uc_link points at the stale context of whichever
    // worker *started* this fiber. The switch must target the worker
    // resuming it now — tlWorker_ on the current OS thread.
    g->fiber.suspendTo(&tlWorker_->schedContext);
    assert(false && "finished goroutine resumed");
}

void
Scheduler::parkParallel(WaitReason reason, const void *wait_object)
{
    // Reentrant: the primitive calling us normally holds the guard
    // already; time-driven parks (sleep) arrive with their own.
    SchedGuard guard(this);
    Worker *w = tlWorker_;
    Goroutine *g = w != nullptr ? w->running : nullptr;
    assert(g && "park outside a goroutine");
    if (aborting_)
        throw RunAborted{};
    g->state = GoState::Waiting;
    g->reason = reason;
    g->waitObject = wait_object;
    bus_.goPark(g->id, reason, wait_object);
    g->fiber.suspendTo(&w->schedContext);
    // Resumed by some dispatcher — possibly on a different OS thread;
    // that thread holds schedMu_ now (the resume handoff).
    if (aborting_)
        throw RunAborted{};
    g->reason = WaitReason::None;
    g->waitObject = nullptr;
}

void
Scheduler::unparkParallel(Goroutine *g)
{
    SchedGuard guard(this);
    assert(g->state == GoState::Waiting);
    g->state = GoState::Runnable;
    bus_.goUnpark(g->id);
    enqueueLocked(g);
}

void
Scheduler::yieldParallel()
{
    SchedGuard guard(this);
    Worker *w = tlWorker_;
    Goroutine *g = w != nullptr ? w->running : nullptr;
    assert(g && "yield outside a goroutine");
    if (aborting_)
        throw RunAborted{};
    g->state = GoState::Runnable;
    // Not stealable yet: the dispatcher pushes it after the stack has
    // switched out (Worker::pendingYield).
    w->pendingYield = g;
    g->fiber.suspendTo(&w->schedContext);
    if (aborting_)
        throw RunAborted{};
}

void
Scheduler::sleepParallel(int64_t delay_ns)
{
    if (delay_ns <= 0) {
        yieldParallel();
        return;
    }
    SchedGuard guard(this);
    Goroutine *g = tlWorker_ != nullptr ? tlWorker_->running : nullptr;
    assert(g && "sleep outside a goroutine");
    scheduleTimer(delay_ns, [this, g] { unpark(g); });
    parkParallel(WaitReason::Sleep, nullptr);
}

void
Scheduler::enqueueLocked(Goroutine *g)
{
    assert(schedLockHeld());
    if (tlWorker_ != nullptr)
        tlWorker_->deque.push(g);
    else
        injectq_.push_back(g);
    workSeq_++;
    workCv_.notify_one();
}

void
go(std::function<void()> fn)
{
    Scheduler *sched = Scheduler::current();
    assert(sched && "go() outside golite::run");
    sched->spawn(std::move(fn));
}

void
go(std::string label, std::function<void()> fn)
{
    Scheduler *sched = Scheduler::current();
    assert(sched && "go() outside golite::run");
    sched->spawn(std::move(fn), std::move(label));
}

void
yield()
{
    Scheduler *sched = Scheduler::current();
    assert(sched && "yield() outside golite::run");
    sched->yield();
}

namespace
{

/** GOLITE_RUN_ARENA=0 disables scheduler reuse in the free run()
 *  (A/B baseline: construct a Scheduler per run, pre-arena). */
bool
runArenaEnabled()
{
    static const bool enabled = [] {
        const char *env = std::getenv("GOLITE_RUN_ARENA");
        return env == nullptr || env[0] != '0';
    }();
    return enabled;
}

} // namespace

RunReport
run(std::function<void()> main, const RunOptions &options)
{
    // Steady-state sweeps reuse one scheduler per OS thread: reset()
    // rewinds it to the constructed state while keeping container
    // capacity, so per-run setup does no allocation. The nested-run
    // case (current() already set) constructs a throwaway instance
    // whose run() raises the usual logic_error — reusing the arena
    // there would corrupt the active run's state.
    if (runArenaEnabled() && Scheduler::current() == nullptr) {
        thread_local std::unique_ptr<Scheduler> arena;
        if (!arena) {
            arena = std::make_unique<Scheduler>(options);
        } else {
            arena->reset(options);
        }
        return arena->run(std::move(main));
    }
    Scheduler sched(options);
    return sched.run(std::move(main));
}

void
notifyMemFree(const void *addr)
{
    Scheduler *sched = Scheduler::current();
    if (sched != nullptr)
        sched->bus().memFree(addr, sched->runningId());
}

} // namespace golite
