#include "runtime/scheduler.hh"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <ctime>
#include <stdexcept>

#include "base/panic.hh"

namespace golite
{

// One scheduler slot per OS thread: N threads can each drive an
// independent deterministic run concurrently (the parallel sweep
// harness in src/parallel relies on exactly this).
thread_local Scheduler *Scheduler::current_ = nullptr;

const char *
waitReasonName(WaitReason reason)
{
    switch (reason) {
      case WaitReason::None: return "none";
      case WaitReason::ChanSend: return "chan send";
      case WaitReason::ChanRecv: return "chan receive";
      case WaitReason::ChanSendNil: return "chan send (nil chan)";
      case WaitReason::ChanRecvNil: return "chan receive (nil chan)";
      case WaitReason::Select: return "select";
      case WaitReason::MutexLock: return "sync.Mutex.Lock";
      case WaitReason::RWMutexRLock: return "sync.RWMutex.RLock";
      case WaitReason::RWMutexWLock: return "sync.RWMutex.Lock";
      case WaitReason::CondWait: return "sync.Cond.Wait";
      case WaitReason::WaitGroupWait: return "sync.WaitGroup.Wait";
      case WaitReason::OnceWait: return "sync.Once.Do";
      case WaitReason::Sleep: return "sleep";
      case WaitReason::PipeRead: return "io pipe read";
      case WaitReason::PipeWrite: return "io pipe write";
      case WaitReason::NetIO: return "network I/O wait";
      case WaitReason::Other: return "other";
    }
    return "unknown";
}

const char *
schedPolicyName(SchedPolicy policy)
{
    switch (policy) {
      case SchedPolicy::Random: return "random";
      case SchedPolicy::Fifo: return "fifo";
      case SchedPolicy::Lifo: return "lifo";
      case SchedPolicy::Pct: return "pct";
    }
    return "unknown";
}

namespace
{

/** Batched readyq wakes (unparkBatch); GOLITE_BATCH_WAKE=0 selects
 *  the one-at-a-time baseline for A/B measurement. */
bool
batchWakeEnabled()
{
    static const bool enabled = [] {
        const char *env = std::getenv("GOLITE_BATCH_WAKE");
        return env == nullptr || env[0] != '0';
    }();
    return enabled;
}

/**
 * Internal subscriber behind RunOptions::collectTrace: renders the
 * lifecycle/scheduling events into the RunReport::trace timeline,
 * preserving the exact entries the scheduler used to append by hand.
 */
class ReportTraceSink : public Subscriber
{
  public:
    explicit ReportTraceSink(std::vector<TraceEvent> *out) : out_(out) {}

    EventMask
    eventMask() const override
    {
        return eventBit(EventKind::GoSpawn) |
               eventBit(EventKind::GoFinish) |
               eventBit(EventKind::GoPark) |
               eventBit(EventKind::GoUnpark) |
               eventBit(EventKind::GoDispatch) |
               eventBit(EventKind::ClockAdvance);
    }

    void
    onEvent(const RuntimeEvent &ev) override
    {
        switch (ev.kind) {
          case EventKind::GoSpawn:
            // The main goroutine's registration is synthetic — the
            // timeline starts at its first dispatch, as always.
            if (!ev.flag)
                push(TraceKind::Spawn, ev, *ev.name);
            break;
          case EventKind::GoFinish:
            push(TraceKind::Finish, ev, {});
            break;
          case EventKind::GoPark:
            push(TraceKind::Park, ev, waitReasonName(ev.reason));
            break;
          case EventKind::GoUnpark:
            push(TraceKind::Unpark, ev, {});
            break;
          case EventKind::GoDispatch:
            push(TraceKind::Dispatch, ev, *ev.name);
            break;
          case EventKind::ClockAdvance:
            push(TraceKind::ClockAdvance, ev,
                 std::to_string(ev.b / 1000) + "us");
            break;
          default:
            break;
        }
    }

  private:
    void
    push(TraceKind kind, const RuntimeEvent &ev, std::string detail)
    {
        out_->push_back(TraceEvent{ev.tick, ev.timeNs, ev.gid, kind,
                                   std::move(detail)});
    }

    std::vector<TraceEvent> *out_;
};

/**
 * Internal subscriber behind RunOptions::recordTrace: every Decision
 * event becomes one recorded trace entry, replacing the append the
 * decision engine used to hard-code.
 */
class TraceRecorderSub : public Subscriber
{
  public:
    explicit TraceRecorderSub(ScheduleTrace *out) : out_(out) {}

    EventMask
    eventMask() const override
    {
        return eventBit(EventKind::Decision);
    }

    void
    onEvent(const RuntimeEvent &ev) override
    {
        if (ev.kind != EventKind::Decision)
            return;
        out_->decisions.push_back(
            Decision{ev.decision, static_cast<uint32_t>(ev.a),
                     static_cast<uint32_t>(ev.b)});
    }

  private:
    ScheduleTrace *out_;
};

} // namespace

Scheduler::Scheduler(const RunOptions &options)
    : options_(options), rng_(options.seed), timerq_(makeTimerQueue())
{
    drawPctChangePoints();
}

void
Scheduler::drawPctChangePoints()
{
    if (options_.policy != SchedPolicy::Pct)
        return;
    // Draw d-1 priority-change points over the expected run length
    // (PCT: Burckhardt et al.). Must be the first draws from a
    // freshly seeded RNG — reset() reseeds and then calls this, so a
    // reused scheduler consumes the identical stream.
    const uint64_t horizon =
        std::max<uint64_t>(options_.pctExpectedSteps, 2);
    for (int i = 0; i + 1 < options_.pctDepth; ++i)
        pctChangePoints_.insert(1 + rng_.below(horizon));
}

void
Scheduler::reset(const RunOptions &options)
{
    if (current_ == this) {
        throw std::logic_error(
            "Scheduler::reset while the instance is driving a run");
    }
    options_ = options;
    rng_.seed(options.seed);
    traceSink_.reset();
    recorderSub_.reset();
    // clear() keeps the map/deque/wheel capacity allocated — the
    // whole point of the arena — while every observable field goes
    // back to its constructed value.
    goroutines_.clear();
    pctPriority_.clear();
    pctChangePoints_.clear();
    pctLowCounter_ = 0;
    readyq_.clear();
    nextId_ = 1;
    running_ = nullptr;
    main_ = nullptr;
    mainDone_ = false;
    aborting_ = false;
    nowNs_ = 0;
    timerq_->clear();
    nextDeadline_ = INT64_MAX;
    dueBuf_.clear();
    timerSeq_ = 0;
    ioPoller_ = nullptr;
    sincePoll_ = 0;
    realStartNs_ = 0;
    replayAt_ = 0;
    report_ = RunReport{};
    drawPctChangePoints();
}

Scheduler::~Scheduler() = default;

Scheduler *
Scheduler::current()
{
    return current_;
}

void
Scheduler::fiberEntry(void *arg)
{
    auto *g = static_cast<Goroutine *>(arg);
    Scheduler::current_->goroutineBody(g);
}

void
Scheduler::goroutineBody(Goroutine *g)
{
    try {
        g->entry();
    } catch (const GoPanic &panic) {
        if (!report_.panicked) {
            report_.panicked = true;
            report_.panicMessage = panic.message();
        }
        aborting_ = true;
    } catch (const RunAborted &) {
        // Teardown unwind; fall through to Done.
        g->unwound = true;
    }
    g->state = GoState::Done;
    g->finishedTick = report_.ticks;
    // The teardown flag tells subscribers this finish is an abort
    // unwind, not a real completion: the wait-graph keeps its
    // pre-teardown snapshot for the end-of-run analysis, while the
    // race detector and the trace timeline consume it as always.
    bus_.goFinish(g->id, aborting_);
    if (g == main_)
        mainDone_ = true;
    // Returning resumes schedContext_ via uc_link.
}

void
Scheduler::spawn(std::function<void()> fn, std::string label)
{
    const uint64_t id = ++nextId_;
    auto g = std::make_unique<Goroutine>(id, std::move(fn),
                                         options_.stackBytes);
    g->label = std::move(label);
    g->createdTick = report_.ticks;
    if (options_.policy == SchedPolicy::Pct) {
        // Fresh goroutines get a random high priority band.
        pctPriority_[g.get()] = 1'000'000 + rng_.below(1'000'000);
    }
    report_.goroutinesCreated++;
    bus_.goSpawn(runningId(), id, g->label);
    readyq_.push_back(g.get());
    goroutines_.emplace(id, std::move(g));
}

void
Scheduler::yield()
{
    Goroutine *g = running_;
    assert(g && "yield outside a goroutine");
    if (aborting_)
        throw RunAborted{};
    g->state = GoState::Runnable;
    readyq_.push_back(g);
    g->fiber.suspendTo(&schedContext_);
    if (aborting_)
        throw RunAborted{};
}

void
Scheduler::park(WaitReason reason, const void *wait_object)
{
    Goroutine *g = running_;
    assert(g && "park outside a goroutine");
    if (aborting_)
        throw RunAborted{};
    g->state = GoState::Waiting;
    g->reason = reason;
    g->waitObject = wait_object;
    // Fires while the goroutine is already marked Waiting, so the
    // wait-graph's incremental cycle check sees the complete graph.
    bus_.goPark(g->id, reason, wait_object);
    g->fiber.suspendTo(&schedContext_);
    if (aborting_)
        throw RunAborted{};
    g->reason = WaitReason::None;
    g->waitObject = nullptr;
}

void
Scheduler::unpark(Goroutine *g)
{
    assert(g->state == GoState::Waiting);
    g->state = GoState::Runnable;
    bus_.goUnpark(g->id);
    readyq_.push_back(g);
}

void
Scheduler::unparkBatch(Goroutine *const *gs, size_t n)
{
    if (n == 0)
        return;
    if (!batchWakeEnabled()) {
        for (size_t i = 0; i < n; ++i)
            unpark(gs[i]);
        return;
    }
    // Same per-goroutine events and FIFO order as n unpark() calls;
    // only the readyq insertion is batched.
    for (size_t i = 0; i < n; ++i) {
        Goroutine *g = gs[i];
        assert(g->state == GoState::Waiting);
        g->state = GoState::Runnable;
        bus_.goUnpark(g->id);
    }
    readyq_.insert(readyq_.end(), gs, gs + n);
}

size_t
Scheduler::choose(size_t n)
{
    if (n <= 1)
        return 0;
    return decide(DecisionKind::SelectArm, n);
}

std::string
Scheduler::runnableDescription() const
{
    std::string out;
    for (const Goroutine *g : readyq_) {
        if (!out.empty())
            out += " ";
        out += "g" + std::to_string(g->id);
        if (!g->label.empty())
            out += "[" + g->label + "]";
    }
    if (running_) {
        if (!out.empty())
            out += " ";
        out += "g" + std::to_string(running_->id) + "(running)";
    }
    return out;
}

size_t
Scheduler::replayPick(DecisionKind kind, size_t n)
{
    const std::vector<Decision> &decisions =
        options_.replayTrace->decisions;
    if (replayAt_ >= decisions.size()) {
        // Past the recorded prefix: a (possibly shrunk) trace is
        // guidance; the remainder of the run takes defaults.
        return 0;
    }
    const Decision &d = decisions[replayAt_];
    if (options_.replayStrict &&
        (d.kind != kind || d.alternatives != n)) {
        // The program no longer offers the recorded choice: fail
        // fast with the structured mismatch instead of silently
        // replaying a different interleaving.
        ReplayDivergence &div = report_.replayDivergence;
        div.diverged = true;
        div.index = replayAt_;
        div.expectedKind = d.kind;
        div.actualKind = kind;
        div.expectedAlternatives = d.alternatives;
        div.actualAlternatives = n;
        div.runnable = runnableDescription();
        aborting_ = true;
        if (running_ != nullptr) {
            // Goroutine context (select arm / preemption coin):
            // unwind this goroutine now; the run loop then aborts.
            throw RunAborted{};
        }
        return 0; // dispatch pick: the run loop aborts before dispatch
    }
    replayAt_++;
    return d.pick < n ? d.pick : n - 1;
}

size_t
Scheduler::decide(DecisionKind kind, size_t n, const uint64_t *cands)
{
    size_t pick;
    if (options_.replayTrace != nullptr) {
        pick = replayPick(kind, n);
    } else if (options_.siteChooser) {
        // A site chooser sees every decision kind — including the
        // preemption coin, which the plain chooser never receives —
        // so a systematic explorer can bound preemptions explicitly
        // instead of inheriting the probabilistic coin.
        ChoiceSite site;
        site.kind = kind;
        site.alternatives = n;
        site.gid = runningId();
        site.candidates = cands;
        pick = options_.siteChooser(site);
        if (pick >= n)
            pick = n - 1;
    } else if (kind == DecisionKind::Preempt) {
        pick = rng_.chance(options_.preemptProb) ? 1 : 0;
    } else if (options_.chooser) {
        pick = options_.chooser(n);
        if (pick >= n)
            pick = n - 1;
    } else {
        pick = rng_.below(n);
    }
    // Every resolved choice is one Decision event; the trace recorder
    // (RunOptions::recordTrace) is just a subscriber of these.
    bus_.decision(kind, n, pick, runningId(), cands);
    return pick;
}

void
Scheduler::maybePreempt()
{
    // The natural draw inside decide() is the same
    // rng_.chance(preemptProb) coin as always, so seed sweeps and
    // committed baselines see an unchanged stream.
    if (running_ && decide(DecisionKind::Preempt, 2) == 1)
        yield();
}

TimerId
Scheduler::scheduleTimer(int64_t delay_ns, std::function<void()> fn)
{
    auto token = std::make_shared<TimerToken>();
    token->when = nowNs_ + std::max<int64_t>(delay_ns, 0);
    timerq_->push(TimerEntry{token->when, timerSeq_++, token,
                             std::move(fn)});
    if (token->when < nextDeadline_)
        nextDeadline_ = token->when;
    return token;
}

bool
Scheduler::cancelTimer(const TimerId &id)
{
    if (!id || id->fired || id->cancelled)
        return false;
    id->cancelled = true;
    return true;
}

void
Scheduler::sleep(int64_t delay_ns)
{
    Goroutine *g = running_;
    assert(g && "sleep outside a goroutine");
    if (delay_ns <= 0) {
        yield();
        return;
    }
    scheduleTimer(delay_ns, [this, g] { unpark(g); });
    park(WaitReason::Sleep, nullptr);
}

void
Scheduler::fireDueTimers()
{
    // Batch-then-refetch keeps the heap's exact semantics: a fired
    // callback can only push deadlines >= nowNs_ with a larger seq,
    // so they sort after every entry of the current batch and are
    // picked up by the next popDue round.
    while (true) {
        dueBuf_.clear();
        timerq_->popDue(nowNs_, dueBuf_);
        if (dueBuf_.empty())
            break;
        for (TimerEntry &t : dueBuf_) {
            if (t.token->cancelled)
                continue;
            t.token->fired = true;
            t.fn();
        }
    }
    dueBuf_.clear();
    nextDeadline_ = timerq_->nextDeadline();
}

int64_t
Scheduler::realElapsedNs() const
{
    timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return ts.tv_sec * 1'000'000'000LL + ts.tv_nsec - realStartNs_;
}

bool
Scheduler::idleWait()
{
    if (mainDone_) {
        // Program over (Go exits when main returns). Parked
        // goroutines are leaks; timer-only and I/O waiters count too.
        return false;
    }
    if (ioPoller_ != nullptr && ioPoller_->ioWaiters() > 0) {
        // Block in the poller up to the next timer deadline (capped so
        // an external stall never wedges the loop for good).
        int timeout_ms = 1000;
        if (nextDeadline_ != INT64_MAX) {
            timeout_ms =
                options_.realTime
                    ? static_cast<int>(std::clamp<int64_t>(
                          (nextDeadline_ - nowNs_ + 999'999) /
                              1'000'000,
                          0, 1000))
                    : 0; // virtual clock: check readiness, don't wait
        }
        const size_t woken = ioPoller_->poll(timeout_ms);
        if (options_.realTime) {
            const int64_t t = realElapsedNs();
            if (t > nowNs_)
                nowNs_ = t;
        } else if (woken == 0 && nextDeadline_ != INT64_MAX) {
            // Nothing ready: discrete-event step to the next timer.
            nowNs_ = nextDeadline_;
            bus_.clockAdvance(nowNs_);
        }
        return true;
    }
    if (nextDeadline_ != INT64_MAX) {
        if (options_.realTime) {
            const int64_t remain = nextDeadline_ - realElapsedNs();
            if (remain > 0) {
                timespec ts{
                    static_cast<time_t>(remain / 1'000'000'000),
                    static_cast<long>(remain % 1'000'000'000)};
                nanosleep(&ts, nullptr);
            }
            nowNs_ =
                std::max(nextDeadline_,
                         std::max(nowNs_, realElapsedNs()));
        } else {
            // Discrete-event step: advance virtual time.
            nowNs_ = nextDeadline_;
            bus_.clockAdvance(nowNs_);
        }
        return true;
    }
    // Every goroutine is asleep with nothing to wake it: the exact
    // condition Go's built-in detector reports.
    report_.globalDeadlock = true;
    return false;
}

Goroutine *
Scheduler::pickNext()
{
    assert(!readyq_.empty());
    size_t index = 0;
    switch (options_.policy) {
      case SchedPolicy::Random:
        if (readyq_.size() > 1) {
            const uint64_t *cands = nullptr;
            if (options_.siteChooser) {
                // Candidate gids let the chooser (and the Decision
                // event) know *which goroutine* each index dispatches.
                // Built only on demand: plain runs pay nothing.
                pickCands_.clear();
                for (const Goroutine *g : readyq_)
                    pickCands_.push_back(g->id);
                cands = pickCands_.data();
            }
            index = decide(DecisionKind::Pick, readyq_.size(), cands);
        }
        break;
      case SchedPolicy::Fifo:
        index = 0;
        break;
      case SchedPolicy::Lifo:
        index = readyq_.size() - 1;
        break;
      case SchedPolicy::Pct:
        return pickNextPct();
    }
    Goroutine *g = readyq_[index];
    readyq_.erase(readyq_.begin() + static_cast<ptrdiff_t>(index));
    return g;
}

Goroutine *
Scheduler::pickNextPct()
{
    size_t best = 0;
    uint64_t best_priority = 0;
    for (size_t i = 0; i < readyq_.size(); ++i) {
        const uint64_t p = pctPriority_[readyq_[i]];
        if (p >= best_priority) {
            best_priority = p;
            best = i;
        }
    }
    Goroutine *g = readyq_[best];
    readyq_.erase(readyq_.begin() + static_cast<ptrdiff_t>(best));
    // At a change point, demote the goroutine that is about to run
    // below every base priority (later demotions go lower still).
    if (pctChangePoints_.count(report_.ticks))
        pctPriority_[g] = 1000 - (pctLowCounter_++);
    return g;
}

void
Scheduler::dispatch(Goroutine *g)
{
    report_.ticks++;
    bus_.goDispatch(g->id, g->label);
    g->state = GoState::Running;
    running_ = g;
    if (!g->fiber.started())
        g->fiber.start(&schedContext_, &Scheduler::fiberEntry, g);
    else
        g->fiber.resume(&schedContext_);
    running_ = nullptr;
    bus_.goDesched(g->id);
    if (g->state == GoState::Done) {
        g->fiber.release();
        g->entry = nullptr;
    }
}

void
Scheduler::abortAll()
{
    aborting_ = true;
    // Resume every live, already-started goroutine once; park/yield
    // throw RunAborted, unwinding the stack so destructors run.
    // Never-started goroutines have no stack state to unwind.
    for (auto &[id, g] : goroutines_) {
        (void)id;
        if (g->state == GoState::Done)
            continue;
        if (!g->fiber.started()) {
            g->state = GoState::Done;
            g->unwound = true;
            continue;
        }
        dispatch(g.get());
    }
}

void
Scheduler::finalize()
{
    if (options_.collectStats) {
        for (auto &[id, g] : goroutines_) {
            (void)id;
            report_.stats.push_back(GoroutineStat{
                g->id, g->createdTick, g->finishedTick,
                g->state == GoState::Done && !g->unwound});
        }
    }
    report_.finalTimeNs = nowNs_;
    // Drain everyone first, then finalize everyone, in attach order —
    // finalizers may read the full raceMessages list.
    for (Subscriber *s : bus_.subscribers()) {
        std::vector<std::string> msgs = s->drainReports();
        report_.raceMessages.insert(report_.raceMessages.end(),
                                    msgs.begin(), msgs.end());
    }
    for (Subscriber *s : bus_.subscribers())
        s->finalizeRun(report_);
    report_.completed = !report_.globalDeadlock && !report_.panicked &&
                        !report_.livelocked &&
                        !report_.replayDivergence.diverged;
}

RunReport
Scheduler::run(std::function<void()> main)
{
    if (current_ != nullptr) {
        // Loud in release builds too: silently overwriting current_
        // would corrupt the outer run's scheduler slot.
        throw std::logic_error(
            "nested golite::run is not supported: a run is already "
            "active on this thread (start independent runs on their "
            "own threads, e.g. via golite::parallel)");
    }
    if ((options_.recordTrace || options_.replayTrace) &&
        options_.policy != SchedPolicy::Random) {
        // Fifo/Lifo/Pct picks bypass the decision engine, so a trace
        // would miss (or could not drive) the dispatch choices.
        throw std::logic_error(
            "schedule trace record/replay requires SchedPolicy::Random");
    }
    if (options_.replayTrace && options_.chooser) {
        throw std::logic_error(
            "RunOptions::replayTrace and RunOptions::chooser are both "
            "decision drivers; set only one");
    }
    if (options_.siteChooser &&
        (options_.chooser || options_.replayTrace)) {
        throw std::logic_error(
            "RunOptions::siteChooser conflicts with chooser/"
            "replayTrace; set only one decision driver");
    }
    if (options_.siteChooser && options_.policy != SchedPolicy::Random) {
        throw std::logic_error(
            "RunOptions::siteChooser requires SchedPolicy::Random "
            "(other policies bypass the decision engine)");
    }
    if (options_.recordTrace &&
        options_.recordTrace == options_.replayTrace) {
        throw std::logic_error(
            "recordTrace must be a different object than replayTrace");
    }
    if (options_.reapFinished && options_.collectStats) {
        throw std::logic_error(
            "RunOptions::reapFinished destroys the per-goroutine "
            "records RunOptions::collectStats reads; set only one");
    }
    current_ = this;
    report_ = RunReport{};
    replayAt_ = 0;
    if (options_.recordTrace)
        options_.recordTrace->decisions.clear();

    // Wire the bus: caller subscribers in declared order, then the
    // internal recorder and trace sinks.
    bus_.reset();
    for (Subscriber *s : options_.subscribers)
        bus_.attach(s);
    if (options_.recordTrace) {
        recorderSub_ =
            std::make_unique<TraceRecorderSub>(options_.recordTrace);
        bus_.attach(recorderSub_.get());
    }
    if (options_.collectTrace) {
        traceSink_ = std::make_unique<ReportTraceSink>(&report_.trace);
        bus_.attach(traceSink_.get());
    }
    bus_.bindClocks(&report_.ticks, &nowNs_);

    const uint64_t id = nextId_;
    auto g = std::make_unique<Goroutine>(id, std::move(main),
                                         options_.stackBytes);
    g->label = "main";
    if (options_.policy == SchedPolicy::Pct)
        pctPriority_[g.get()] = 1'000'000 + rng_.below(1'000'000);
    main_ = g.get();
    report_.goroutinesCreated = 1;
    bus_.goSpawn(0, id, g->label, /*synthetic=*/true);
    readyq_.push_back(g.get());
    goroutines_.emplace(id, std::move(g));

    if (options_.realTime) {
        // Two-step so realElapsedNs() measures from this instant.
        realStartNs_ = 0;
        realStartNs_ = realElapsedNs();
    }

    while (true) {
        if (options_.realTime) {
            const int64_t t = realElapsedNs();
            if (t > nowNs_)
                nowNs_ = t;
        }
        if (nextDeadline_ <= nowNs_)
            fireDueTimers();

        if (report_.ticks >= options_.maxTicks) {
            report_.livelocked = true;
            break;
        }

        if (readyq_.empty()) {
            if (!idleWait())
                break;
            continue;
        }

        if (mainDone_ && !options_.drainAfterMain)
            break;

        Goroutine *next = pickNext();
        if (aborting_) {
            // Strict replay diverged during the pick; the goroutine
            // was never dispatched, abortAll() unwinds it below.
            break;
        }
        dispatch(next);

        if (aborting_) {
            // A goroutine panicked: crash the program (unwind all).
            break;
        }

        if (options_.reapFinished && next != main_ &&
            next->state == GoState::Done) {
            pctPriority_.erase(next);
            goroutines_.erase(next->id);
        }

        if (ioPoller_ != nullptr &&
            ++sincePoll_ >= options_.ioPollEvery) {
            // Keep sockets progressing while the run queue never
            // empties (the open-loop soak's steady state).
            sincePoll_ = 0;
            if (ioPoller_->ioWaiters() > 0)
                ioPoller_->poll(0);
        }
    }

    // Snapshot the leaks (goroutines parked forever) before tearing
    // the world down, then unwind every live goroutine so that C++
    // destructors run even on abnormal exits.
    for (auto &[gid, gptr] : goroutines_) {
        (void)gid;
        if (gptr->state == GoState::Waiting) {
            report_.leaked.push_back(
                LeakInfo{gptr->id, gptr->reason, gptr->label});
        }
    }
    abortAll();
    finalize();
    // Destroy the goroutines (returning their fiber stacks to this
    // thread's StackPool) before the scheduler can migrate: the pool
    // is thread_local and fibers must be freed where they ran.
    running_ = nullptr;
    main_ = nullptr;
    readyq_.clear();
    pctPriority_.clear();
    goroutines_.clear();
    current_ = nullptr;
    return report_;
}

void
go(std::function<void()> fn)
{
    Scheduler *sched = Scheduler::current();
    assert(sched && "go() outside golite::run");
    sched->spawn(std::move(fn));
}

void
go(std::string label, std::function<void()> fn)
{
    Scheduler *sched = Scheduler::current();
    assert(sched && "go() outside golite::run");
    sched->spawn(std::move(fn), std::move(label));
}

void
yield()
{
    Scheduler *sched = Scheduler::current();
    assert(sched && "yield() outside golite::run");
    sched->yield();
}

namespace
{

/** GOLITE_RUN_ARENA=0 disables scheduler reuse in the free run()
 *  (A/B baseline: construct a Scheduler per run, pre-arena). */
bool
runArenaEnabled()
{
    static const bool enabled = [] {
        const char *env = std::getenv("GOLITE_RUN_ARENA");
        return env == nullptr || env[0] != '0';
    }();
    return enabled;
}

} // namespace

RunReport
run(std::function<void()> main, const RunOptions &options)
{
    // Steady-state sweeps reuse one scheduler per OS thread: reset()
    // rewinds it to the constructed state while keeping container
    // capacity, so per-run setup does no allocation. The nested-run
    // case (current() already set) constructs a throwaway instance
    // whose run() raises the usual logic_error — reusing the arena
    // there would corrupt the active run's state.
    if (runArenaEnabled() && Scheduler::current() == nullptr) {
        thread_local std::unique_ptr<Scheduler> arena;
        if (!arena) {
            arena = std::make_unique<Scheduler>(options);
        } else {
            arena->reset(options);
        }
        return arena->run(std::move(main));
    }
    Scheduler sched(options);
    return sched.run(std::move(main));
}

void
notifyMemFree(const void *addr)
{
    Scheduler *sched = Scheduler::current();
    if (sched != nullptr)
        sched->bus().memFree(addr, sched->runningId());
}

} // namespace golite
