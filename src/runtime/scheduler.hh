/**
 * @file
 * The golite scheduler: cooperative M-goroutine runtime on one OS
 * thread, with a virtual clock, seeded nondeterminism, and the built-in
 * global deadlock detector the paper evaluates in Table 8.
 *
 * All per-run state lives in the Scheduler instance and the active-run
 * slot is thread_local, so independent runs can execute concurrently
 * on separate OS threads (see src/parallel) while each stays
 * deterministic in its seed.
 */

#ifndef GOLITE_RUNTIME_SCHEDULER_HH
#define GOLITE_RUNTIME_SCHEDULER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <memory>
#include <queue>
#include <stdexcept>
#include <vector>

#include "base/rng.hh"
#include "runtime/events.hh"
#include "runtime/goroutine.hh"
#include "runtime/report.hh"
#include "runtime/steal_deque.hh"
#include "runtime/timer_wheel.hh"

namespace golite
{

/**
 * Thrown inside parked goroutines when the run is being torn down
 * (after a global deadlock, panic, or livelock) so that their stacks
 * unwind and C++ destructors run. Never escapes golite::run.
 */
struct RunAborted
{
};

/** Handle to a pending virtual-clock timer. */
class TimerToken
{
  public:
    bool cancelled = false;
    bool fired = false;
    int64_t when = 0;
};

using TimerId = std::shared_ptr<TimerToken>;

/**
 * Readiness source the scheduler consults when goroutines are parked
 * on WaitReason::NetIO (see src/netpoll for the epoll implementation).
 * poll() checks the kernel for ready fds, unparks their waiters, and
 * returns how many goroutines it woke; with no runnable goroutines the
 * scheduler blocks inside poll() up to the next timer deadline instead
 * of declaring a global deadlock.
 */
class IoPoller
{
  public:
    virtual ~IoPoller() = default;

    /** Poll for readiness, waking parked goroutines; blocks up to
     *  @p timeout_ms (0 = nonblocking). Returns goroutines woken. */
    virtual size_t poll(int timeout_ms) = 0;

    /** Number of goroutines currently parked waiting on I/O. */
    virtual size_t ioWaiters() const = 0;
};

/**
 * The runtime core. One Scheduler drives one golite::run; primitives
 * reach it through Scheduler::current().
 */
class Scheduler
{
  public:
    explicit Scheduler(const RunOptions &options);
    ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /**
     * The scheduler driving the current run on the calling thread
     * (null outside runs). The slot is thread_local, so independent
     * runs on different OS threads never see each other.
     */
    static Scheduler *current();

    /**
     * Execute @p main as the main goroutine and run to completion.
     * Throws std::logic_error if a run is already active on this
     * thread (nested runs would corrupt the scheduler slot).
     */
    RunReport run(std::function<void()> main);

    /**
     * Rewind to the freshly-constructed state for @p options so the
     * instance can drive another run. Equivalent to destroying and
     * re-constructing — same RNG stream, same PCT change points, same
     * goroutine ids, same timer behaviour, so a reused scheduler's
     * reports are bit-identical (RunReport::fingerprint) to a fresh
     * one's — but container capacity (goroutine map buckets, ready
     * queue, timer wheel slots, due-timer scratch) is retained, which
     * is what makes steady-state run setup allocation-free. The
     * parallel sweep path (golite::run on a pool worker) reuses one
     * scheduler per thread this way; GOLITE_RUN_ARENA=0 disables the
     * reuse for A/B measurement.
     */
    void reset(const RunOptions &options);

    // --- Goroutine API (called from inside goroutines) -------------

    /** Spawn a goroutine (the `go` statement). */
    void spawn(std::function<void()> fn, std::string label = {});

    /** Yield the processor, staying runnable. */
    void yield();

    /**
     * Park the current goroutine with @p reason on @p wait_object.
     * Returns when another goroutine (or a timer) unparks it.
     * Throws RunAborted during teardown.
     */
    void park(WaitReason reason, const void *wait_object);

    /** Make a parked goroutine runnable again. */
    void unpark(Goroutine *g);

    /**
     * Unpark @p n goroutines in one readyq splice (same per-goroutine
     * GoUnpark events and FIFO order as n unpark() calls, so traces
     * and fingerprints are unchanged). GOLITE_BATCH_WAKE=0 falls back
     * to the one-at-a-time path for A/B measurement.
     */
    void unparkBatch(Goroutine *const *gs, size_t n);

    /** The currently executing goroutine (null in scheduler context).
     *  In parallel mode: the goroutine on the *calling* worker. */
    Goroutine *
    running() const
    {
        if (parallelMode_)
            return tlWorker_ != nullptr ? tlWorker_->running : nullptr;
        return running_;
    }

    /** Id of the currently executing goroutine (0 outside goroutines). */
    uint64_t
    runningId() const
    {
        Goroutine *g = running();
        return g != nullptr ? g->id : 0;
    }

    /**
     * Random context switch with the configured preemption probability.
     * Instrumented shared accesses call this to model the preemption
     * that makes data races manifest.
     */
    void maybePreempt();

    // --- Virtual clock ----------------------------------------------

    /** Current virtual time in nanoseconds. */
    int64_t
    now() const
    {
        return parallelMode_
                   ? nowAtomic_.load(std::memory_order_relaxed)
                   : nowNs_;
    }

    /**
     * Arrange for @p fn to run (in scheduler context; it must not
     * block) when the virtual clock reaches now()+delay_ns.
     */
    TimerId scheduleTimer(int64_t delay_ns, std::function<void()> fn);

    /** Cancel a timer; returns true if it had not fired yet. */
    bool cancelTimer(const TimerId &id);

    /** Park the current goroutine for @p delay_ns of virtual time. */
    void sleep(int64_t delay_ns);

    // --- Network I/O ------------------------------------------------

    /**
     * Attach/detach the run's readiness source (null to detach). One
     * poller per run; netpoll::Poller registers itself here. Not
     * supported in ExecMode::Parallel (the poller's waiter tables are
     * single-thread state; the soak subsystem is deterministic-mode
     * only for now) — attaching one there throws std::logic_error.
     */
    void
    setIoPoller(IoPoller *poller)
    {
        if (parallelMode_ && poller != nullptr) {
            throw std::logic_error(
                "IoPoller is not supported in ExecMode::Parallel");
        }
        ioPoller_ = poller;
    }

    /** The attached readiness source (null when none). */
    IoPoller *ioPoller() const { return ioPoller_; }

    /** True when this run drives its clock from CLOCK_MONOTONIC. */
    bool realTime() const { return options_.realTime; }

    // --- Instrumentation --------------------------------------------

    /**
     * The run's event bus. Primitives emit every concurrency event
     * through it; detectors, probes, and sinks listen (see
     * runtime/events.hh). Emitting with zero matching subscribers is
     * an inline mask test.
     */
    EventBus &bus() { return bus_; }

    /** Scheduler-owned RNG (select uses it for its random choice). */
    Rng &rng() { return rng_; }

    /**
     * Resolve select's shuffle choice among @p n alternatives via the
     * decision engine (trace replay > chooser > seeded RNG). Select is
     * the only primitive with its own choice point; dispatch picks and
     * preemption coins go through decide() internally, so together the
     * three decision kinds cover every bit of runtime nondeterminism —
     * which is what makes a recorded ScheduleTrace an exact replay.
     */
    size_t choose(size_t n);

    /** True while the run is being torn down. */
    bool aborting() const { return aborting_; }

    // --- Parallel mode (ExecMode::Parallel) -------------------------

    /** True when this run executes on the M:N work-stealing pool. */
    bool parallel() const { return parallelMode_; }

    /**
     * Thread team provider for parallel runs: called as
     * fn(nthreads, body) and must invoke body(0) .. body(nthreads-1)
     * concurrently (body(0) on the calling thread), returning when
     * all have. The default spawns nthreads-1 std::threads per run;
     * golite::parallel installs one backed by its persistent worker
     * pool so M:N runs reuse warm threads (see parallel::runParallel).
     * Process-wide; pass nullptr to restore the default.
     */
    using ParallelExecutor = std::function<void(
        unsigned nthreads, const std::function<void(unsigned)> &body)>;

    static void setParallelExecutor(ParallelExecutor executor);

  private:
    friend class SchedGuard;

    /**
     * Per-OS-thread execution context of a parallel run: the worker's
     * scheduler-side ucontext, the goroutine it is currently running,
     * its Chase-Lev deque (owner pops bottom, thieves steal top), and
     * a worker-local RNG for select draws and preemption coins.
     * pendingYield mediates yield's re-enqueue: the yielding
     * goroutine must not become stealable until its stack has
     * actually switched out, so the worker loop (not the goroutine)
     * pushes it after regaining scheduler context.
     */
    struct Worker
    {
        ucontext_t schedContext;
        Goroutine *running = nullptr;
        Goroutine *pendingYield = nullptr;
        StealDeque deque;
        Rng rng{1};
        unsigned index = 0;
    };

    static void fiberEntry(void *arg);

    /** Draw the PCT priority-change points (ctor and reset()); must
     *  run immediately after seeding rng_. */
    void drawPctChangePoints();

    /** Body of a goroutine: run entry, catch panics, mark done. */
    void goroutineBody(Goroutine *g);

    /**
     * The decision engine: every nondeterministic choice (dispatch
     * pick, select arm, preemption coin) resolves here, in priority
     * order replay trace > natural draw (chooser for picks/arms, the
     * preemptProb coin for preemptions), and is appended to
     * RunOptions::recordTrace when recording. Only called with n >= 2.
     * @p cands: Pick's candidate-gid array (length n, null for other
     * kinds); forwarded to RunOptions::siteChooser and the Decision
     * event so explorers can attribute the choice.
     */
    size_t decide(DecisionKind kind, size_t n,
                  const uint64_t *cands = nullptr);

    /** Take the next replayed decision; handles strict divergence. */
    size_t replayPick(DecisionKind kind, size_t n);

    /** "g1[main] g2[worker]" rendering of the ready queue. */
    std::string runnableDescription() const;

    /** Pick the next runnable goroutine per policy. */
    Goroutine *pickNext();

    /** PCT pick: highest priority; demote at change points. */
    Goroutine *pickNextPct();

    /** Switch from scheduler context into @p g until it yields/parks. */
    void dispatch(Goroutine *g);

    /** Fire all timers due at the current virtual time. */
    void fireDueTimers();

    /** CLOCK_MONOTONIC nanoseconds since the run started. */
    int64_t realElapsedNs() const;

    /** Handle an empty run queue: poll I/O, advance or sleep the
     *  clock, or flag the global deadlock. Returns false to end the
     *  run loop. */
    bool idleWait();

    /** Unwind all live goroutines so their destructors run. */
    void abortAll();

    /** Collect leaks/stats into the report at end of run. */
    void finalize();

    // --- Parallel-mode internals ------------------------------------
    //
    // Locking protocol: all scheduling state (goroutine map, state
    // transitions, inject queue, timers, report fields) is guarded by
    // schedMu_. Primitives take it once at their entry via SchedGuard
    // and user code runs without it. Context switches hand the lock
    // across the switch: park/yield suspend *holding* schedMu_, the
    // worker loop releases it after regaining scheduler context, and
    // a dispatcher re-acquires it before resuming a fiber — so no
    // thread can ever resume a fiber whose stack is still switching
    // out, and the fiber-side critical section continues seamlessly
    // on whichever worker resumes it. lockHolder_ (a thread_local)
    // makes SchedGuard reentrant across that handoff.

    /** Reject option combinations parallel mode cannot honor. */
    void validateParallelOptions() const;

    RunReport runParallel(std::function<void()> main);

    /** One worker's scheduling loop (body(i) of the executor). */
    void workerLoop(Worker *w);

    /** Lock-free work search: own deque bottom, then steal sweeps. */
    Goroutine *findWork(Worker *w);

    /** Dispatch @p g on @p w: acquire schedMu_, switch in, handle
     *  the post-switch bookkeeping, release. */
    void runOne(Worker *w, Goroutine *g);

    /**
     * Last-idler step (schedMu_ held, all workers idle, queues
     * empty): stop on mainDone/abort, advance the virtual clock to
     * the next timer (discrete-event semantics survive parallel
     * mode), or declare the global deadlock. False = stop the run.
     */
    bool coordinateIdle();

    void goroutineBodyParallel(Goroutine *g);
    void parkParallel(WaitReason reason, const void *wait_object);
    void unparkParallel(Goroutine *g);
    void yieldParallel();
    void sleepParallel(int64_t delay_ns);

    /** Enqueue a runnable goroutine (schedMu_ held): the calling
     *  worker's own deque, or the inject queue from non-worker
     *  contexts; bumps workSeq_ and wakes an idler. */
    void enqueueLocked(Goroutine *g);

    void lockSched();
    void unlockSched();
    bool schedLockHeld() const { return lockHolder_ == this; }

    unsigned resolveParallelThreads() const;

    RunOptions options_;
    Rng rng_;
    EventBus bus_;
    /** Internal subscriber feeding RunReport::trace
     *  (RunOptions::collectTrace). */
    std::unique_ptr<Subscriber> traceSink_;
    /** Internal subscriber appending Decision events to
     *  RunOptions::recordTrace. */
    std::unique_ptr<Subscriber> recorderSub_;

    std::map<uint64_t, std::unique_ptr<Goroutine>> goroutines_;
    /** PCT state: per-goroutine priorities (higher runs first) and
     *  the pre-drawn priority-change step indices. */
    std::map<const Goroutine *, uint64_t> pctPriority_;
    std::set<uint64_t> pctChangePoints_;
    uint64_t pctLowCounter_ = 0;
    std::deque<Goroutine *> readyq_;
    uint64_t nextId_ = 1;
    Goroutine *running_ = nullptr;
    Goroutine *main_ = nullptr;
    bool mainDone_ = false;
    bool aborting_ = false;

    ucontext_t schedContext_;

    int64_t nowNs_ = 0;
    /** Pending timers (hashed wheel or heap; runtime/timer_wheel.hh). */
    std::unique_ptr<TimerQueue> timerq_;
    /** Exact earliest pending deadline (mirror of
     *  timerq_->nextDeadline(); INT64_MAX when no timers). */
    int64_t nextDeadline_ = INT64_MAX;
    /** Scratch batch for fireDueTimers (reused across calls). */
    std::vector<TimerEntry> dueBuf_;
    uint64_t timerSeq_ = 0;

    IoPoller *ioPoller_ = nullptr;
    /** Dispatches since the last nonblocking I/O poll. */
    uint32_t sincePoll_ = 0;
    /** CLOCK_MONOTONIC at run start (realTime mode). */
    int64_t realStartNs_ = 0;

    /** Next decision to consume from RunOptions::replayTrace. */
    size_t replayAt_ = 0;

    /** Scratch for pickNext's candidate-gid list, filled only when
     *  RunOptions::siteChooser is set (reused across picks). */
    std::vector<uint64_t> pickCands_;

    RunReport report_;

    // --- Parallel-mode state ----------------------------------------

    /** Mirrors options_.execMode == ExecMode::Parallel. */
    bool parallelMode_ = false;
    /** The big scheduler lock (see "Parallel-mode internals"). */
    std::mutex schedMu_;
    /** Wakes idle workers; paired with schedMu_. */
    std::condition_variable_any workCv_;
    /** Worker contexts, one per OS thread (index 0 = the driver). */
    std::vector<std::unique_ptr<Worker>> workers_;
    /** Runnables enqueued outside any worker context (schedMu_). */
    std::deque<Goroutine *> injectq_;
    /** Bumped under schedMu_ whenever work appears (idle predicate). */
    uint64_t workSeq_ = 0;
    unsigned idleCount_ = 0;
    /** Workers drain and exit their loops (schedMu_). */
    bool stopping_ = false;
    /** Parallel-mode dispatch/clock counters: the bus stamps events
     *  from these (EventBus::beginParallel), now() reads nowAtomic_. */
    std::atomic<uint64_t> ticksAtomic_{0};
    std::atomic<int64_t> nowAtomic_{0};

    static thread_local Scheduler *current_;
    /** Worker context of the calling OS thread during parallel runs. */
    static thread_local Worker *tlWorker_;
    /** Scheduler whose schedMu_ this thread currently holds (makes
     *  SchedGuard reentrant and survives the park handoff). */
    static thread_local Scheduler *lockHolder_;
};

/**
 * RAII scheduler lock for primitive entry points (chan, mutex,
 * select, cond, once, waitgroup, pipe, timers). In deterministic mode
 * it is a no-op — one branch, the single-thread fast path is
 * untouched. In parallel mode it acquires the scheduler lock unless
 * this thread already holds it (reentrant via Scheduler::lockHolder_,
 * so primitives can compose: Cond::wait takes the guard and calls
 * Mutex::unlock, whose inner guard no-ops). park() suspends while the
 * guard holds the lock; the lock is handed across the context switch
 * (see scheduler.hh "Parallel-mode internals"), so the guard's
 * destructor may run on a different OS thread than its constructor —
 * always the thread that currently owns the lock.
 */
class SchedGuard
{
  public:
    explicit SchedGuard(Scheduler *sched)
        : sched_(sched != nullptr && sched->parallel() &&
                         Scheduler::lockHolder_ != sched
                     ? sched
                     : nullptr)
    {
        if (sched_ != nullptr)
            sched_->lockSched();
    }

    ~SchedGuard()
    {
        if (sched_ != nullptr)
            sched_->unlockSched();
    }

    SchedGuard(const SchedGuard &) = delete;
    SchedGuard &operator=(const SchedGuard &) = delete;

  private:
    Scheduler *sched_;
};

// --- Free-function API (the golite "language surface") ---------------

/** The `go` statement: spawn fn as a new goroutine. */
void go(std::function<void()> fn);

/** Spawn with a diagnostic label (shows up in leak reports). */
void go(std::string label, std::function<void()> fn);

/** Cooperatively yield (runtime.Gosched). */
void yield();

/**
 * Run @p main as a golite program and return its outcome report.
 * This is the entry point every test, bench, and bug kernel uses.
 */
RunReport run(std::function<void()> main, const RunOptions &options = {});

/**
 * Announce that a tracked object (an instrumented shared variable or
 * a sync primitive usable as a happens-before edge source) is being
 * destroyed. Emits EventKind::MemFree on the active run's bus so
 * detectors can reclaim the address's shadow/clock state; a no-op
 * outside a run (objects owned beyond the run's lifetime).
 */
void notifyMemFree(const void *addr);

} // namespace golite

#endif // GOLITE_RUNTIME_SCHEDULER_HH
