/**
 * @file
 * The golite scheduler: cooperative M-goroutine runtime on one OS
 * thread, with a virtual clock, seeded nondeterminism, and the built-in
 * global deadlock detector the paper evaluates in Table 8.
 *
 * All per-run state lives in the Scheduler instance and the active-run
 * slot is thread_local, so independent runs can execute concurrently
 * on separate OS threads (see src/parallel) while each stays
 * deterministic in its seed.
 */

#ifndef GOLITE_RUNTIME_SCHEDULER_HH
#define GOLITE_RUNTIME_SCHEDULER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <memory>
#include <queue>
#include <vector>

#include "base/rng.hh"
#include "runtime/events.hh"
#include "runtime/goroutine.hh"
#include "runtime/report.hh"
#include "runtime/timer_wheel.hh"

namespace golite
{

/**
 * Thrown inside parked goroutines when the run is being torn down
 * (after a global deadlock, panic, or livelock) so that their stacks
 * unwind and C++ destructors run. Never escapes golite::run.
 */
struct RunAborted
{
};

/** Handle to a pending virtual-clock timer. */
class TimerToken
{
  public:
    bool cancelled = false;
    bool fired = false;
    int64_t when = 0;
};

using TimerId = std::shared_ptr<TimerToken>;

/**
 * Readiness source the scheduler consults when goroutines are parked
 * on WaitReason::NetIO (see src/netpoll for the epoll implementation).
 * poll() checks the kernel for ready fds, unparks their waiters, and
 * returns how many goroutines it woke; with no runnable goroutines the
 * scheduler blocks inside poll() up to the next timer deadline instead
 * of declaring a global deadlock.
 */
class IoPoller
{
  public:
    virtual ~IoPoller() = default;

    /** Poll for readiness, waking parked goroutines; blocks up to
     *  @p timeout_ms (0 = nonblocking). Returns goroutines woken. */
    virtual size_t poll(int timeout_ms) = 0;

    /** Number of goroutines currently parked waiting on I/O. */
    virtual size_t ioWaiters() const = 0;
};

/**
 * The runtime core. One Scheduler drives one golite::run; primitives
 * reach it through Scheduler::current().
 */
class Scheduler
{
  public:
    explicit Scheduler(const RunOptions &options);
    ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /**
     * The scheduler driving the current run on the calling thread
     * (null outside runs). The slot is thread_local, so independent
     * runs on different OS threads never see each other.
     */
    static Scheduler *current();

    /**
     * Execute @p main as the main goroutine and run to completion.
     * Throws std::logic_error if a run is already active on this
     * thread (nested runs would corrupt the scheduler slot).
     */
    RunReport run(std::function<void()> main);

    /**
     * Rewind to the freshly-constructed state for @p options so the
     * instance can drive another run. Equivalent to destroying and
     * re-constructing — same RNG stream, same PCT change points, same
     * goroutine ids, same timer behaviour, so a reused scheduler's
     * reports are bit-identical (RunReport::fingerprint) to a fresh
     * one's — but container capacity (goroutine map buckets, ready
     * queue, timer wheel slots, due-timer scratch) is retained, which
     * is what makes steady-state run setup allocation-free. The
     * parallel sweep path (golite::run on a pool worker) reuses one
     * scheduler per thread this way; GOLITE_RUN_ARENA=0 disables the
     * reuse for A/B measurement.
     */
    void reset(const RunOptions &options);

    // --- Goroutine API (called from inside goroutines) -------------

    /** Spawn a goroutine (the `go` statement). */
    void spawn(std::function<void()> fn, std::string label = {});

    /** Yield the processor, staying runnable. */
    void yield();

    /**
     * Park the current goroutine with @p reason on @p wait_object.
     * Returns when another goroutine (or a timer) unparks it.
     * Throws RunAborted during teardown.
     */
    void park(WaitReason reason, const void *wait_object);

    /** Make a parked goroutine runnable again. */
    void unpark(Goroutine *g);

    /**
     * Unpark @p n goroutines in one readyq splice (same per-goroutine
     * GoUnpark events and FIFO order as n unpark() calls, so traces
     * and fingerprints are unchanged). GOLITE_BATCH_WAKE=0 falls back
     * to the one-at-a-time path for A/B measurement.
     */
    void unparkBatch(Goroutine *const *gs, size_t n);

    /** The currently executing goroutine (null in scheduler context). */
    Goroutine *running() const { return running_; }

    /** Id of the currently executing goroutine (0 outside goroutines). */
    uint64_t runningId() const { return running_ ? running_->id : 0; }

    /**
     * Random context switch with the configured preemption probability.
     * Instrumented shared accesses call this to model the preemption
     * that makes data races manifest.
     */
    void maybePreempt();

    // --- Virtual clock ----------------------------------------------

    /** Current virtual time in nanoseconds. */
    int64_t now() const { return nowNs_; }

    /**
     * Arrange for @p fn to run (in scheduler context; it must not
     * block) when the virtual clock reaches now()+delay_ns.
     */
    TimerId scheduleTimer(int64_t delay_ns, std::function<void()> fn);

    /** Cancel a timer; returns true if it had not fired yet. */
    bool cancelTimer(const TimerId &id);

    /** Park the current goroutine for @p delay_ns of virtual time. */
    void sleep(int64_t delay_ns);

    // --- Network I/O ------------------------------------------------

    /**
     * Attach/detach the run's readiness source (null to detach). One
     * poller per run; netpoll::Poller registers itself here.
     */
    void setIoPoller(IoPoller *poller) { ioPoller_ = poller; }

    /** The attached readiness source (null when none). */
    IoPoller *ioPoller() const { return ioPoller_; }

    /** True when this run drives its clock from CLOCK_MONOTONIC. */
    bool realTime() const { return options_.realTime; }

    // --- Instrumentation --------------------------------------------

    /**
     * The run's event bus. Primitives emit every concurrency event
     * through it; detectors, probes, and sinks listen (see
     * runtime/events.hh). Emitting with zero matching subscribers is
     * an inline mask test.
     */
    EventBus &bus() { return bus_; }

    /** Scheduler-owned RNG (select uses it for its random choice). */
    Rng &rng() { return rng_; }

    /**
     * Resolve select's shuffle choice among @p n alternatives via the
     * decision engine (trace replay > chooser > seeded RNG). Select is
     * the only primitive with its own choice point; dispatch picks and
     * preemption coins go through decide() internally, so together the
     * three decision kinds cover every bit of runtime nondeterminism —
     * which is what makes a recorded ScheduleTrace an exact replay.
     */
    size_t choose(size_t n);

    /** True while the run is being torn down. */
    bool aborting() const { return aborting_; }

  private:
    static void fiberEntry(void *arg);

    /** Draw the PCT priority-change points (ctor and reset()); must
     *  run immediately after seeding rng_. */
    void drawPctChangePoints();

    /** Body of a goroutine: run entry, catch panics, mark done. */
    void goroutineBody(Goroutine *g);

    /**
     * The decision engine: every nondeterministic choice (dispatch
     * pick, select arm, preemption coin) resolves here, in priority
     * order replay trace > natural draw (chooser for picks/arms, the
     * preemptProb coin for preemptions), and is appended to
     * RunOptions::recordTrace when recording. Only called with n >= 2.
     * @p cands: Pick's candidate-gid array (length n, null for other
     * kinds); forwarded to RunOptions::siteChooser and the Decision
     * event so explorers can attribute the choice.
     */
    size_t decide(DecisionKind kind, size_t n,
                  const uint64_t *cands = nullptr);

    /** Take the next replayed decision; handles strict divergence. */
    size_t replayPick(DecisionKind kind, size_t n);

    /** "g1[main] g2[worker]" rendering of the ready queue. */
    std::string runnableDescription() const;

    /** Pick the next runnable goroutine per policy. */
    Goroutine *pickNext();

    /** PCT pick: highest priority; demote at change points. */
    Goroutine *pickNextPct();

    /** Switch from scheduler context into @p g until it yields/parks. */
    void dispatch(Goroutine *g);

    /** Fire all timers due at the current virtual time. */
    void fireDueTimers();

    /** CLOCK_MONOTONIC nanoseconds since the run started. */
    int64_t realElapsedNs() const;

    /** Handle an empty run queue: poll I/O, advance or sleep the
     *  clock, or flag the global deadlock. Returns false to end the
     *  run loop. */
    bool idleWait();

    /** Unwind all live goroutines so their destructors run. */
    void abortAll();

    /** Collect leaks/stats into the report at end of run. */
    void finalize();

    RunOptions options_;
    Rng rng_;
    EventBus bus_;
    /** Internal subscriber feeding RunReport::trace
     *  (RunOptions::collectTrace). */
    std::unique_ptr<Subscriber> traceSink_;
    /** Internal subscriber appending Decision events to
     *  RunOptions::recordTrace. */
    std::unique_ptr<Subscriber> recorderSub_;

    std::map<uint64_t, std::unique_ptr<Goroutine>> goroutines_;
    /** PCT state: per-goroutine priorities (higher runs first) and
     *  the pre-drawn priority-change step indices. */
    std::map<const Goroutine *, uint64_t> pctPriority_;
    std::set<uint64_t> pctChangePoints_;
    uint64_t pctLowCounter_ = 0;
    std::deque<Goroutine *> readyq_;
    uint64_t nextId_ = 1;
    Goroutine *running_ = nullptr;
    Goroutine *main_ = nullptr;
    bool mainDone_ = false;
    bool aborting_ = false;

    ucontext_t schedContext_;

    int64_t nowNs_ = 0;
    /** Pending timers (hashed wheel or heap; runtime/timer_wheel.hh). */
    std::unique_ptr<TimerQueue> timerq_;
    /** Exact earliest pending deadline (mirror of
     *  timerq_->nextDeadline(); INT64_MAX when no timers). */
    int64_t nextDeadline_ = INT64_MAX;
    /** Scratch batch for fireDueTimers (reused across calls). */
    std::vector<TimerEntry> dueBuf_;
    uint64_t timerSeq_ = 0;

    IoPoller *ioPoller_ = nullptr;
    /** Dispatches since the last nonblocking I/O poll. */
    uint32_t sincePoll_ = 0;
    /** CLOCK_MONOTONIC at run start (realTime mode). */
    int64_t realStartNs_ = 0;

    /** Next decision to consume from RunOptions::replayTrace. */
    size_t replayAt_ = 0;

    /** Scratch for pickNext's candidate-gid list, filled only when
     *  RunOptions::siteChooser is set (reused across picks). */
    std::vector<uint64_t> pickCands_;

    RunReport report_;

    static thread_local Scheduler *current_;
};

// --- Free-function API (the golite "language surface") ---------------

/** The `go` statement: spawn fn as a new goroutine. */
void go(std::function<void()> fn);

/** Spawn with a diagnostic label (shows up in leak reports). */
void go(std::string label, std::function<void()> fn);

/** Cooperatively yield (runtime.Gosched). */
void yield();

/**
 * Run @p main as a golite program and return its outcome report.
 * This is the entry point every test, bench, and bug kernel uses.
 */
RunReport run(std::function<void()> main, const RunOptions &options = {});

/**
 * Announce that a tracked object (an instrumented shared variable or
 * a sync primitive usable as a happens-before edge source) is being
 * destroyed. Emits EventKind::MemFree on the active run's bus so
 * detectors can reclaim the address's shadow/clock state; a no-op
 * outside a run (objects owned beyond the run's lifetime).
 */
void notifyMemFree(const void *addr);

} // namespace golite

#endif // GOLITE_RUNTIME_SCHEDULER_HH
