/**
 * @file
 * The runtime event bus: every concurrency-relevant event the runtime
 * produces — goroutine lifecycle, dispatch picks, select draws,
 * preemption coins, chan/mutex/once/waitgroup operations, and
 * shadow-memory accesses — flows through one typed RuntimeEvent
 * stream that subscribers tap with declared event masks.
 *
 * This replaces the three parallel instrumentation pathways of the
 * earlier design (RaceHooks, DeadlockHooks, and the hand-wired
 * ScheduleTrace recording): the scheduler and the primitives emit
 * each event exactly once, and the bus fans it out only to the
 * subscribers whose mask includes that kind. The race detector
 * (src/race), the wait-for-graph detector (src/waitgraph), the vet
 * checkers (src/vet), the fuzzer's coverage probes (src/fuzz), the
 * schedule-trace recorder, and the observability sinks (src/obs) are
 * all ordinary subscribers.
 *
 * Overhead contract (measured by bench_race_overhead):
 *  - zero subscribers for a kind: emitting is an inline mask test —
 *    one load, one AND, one predicted branch, no event construction;
 *  - shadow-memory accesses (the hot path) dispatch through the
 *    dedicated Subscriber::onMemAccess virtual, so a subscribed race
 *    detector pays one virtual call exactly as it did when it was
 *    hand-wired, never a RuntimeEvent pack + unpack;
 *  - every other kind packs one RuntimeEvent on the stack and makes
 *    one onEvent virtual call per matching subscriber.
 *
 * GOLITE_EVENT_BUS=0 is the transition escape hatch: it disables the
 * per-kind mask filtering and broadcasts every event to every
 * subscriber (the old MultiHooks-style fan-out), for A/B measurement
 * of the masked dispatch. Results are identical — subscribers ignore
 * kinds outside their mask — only the dispatch cost changes.
 */

#ifndef GOLITE_RUNTIME_EVENTS_HH
#define GOLITE_RUNTIME_EVENTS_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/goroutine.hh"
#include "runtime/sched_trace.hh"

namespace golite
{

struct RunReport;

/** One channel operation a blocked select is parked on. */
struct SelectWait
{
    const void *chan = nullptr; ///< the channel's shared state
    bool isSend = false;        ///< send case (else receive)
};

/** Kind of one runtime event (see DESIGN.md "Instrumentation bus"
 *  for the full payload taxonomy). */
enum class EventKind : uint8_t
{
    // Goroutine lifecycle & scheduling.
    GoSpawn,      ///< created (gid=child, a=parent, name; flag=main)
    GoFinish,     ///< goroutine ended (flag = teardown unwind)
    GoPark,       ///< goroutine blocked (reason, obj)
    GoUnpark,     ///< parked goroutine made runnable again
    GoDispatch,   ///< goroutine starts a scheduling slice (name)
    GoDesched,    ///< slice ended; control returned to the scheduler
    Decision,     ///< nondeterministic choice (decision, a=n, b=pick)
    ClockAdvance, ///< virtual clock jumped to a timer (b=new time ns)
    // Synchronization & memory.
    SyncAcquire,  ///< happens-before edge acquired from obj
    SyncRelease,  ///< clock published into obj
    LockRequest,  ///< about to block on a lock (flag = write)
    LockAcquire,  ///< lock now held (flag = write)
    LockRelease,  ///< lock released (flag = was write)
    WgDelta,      ///< WaitGroup counter changed (b=delta, a=count)
    WgWait,       ///< goroutine entered WaitGroup::wait
    SelectBlock,  ///< select about to park (waits = its cases)
    ChanOp,       ///< channel operation (chanOp = which)
    OnceOp,       ///< Once::doOnce completed (flag = ran the fn)
    MemRead,      ///< instrumented shared read (obj=addr, label)
    MemWrite,     ///< instrumented shared write (obj=addr, label)
    MemFree,      ///< tracked object destroyed (obj=addr); detectors
                  ///< drop its shadow/sync state (race detector
                  ///< shadow reclamation)
};

/** Number of EventKind values (for the exhaustiveness test). */
constexpr int kEventKindCount =
    static_cast<int>(EventKind::MemFree) + 1;

const char *eventKindName(EventKind kind);

/** Bitmask over EventKind values. */
using EventMask = uint32_t;

constexpr EventMask
eventBit(EventKind kind)
{
    return EventMask{1} << static_cast<int>(kind);
}

/** Every event kind. */
constexpr EventMask kEventMaskAll =
    (EventMask{1} << kEventKindCount) - 1;

/** Channel operation subtypes for EventKind::ChanOp. */
enum class ChanOpKind : uint8_t
{
    Send,    ///< blocking send entered
    Recv,    ///< blocking receive entered
    Close,   ///< channel closed
    TrySend, ///< non-blocking send attempted (select poll / trySend)
    TryRecv, ///< non-blocking receive attempted
};

/** Number of ChanOpKind values (for the exhaustiveness test). */
constexpr int kChanOpKindCount =
    static_cast<int>(ChanOpKind::TryRecv) + 1;

const char *chanOpKindName(ChanOpKind op);

/**
 * One typed runtime event. Only the fields the kind's taxonomy names
 * are meaningful; the rest hold their defaults. Pointer fields
 * (name, waits) reference storage owned by the emitter and are valid
 * only for the duration of the onEvent call.
 */
struct RuntimeEvent
{
    EventKind kind = EventKind::GoSpawn;
    /** is_write / was_write (locks, mem), teardown (GoFinish),
     *  ran-the-fn (OnceOp). */
    bool flag = false;
    WaitReason reason = WaitReason::None;       ///< GoPark
    DecisionKind decision = DecisionKind::Pick; ///< Decision
    ChanOpKind chanOp = ChanOpKind::Send;       ///< ChanOp
    /** Acting goroutine (0 = scheduler context / run setup). */
    uint64_t gid = 0;
    /** Kind-specific: parent gid (GoSpawn), alternatives (Decision),
     *  new WaitGroup count (WgDelta). */
    uint64_t a = 0;
    /** Kind-specific signed payload: pick (Decision), delta
     *  (WgDelta), new virtual time ns (ClockAdvance). */
    int64_t b = 0;
    /** Sync object / lock / channel state / shadow address. */
    const void *obj = nullptr;
    /** Static label of an instrumented access (MemRead/MemWrite). */
    const char *label = nullptr;
    /** Goroutine label (GoSpawn, GoDispatch). */
    const std::string *name = nullptr;
    /** Blocked select's cases (SelectBlock). */
    const std::vector<SelectWait> *waits = nullptr;
    /** Decision with DecisionKind::Pick only: the runnable goroutine
     *  each choice index would dispatch (length = a). Populated only
     *  when RunOptions::siteChooser is set (the systematic explorer);
     *  null otherwise so plain runs never pay for the copy-out. */
    const uint64_t *candidates = nullptr;
    /** Dispatch tick at emission (stamped by the bus). */
    uint64_t tick = 0;
    /** Virtual time at emission (stamped by the bus). */
    int64_t timeNs = 0;
};

/**
 * A bus subscriber: a detector, coverage probe, recorder, or
 * observability sink. Declare the event kinds you consume in
 * eventMask(); with masked dispatch (the default) onEvent is called
 * only for those kinds, but implementations must still ignore
 * unexpected kinds — the GOLITE_EVENT_BUS=0 escape hatch broadcasts
 * everything.
 */
class Subscriber
{
  public:
    virtual ~Subscriber() = default;

    /** Kinds this subscriber consumes (OR of eventBit values). */
    virtual EventMask eventMask() const = 0;

    /** One event whose kind matches the mask. */
    virtual void onEvent(const RuntimeEvent &ev) = 0;

    /**
     * Hot-path specialization for shadow-memory accesses: called
     * instead of onEvent for MemRead/MemWrite so detectors avoid a
     * RuntimeEvent round-trip. The default packs the event and
     * forwards to onEvent, so generic sinks need not care.
     */
    virtual void
    onMemAccess(const void *addr, const char *label, uint64_t gid,
                bool is_write)
    {
        RuntimeEvent ev;
        ev.kind = is_write ? EventKind::MemWrite : EventKind::MemRead;
        ev.flag = is_write;
        ev.gid = gid;
        ev.obj = addr;
        ev.label = label;
        onEvent(ev);
    }

    /**
     * Whether this subscriber tolerates ExecMode::Parallel emission.
     * In a parallel run, non-mem events are serialized under the
     * bus's merge mutex (so any subscriber is safe for those), but
     * MemRead/MemWrite fan out lock-free from every worker thread at
     * once — a mem-lane subscriber must therefore synchronize its own
     * state (race::Sharded does; the single-thread race::Detector
     * does not). golite::run rejects parallel runs whose mem-lane
     * subscribers return false here.
     */
    virtual bool parallelSafe() const { return false; }

    /** Human-readable reports accumulated so far; cleared by the
     *  call. Collected into RunReport::raceMessages at end of run. */
    virtual std::vector<std::string> drainReports() { return {}; }

    /** The run ended; append structured results to the report. */
    virtual void finalizeRun(RunReport &report) { (void)report; }
};

/**
 * The fan-out core. One EventBus lives inside each Scheduler; the
 * scheduler and the primitives emit through the inline helpers below,
 * and attached subscribers receive the kinds their mask declares.
 * Not thread-safe — like the Scheduler that owns it, a bus belongs to
 * exactly one run on one OS thread.
 */
class EventBus
{
  public:
    EventBus();

    /** Global dispatch mode (GOLITE_EVENT_BUS != "0": masked). */
    static bool maskedDispatch();

    /**
     * Attach a subscriber for the rest of the run. Events are
     * delivered in attach order; drainReports/finalizeRun are
     * collected in the same order at end of run.
     */
    void attach(Subscriber *sub);

    /** Detach everyone (the scheduler re-attaches at each run). */
    void reset();

    /** All subscribers, in attach order. */
    const std::vector<Subscriber *> &subscribers() const
    {
        return subs_;
    }

    /** True when at least one subscriber wants @p kind. */
    bool
    wants(EventKind kind) const
    {
        return (active_ & eventBit(kind)) != 0;
    }

    /** Point the bus at the counters it stamps into events. */
    void
    bindClocks(const uint64_t *tick, const int64_t *now)
    {
        tick_ = tick;
        now_ = now;
    }

    /**
     * Enter parallel emission for the duration of an
     * ExecMode::Parallel run: every publish() (all non-mem kinds)
     * serializes under an internal merge mutex, so the subscriber-
     * visible event stream is a total order consistent with the
     * runtime's real synchronization order (emitters hold the
     * scheduler lock, so merge order = schedule order). Tick/time
     * stamps come from the given atomics. memRead/memWrite stay
     * lock-free — that lane's subscribers are vetted by
     * Subscriber::parallelSafe. wants() is untouched: the subscriber
     * set is frozen before workers start, so it stays a single load.
     */
    void
    beginParallel(const std::atomic<uint64_t> *tick,
                  const std::atomic<int64_t> *now)
    {
        parallel_ = true;
        atomicTick_ = tick;
        atomicNow_ = now;
    }

    /** Leave parallel emission (workers joined; teardown is serial
     *  but keeps the atomic stamps until the run finishes). */
    void
    endParallel()
    {
        parallel_ = false;
        atomicTick_ = nullptr;
        atomicNow_ = nullptr;
    }

    /** Fan @p ev out to the matching subscribers (stamps tick/time).
     *  Callers gate on wants() so unobserved events cost one test. */
    void
    publish(RuntimeEvent &ev)
    {
        if (parallel_) {
            publishParallel(ev);
            return;
        }
        ev.tick = tick_ ? *tick_ : 0;
        ev.timeNs = now_ ? *now_ : 0;
        for (Subscriber *s : listFor(ev.kind))
            s->onEvent(ev);
    }

    // --- Typed emit helpers (the runtime's entire emission API) ----

    /** @p synthetic marks the run's main-goroutine registration —
     *  not a `go` statement (RunReport::trace omits it). */
    void
    goSpawn(uint64_t parent, uint64_t child, const std::string &label,
            bool synthetic = false)
    {
        if (!wants(EventKind::GoSpawn))
            return;
        RuntimeEvent ev;
        ev.kind = EventKind::GoSpawn;
        ev.gid = child;
        ev.a = parent;
        ev.name = &label;
        ev.flag = synthetic;
        publish(ev);
    }

    void
    goFinish(uint64_t gid, bool teardown)
    {
        if (!wants(EventKind::GoFinish))
            return;
        RuntimeEvent ev;
        ev.kind = EventKind::GoFinish;
        ev.gid = gid;
        ev.flag = teardown;
        publish(ev);
    }

    void
    goPark(uint64_t gid, WaitReason reason, const void *obj)
    {
        if (!wants(EventKind::GoPark))
            return;
        RuntimeEvent ev;
        ev.kind = EventKind::GoPark;
        ev.gid = gid;
        ev.reason = reason;
        ev.obj = obj;
        publish(ev);
    }

    void
    goUnpark(uint64_t gid)
    {
        if (!wants(EventKind::GoUnpark))
            return;
        RuntimeEvent ev;
        ev.kind = EventKind::GoUnpark;
        ev.gid = gid;
        publish(ev);
    }

    void
    goDispatch(uint64_t gid, const std::string &label)
    {
        if (!wants(EventKind::GoDispatch))
            return;
        RuntimeEvent ev;
        ev.kind = EventKind::GoDispatch;
        ev.gid = gid;
        ev.name = &label;
        publish(ev);
    }

    void
    goDesched(uint64_t gid)
    {
        if (!wants(EventKind::GoDesched))
            return;
        RuntimeEvent ev;
        ev.kind = EventKind::GoDesched;
        ev.gid = gid;
        publish(ev);
    }

    /** @p candidates: Pick's runnable-gid list (null when unknown —
     *  see RuntimeEvent::candidates). */
    void
    decision(DecisionKind kind, size_t alternatives, size_t pick,
             uint64_t gid, const uint64_t *candidates = nullptr)
    {
        if (!wants(EventKind::Decision))
            return;
        RuntimeEvent ev;
        ev.kind = EventKind::Decision;
        ev.decision = kind;
        ev.gid = gid;
        ev.a = alternatives;
        ev.b = static_cast<int64_t>(pick);
        ev.candidates = candidates;
        publish(ev);
    }

    void
    clockAdvance(int64_t now_ns)
    {
        if (!wants(EventKind::ClockAdvance))
            return;
        RuntimeEvent ev;
        ev.kind = EventKind::ClockAdvance;
        ev.b = now_ns;
        publish(ev);
    }

    void
    acquire(const void *obj, uint64_t gid)
    {
        if (!wants(EventKind::SyncAcquire))
            return;
        RuntimeEvent ev;
        ev.kind = EventKind::SyncAcquire;
        ev.gid = gid;
        ev.obj = obj;
        publish(ev);
    }

    void
    release(const void *obj, uint64_t gid)
    {
        if (!wants(EventKind::SyncRelease))
            return;
        RuntimeEvent ev;
        ev.kind = EventKind::SyncRelease;
        ev.gid = gid;
        ev.obj = obj;
        publish(ev);
    }

    void
    lockRequest(const void *lock, uint64_t gid, bool is_write)
    {
        if (!wants(EventKind::LockRequest))
            return;
        RuntimeEvent ev;
        ev.kind = EventKind::LockRequest;
        ev.gid = gid;
        ev.obj = lock;
        ev.flag = is_write;
        publish(ev);
    }

    void
    lockAcquire(const void *lock, uint64_t gid, bool is_write)
    {
        if (!wants(EventKind::LockAcquire))
            return;
        RuntimeEvent ev;
        ev.kind = EventKind::LockAcquire;
        ev.gid = gid;
        ev.obj = lock;
        ev.flag = is_write;
        publish(ev);
    }

    void
    lockRelease(const void *lock, uint64_t gid, bool was_write)
    {
        if (!wants(EventKind::LockRelease))
            return;
        RuntimeEvent ev;
        ev.kind = EventKind::LockRelease;
        ev.gid = gid;
        ev.obj = lock;
        ev.flag = was_write;
        publish(ev);
    }

    void
    wgDelta(const void *wg, uint64_t gid, int delta, int count)
    {
        if (!wants(EventKind::WgDelta))
            return;
        RuntimeEvent ev;
        ev.kind = EventKind::WgDelta;
        ev.gid = gid;
        ev.obj = wg;
        ev.a = static_cast<uint64_t>(count);
        ev.b = delta;
        publish(ev);
    }

    void
    wgWait(const void *wg, uint64_t gid)
    {
        if (!wants(EventKind::WgWait))
            return;
        RuntimeEvent ev;
        ev.kind = EventKind::WgWait;
        ev.gid = gid;
        ev.obj = wg;
        publish(ev);
    }

    void
    selectBlock(uint64_t gid, const std::vector<SelectWait> &waits)
    {
        if (!wants(EventKind::SelectBlock))
            return;
        RuntimeEvent ev;
        ev.kind = EventKind::SelectBlock;
        ev.gid = gid;
        ev.waits = &waits;
        publish(ev);
    }

    void
    chanOp(const void *chan, uint64_t gid, ChanOpKind op)
    {
        if (!wants(EventKind::ChanOp))
            return;
        RuntimeEvent ev;
        ev.kind = EventKind::ChanOp;
        ev.gid = gid;
        ev.obj = chan;
        ev.chanOp = op;
        publish(ev);
    }

    void
    onceOp(const void *once, uint64_t gid, bool ran)
    {
        if (!wants(EventKind::OnceOp))
            return;
        RuntimeEvent ev;
        ev.kind = EventKind::OnceOp;
        ev.gid = gid;
        ev.obj = once;
        ev.flag = ran;
        publish(ev);
    }

    /** Hot path: shadow-memory access via onMemAccess (no packing). */
    void
    memRead(const void *addr, const char *label, uint64_t gid)
    {
        if (!wants(EventKind::MemRead))
            return;
        for (Subscriber *s : listFor(EventKind::MemRead))
            s->onMemAccess(addr, label, gid, false);
    }

    void
    memWrite(const void *addr, const char *label, uint64_t gid)
    {
        if (!wants(EventKind::MemWrite))
            return;
        for (Subscriber *s : listFor(EventKind::MemWrite))
            s->onMemAccess(addr, label, gid, true);
    }

    /** A tracked object (shadowed address or sync object) was
     *  destroyed; detectors reclaim its state. gid 0 = destroyed
     *  outside any goroutine (run setup/teardown). */
    void
    memFree(const void *addr, uint64_t gid)
    {
        if (!wants(EventKind::MemFree))
            return;
        RuntimeEvent ev;
        ev.kind = EventKind::MemFree;
        ev.gid = gid;
        ev.obj = addr;
        publish(ev);
    }

  private:
    /** Receivers of @p kind: the mask-filtered per-kind list, or
     *  every subscriber under the GOLITE_EVENT_BUS=0 broadcast. */
    const std::vector<Subscriber *> &
    listFor(EventKind kind) const
    {
        return masked_ ? byKind_[static_cast<int>(kind)] : subs_;
    }

    /** Merge-mutex fan-out for ExecMode::Parallel (see
     *  beginParallel). Out of line: the serial publish path pays one
     *  predicted branch, nothing else. */
    void
    publishParallel(RuntimeEvent &ev)
    {
        std::lock_guard<std::mutex> lock(mergeMu_);
        ev.tick = atomicTick_
                      ? atomicTick_->load(std::memory_order_relaxed)
                      : 0;
        ev.timeNs = atomicNow_
                        ? atomicNow_->load(std::memory_order_relaxed)
                        : 0;
        for (Subscriber *s : listFor(ev.kind))
            s->onEvent(ev);
    }

    std::vector<Subscriber *> subs_;
    std::vector<Subscriber *> byKind_[kEventKindCount];
    /** Union of subscriber masks (all kinds when broadcasting with
     *  at least one subscriber attached). */
    EventMask active_ = 0;
    bool masked_ = true;
    const uint64_t *tick_ = nullptr;
    const int64_t *now_ = nullptr;
    /** Parallel emission (beginParallel/endParallel). */
    bool parallel_ = false;
    const std::atomic<uint64_t> *atomicTick_ = nullptr;
    const std::atomic<int64_t> *atomicNow_ = nullptr;
    /** Serializes publish() in parallel mode (leaf lock: emitters
     *  already hold the scheduler lock). */
    std::mutex mergeMu_;
};

} // namespace golite

#endif // GOLITE_RUNTIME_EVENTS_HH
