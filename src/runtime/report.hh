/**
 * @file
 * Options controlling a golite run and the structured outcome report.
 *
 * The RunReport is the observable the study apparatus consumes: it says
 * whether a program completed, globally deadlocked (the condition Go's
 * built-in detector reports), panicked, leaked goroutines (the blocking
 * condition Go's detector misses), or raced.
 */

#ifndef GOLITE_RUNTIME_REPORT_HH
#define GOLITE_RUNTIME_REPORT_HH

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "runtime/goroutine.hh"
#include "runtime/sched_trace.hh"

namespace golite
{

class Subscriber;

/** Scheduler dispatch policy. */
enum class SchedPolicy
{
    Random, ///< uniformly random runnable goroutine (default; Go-like)
    Fifo,   ///< run queue is FIFO
    Lifo,   ///< run queue is LIFO (child-first, gccgo-like bias)
    /**
     * Probabilistic Concurrency Testing (Burckhardt et al., ASPLOS
     * 2010): random per-goroutine priorities plus pctDepth-1 random
     * priority-change points. Gives a probabilistic guarantee of
     * hitting any bug of preemption depth <= pctDepth; compared
     * against Random in bench_ablation_sched.
     */
    Pct,
};

/** Printable name of a scheduling policy. */
const char *schedPolicyName(SchedPolicy policy);

/**
 * How a run executes its goroutines (RunOptions::execMode).
 *
 * Deterministic is the record/replay oracle: one OS thread
 * multiplexes every goroutine, all nondeterminism funnels through the
 * seeded decision engine, and equal seeds give bit-identical
 * RunReport fingerprints. Parallel is the M:N mode: a work-stealing
 * pool of OS threads executes the same goroutines with real
 * preemption — schedules are genuinely nondeterministic, so traces,
 * replay, and fingerprint comparison are unavailable, and verdicts
 * are established over seed batches instead of single runs (the
 * corpus differential in tests/parallel_mode_test.cc holds the two
 * modes against each other).
 */
enum class ExecMode
{
    Deterministic, ///< single-thread fiber multiplexing (the oracle)
    Parallel,      ///< M:N work-stealing pool, real preemption
};

/** Printable name of an execution mode. */
const char *execModeName(ExecMode mode);

/**
 * Metadata for one nondeterministic choice point, handed to
 * RunOptions::siteChooser (and mirrored into the Decision event's
 * candidate list) so a schedule explorer can *attribute* decisions:
 * which goroutine a dispatch pick would run, which goroutine is
 * making a select draw or taking a preemption coin. The systematic
 * explorer's DPOR dependence oracle is the consumer (src/explore).
 */
struct ChoiceSite
{
    DecisionKind kind = DecisionKind::Pick;
    /** Alternatives offered (always >= 2). */
    size_t alternatives = 0;
    /** Acting goroutine: the selecting/preempting goroutine, or 0
     *  for dispatch picks (made in scheduler context). */
    uint64_t gid = 0;
    /**
     * DecisionKind::Pick only: the runnable goroutine each choice
     * index would dispatch, length == alternatives (null for other
     * kinds). Valid only for the duration of the call.
     */
    const uint64_t *candidates = nullptr;
};

/** Options for one golite::run. */
struct RunOptions
{
    /** Seed for all scheduling/select randomness. */
    uint64_t seed = 1;

    /** Dispatch policy. */
    SchedPolicy policy = SchedPolicy::Random;

    /**
     * Execution mode (see ExecMode). Parallel mode conflicts with
     * trace record/replay, choosers, realTime, and collectTrace —
     * every feature whose contract is a deterministic total order —
     * and requires any subscriber that listens to MemRead/MemWrite to
     * be parallel-safe (Subscriber::parallelSafe; race::Sharded
     * qualifies, race::Detector does not). golite::run throws
     * std::logic_error on any violation.
     */
    ExecMode execMode = ExecMode::Deterministic;

    /**
     * OS threads for ExecMode::Parallel (0 = min(hardware
     * concurrency, 8), at least 2). Ignored in deterministic mode.
     */
    unsigned parallelThreads = 0;

    /**
     * Probability of a context switch at each instrumented shared-memory
     * access (race::Shared). Models preemption between plain accesses.
     */
    double preemptProb = 0.25;

    /**
     * After main returns, keep dispatching runnable goroutines until
     * only parked ones remain, then report those as leaked. When false,
     * the run stops the instant main returns (strict Go semantics).
     */
    bool drainAfterMain = true;

    /** Dispatch budget; exceeding it marks the run livelocked. */
    uint64_t maxTicks = 2'000'000;

    /** PCT bug depth d (only for SchedPolicy::Pct): d-1 priority
     *  change points are scattered over the expected run length. */
    int pctDepth = 3;

    /** Expected run length in dispatches for PCT change points. */
    uint64_t pctExpectedSteps = 512;

    /**
     * Override for every nondeterministic choice (scheduler pick and
     * select shuffle): called with the number of alternatives, must
     * return an index < n. Null = draw from the seeded RNG. The
     * systematic explorer (src/explore) drives runs through this to
     * enumerate schedules exhaustively.
     */
    std::function<size_t(size_t)> chooser;

    /**
     * Attributed variant of chooser: receives the full ChoiceSite
     * (decision kind, acting goroutine, Pick candidate gids) and —
     * unlike chooser — also the preemption coin, so a systematic
     * explorer can bound preemptions as explicit choice points
     * instead of inheriting the probabilistic draw. The DPOR explorer
     * (src/explore) drives runs through this. Requires
     * SchedPolicy::Random; conflicts with chooser and replayTrace
     * (std::logic_error otherwise).
     */
    std::function<size_t(const ChoiceSite &)> siteChooser;

    /**
     * When set, the scheduler appends every nondeterministic decision
     * (dispatch pick, select shuffle, preemption coin) to this trace;
     * the recorded sequence replays the run exactly, independent of
     * the seed. Cleared at run start. Recording requires
     * SchedPolicy::Random (the only policy whose dispatch picks all
     * funnel through the decision engine); other policies throw
     * std::logic_error.
     */
    ScheduleTrace *recordTrace = nullptr;

    /**
     * When set, every decision is taken from this trace instead of
     * the RNG/chooser; the seed becomes irrelevant to scheduling.
     * Past the end of the trace, decisions fall back to defaults
     * (first runnable goroutine, no preemption), so a shrunk prefix
     * is a valid replay input. Requires SchedPolicy::Random and no
     * chooser (std::logic_error otherwise). May be combined with
     * recordTrace (into a *different* trace object) to re-record the
     * normalized decision sequence a guided replay actually executed.
     */
    const ScheduleTrace *replayTrace = nullptr;

    /**
     * Strict replay (default): if the program offers a different
     * decision kind or alternative count than the trace recorded at
     * some index, the run aborts immediately and
     * RunReport::replayDivergence carries the structured mismatch.
     * Loose replay (false, the fuzzer's mode for mutated traces)
     * clamps mismatches and keeps going.
     */
    bool replayStrict = true;

    /**
     * Event-bus subscribers for this run, attached in order before the
     * main goroutine starts: detectors (race::Detector,
     * waitgraph::Detector), vet checkers, fuzzer coverage probes, and
     * observability sinks (obs::TraceEventSink, obs::MetricsSink) all
     * plug in here. Empty runs without instrumentation — emitting an
     * event nobody wants costs one inline mask test. Each subscriber's
     * drainReports() feeds RunReport::raceMessages and finalizeRun()
     * runs at end of run, both in attach order.
     */
    std::vector<Subscriber *> subscribers;

    /** Stack size per goroutine. */
    size_t stackBytes = 128 * 1024;

    /**
     * Drive the run clock from CLOCK_MONOTONIC instead of the virtual
     * discrete-event clock: now() is real elapsed nanoseconds, timers
     * fire at real deadlines (the scheduler sleeps or polls I/O until
     * the next one), and no ClockAdvance events are emitted. This is
     * the soak/netpoll mode — determinism is deliberately given up, so
     * it is unsuitable for golden traces or fingerprint comparison.
     */
    bool realTime = false;

    /**
     * Reap finished goroutines immediately instead of keeping their
     * records until end of run. Required to keep memory bounded over
     * soak runs that create hundreds of millions of goroutines.
     * Incompatible with collectStats (std::logic_error): stats need
     * the records the reaper destroys.
     */
    bool reapFinished = false;

    /**
     * With an IoPoller attached: run a nonblocking poll after this
     * many dispatches even while goroutines stay runnable, so sockets
     * keep progressing under constant load (the open-loop soak never
     * empties the run queue).
     */
    uint32_t ioPollEvery = 64;

    /** Record per-goroutine creation/finish ticks in the report. */
    bool collectStats = false;

    /** Record a full scheduler event trace in RunReport::trace (the
     *  `go tool trace` analogue; costs memory on long runs). */
    bool collectTrace = false;
};

/** One leaked (blocked-forever) goroutine. */
struct LeakInfo
{
    uint64_t goid;
    WaitReason reason;
    std::string label;
};

/** Kind of a recorded scheduler event (RunOptions::collectTrace). */
enum class TraceKind
{
    Spawn,        ///< goroutine created
    Dispatch,     ///< goroutine starts a scheduling slice
    Park,         ///< goroutine blocks (detail = wait reason)
    Unpark,       ///< goroutine made runnable again
    Finish,       ///< goroutine completed
    ClockAdvance, ///< virtual clock jumped to the next timer
};

/** Number of TraceKind values (for the exhaustiveness test). */
constexpr int kTraceKindCount =
    static_cast<int>(TraceKind::ClockAdvance) + 1;

const char *traceKindName(TraceKind kind);

/**
 * Why a goroutine can never make progress, as diagnosed by the
 * wait-for-graph detector. LockCycle/LockOrphaned plus the nil-channel
 * and empty-select causes are *certain*: they are reported the moment
 * they arise, mid-run. The rest come from the end-of-run orphan
 * analysis that classifies each LeakInfo by cause.
 */
enum class DeadlockCause
{
    LockCycle,      ///< member of a mutex/rwmutex circular wait
    LockOrphaned,   ///< blocked on a lock whose holder exited
    LockChain,      ///< blocked on a lock held by another stuck goroutine
    ChanNilOp,      ///< send/recv on a nil channel (blocks forever)
    ChanNoSender,   ///< receive with no live sender left
    ChanNoReceiver, ///< send with no live receiver left
    SelectStuck,    ///< select whose cases can never fire (or select{})
    WaitGroupStuck, ///< WaitGroup counter can never reach zero
    CondStuck,      ///< Cond.Wait with no signal ever arriving
    PipeStuck,      ///< io pipe peer gone without closing
    NetIoStuck,     ///< parked on network I/O that never became ready
    SleepOrphan,    ///< still sleeping when the program exited
    Unknown,        ///< leaked for a reason the detector cannot name
};

/** Number of DeadlockCause values (for the exhaustiveness test). */
constexpr int kDeadlockCauseCount =
    static_cast<int>(DeadlockCause::Unknown) + 1;

const char *deadlockCauseName(DeadlockCause cause);

/**
 * One partial-deadlock diagnosis from the wait-for-graph detector.
 * Certain diagnoses are emitted mid-run the moment the cycle (or
 * orphaned resource) forms; the rest are end-of-run classifications
 * of leaked goroutines.
 */
struct PartialDeadlock
{
    /** Reported mid-run with certainty (cycle / orphaned lock /
     *  nil-channel op); false for end-of-run leak classification. */
    bool certain = false;
    DeadlockCause cause = DeadlockCause::Unknown;
    /** Goroutines involved (all cycle members, or the one leak). */
    std::vector<uint64_t> goids;
    /** Wait reason of the first involved goroutine. */
    WaitReason reason = WaitReason::None;
    /** Human-readable resource chain, e.g.
     *  "g2 [applier] holds mutex A, waits mutex B <- g3 ...". */
    std::string chain;

    /** One-line rendering ("partial deadlock: ..."). */
    std::string describe() const;
};

/** One scheduler event, in execution order. */
struct TraceEvent
{
    uint64_t tick;   ///< dispatch count at the event
    int64_t timeNs;  ///< virtual time at the event
    uint64_t gid;    ///< goroutine involved (0 for clock events)
    TraceKind kind;
    std::string detail; ///< label, wait reason, or new time
};

/**
 * Structured report of a strict replay failing fast: the program, at
 * decision @p index of the trace, offered a different choice than the
 * trace recorded — the fingerprint of a program (or runtime
 * scheduling semantics) that changed since the trace was captured.
 */
struct ReplayDivergence
{
    bool diverged = false;
    /** Index of the mismatching decision in the replayed trace. */
    size_t index = 0;
    DecisionKind expectedKind = DecisionKind::Pick;
    DecisionKind actualKind = DecisionKind::Pick;
    /** Alternative count the trace recorded at this index. */
    size_t expectedAlternatives = 0;
    /** Alternative count the program actually offered. */
    size_t actualAlternatives = 0;
    /** The actual runnable set (or select shape) at the divergence,
     *  e.g. "g1[main] g3[worker]". */
    std::string runnable;

    /** One-line rendering ("replay divergence at decision ..."). */
    std::string describe() const;
};

/** Per-goroutine lifetime statistics (for the Table 3 experiment). */
struct GoroutineStat
{
    uint64_t goid;
    uint64_t createdTick;
    uint64_t finishedTick;
    bool finished;
};

/**
 * Per-run operation counters collected by obs::MetricsSink: ops by
 * primitive, blocks by wait reason, scheduling churn. Deliberately
 * excluded from RunReport::fingerprint() — fingerprints prove
 * *observable-execution* equality and predate metrics, so committed
 * goldens (tests/traces, bench baselines) must not depend on whether
 * a metrics sink was attached.
 */
struct RunMetrics
{
    /**
     * Race-detector memory footprint, published by
     * race::Detector::finalizeRun (MetricsSink preserves it when it
     * writes the rest of the struct). Makes detector scaling
     * regressions visible in soak extras, not just timed. Excluded
     * from fingerprint() like everything else here, and omitted from
     * json() unless collected.
     */
    struct DetectorFootprint
    {
        /** True when a race::Detector actually populated this. */
        bool collected = false;
        uint64_t liveClockSlots = 0;   ///< slots bound at end of run
        uint64_t peakClockSlots = 0;   ///< peak concurrently bound
        uint64_t slotSpace = 0;        ///< distinct slots materialized
        uint64_t shadowEntries = 0;    ///< addresses tracked at end
        uint64_t peakShadowEntries = 0;
        uint64_t shadowFreed = 0;      ///< addresses erased by MemFree
        uint64_t arenaBytes = 0;       ///< clock chunks + cell slab
    };

    /** True when a MetricsSink actually populated this. */
    bool collected = false;

    /** See DetectorFootprint. */
    DetectorFootprint detector;

    // Ops by primitive.
    uint64_t chanSends = 0;
    uint64_t chanRecvs = 0;
    uint64_t chanCloses = 0;
    uint64_t chanTryOps = 0;
    uint64_t lockWriteAcquires = 0;
    uint64_t lockReadAcquires = 0;
    uint64_t lockReleases = 0;
    uint64_t onceOps = 0;
    uint64_t wgDeltas = 0;
    uint64_t wgWaits = 0;
    uint64_t selectBlocks = 0;
    uint64_t memReads = 0;
    uint64_t memWrites = 0;

    // Scheduling.
    uint64_t dispatches = 0;
    /** Dispatches that switched to a different goroutine than the
     *  previous slice ran. */
    uint64_t contextSwitches = 0;
    uint64_t parks = 0;
    /** Parks by wait reason, indexed by WaitReason. */
    std::array<uint64_t, kWaitReasonCount> blocksByReason{};
    uint64_t spawns = 0;
    /** Peak number of live (spawned, not yet finished) goroutines. */
    uint64_t maxLiveGoroutines = 0;

    // Goroutine lifetimes (spawn to non-teardown finish, run-clock ns).
    uint64_t lifetimesCounted = 0;
    int64_t lifetimeSumNs = 0;
    int64_t lifetimeMaxNs = 0;

    /** Stable single-line JSON (fixed key order; CI diffs this). */
    std::string json() const;

    /** Multi-line human-readable rendering. */
    std::string describe() const;
};

/** Structured outcome of one golite::run. */
struct RunReport
{
    /** Main returned and nothing deadlocked/panicked/livelocked. */
    bool completed = false;

    /**
     * Every goroutine (including main) was asleep: the condition Go's
     * built-in deadlock detector reports as
     * "all goroutines are asleep - deadlock!".
     */
    bool globalDeadlock = false;

    /** Some goroutine panicked (crashing the program, as in Go). */
    bool panicked = false;
    std::string panicMessage;

    /** The run exceeded its dispatch budget. */
    bool livelocked = false;

    /**
     * Strict replay aborted on a trace mismatch (see
     * RunOptions::replayTrace); `completed` is false when set.
     */
    ReplayDivergence replayDivergence;

    /** Goroutines still parked when the run ended (goroutine leaks). */
    std::vector<LeakInfo> leaked;

    /** Reports drained from the attached subscribers (e.g. data
     *  races). */
    std::vector<std::string> raceMessages;

    /**
     * Structured partial-deadlock diagnoses from the wait-for-graph
     * detector (empty unless one subscribed):
     * mid-run certain reports first, then the end-of-run
     * classification of each leaked goroutine.
     */
    std::vector<PartialDeadlock> partialDeadlocks;

    /** Total goroutines ever created (including main). */
    uint64_t goroutinesCreated = 0;

    /** Total dispatch ticks (logical time). */
    uint64_t ticks = 0;

    /** Final virtual-clock value in nanoseconds. */
    int64_t finalTimeNs = 0;

    /** Per-goroutine stats, if RunOptions::collectStats. */
    std::vector<GoroutineStat> stats;

    /** Scheduler event trace, if RunOptions::collectTrace. */
    std::vector<TraceEvent> trace;

    /** Operation counters, if an obs::MetricsSink subscribed. Not
     *  part of fingerprint() (see RunMetrics). */
    RunMetrics metrics;

    /** Render the trace as an indented timeline (empty if none). */
    std::string formatTrace() const;

    /**
     * Canonical serialization of every field (outcome flags, leaks,
     * detector output, counters, stats, trace). Two runs produced the
     * same observable execution iff their fingerprints are equal —
     * the parallel sweep harness uses this to prove its reports are
     * bit-identical to the serial baseline.
     */
    std::string fingerprint() const;

    /** True when the program finished cleanly with no leaks or races. */
    bool
    clean() const
    {
        return completed && leaked.empty() && raceMessages.empty();
    }

    /** True when any blocking condition manifested. */
    bool
    blocked() const
    {
        return globalDeadlock || !leaked.empty();
    }

    /** Number of mid-run (certain) partial-deadlock reports. */
    size_t
    certainDeadlocks() const
    {
        size_t n = 0;
        for (const PartialDeadlock &pd : partialDeadlocks)
            n += pd.certain;
        return n;
    }

    /**
     * True when the wait-graph detector diagnosed a real stall: any
     * certain report, or any end-of-run classification other than a
     * benign sleeping-at-exit orphan.
     */
    bool
    partialDeadlockFlagged() const
    {
        for (const PartialDeadlock &pd : partialDeadlocks) {
            if (pd.certain || pd.cause != DeadlockCause::SleepOrphan)
                return true;
        }
        return false;
    }

    /**
     * Multi-line human-readable summary: outcome, leak list in the
     * style of a Go goroutine dump, detector messages.
     */
    std::string describe() const;
};

} // namespace golite

#endif // GOLITE_RUNTIME_REPORT_HH
