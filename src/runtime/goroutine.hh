/**
 * @file
 * Goroutine bookkeeping: state, wait reasons, per-goroutine record.
 */

#ifndef GOLITE_RUNTIME_GOROUTINE_HH
#define GOLITE_RUNTIME_GOROUTINE_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "runtime/fiber.hh"

namespace golite
{

/**
 * Why a goroutine is parked. Mirrors the wait reasons the Go runtime
 * shows in goroutine dumps; the leak report groups leaked goroutines by
 * this reason (that grouping is the raw material of Table 8's analysis).
 */
enum class WaitReason
{
    None,
    ChanSend,     ///< blocked sending on a channel
    ChanRecv,     ///< blocked receiving from a channel
    ChanSendNil,  ///< send on a nil channel (blocks forever)
    ChanRecvNil,  ///< receive on a nil channel (blocks forever)
    Select,       ///< blocked in a select with no ready case
    MutexLock,    ///< blocked in Mutex::lock
    RWMutexRLock, ///< blocked in RWMutex::rlock
    RWMutexWLock, ///< blocked in RWMutex::lock
    CondWait,     ///< blocked in Cond::wait
    WaitGroupWait,///< blocked in WaitGroup::wait
    OnceWait,     ///< blocked waiting for a concurrent Once::do_
    Sleep,        ///< blocked in time::sleep / timer wait
    PipeRead,     ///< blocked reading from an io pipe
    PipeWrite,    ///< blocked writing to an io pipe
    NetIO,        ///< blocked on network I/O (netpoll readiness)
    Other,        ///< library-defined wait
};

/** Number of WaitReason values (keep in sync with the enum; the
 *  exhaustiveness test walks [0, kWaitReasonCount)). */
constexpr int kWaitReasonCount = static_cast<int>(WaitReason::Other) + 1;

/** Printable name of a wait reason. */
const char *waitReasonName(WaitReason reason);

/** Execution state of a goroutine. */
enum class GoState
{
    Runnable, ///< in the run queue (possibly never started yet)
    Running,  ///< currently executing
    Waiting,  ///< parked on a wait reason
    Done,     ///< finished (returned, panicked, or unwound)
};

/**
 * GoState cell with atomic transitions. In deterministic mode one OS
 * thread owns every goroutine and the atomicity is free; in
 * ExecMode::Parallel, transitions happen under the scheduler lock
 * (which orders them) but are *observed* from other threads — leak
 * snapshots, reap checks, monitoring — so the cell is atomic to keep
 * those observations tear-free and race-free. Relaxed ordering
 * everywhere: the scheduler lock provides the ordering, the atomic
 * provides the atomicity. Implicit conversions keep every existing
 * `g->state == GoState::X` / `g->state = GoState::X` site unchanged.
 */
class AtomicGoState
{
  public:
    AtomicGoState() = default;

    AtomicGoState &
    operator=(GoState s)
    {
        state_.store(s, std::memory_order_relaxed);
        return *this;
    }

    operator GoState() const
    {
        return state_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<GoState> state_{GoState::Runnable};
};

class Scheduler;

/**
 * One goroutine: entry function, fiber, state, and statistics.
 * Owned by the scheduler; identified by a dense id (main is 1).
 */
class Goroutine
{
  public:
    Goroutine(uint64_t id, std::function<void()> entry, size_t stack_bytes)
        : id(id), entry(std::move(entry)), fiber(stack_bytes)
    {
    }

    const uint64_t id;
    std::function<void()> entry;
    Fiber fiber;

    AtomicGoState state;
    WaitReason reason = WaitReason::None;
    /** The primitive this goroutine is parked on, for diagnostics. */
    const void *waitObject = nullptr;
    /** Label attached at spawn time, for diagnostics and reports. */
    std::string label;

    /** Tick at which the goroutine was created / finished (stats). */
    uint64_t createdTick = 0;
    uint64_t finishedTick = 0;

    /** Finished via teardown unwind rather than a normal return. */
    bool unwound = false;
};

} // namespace golite

#endif // GOLITE_RUNTIME_GOROUTINE_HH
