#include "runtime/sched_trace.hh"

#include <cstdio>
#include <sstream>

namespace golite
{

namespace
{

/** Upper bound on a parsed alternatives/count field: large enough for
 *  any real run queue or select, small enough to reject garbage. */
constexpr uint64_t kMaxField = 1u << 20;

bool
isNoPreempt(const Decision &d)
{
    return d.kind == DecisionKind::Preempt && d.pick == 0;
}

} // namespace

const char *
decisionKindName(DecisionKind kind)
{
    switch (kind) {
      case DecisionKind::Pick: return "pick";
      case DecisionKind::SelectArm: return "select-arm";
      case DecisionKind::Preempt: return "preempt";
    }
    return "?";
}

size_t
ScheduleTrace::nonDefaultCount() const
{
    size_t n = 0;
    for (const Decision &d : decisions)
        n += d.pick != 0;
    return n;
}

std::string
ScheduleTrace::serialize() const
{
    std::ostringstream os;
    os << "golite-trace v1\n";
    for (size_t i = 0; i < decisions.size();) {
        const Decision &d = decisions[i];
        if (isNoPreempt(d)) {
            // Run-length encode consecutive no-preempt decisions.
            size_t run = 1;
            while (i + run < decisions.size() &&
                   isNoPreempt(decisions[i + run]))
                run++;
            if (run > 1)
                os << "r " << run << "\n";
            else
                os << "e 0\n";
            i += run;
            continue;
        }
        switch (d.kind) {
          case DecisionKind::Pick:
            os << "p " << d.alternatives << " " << d.pick << "\n";
            break;
          case DecisionKind::SelectArm:
            os << "s " << d.alternatives << " " << d.pick << "\n";
            break;
          case DecisionKind::Preempt:
            os << "e " << d.pick << "\n";
            break;
        }
        i++;
    }
    return os.str();
}

bool
ScheduleTrace::parse(const std::string &text, ScheduleTrace &out,
                     std::string *error)
{
    auto fail = [error](size_t line, const std::string &why) {
        if (error) {
            *error = "golite-trace line " + std::to_string(line) +
                     ": " + why;
        }
        return false;
    };

    std::istringstream is(text);
    std::string line;
    size_t lineno = 0;
    ScheduleTrace parsed;
    bool sawHeader = false;
    while (std::getline(is, line)) {
        lineno++;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty() || line[0] == '#')
            continue;
        if (!sawHeader) {
            if (line != "golite-trace v1")
                return fail(lineno, "missing 'golite-trace v1' header");
            sawHeader = true;
            continue;
        }
        std::istringstream ls(line);
        std::string op;
        ls >> op;
        uint64_t a = 0, b = 0;
        if (op == "p" || op == "s") {
            if (!(ls >> a >> b))
                return fail(lineno, "expected '" + op + " <n> <pick>'");
            if (a < 2 || a > kMaxField)
                return fail(lineno, "alternatives out of range");
            if (b >= a)
                return fail(lineno, "pick >= alternatives");
            parsed.decisions.push_back(Decision{
                op == "p" ? DecisionKind::Pick : DecisionKind::SelectArm,
                static_cast<uint32_t>(a), static_cast<uint32_t>(b)});
        } else if (op == "e") {
            if (!(ls >> a))
                return fail(lineno, "expected 'e <0|1>'");
            if (a > 1)
                return fail(lineno, "preempt pick must be 0 or 1");
            parsed.decisions.push_back(Decision{
                DecisionKind::Preempt, 2, static_cast<uint32_t>(a)});
        } else if (op == "r") {
            if (!(ls >> a) || a == 0 || a > kMaxField)
                return fail(lineno, "expected 'r <count>' with count in "
                                    "[1, 2^20]");
            for (uint64_t i = 0; i < a; ++i)
                parsed.decisions.push_back(
                    Decision{DecisionKind::Preempt, 2, 0});
        } else {
            return fail(lineno, "unknown op '" + op + "'");
        }
        std::string rest;
        if (ls >> rest && rest[0] != '#')
            return fail(lineno, "trailing garbage '" + rest + "'");
    }
    if (!sawHeader)
        return fail(lineno, "empty trace (no header)");
    out = std::move(parsed);
    return true;
}

bool
ScheduleTrace::saveFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const std::string doc = serialize();
    const bool ok =
        std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    return std::fclose(f) == 0 && ok;
}

bool
ScheduleTrace::loadFile(const std::string &path, ScheduleTrace &out,
                        std::string *error)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f) {
        if (error)
            *error = "cannot open " + path;
        return false;
    }
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    return parse(text, out, error);
}

} // namespace golite
