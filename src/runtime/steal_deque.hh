/**
 * @file
 * Chase-Lev work-stealing deque for the M:N parallel scheduler.
 *
 * One deque per worker: the owner pushes and pops at the bottom
 * (LIFO, cache-warm), thieves steal from the top (FIFO, oldest work
 * first). The implementation follows the C11-memory-model formulation
 * of Le, Pop, Cohen & Zappa Nardelli, "Correct and Efficient
 * Work-Stealing for Weak Memory Models" (PPoPP 2013): the owner's pop
 * races with concurrent steals on the last element and both sides
 * arbitrate with one sequentially-consistent compare-exchange on top.
 *
 * The buffer grows geometrically and old buffers are retired to a
 * graveyard instead of freed: a thief may still be reading a stale
 * buffer pointer mid-steal, so reclamation waits until reset(), which
 * the scheduler only calls between runs when no thief can be active.
 * Capacity is therefore monotone within a run — the arena property
 * every other per-run container in the runtime already has.
 */

#ifndef GOLITE_RUNTIME_STEAL_DEQUE_HH
#define GOLITE_RUNTIME_STEAL_DEQUE_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace golite
{

class Goroutine;

/** Single-owner, multi-thief lock-free deque of Goroutine*. */
class StealDeque
{
  public:
    explicit StealDeque(size_t initial_capacity = 64)
        : buffer_(new Buffer(roundUp(initial_capacity)))
    {
    }

    ~StealDeque()
    {
        delete buffer_.load(std::memory_order_relaxed);
    }

    StealDeque(const StealDeque &) = delete;
    StealDeque &operator=(const StealDeque &) = delete;

    /** Owner only: push one item at the bottom. */
    void
    push(Goroutine *g)
    {
        const int64_t b = bottom_.load(std::memory_order_relaxed);
        const int64_t t = top_.load(std::memory_order_acquire);
        Buffer *buf = buffer_.load(std::memory_order_relaxed);
        if (b - t >= static_cast<int64_t>(buf->capacity)) {
            buf = grow(buf, t, b);
        }
        buf->put(b, g);
        // Publish the element before the new bottom becomes visible
        // to thieves.
        std::atomic_thread_fence(std::memory_order_release);
        bottom_.store(b + 1, std::memory_order_relaxed);
    }

    /**
     * Owner only: pop the most recently pushed item, or null when the
     * deque is empty (or a thief won the race for the last element).
     */
    Goroutine *
    pop()
    {
        const int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
        Buffer *buf = buffer_.load(std::memory_order_relaxed);
        bottom_.store(b, std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        int64_t t = top_.load(std::memory_order_relaxed);
        if (t > b) {
            // Already empty; restore bottom.
            bottom_.store(b + 1, std::memory_order_relaxed);
            return nullptr;
        }
        Goroutine *g = buf->get(b);
        if (t == b) {
            // Last element: race the thieves for it.
            if (!top_.compare_exchange_strong(
                    t, t + 1, std::memory_order_seq_cst,
                    std::memory_order_relaxed))
                g = nullptr; // a thief took it
            bottom_.store(b + 1, std::memory_order_relaxed);
        }
        return g;
    }

    /** Any thread: steal the oldest item, or null when empty or the
     *  steal lost a race (callers just try elsewhere). */
    Goroutine *
    steal()
    {
        int64_t t = top_.load(std::memory_order_acquire);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        const int64_t b = bottom_.load(std::memory_order_acquire);
        if (t >= b)
            return nullptr;
        Buffer *buf = buffer_.load(std::memory_order_consume);
        Goroutine *g = buf->get(t);
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed))
            return nullptr;
        return g;
    }

    /** Racy size estimate (monitoring / work-available heuristics). */
    size_t
    sizeEstimate() const
    {
        const int64_t b = bottom_.load(std::memory_order_relaxed);
        const int64_t t = top_.load(std::memory_order_relaxed);
        return b > t ? static_cast<size_t>(b - t) : 0;
    }

    /**
     * Owner only, quiescent (no concurrent thieves — the scheduler
     * calls this between runs): empty the deque and free retired
     * buffers while keeping the current capacity.
     */
    void
    reset()
    {
        graveyard_.clear();
        top_.store(0, std::memory_order_relaxed);
        bottom_.store(0, std::memory_order_relaxed);
    }

  private:
    struct Buffer
    {
        explicit Buffer(size_t cap)
            : capacity(cap), mask(cap - 1),
              slots(new std::atomic<Goroutine *>[cap])
        {
        }

        Goroutine *
        get(int64_t i) const
        {
            return slots[static_cast<size_t>(i) & mask].load(
                std::memory_order_relaxed);
        }

        void
        put(int64_t i, Goroutine *g)
        {
            slots[static_cast<size_t>(i) & mask].store(
                g, std::memory_order_relaxed);
        }

        const size_t capacity;
        const size_t mask;
        std::unique_ptr<std::atomic<Goroutine *>[]> slots;
    };

    static size_t
    roundUp(size_t n)
    {
        size_t cap = 8;
        while (cap < n)
            cap <<= 1;
        return cap;
    }

    Buffer *
    grow(Buffer *old, int64_t t, int64_t b)
    {
        auto fresh = std::make_unique<Buffer>(old->capacity * 2);
        for (int64_t i = t; i < b; ++i)
            fresh->put(i, old->get(i));
        Buffer *raw = fresh.get();
        buffer_.store(raw, std::memory_order_release);
        // A thief may still hold the old pointer: retire, don't free.
        graveyard_.emplace_back(old);
        fresh.release();
        return raw;
    }

    alignas(64) std::atomic<int64_t> top_{0};
    alignas(64) std::atomic<int64_t> bottom_{0};
    alignas(64) std::atomic<Buffer *> buffer_;
    /** Retired grown-over buffers; freed at reset() quiescence. */
    std::vector<std::unique_ptr<Buffer>> graveyard_;
};

} // namespace golite

#endif // GOLITE_RUNTIME_STEAL_DEQUE_HH
