/**
 * @file
 * Per-thread free-list of fiber stacks.
 *
 * Spawn-heavy workloads (the Table 8/12 sweeps create hundreds of
 * goroutines per run, thousands of runs per sweep) used to pay one
 * 128 KiB heap allocation per goroutine start. The pool recycles
 * stacks instead: stacks are mmap'd once, handed out from a
 * size-bucketed free list, and returned when the fiber finishes.
 *
 * The pool is thread_local — one instance per OS thread — because the
 * whole runtime is: a golite run executes on exactly one thread, and
 * the parallel sweep harness (src/parallel) drives one independent run
 * per worker thread. No locks, no sharing, no cross-thread frees.
 *
 * Memory discipline: the cached bytes are capped; exceeding the cap
 * unmaps the excess immediately. trim() keeps the mappings (so reuse
 * stays a free-list pop) but madvise(MADV_DONTNEED)s their pages back
 * to the OS — the "shrink between sweeps" operation.
 */

#ifndef GOLITE_RUNTIME_STACK_POOL_HH
#define GOLITE_RUNTIME_STACK_POOL_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace golite
{

class StackPool
{
  public:
    /** Pool usage counters (per thread, monotonic except cachedBytes). */
    struct Stats
    {
        uint64_t mapped = 0;   ///< stacks mmap'd fresh
        uint64_t reused = 0;   ///< acquires served from the free list
        uint64_t returned = 0; ///< stacks given back to the pool
        uint64_t evicted = 0;  ///< stacks unmapped by the cache cap
        uint64_t trimmed = 0;  ///< stacks madvise'd by trim()
        size_t cachedBytes = 0;
    };

    /** The calling thread's pool. */
    static StackPool &local();

    /**
     * Global on/off switch (on by default; GOLITE_STACK_POOL=0 in the
     * environment disables it). When off, acquire/give degenerate to
     * mmap/munmap per stack — the pre-pool behaviour, kept for A/B
     * measurement in bench_parallel_scaling.
     */
    static bool enabled();
    static void setEnabled(bool on);

    /** Get a stack of at least @p bytes (rounded up to whole pages). */
    uint8_t *acquire(size_t bytes);

    /** Return a stack obtained from acquire(bytes). */
    void give(uint8_t *stack, size_t bytes);

    /**
     * Pre-map stacks until @p count of size @p bytes are cached (a
     * top-up: existing cached stacks count toward it). Respects the
     * cache cap and the enabled() switch. Warm-up hook so a sweep's
     * first runs pay no mmap/page-fault traffic on the hot path.
     */
    void reserve(size_t count, size_t bytes);

    /**
     * Release the cached stacks' pages to the OS (madvise) while
     * keeping the mappings for cheap reuse.
     */
    void trim();

    /** Unmap everything cached (the destructor does this too). */
    void clear();

    const Stats &stats() const { return stats_; }

    /** Cache cap in bytes; exceeding it evicts (unmaps) stacks. */
    void setMaxCachedBytes(size_t bytes);
    size_t maxCachedBytes() const { return maxCachedBytes_; }

    ~StackPool();

    StackPool(const StackPool &) = delete;
    StackPool &operator=(const StackPool &) = delete;

  private:
    StackPool() = default;

    /** Round @p bytes up to the page size (the bucket key). */
    static size_t bucketSize(size_t bytes);

    /** Unmap cached stacks until cachedBytes_ <= maxCachedBytes_. */
    void evictOverflow();

    std::map<size_t, std::vector<uint8_t *>> buckets_;
    Stats stats_;
    size_t maxCachedBytes_ = 256u << 20;
};

} // namespace golite

#endif // GOLITE_RUNTIME_STACK_POOL_HH
