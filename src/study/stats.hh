/**
 * @file
 * Statistics used in the paper's analysis: the `lift` correlation
 * metric between bug causes and fixes (Sections 5.2 and 6.2) and the
 * life-time CDF of Figure 4.
 */

#ifndef GOLITE_STUDY_STATS_HH
#define GOLITE_STUDY_STATS_HH

#include <cstddef>
#include <vector>

namespace golite::study
{

/**
 * lift(A, B) = P(AB) / (P(A) P(B)) over a population of @p total
 * items, where @p count_a items are in category A, @p count_b in B,
 * and @p count_ab in both. 1 = independent; > 1 = positively
 * correlated; < 1 = negatively correlated.
 */
double lift(size_t count_ab, size_t count_a, size_t count_b,
            size_t total);

/**
 * Empirical CDF: fraction of @p samples <= each value in
 * @p thresholds.
 */
std::vector<double> empiricalCdf(std::vector<int> samples,
                                 const std::vector<int> &thresholds);

/** Arithmetic mean (0 for empty input). */
double mean(const std::vector<int> &values);

/** Median (0 for empty input). */
double median(std::vector<int> values);

} // namespace golite::study

#endif // GOLITE_STUDY_STATS_HH
