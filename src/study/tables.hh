/**
 * @file
 * Aggregations over the study database plus a small text-table
 * renderer. Each bench binary calls one of the render* functions to
 * regenerate the corresponding paper table; tests assert on the raw
 * aggregation results.
 */

#ifndef GOLITE_STUDY_TABLES_HH
#define GOLITE_STUDY_TABLES_HH

#include <map>
#include <string>
#include <vector>

#include "study/record.hh"

namespace golite::study
{

/** Minimal fixed-width text table used by all bench output. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    void addRow(std::vector<std::string> cells);

    /** Render with column-aligned padding and a header rule. */
    std::string render() const;

    /** Format helper: double with @p digits decimals. */
    static std::string num(double value, int digits = 2);

  private:
    std::vector<std::vector<std::string>> rows_;
};

/** Table 5 row: taxonomy counts for one app. */
struct TaxonomyRow
{
    std::string app;
    int blocking = 0;
    int nonBlocking = 0;
    int sharedMemory = 0;
    int messagePassing = 0;
};

/** Taxonomy per app plus a "Total" row (Table 5). */
std::vector<TaxonomyRow> taxonomy();

/** cause-subcategory -> count, filtered by behaviour (Tables 6/9). */
std::map<SubCause, int> causeCounts(Behavior behavior);

/** app -> subcause -> count for one behaviour (Tables 6/9 cells). */
std::map<std::string, std::map<SubCause, int>>
causeCountsByApp(Behavior behavior);

/** subcause -> strategy -> count (Tables 7/10). */
std::map<SubCause, std::map<FixStrategy, int>>
fixStrategyMatrix(Behavior behavior);

/** subcause -> primitive -> count for non-blocking patches
 *  (Table 11; counts patch primitives, not bugs). */
std::map<SubCause, std::map<FixPrimitive, int>> fixPrimitiveMatrix();

/**
 * lift between a cause subcategory and a fix strategy within one
 * behaviour class (Section 5.2 / 6.2).
 */
double liftCauseStrategy(Behavior behavior, SubCause cause,
                         FixStrategy strategy);

/**
 * lift between a non-blocking cause and a fix primitive, computed
 * over patch-primitive pairs (the Table 11 population).
 */
double liftCausePrimitive(SubCause cause, FixPrimitive primitive);

/** Life times in days for one cause dimension (Figure 4 input). */
std::vector<int> lifetimes(CauseDim cause);

// --- Renderers (one per table/figure) ---------------------------

std::string renderTable1();
std::string renderTable5();
std::string renderTable6();
std::string renderTable7();
std::string renderTable9();
std::string renderTable10();
std::string renderTable11();
std::string renderFigure4();

} // namespace golite::study

#endif // GOLITE_STUDY_TABLES_HH
