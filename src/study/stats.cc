#include "study/stats.hh"

#include <algorithm>

namespace golite::study
{

double
lift(size_t count_ab, size_t count_a, size_t count_b, size_t total)
{
    if (count_a == 0 || count_b == 0 || total == 0)
        return 0.0;
    const double p_ab = static_cast<double>(count_ab) /
                        static_cast<double>(total);
    const double p_a = static_cast<double>(count_a) /
                       static_cast<double>(total);
    const double p_b = static_cast<double>(count_b) /
                       static_cast<double>(total);
    return p_ab / (p_a * p_b);
}

std::vector<double>
empiricalCdf(std::vector<int> samples, const std::vector<int> &thresholds)
{
    std::sort(samples.begin(), samples.end());
    std::vector<double> out;
    out.reserve(thresholds.size());
    for (int threshold : thresholds) {
        const auto it = std::upper_bound(samples.begin(), samples.end(),
                                         threshold);
        out.push_back(samples.empty()
                          ? 0.0
                          : static_cast<double>(it - samples.begin()) /
                                static_cast<double>(samples.size()));
    }
    return out;
}

double
mean(const std::vector<int> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (int v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
median(std::vector<int> values)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    const size_t n = values.size();
    if (n % 2 == 1)
        return values[n / 2];
    return (values[n / 2 - 1] + values[n / 2]) / 2.0;
}

} // namespace golite::study
