#include <cmath>
#include "study/record.hh"

#include <cassert>
#include <map>

#include "base/rng.hh"

namespace golite::study
{

namespace
{

constexpr const char *kApps[6] = {"Docker", "Kubernetes", "etcd",
                                  "CockroachDB", "gRPC", "BoltDB"};

// ---------------------------------------------------------------
// Table 6: blocking-bug root causes per app. Rows: app; columns:
// Mutex, RWMutex, Wait, Chan, Chan w/, Lib. Column sums 28/5/3/29/
// 16/4 and row sums 21/17/21/12/11/3 are stated in the paper; the
// cells match the (partially garbled) published table.
constexpr int kBlockingCauses[6][6] = {
    {9, 0, 3, 5, 2, 2},  // Docker (21)
    {6, 2, 0, 3, 6, 0},  // Kubernetes (17)
    {5, 0, 0, 10, 5, 1}, // etcd (21)
    {4, 3, 0, 5, 0, 0},  // CockroachDB (12)
    {2, 0, 0, 6, 2, 1},  // gRPC (11)
    {2, 0, 0, 0, 1, 0},  // BoltDB (3)
};

constexpr SubCause kBlockingSubCauses[6] = {
    SubCause::Mutex,   SubCause::RWMutex,       SubCause::Wait,
    SubCause::Chan,    SubCause::ChanWithOther, SubCause::MessagingLibrary,
};

// Table 7 (reconstructed, see EXPERIMENTS.md): fix strategies per
// blocking cause. Columns: Add, Move, Change, Remove, Misc. Chosen
// to satisfy the stated counts (8 add-unlock / 9 move / 11 remove
// across Mutex+RWMutex; 11 add-message + 8 add-select across message
// passing) and the stated lift values (Mutex-Move 1.52, Chan-Add
// 1.42).
constexpr int kBlockingFixes[6][5] = {
    {7, 9, 2, 6, 4},  // Mutex (28)
    {1, 0, 1, 1, 2},  // RWMutex (5)
    {1, 2, 0, 0, 0},  // Wait (3)
    {16, 3, 3, 3, 4}, // Chan (29)
    {6, 3, 2, 3, 2},  // Chan w/ (16)
    {2, 1, 0, 0, 1},  // Lib (4)
};

constexpr FixStrategy kStrategyColumns[5] = {
    FixStrategy::AddSync, FixStrategy::MoveSync, FixStrategy::ChangeSync,
    FixStrategy::RemoveSync, FixStrategy::Misc,
};

// ---------------------------------------------------------------
// Table 9: non-blocking root causes per app. Columns: traditional,
// anonymous function, waitgroup, lib (shared), chan, lib (message).
// Row sums are Table 5's non-blocking column (23/17/16/16/12/2);
// column sums 46/11/6/6/16/1.
constexpr int kNonBlockingCauses[6][6] = {
    {9, 6, 0, 1, 6, 1},  // Docker (23)
    {8, 3, 1, 0, 5, 0},  // Kubernetes (17)
    {9, 0, 2, 2, 3, 0},  // etcd (16)
    {10, 1, 3, 2, 0, 0}, // CockroachDB (16)
    {8, 1, 0, 1, 2, 0},  // gRPC (12)
    {2, 0, 0, 0, 0, 0},  // BoltDB (2)
};

constexpr SubCause kNonBlockingSubCauses[6] = {
    SubCause::Traditional, SubCause::AnonymousFunction,
    SubCause::WaitGroupMisuse, SubCause::LibShared,
    SubCause::ChanMisuse, SubCause::LibMessage,
};

// Table 10 (reconstructed): fix strategies per non-blocking cause.
// Columns: Add (timing), Move (timing), Bypass, DataPrivate, Misc.
// Satisfies: ~69% timing fixes, 10 bypass, 14 data-private (all
// shared-memory), lift(chan, Move) = 2.21, lift(anonymous,
// DataPrivate) = 2.23.
constexpr int kNonBlockingFixes[6][5] = {
    {27, 6, 4, 8, 1}, // traditional (46)
    {4, 2, 1, 4, 0},  // anonymous (11)
    {4, 2, 0, 0, 0},  // waitgroup (6)
    {3, 0, 1, 2, 0},  // lib shared (6)
    {3, 7, 3, 0, 3},  // chan (16)
    {0, 0, 1, 0, 0},  // lib message (1)
};

constexpr FixStrategy kNonBlockingStrategyColumns[5] = {
    FixStrategy::AddSync, FixStrategy::MoveSync, FixStrategy::Bypass,
    FixStrategy::DataPrivate, FixStrategy::Misc,
};

// Table 11 (as published): primitives leveraged in non-blocking
// patches, per cause. Columns: Mutex, Channel, Atomic, WaitGroup,
// Cond, Misc, None. Row sums exceed the bug counts (94 patch
// primitives over 86 bugs) because some patches leverage two
// primitives.
constexpr int kFixPrimitives[6][7] = {
    {24, 3, 6, 0, 0, 0, 13}, // traditional (46 bugs, 46 entries)
    {3, 2, 3, 0, 0, 0, 3},   // anonymous (11 bugs, 11 entries)
    {2, 0, 0, 4, 3, 0, 0},   // waitgroup (6 bugs, 9 entries)
    {0, 2, 1, 1, 0, 1, 2},   // lib shared (6 bugs, 7 entries)
    {3, 11, 0, 2, 1, 2, 1},  // chan (16 bugs, 20 entries)
    {0, 1, 0, 0, 0, 0, 0},   // lib message (1 bug, 1 entry)
};

constexpr FixPrimitive kPrimitiveColumns[7] = {
    FixPrimitive::Mutex,     FixPrimitive::Channel,
    FixPrimitive::Atomic,    FixPrimitive::WaitGroup,
    FixPrimitive::Cond,      FixPrimitive::Misc,
    FixPrimitive::None,
};

SubCause
blockingFixPrimitiveSource(SubCause cause, FixPrimitive &primitive)
{
    // Section 5.2: blocking bugs are overwhelmingly fixed by
    // adjusting the primitive that caused them.
    switch (cause) {
      case SubCause::Mutex:
      case SubCause::RWMutex:
        primitive = FixPrimitive::Mutex;
        break;
      case SubCause::Wait:
        primitive = FixPrimitive::WaitGroup;
        break;
      case SubCause::Chan:
      case SubCause::ChanWithOther:
        primitive = FixPrimitive::Channel;
        break;
      default:
        primitive = FixPrimitive::Misc;
        break;
    }
    return cause;
}

/**
 * Deterministic life-time sampler for Figure 4. Log-normal-ish: the
 * paper reports most studied bugs lived long (months to years)
 * before being fixed, with similar distributions for shared-memory
 * and message-passing bugs.
 */
int
sampleLifetimeDays(Rng &rng, CauseDim cause)
{
    // Sum of uniforms approximates a normal; exponentiate.
    double n = 0.0;
    for (int i = 0; i < 6; ++i)
        n += static_cast<double>(rng.below(1000)) / 1000.0;
    n = (n - 3.0) / 0.707; // ~N(0,1)
    // Message-passing bugs in Figure 4 skew very slightly shorter.
    const double mu = cause == CauseDim::SharedMemory ? 5.95 : 5.80;
    const double sigma = 1.0;
    double days = std::exp(mu + sigma * n);
    if (days < 3)
        days = 3;
    if (days > 2600)
        days = 2600;
    return static_cast<int>(days);
}

int
samplePatchLines(Rng &rng, Behavior behavior)
{
    // Section 5.2: blocking-bug patches average 6.8 lines.
    if (behavior == Behavior::Blocking)
        return 2 + static_cast<int>(rng.below(10));
    return 4 + static_cast<int>(rng.below(24));
}

std::vector<BugRecord>
buildDatabase()
{
    std::vector<BugRecord> records;
    records.reserve(171);
    Rng rng(0x60C0FFEE);

    // ------------------------------------------------------------
    // Blocking bugs: expand the per-app cause matrix, consuming fix
    // strategies from the per-cause quota rows.
    int strategy_cursor[6][5] = {};
    for (int c = 0; c < 6; ++c)
        for (int s = 0; s < 5; ++s)
            strategy_cursor[c][s] = kBlockingFixes[c][s];

    for (int app = 0; app < 6; ++app) {
        int seq = 0;
        for (int c = 0; c < 6; ++c) {
            for (int n = 0; n < kBlockingCauses[app][c]; ++n) {
                BugRecord rec;
                rec.id = std::string(kApps[app]) + "-blk-" +
                         std::to_string(++seq);
                rec.app = kApps[app];
                rec.behavior = Behavior::Blocking;
                rec.subcause = kBlockingSubCauses[c];
                rec.cause = (c < 3) ? CauseDim::SharedMemory
                                    : CauseDim::MessagePassing;
                // Take the next available strategy for this cause.
                for (int s = 0; s < 5; ++s) {
                    if (strategy_cursor[c][s] > 0) {
                        strategy_cursor[c][s]--;
                        rec.fixStrategy = kStrategyColumns[s];
                        break;
                    }
                }
                FixPrimitive primitive = FixPrimitive::Misc;
                blockingFixPrimitiveSource(rec.subcause, primitive);
                rec.fixPrimitives = {primitive};
                rec.lifetimeDays = sampleLifetimeDays(rng, rec.cause);
                rec.patchLines = samplePatchLines(rng, rec.behavior);
                records.push_back(std::move(rec));
            }
        }
    }

    // ------------------------------------------------------------
    // Non-blocking bugs: same expansion; primitives come from the
    // Table 11 quota rows (some rows hold more entries than bugs, so
    // the surplus is attached as second primitives).
    int nb_strategy_cursor[6][5] = {};
    for (int c = 0; c < 6; ++c)
        for (int s = 0; s < 5; ++s)
            nb_strategy_cursor[c][s] = kNonBlockingFixes[c][s];

    // Flatten each cause's primitive quota row into a list.
    std::vector<FixPrimitive> primitive_pool[6];
    for (int c = 0; c < 6; ++c) {
        for (int p = 0; p < 7; ++p) {
            for (int n = 0; n < kFixPrimitives[c][p]; ++n)
                primitive_pool[c].push_back(kPrimitiveColumns[p]);
        }
    }
    int bugs_per_cause[6] = {46, 11, 6, 6, 16, 1};
    size_t pool_cursor[6] = {};

    for (int app = 0; app < 6; ++app) {
        int seq = 0;
        for (int c = 0; c < 6; ++c) {
            for (int n = 0; n < kNonBlockingCauses[app][c]; ++n) {
                BugRecord rec;
                rec.id = std::string(kApps[app]) + "-nb-" +
                         std::to_string(++seq);
                rec.app = kApps[app];
                rec.behavior = Behavior::NonBlocking;
                rec.subcause = kNonBlockingSubCauses[c];
                rec.cause = (c < 4) ? CauseDim::SharedMemory
                                    : CauseDim::MessagePassing;
                for (int s = 0; s < 5; ++s) {
                    if (nb_strategy_cursor[c][s] > 0) {
                        nb_strategy_cursor[c][s]--;
                        rec.fixStrategy = kNonBlockingStrategyColumns[s];
                        break;
                    }
                }
                rec.fixPrimitives.push_back(
                    primitive_pool[c][pool_cursor[c]++]);
                rec.lifetimeDays = sampleLifetimeDays(rng, rec.cause);
                rec.patchLines = samplePatchLines(rng, rec.behavior);
                records.push_back(std::move(rec));
            }
        }
    }

    // Attach surplus primitives (rows whose quota exceeds the bug
    // count) as second primitives of the earliest records of that
    // cause.
    for (int c = 0; c < 6; ++c) {
        size_t extra = primitive_pool[c].size() -
                       static_cast<size_t>(bugs_per_cause[c]);
        if (extra == 0)
            continue;
        for (BugRecord &rec : records) {
            if (extra == 0)
                break;
            if (rec.behavior != Behavior::NonBlocking ||
                rec.subcause != kNonBlockingSubCauses[c]) {
                continue;
            }
            rec.fixPrimitives.push_back(
                primitive_pool[c][pool_cursor[c]++]);
            extra--;
        }
    }

    assert(records.size() == 171);
    return records;
}

} // namespace

const std::vector<AppInfo> &
apps()
{
    // Table 1. LOC and dev history as published; stars for Docker
    // and Kubernetes from the text; remaining stars/commits/
    // contributors are plausible 2018-era values (see EXPERIMENTS.md).
    static const std::vector<AppInfo> infos = {
        {"Docker", 48900, 35800, 1800, 786000, 4.2},
        {"Kubernetes", 36500, 70700, 1600, 2297000, 3.9},
        {"etcd", 18900, 14300, 500, 441000, 4.9},
        {"CockroachDB", 13500, 26200, 240, 520000, 4.2},
        {"gRPC", 5700, 2500, 100, 53000, 3.3},
        {"BoltDB", 8900, 620, 60, 9000, 4.4},
    };
    return infos;
}

const std::vector<BugRecord> &
database()
{
    static const std::vector<BugRecord> records = buildDatabase();
    return records;
}

} // namespace golite::study
