#include "study/tables.hh"

#include <algorithm>
#include <sstream>

#include "study/stats.hh"

namespace golite::study
{

using corpus::fixPrimitiveName;
using corpus::fixStrategyName;
using corpus::subCauseName;

TextTable::TextTable(std::vector<std::string> header)
{
    rows_.push_back(std::move(header));
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TextTable::num(double value, int digits)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(digits);
    os << value;
    return os.str();
}

std::string
TextTable::render() const
{
    std::vector<size_t> widths;
    for (const auto &row : rows_) {
        if (widths.size() < row.size())
            widths.resize(row.size(), 0);
        for (size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    }
    std::ostringstream os;
    for (size_t r = 0; r < rows_.size(); ++r) {
        for (size_t i = 0; i < rows_[r].size(); ++i) {
            os << rows_[r][i];
            if (i + 1 < rows_[r].size()) {
                os << std::string(widths[i] - rows_[r][i].size() + 2,
                                  ' ');
            }
        }
        os << "\n";
        if (r == 0) {
            size_t total = 0;
            for (size_t w : widths)
                total += w + 2;
            os << std::string(total, '-') << "\n";
        }
    }
    return os.str();
}

std::vector<TaxonomyRow>
taxonomy()
{
    std::vector<TaxonomyRow> rows;
    for (const AppInfo &app : apps())
        rows.push_back(TaxonomyRow{app.name, 0, 0, 0, 0});
    TaxonomyRow total{"Total", 0, 0, 0, 0};
    for (const BugRecord &rec : database()) {
        for (TaxonomyRow &row : rows) {
            if (row.app != rec.app)
                continue;
            (rec.behavior == Behavior::Blocking ? row.blocking
                                                : row.nonBlocking)++;
            (rec.cause == CauseDim::SharedMemory ? row.sharedMemory
                                                 : row.messagePassing)++;
        }
        (rec.behavior == Behavior::Blocking ? total.blocking
                                            : total.nonBlocking)++;
        (rec.cause == CauseDim::SharedMemory ? total.sharedMemory
                                             : total.messagePassing)++;
    }
    rows.push_back(total);
    return rows;
}

std::map<SubCause, int>
causeCounts(Behavior behavior)
{
    std::map<SubCause, int> out;
    for (const BugRecord &rec : database()) {
        if (rec.behavior == behavior)
            out[rec.subcause]++;
    }
    return out;
}

std::map<std::string, std::map<SubCause, int>>
causeCountsByApp(Behavior behavior)
{
    std::map<std::string, std::map<SubCause, int>> out;
    for (const BugRecord &rec : database()) {
        if (rec.behavior == behavior)
            out[rec.app][rec.subcause]++;
    }
    return out;
}

std::map<SubCause, std::map<FixStrategy, int>>
fixStrategyMatrix(Behavior behavior)
{
    std::map<SubCause, std::map<FixStrategy, int>> out;
    for (const BugRecord &rec : database()) {
        if (rec.behavior == behavior)
            out[rec.subcause][rec.fixStrategy]++;
    }
    return out;
}

std::map<SubCause, std::map<FixPrimitive, int>>
fixPrimitiveMatrix()
{
    std::map<SubCause, std::map<FixPrimitive, int>> out;
    for (const BugRecord &rec : database()) {
        if (rec.behavior != Behavior::NonBlocking)
            continue;
        for (FixPrimitive primitive : rec.fixPrimitives)
            out[rec.subcause][primitive]++;
    }
    return out;
}

double
liftCauseStrategy(Behavior behavior, SubCause cause, FixStrategy strategy)
{
    size_t total = 0, count_a = 0, count_b = 0, count_ab = 0;
    for (const BugRecord &rec : database()) {
        if (rec.behavior != behavior)
            continue;
        total++;
        const bool is_a = rec.subcause == cause;
        const bool is_b = rec.fixStrategy == strategy;
        count_a += is_a;
        count_b += is_b;
        count_ab += is_a && is_b;
    }
    return lift(count_ab, count_a, count_b, total);
}

double
liftCausePrimitive(SubCause cause, FixPrimitive primitive)
{
    // Population: patch-primitive pairs of non-blocking bugs (the
    // Table 11 counting convention; 94 pairs over 86 bugs).
    size_t total = 0, count_a = 0, count_b = 0, count_ab = 0;
    for (const BugRecord &rec : database()) {
        if (rec.behavior != Behavior::NonBlocking)
            continue;
        for (FixPrimitive p : rec.fixPrimitives) {
            total++;
            const bool is_a = rec.subcause == cause;
            const bool is_b = p == primitive;
            count_a += is_a;
            count_b += is_b;
            count_ab += is_a && is_b;
        }
    }
    return lift(count_ab, count_a, count_b, total);
}

std::vector<int>
lifetimes(CauseDim cause)
{
    std::vector<int> out;
    for (const BugRecord &rec : database()) {
        if (rec.cause == cause)
            out.push_back(rec.lifetimeDays);
    }
    return out;
}

// ----------------------------------------------------------------
// Renderers.

std::string
renderTable1()
{
    TextTable table({"Application", "Stars", "Commits", "Contributors",
                     "LOC", "Dev History"});
    for (const AppInfo &app : apps()) {
        table.addRow({app.name, std::to_string(app.stars),
                      std::to_string(app.commits),
                      std::to_string(app.contributors),
                      std::to_string(app.loc),
                      TextTable::num(app.devYears, 1) + " Years"});
    }
    return table.render();
}

std::string
renderTable5()
{
    TextTable table({"Application", "blocking", "non-blocking",
                     "shared memory", "message passing"});
    for (const TaxonomyRow &row : taxonomy()) {
        table.addRow({row.app, std::to_string(row.blocking),
                      std::to_string(row.nonBlocking),
                      std::to_string(row.sharedMemory),
                      std::to_string(row.messagePassing)});
    }
    return table.render();
}

namespace
{

const std::vector<SubCause> kBlockingOrder = {
    SubCause::Mutex,   SubCause::RWMutex,       SubCause::Wait,
    SubCause::Chan,    SubCause::ChanWithOther, SubCause::MessagingLibrary,
};

const std::vector<SubCause> kNonBlockingOrder = {
    SubCause::Traditional,     SubCause::AnonymousFunction,
    SubCause::WaitGroupMisuse, SubCause::LibShared,
    SubCause::ChanMisuse,      SubCause::LibMessage,
};

std::string
renderCauseTable(Behavior behavior, const std::vector<SubCause> &order)
{
    std::vector<std::string> header = {"Application"};
    for (SubCause cause : order)
        header.push_back(subCauseName(cause));
    header.push_back("Total");
    TextTable table(header);

    auto by_app = causeCountsByApp(behavior);
    std::map<SubCause, int> totals;
    int grand_total = 0;
    for (const AppInfo &app : apps()) {
        std::vector<std::string> row = {app.name};
        int app_total = 0;
        for (SubCause cause : order) {
            const int count = by_app[app.name][cause];
            row.push_back(std::to_string(count));
            totals[cause] += count;
            app_total += count;
        }
        row.push_back(std::to_string(app_total));
        grand_total += app_total;
        table.addRow(row);
    }
    std::vector<std::string> total_row = {"Total"};
    for (SubCause cause : order)
        total_row.push_back(std::to_string(totals[cause]));
    total_row.push_back(std::to_string(grand_total));
    table.addRow(total_row);
    return table.render();
}

std::string
renderFixTable(Behavior behavior, const std::vector<SubCause> &order,
               const std::vector<FixStrategy> &strategies)
{
    std::vector<std::string> header = {"Root Cause"};
    for (FixStrategy s : strategies)
        header.push_back(std::string(fixStrategyName(s)) + "_s");
    header.push_back("Total");
    TextTable table(header);

    auto matrix = fixStrategyMatrix(behavior);
    std::map<FixStrategy, int> totals;
    int grand_total = 0;
    for (SubCause cause : order) {
        std::vector<std::string> row = {subCauseName(cause)};
        int row_total = 0;
        for (FixStrategy s : strategies) {
            const int count = matrix[cause][s];
            row.push_back(std::to_string(count));
            totals[s] += count;
            row_total += count;
        }
        row.push_back(std::to_string(row_total));
        grand_total += row_total;
        table.addRow(row);
    }
    std::vector<std::string> total_row = {"Total"};
    for (FixStrategy s : strategies)
        total_row.push_back(std::to_string(totals[s]));
    total_row.push_back(std::to_string(grand_total));
    table.addRow(total_row);
    return table.render();
}

} // namespace

std::string
renderTable6()
{
    return renderCauseTable(Behavior::Blocking, kBlockingOrder);
}

std::string
renderTable7()
{
    std::ostringstream os;
    os << renderFixTable(Behavior::Blocking, kBlockingOrder,
                         {FixStrategy::AddSync, FixStrategy::MoveSync,
                          FixStrategy::ChangeSync,
                          FixStrategy::RemoveSync, FixStrategy::Misc});
    os << "\nlift(Mutex, Move_s)  = "
       << TextTable::num(liftCauseStrategy(Behavior::Blocking,
                                           SubCause::Mutex,
                                           FixStrategy::MoveSync))
       << "   (paper: 1.52)\n";
    os << "lift(Chan, Add_s)    = "
       << TextTable::num(liftCauseStrategy(Behavior::Blocking,
                                           SubCause::Chan,
                                           FixStrategy::AddSync))
       << "   (paper: 1.42)\n";
    return os.str();
}

std::string
renderTable9()
{
    return renderCauseTable(Behavior::NonBlocking, kNonBlockingOrder);
}

std::string
renderTable10()
{
    std::ostringstream os;
    os << renderFixTable(Behavior::NonBlocking, kNonBlockingOrder,
                         {FixStrategy::AddSync, FixStrategy::MoveSync,
                          FixStrategy::Bypass, FixStrategy::DataPrivate,
                          FixStrategy::Misc});
    os << "\nlift(chan, Move_s)        = "
       << TextTable::num(liftCauseStrategy(Behavior::NonBlocking,
                                           SubCause::ChanMisuse,
                                           FixStrategy::MoveSync))
       << "   (paper: 2.21)\n";
    os << "lift(anonymous, private)  = "
       << TextTable::num(liftCauseStrategy(
              Behavior::NonBlocking, SubCause::AnonymousFunction,
              FixStrategy::DataPrivate))
       << "   (paper: 2.23)\n";
    return os.str();
}

std::string
renderTable11()
{
    const std::vector<FixPrimitive> primitives = {
        FixPrimitive::Mutex, FixPrimitive::Channel, FixPrimitive::Atomic,
        FixPrimitive::WaitGroup, FixPrimitive::Cond, FixPrimitive::Misc,
        FixPrimitive::None};
    std::vector<std::string> header = {"Root Cause"};
    for (FixPrimitive p : primitives)
        header.push_back(fixPrimitiveName(p));
    header.push_back("Total");
    TextTable table(header);

    auto matrix = fixPrimitiveMatrix();
    std::map<FixPrimitive, int> totals;
    int grand_total = 0;
    for (SubCause cause : kNonBlockingOrder) {
        std::vector<std::string> row = {subCauseName(cause)};
        int row_total = 0;
        for (FixPrimitive p : primitives) {
            const int count = matrix[cause][p];
            row.push_back(std::to_string(count));
            totals[p] += count;
            row_total += count;
        }
        row.push_back(std::to_string(row_total));
        grand_total += row_total;
        table.addRow(row);
    }
    std::vector<std::string> total_row = {"Total"};
    for (FixPrimitive p : primitives)
        total_row.push_back(std::to_string(totals[p]));
    total_row.push_back(std::to_string(grand_total));
    table.addRow(total_row);

    std::ostringstream os;
    os << table.render();
    os << "\nlift(chan, Channel primitive) = "
       << TextTable::num(liftCausePrimitive(SubCause::ChanMisuse,
                                            FixPrimitive::Channel))
       << "   (paper: 2.7)\n";
    return os.str();
}

std::string
renderFigure4()
{
    const std::vector<int> thresholds = {30,  91,  182, 365, 547,
                                         730, 1095, 1460, 2190};
    auto shared = lifetimes(CauseDim::SharedMemory);
    auto message = lifetimes(CauseDim::MessagePassing);
    auto shared_cdf = empiricalCdf(shared, thresholds);
    auto message_cdf = empiricalCdf(message, thresholds);

    TextTable table({"Life time <=", "shared memory CDF",
                     "message passing CDF"});
    for (size_t i = 0; i < thresholds.size(); ++i) {
        table.addRow({std::to_string(thresholds[i]) + " days",
                      TextTable::num(shared_cdf[i]),
                      TextTable::num(message_cdf[i])});
    }
    std::ostringstream os;
    os << table.render();
    os << "\nmedian life time: shared memory "
       << TextTable::num(median(shared), 0) << " days, message passing "
       << TextTable::num(median(message), 0) << " days\n";
    return os.str();
}

} // namespace golite::study
