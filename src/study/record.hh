/**
 * @file
 * The study database: one record per studied bug (171 total),
 * encoding the classification the paper's Tables 5-7 and 9-11 and
 * Figure 4 aggregate.
 *
 * Provenance: category totals, per-app splits, fix-strategy and
 * fix-primitive distributions are reconstructed from the paper's
 * published tables and text so that every stated marginal is
 * satisfied exactly; see EXPERIMENTS.md for the cell-level notes.
 */

#ifndef GOLITE_STUDY_RECORD_HH
#define GOLITE_STUDY_RECORD_HH

#include <string>
#include <vector>

#include "corpus/bug.hh"

namespace golite::study
{

using corpus::Behavior;
using corpus::CauseDim;
using corpus::FixPrimitive;
using corpus::FixStrategy;
using corpus::SubCause;

/** One studied bug (a bug-fixing commit in one of the six apps). */
struct BugRecord
{
    std::string id;  ///< synthetic stable id, e.g. "docker-blk-3"
    std::string app; ///< Docker, Kubernetes, etcd, CockroachDB,
                     ///< gRPC, BoltDB
    Behavior behavior;
    CauseDim cause;
    SubCause subcause;
    FixStrategy fixStrategy;
    /** Primitives the patch leveraged; can be more than one (the
     *  Table 11 column total is 94 over 86 non-blocking bugs). */
    std::vector<FixPrimitive> fixPrimitives;
    /** Days from the buggy commit to the fixing commit (Figure 4). */
    int lifetimeDays = 0;
    /** Patch size in changed lines (Section 5.2: mean 6.8 for
     *  blocking bugs). */
    int patchLines = 0;
};

/** Static metadata for Table 1. */
struct AppInfo
{
    std::string name;
    int stars;        ///< GitHub stars (thousands would lose BoltDB)
    int commits;
    int contributors;
    int loc;          ///< lines of code
    double devYears;  ///< development history on GitHub
};

/** The six studied applications, Table 1 order. */
const std::vector<AppInfo> &apps();

/** All 171 bug records. Built once, deterministically. */
const std::vector<BugRecord> &database();

} // namespace golite::study

#endif // GOLITE_STUDY_RECORD_HH
