#include "parallel/pexplore.hh"

#include <algorithm>
#include <deque>

namespace golite::parallel
{

namespace
{

using explore::ExploreResult;
using explore::SubtreeCursor;

/** One subtree of the choice tree owned by the frontier. */
struct Subtree
{
    SubtreeCursor cursor;
    ExploreResult result;
};

/**
 * Split the choice tree into roughly `target` subtrees by popping the
 * shallowest prefix and replacing it with its children until the
 * frontier is large enough. Prefixes whose replay finishes without a
 * free decision are complete schedules and stay as one-schedule
 * leaves. Entirely serial and replay-driven, hence deterministic.
 */
std::vector<std::vector<size_t>>
buildFrontier(
    const std::function<RunReport(const RunOptions &)> &run_once,
    const explore::ExploreOptions &options, size_t target)
{
    std::vector<std::vector<size_t>> leaves;
    std::deque<std::vector<size_t>> open;
    open.push_back({});

    // Probe cap bounds the uncounted replays spent on splitting;
    // single-choice chains (fanout 1) deepen a prefix without
    // growing the frontier, so the loop is not otherwise bounded.
    size_t probes = 0;
    const size_t probe_cap = target * 8;

    while (!open.empty() && leaves.size() + open.size() < target &&
           probes < probe_cap) {
        std::vector<size_t> prefix = std::move(open.front());
        open.pop_front();
        const size_t n = explore::fanoutAt(run_once, prefix, options);
        probes++;
        if (n == 0) {
            leaves.push_back(std::move(prefix));
            continue;
        }
        for (size_t choice = 0; choice < n; ++choice) {
            std::vector<size_t> child = prefix;
            child.push_back(choice);
            open.push_back(std::move(child));
        }
    }

    std::vector<std::vector<size_t>> prefixes = std::move(leaves);
    prefixes.insert(prefixes.end(),
                    std::make_move_iterator(open.begin()),
                    std::make_move_iterator(open.end()));
    // Lexicographic prefix order == serial DFS visit order; every
    // later stage (ticket grants, merge) walks this order.
    std::sort(prefixes.begin(), prefixes.end());
    return prefixes;
}

/** Merge per-subtree tallies in lexicographic (== serial DFS) order. */
ExploreResult
mergeInOrder(const std::vector<Subtree> &subs, bool exhausted_budget)
{
    ExploreResult merged;
    bool all_done = true;
    for (const Subtree &sub : subs) {
        const ExploreResult &r = sub.result;
        merged.schedules += r.schedules;
        merged.executions += r.executions;
        merged.redundant += r.redundant;
        merged.clean += r.clean;
        merged.globalDeadlocks += r.globalDeadlocks;
        merged.leakedOnly += r.leakedOnly;
        merged.panicked += r.panicked;
        merged.livelocked += r.livelocked;
        merged.raced += r.raced;
        merged.hbClasses.insert(r.hbClasses.begin(),
                                r.hbClasses.end());
        all_done = all_done && sub.cursor.done;
    }
    // firstBad comes from the lexicographically earliest subtree that
    // saw one; within a subtree the DFS already kept its first.
    // firstBadAt counts executions in serial DFS order: everything in
    // earlier subtrees ran before it.
    size_t earlier = 0;
    for (const Subtree &sub : subs) {
        if (sub.result.anyBad()) {
            merged.firstBad = sub.result.firstBad;
            merged.firstBadSchedule = sub.result.firstBadSchedule;
            merged.firstBadAt = earlier + sub.result.firstBadAt;
            break;
        }
        earlier += sub.result.executions;
    }
    merged.exhaustive = all_done && !exhausted_budget;
    return merged;
}

/**
 * Dpor-mode driver: the serial DPOR walker in ticketed rounds on the
 * calling thread (see header). One shared cursor keeps sleep-set and
 * backtrack state across rounds.
 */
ExploreResult
exploreDporTicketed(
    const std::function<RunReport(const RunOptions &)> &run_once,
    const ParallelExploreOptions &options)
{
    const size_t budget = options.explore.maxSchedules;
    const size_t ticket = std::max<size_t>(1, options.roundTicket);
    SubtreeCursor cursor;
    ExploreResult result;
    result.mode = options.explore.mode;
    result.preemptionBound = options.explore.preemptionBound;
    while (!cursor.done) {
        size_t grant = ticket;
        if (budget) {
            const size_t left = budget > result.executions
                                    ? budget - result.executions
                                    : 0;
            grant = std::min(grant, left);
            if (grant == 0)
                break;
        }
        exploreSubtree(run_once, options.explore, cursor, grant,
                       result);
    }
    result.exhaustive = cursor.done;
    return result;
}

} // namespace

ExploreResult
exploreAllParallel(
    const std::function<RunReport(const RunOptions &)> &run_once,
    const ParallelExploreOptions &options)
{
    if (options.explore.mode == explore::ExploreMode::Dpor ||
        options.explore.preemptionBound > 0)
        return exploreDporTicketed(run_once, options);

    const unsigned workers =
        options.workers ? options.workers : defaultWorkers();
    if (workers <= 1)
        return explore::exploreAll(run_once, options.explore);

    const size_t budget = options.explore.maxSchedules;
    size_t target = static_cast<size_t>(workers) *
                    std::max<size_t>(1, options.frontierPerWorker);
    if (budget)
        target = std::min(target, budget);
    target = std::max<size_t>(target, 2);

    const std::vector<std::vector<size_t>> prefixes =
        buildFrontier(run_once, options.explore, target);

    std::vector<Subtree> subs(prefixes.size());
    for (size_t i = 0; i < prefixes.size(); ++i)
        subs[i].cursor.prefix = prefixes[i];

    const size_t ticket = std::max<size_t>(1, options.roundTicket);
    size_t remaining = budget;
    bool exhausted_budget = false;
    WorkerPool &pool = sharedPool();

    for (;;) {
        // Grant tickets in lexicographic order from the remaining
        // budget. Grants depend only on deterministic per-subtree
        // counts, so the explored set is worker-count independent.
        std::vector<size_t> grant(subs.size(), 0);
        size_t avail = remaining;
        bool any = false;
        for (size_t i = 0; i < subs.size(); ++i) {
            if (subs[i].cursor.done)
                continue;
            size_t t = ticket;
            if (budget) {
                t = std::min(t, avail);
                avail -= t;
            }
            if (t == 0)
                continue;
            grant[i] = t;
            any = true;
        }
        if (!any) {
            exhausted_budget =
                std::any_of(subs.begin(), subs.end(),
                            [](const Subtree &s) {
                                return !s.cursor.done;
                            });
            break;
        }

        pool.forEach(
            subs.size(),
            [&](size_t i) {
                if (grant[i] == 0)
                    return;
                exploreSubtree(run_once, options.explore,
                               subs[i].cursor, grant[i],
                               subs[i].result);
            },
            workers);

        if (budget) {
            size_t total = 0;
            for (const Subtree &sub : subs)
                total += sub.result.schedules;
            remaining = budget > total ? budget - total : 0;
        }

        const bool all_done =
            std::all_of(subs.begin(), subs.end(), [](const Subtree &s) {
                return s.cursor.done;
            });
        if (all_done)
            break;
    }

    return mergeInOrder(subs, exhausted_budget);
}

ExploreResult
exploreProgramParallel(const std::function<void()> &program,
                       const ParallelExploreOptions &options)
{
    return exploreAllParallel(
        [&program](const RunOptions &run_options) {
            return run(program, run_options);
        },
        options);
}

} // namespace golite::parallel
