/**
 * @file
 * Seed sweeps: the paper's "run the buggy program ~100 times"
 * protocol as a parallel primitive.
 *
 * runSeeds fans one program across a list of seeds; runJobs fans a
 * list of arbitrary run thunks. Both merge deterministically: result
 * i is the report of seed/job i regardless of which worker ran it or
 * when it finished, and every report is bit-identical (same
 * RunReport::fingerprint) to what a serial loop would produce —
 * per-seed determinism survives parallelism because all runtime state
 * is per-Scheduler and the active-run slot is thread_local.
 */

#ifndef GOLITE_PARALLEL_SWEEP_HH
#define GOLITE_PARALLEL_SWEEP_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "parallel/pool.hh"
#include "race/detector.hh"
#include "runtime/report.hh"
#include "runtime/scheduler.hh"

namespace golite::parallel
{

/** Worker configuration for one sweep. */
struct SweepOptions
{
    /** Worker threads; 0 = defaultWorkers() (GOLITE_WORKERS env or
     *  hardware_concurrency). */
    unsigned workers = 0;
};

/**
 * Run @p program once per seed in @p seeds under @p base (seed field
 * overridden per run), fanned across workers; reports in seed-list
 * order.
 *
 * @p base must not carry subscribers: a single detector instance
 * shared by concurrent runs is a data race. Sweeps that need
 * detectors attach a fresh instance per run via runJobs (see
 * bench_table12 for the pattern). Throws std::logic_error otherwise.
 *
 * @p program is executed concurrently on several threads; it must
 * only touch state created inside the run (true for every corpus
 * kernel and example program).
 */
std::vector<RunReport> runSeeds(const std::function<void()> &program,
                                const std::vector<uint64_t> &seeds,
                                const RunOptions &base = {},
                                const SweepOptions &sweep = {});

/** runSeeds over the contiguous range [first, first + count). */
std::vector<RunReport> runSeedRange(
    const std::function<void()> &program, uint64_t first,
    uint64_t count, const RunOptions &base = {},
    const SweepOptions &sweep = {});

/**
 * Run every thunk in @p jobs (each a self-contained golite run,
 * typically constructing its own detector), fanned across workers;
 * reports in job-list order.
 */
std::vector<RunReport> runJobs(
    const std::vector<std::function<RunReport()>> &jobs,
    const SweepOptions &sweep = {});

/**
 * The calling OS thread's reusable race detector, reset() (with
 * @p shadow_depth) on every call. One detector instance lives per
 * worker thread, so a sweep that attaches detectors through this
 * slot performs zero detector construction — and, at steady state,
 * zero allocation — per seed. Pointers obtained here must not cross
 * threads.
 */
race::Detector &threadLocalDetector(size_t shadow_depth = 4);

/**
 * runSeeds with the race detector attached: each run gets this
 * worker's threadLocalDetector (reset between seeds) as an event-bus
 * subscriber, and race reports land in the corresponding
 * RunReport::raceMessages. Same determinism contract as runSeeds —
 * reports are seed-list-ordered and bit-identical to a serial loop.
 *
 * @p base must not carry subscribers of its own (throws
 * std::logic_error), exactly like runSeeds.
 */
std::vector<RunReport> runSeedsRaced(
    const std::function<void()> &program,
    const std::vector<uint64_t> &seeds, const RunOptions &base = {},
    const SweepOptions &sweep = {}, size_t shadow_depth = 4);

} // namespace golite::parallel

#endif // GOLITE_PARALLEL_SWEEP_HH
