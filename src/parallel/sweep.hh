/**
 * @file
 * Seed sweeps: the paper's "run the buggy program ~100 times"
 * protocol as a parallel primitive.
 *
 * runSeeds fans one program across a list of seeds; runJobs fans a
 * list of arbitrary run thunks. Both merge deterministically: result
 * i is the report of seed/job i regardless of which worker ran it or
 * when it finished, and every report is bit-identical (same
 * RunReport::fingerprint) to what a serial loop would produce —
 * per-seed determinism survives parallelism because all runtime state
 * is per-Scheduler and the active-run slot is thread_local.
 *
 * All sweeps submit epochs to the persistent sharedPool(), so worker
 * threads — and their thread_local arenas: the scheduler run arena,
 * the fiber StackPool, the reusable race and waitgraph detectors
 * below — survive from one sweep to the next. A sweep's hot path
 * touches no shared mutable state per run: results go to per-worker
 * cache-line-aligned buffers (parallelMap) and are merged once per
 * sweep, detector state is per worker thread, and work is claimed in
 * adaptive batches from one atomic cursor.
 */

#ifndef GOLITE_PARALLEL_SWEEP_HH
#define GOLITE_PARALLEL_SWEEP_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "parallel/pool.hh"
#include "race/detector.hh"
#include "runtime/report.hh"
#include "runtime/scheduler.hh"
#include "waitgraph/waitgraph.hh"

namespace golite::parallel
{

/**
 * Wall-time breakdown of the sweeps that ran with a profile attached
 * (SweepOptions::profile). Fields accumulate (+=) across sweeps so a
 * multi-wave protocol sums naturally; clear() between measurements.
 * bench_parallel_scaling emits these as the setup/run/merge columns
 * of BENCH_parallel.json.
 */
struct SweepProfile
{
    /** Pool/buffer preparation before the epoch starts (worker
     *  spawn-on-growth, per-worker result buffer allocation). */
    double setupSeconds = 0;
    /** The epoch itself: all runs, start to barrier. */
    double runSeconds = 0;
    /** Merging per-worker buffers into the index-ordered result. */
    double mergeSeconds = 0;
    /** Epochs accumulated into the fields above. */
    uint64_t epochs = 0;

    void
    clear()
    {
        *this = SweepProfile{};
    }
};

/** Worker configuration for one sweep. */
struct SweepOptions
{
    /** Worker threads; 0 = defaultWorkers() (GOLITE_WORKERS env or
     *  hardware_concurrency). The sweep uses this many slots of the
     *  persistent sharedPool(), growing it if needed. */
    unsigned workers = 0;

    /** When set, the sweep accumulates its per-phase wall-time
     *  breakdown here (see SweepProfile). */
    SweepProfile *profile = nullptr;
};

/**
 * Run @p program once per seed in @p seeds under @p base (seed field
 * overridden per run), fanned across workers; reports in seed-list
 * order.
 *
 * @p base must not carry subscribers: a single detector instance
 * shared by concurrent runs is a data race. Sweeps that need
 * detectors attach a fresh instance per run via runJobs (see
 * bench_table12 for the pattern). Throws std::logic_error otherwise.
 *
 * @p program is executed concurrently on several threads; it must
 * only touch state created inside the run (true for every corpus
 * kernel and example program).
 */
std::vector<RunReport> runSeeds(const std::function<void()> &program,
                                const std::vector<uint64_t> &seeds,
                                const RunOptions &base = {},
                                const SweepOptions &sweep = {});

/** runSeeds over the contiguous range [first, first + count). */
std::vector<RunReport> runSeedRange(
    const std::function<void()> &program, uint64_t first,
    uint64_t count, const RunOptions &base = {},
    const SweepOptions &sweep = {});

/**
 * Run every thunk in @p jobs (each a self-contained golite run,
 * typically attaching a worker-local detector), fanned across
 * workers; reports in job-list order.
 */
std::vector<RunReport> runJobs(
    const std::vector<std::function<RunReport()>> &jobs,
    const SweepOptions &sweep = {});

/**
 * Install (idempotently) the pool-backed thread-team provider for
 * ExecMode::Parallel runs: Scheduler::setParallelExecutor gets a
 * ParallelExecutor that borrows the persistent sharedPool() workers,
 * so every M:N run reuses warm threads — and their thread_local
 * arenas — instead of spawning OS threads per run. Called
 * automatically by runParallel; safe to call any number of times.
 * Nested use (a parallel run started from inside a sweep job) falls
 * back to ad-hoc threads, because a pool worker cannot submit an
 * epoch to its own pool.
 */
void installPoolExecutor();

/**
 * Run @p program once in ExecMode::Parallel on the persistent worker
 * pool. @p base is taken as-is except execMode (forced to Parallel)
 * and parallelThreads (defaulted from SweepOptions::workers /
 * defaultWorkers() when 0, floored at 2 — an M:N run needs a team).
 * The usual parallel-mode option restrictions apply (no trace
 * record/replay, no choosers, no collectTrace; mem-lane subscribers
 * must be parallelSafe, i.e. race::Sharded not race::Detector).
 */
RunReport runParallel(const std::function<void()> &program,
                      const RunOptions &base = {},
                      const SweepOptions &sweep = {});

/**
 * The calling OS thread's reusable race detector, reset() (with
 * @p shadow_depth) on every call. One detector instance lives per
 * worker thread, so a sweep that attaches detectors through this
 * slot performs zero detector construction — and, at steady state,
 * zero allocation — per seed. Pointers obtained here must not cross
 * threads.
 *
 * Must not be called from inside an ExecMode::Parallel run (throws
 * std::logic_error): such a run spans several OS threads, so
 * "thread-local" no longer means "run-local" — the same goroutine
 * would see a different detector after every migration. Parallel
 * runs attach race::Sharded instead.
 */
race::Detector &threadLocalDetector(size_t shadow_depth = 4);

/**
 * The calling OS thread's reusable wait-for-graph detector, reset()
 * on every call — the Table 8 counterpart of threadLocalDetector.
 * Steady state, a sweep constructs no waitgraph detectors and reuses
 * each worker's hash-table capacity run over run. Pointers obtained
 * here must not cross threads. Like threadLocalDetector, throws
 * std::logic_error when called from inside an ExecMode::Parallel run.
 */
waitgraph::Detector &threadLocalWaitgraphDetector();

/**
 * runSeeds with the race detector attached: each run gets this
 * worker's threadLocalDetector (reset between seeds) as an event-bus
 * subscriber, and race reports land in the corresponding
 * RunReport::raceMessages. Same determinism contract as runSeeds —
 * reports are seed-list-ordered and bit-identical to a serial loop.
 *
 * @p base must not carry subscribers of its own (throws
 * std::logic_error), exactly like runSeeds.
 */
std::vector<RunReport> runSeedsRaced(
    const std::function<void()> &program,
    const std::vector<uint64_t> &seeds, const RunOptions &base = {},
    const SweepOptions &sweep = {}, size_t shadow_depth = 4);

/**
 * Warm the sweep machinery ahead of a measured run: spawns (or
 * grows to) the sweep's worker threads in sharedPool() and pre-sizes
 * each worker's fiber StackPool with @p stacks_per_worker stacks of
 * @p stack_bytes, so the first measured epoch pays neither thread
 * startup nor first-touch mmap traffic. Harmless to skip — arenas
 * warm themselves after one epoch — but benches call it so their
 * first timed configuration is steady-state.
 */
void warmSweepWorkers(const SweepOptions &sweep = {},
                      size_t stacks_per_worker = 8,
                      size_t stack_bytes = 128 * 1024);

} // namespace golite::parallel

#endif // GOLITE_PARALLEL_SWEEP_HH
