#include "parallel/pool.hh"

#include <algorithm>
#include <cstdlib>

namespace golite::parallel
{

unsigned
defaultWorkers()
{
    if (const char *env = std::getenv("GOLITE_WORKERS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed >= 1)
            return static_cast<unsigned>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

WorkerPool::WorkerPool(unsigned workers)
    : workers_(workers ? workers : defaultWorkers())
{
    threads_.reserve(workers_ - 1);
    for (unsigned i = 0; i + 1 < workers_; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
WorkerPool::workerLoop()
{
    uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mu_);
            wake_.wait(lock, [this, seen] {
                return stopping_ || epoch_ != seen;
            });
            if (stopping_)
                return;
            seen = epoch_;
        }
        drainCurrentJob();
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (--busy_ == 0)
                done_.notify_all();
        }
    }
}

void
WorkerPool::drainCurrentJob()
{
    for (;;) {
        const size_t begin = cursor_.fetch_add(chunk_);
        if (begin >= n_)
            return;
        const size_t end = std::min(begin + chunk_, n_);
        for (size_t i = begin; i < end; ++i) {
            try {
                (*fn_)(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mu_);
                if (!firstError_)
                    firstError_ = std::current_exception();
                // Abandon the rest of the index space.
                cursor_.store(n_);
                return;
            }
        }
    }
}

void
WorkerPool::forEach(size_t n, const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    if (workers_ == 1 || n == 1) {
        // Pure caller-side path: no chunking, no synchronization —
        // byte-for-byte the serial loop.
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        fn_ = &fn;
        n_ = n;
        // ~8 chunks per worker self-balances uneven job costs while
        // keeping cursor contention negligible.
        chunk_ = std::max<size_t>(1, n / (workers_ * 8));
        cursor_.store(0);
        firstError_ = nullptr;
        busy_ = static_cast<unsigned>(threads_.size());
        epoch_++;
    }
    wake_.notify_all();
    drainCurrentJob(); // the calling thread is the last worker
    std::unique_lock<std::mutex> lock(mu_);
    done_.wait(lock, [this] { return busy_ == 0; });
    fn_ = nullptr;
    if (firstError_)
        std::rethrow_exception(firstError_);
}

} // namespace golite::parallel
