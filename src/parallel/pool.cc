#include "parallel/pool.hh"

#include <algorithm>
#include <cstdlib>

namespace golite::parallel
{

namespace
{

/** Set while the calling thread is executing inside a pool epoch
 *  (worker thread or submitting caller). Guards against nested
 *  forEach: a sweep submitted from inside a job runs inline. */
thread_local bool inEpoch = false;

struct EpochScope
{
    EpochScope() { inEpoch = true; }
    ~EpochScope() { inEpoch = false; }
};

} // namespace

unsigned
defaultWorkers()
{
    if (const char *env = std::getenv("GOLITE_WORKERS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed >= 1)
            return static_cast<unsigned>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

WorkerPool::WorkerPool(unsigned workers)
    : workers_(workers ? workers : defaultWorkers())
{
    threads_.reserve(workers_ - 1);
    for (unsigned slot = 1; slot < workers_; ++slot)
        threads_.emplace_back([this, slot] { workerLoop(slot, 0); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

bool
WorkerPool::insideEpoch()
{
    return inEpoch;
}

void
WorkerPool::ensureWorkers(unsigned workers)
{
    // Only called with submitMu_ held (or from the constructor-free
    // single-threaded path), so no epoch is in flight while threads
    // are added.
    std::lock_guard<std::mutex> lock(mu_);
    if (workers <= workers_)
        return;
    threads_.reserve(workers - 1);
    for (unsigned slot = workers_; slot < workers; ++slot) {
        // The baseline epoch is captured HERE, under mu_, not read by
        // the new thread itself: a thread added just before an epoch
        // submission might not get scheduled until after epoch_ is
        // bumped, and reading epoch_ then would make it skip the very
        // epoch whose busy_ count includes it — deadlocking the
        // barrier.
        threads_.emplace_back(
            [this, slot, seen = epoch_] { workerLoop(slot, seen); });
    }
    workers_ = workers;
}

void
WorkerPool::workerLoop(unsigned slot, uint64_t seen)
{
    // @p seen is the epoch counter at the moment this thread was
    // created (captured under mu_ by the spawner): epochs at or
    // before it finished without counting this thread; anything
    // newer includes it.
    for (;;) {
        bool participate;
        {
            std::unique_lock<std::mutex> lock(mu_);
            wake_.wait(lock, [this, seen] {
                return stopping_ || epoch_ != seen;
            });
            if (stopping_)
                return;
            seen = epoch_;
            // Epochs may cap participation below the pool size; a
            // spectator waits for the next epoch without touching
            // busy_.
            participate = slot < active_;
        }
        if (!participate)
            continue;
        {
            EpochScope scope;
            drainCurrentJob(slot);
        }
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (--busy_ == 0)
                done_.notify_all();
        }
    }
}

size_t
WorkerPool::claimSize(size_t remaining) const
{
    // Guided self-scheduling: claim a 1/(2k) share of what is left,
    // so early claims are large (few cursor touches, no per-item
    // synchronization) and tail claims shrink to 1 (uneven job costs
    // still balance across workers).
    return std::max<size_t>(1, remaining / (2 * active_));
}

void
WorkerPool::drainCurrentJob(unsigned slot)
{
    if (perWorker_) {
        // onAllWorkers epoch: one call per worker, no claiming.
        try {
            (*fn_)(slot, slot);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mu_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        return;
    }
    for (;;) {
        const size_t seen = cursor_.load(std::memory_order_relaxed);
        if (seen >= n_)
            return;
        const size_t want = claimSize(n_ - seen);
        const size_t begin = cursor_.fetch_add(want);
        if (begin >= n_)
            return;
        const size_t end = std::min(begin + want, n_);
        for (size_t i = begin; i < end; ++i) {
            try {
                (*fn_)(slot, i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mu_);
                if (!firstError_)
                    firstError_ = std::current_exception();
                // Abandon the rest of the index space.
                cursor_.store(n_);
                return;
            }
        }
    }
}

void
WorkerPool::runEpoch(size_t n, unsigned active,
                     const std::function<void(unsigned, size_t)> &fn,
                     bool per_worker)
{
    // One epoch at a time: concurrent sweeps from different threads
    // serialize here (each still runs fully parallel inside its
    // epoch).
    std::lock_guard<std::mutex> submit(submitMu_);
    if (active > workers_)
        ensureWorkers(active);
    {
        std::lock_guard<std::mutex> lock(mu_);
        fn_ = &fn;
        n_ = n;
        active_ = active;
        perWorker_ = per_worker;
        cursor_.store(0);
        firstError_ = nullptr;
        busy_ = active - 1; // pool threads; the caller is worker 0
        epoch_++;
    }
    wake_.notify_all();
    {
        EpochScope scope;
        drainCurrentJob(0); // the calling thread is worker 0
    }
    std::unique_lock<std::mutex> lock(mu_);
    done_.wait(lock, [this] { return busy_ == 0; });
    fn_ = nullptr;
    if (firstError_)
        std::rethrow_exception(firstError_);
}

void
WorkerPool::forEachWorker(
    size_t n, const std::function<void(unsigned, size_t)> &fn,
    unsigned use_workers)
{
    if (n == 0)
        return;
    const unsigned active = std::max(1u, activeWorkers(use_workers));
    if (active == 1 || n == 1 || inEpoch) {
        // Pure caller-side path: no chunking, no synchronization —
        // byte-for-byte the serial loop. Also the nested-submission
        // fallback: a job that fans out again runs its fan-out
        // inline, keeping the pool deadlock-free.
        for (size_t i = 0; i < n; ++i)
            fn(0, i);
        return;
    }
    runEpoch(n, active, fn, /*per_worker=*/false);
}

void
WorkerPool::onAllWorkers(const std::function<void(unsigned)> &fn,
                         unsigned use_workers)
{
    const unsigned active = std::max(1u, activeWorkers(use_workers));
    if (active == 1 || inEpoch) {
        fn(0);
        return;
    }
    runEpoch(active, active,
             [&fn](unsigned worker, size_t) { fn(worker); },
             /*per_worker=*/true);
}

void
WorkerPool::forEach(size_t n, const std::function<void(size_t)> &fn,
                    unsigned use_workers)
{
    forEachWorker(
        n, [&fn](unsigned, size_t i) { fn(i); }, use_workers);
}

WorkerPool &
sharedPool()
{
    static WorkerPool pool(defaultWorkers());
    return pool;
}

} // namespace golite::parallel
