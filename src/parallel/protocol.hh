/**
 * @file
 * Corpus-wide protocol drivers: the Table 8/12 evaluation loops as
 * parallel primitives.
 *
 * Both detector evaluations reduce to the same shape — "for each bug,
 * find the first seed whose run satisfies a predicate" (manifests the
 * blocking symptom for Table 8, trips the race detector for Table 12).
 * findFirstSeed parallelises that search in seed waves: a wave of
 * seeds runs concurrently, and the smallest satisfying seed in the
 * earliest satisfying wave is the answer — exactly the seed a serial
 * 0,1,2,... scan would have returned, for any worker count. The only
 * cost of parallelism is up to one wave of extra runs past the hit.
 *
 * The probe must be self-contained: it runs concurrently on several
 * threads, so anything mutable it needs (e.g. a race::Detector) must
 * be constructed inside the call, never shared across seeds.
 */

#ifndef GOLITE_PARALLEL_PROTOCOL_HH
#define GOLITE_PARALLEL_PROTOCOL_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "corpus/bug.hh"
#include "parallel/pool.hh"
#include "parallel/sweep.hh"

namespace golite::parallel
{

/**
 * Smallest seed in [0, limit) for which @p probe returns true, or
 * nullopt. Seeds are probed in waves of active-workers * 4 across
 * @p pool (@p use_workers caps participation, 0 = the whole pool);
 * within a wave all probes run, then the minimum hit (if any) wins —
 * identical to the serial first-hit for every worker count.
 */
std::optional<uint64_t> findFirstSeed(
    const std::function<bool(uint64_t)> &probe, uint64_t limit,
    WorkerPool &pool, unsigned use_workers = 0);

/** findFirstSeed on the persistent sharedPool(), capped at
 *  @p sweep.workers workers (0 = defaultWorkers()). */
std::optional<uint64_t> findFirstSeed(
    const std::function<bool(uint64_t)> &probe, uint64_t limit,
    const SweepOptions &sweep = {});

/**
 * Parallel counterpart of bench::findManifestingSeed: smallest seed
 * in [0, limit) under which @p bug's buggy variant manifests.
 */
std::optional<uint64_t> findManifestingSeed(
    const corpus::BugCase &bug, uint64_t limit, WorkerPool &pool);

/**
 * The Table 12 inner loop: smallest seed in [0, limit) under which
 * @p bug's buggy variant trips the happens-before race detector.
 * Each worker thread reuses one reset() detector across all the
 * seeds it probes (threadLocalDetector), so the sweep constructs no
 * detectors and, warm, allocates nothing per seed.
 */
std::optional<uint64_t> findFirstRaceSeed(
    const corpus::BugCase &bug, uint64_t limit, WorkerPool &pool,
    size_t shadow_depth = 4);

/** Per-bug result of a corpus-wide protocol sweep. */
struct ProtocolResult
{
    const corpus::BugCase *bug = nullptr;
    /** First seed where the predicate held; nullopt = never. */
    std::optional<uint64_t> firstSeed;
};

/**
 * For every bug in @p bugs (order preserved), find the first seed in
 * [0, seed_limit) where @p probe holds. Bugs are processed in order,
 * each one's seed waves fanned across the pool, so the result vector
 * is deterministic and worker-count independent.
 */
std::vector<ProtocolResult> sweepCorpus(
    const std::vector<const corpus::BugCase *> &bugs,
    const std::function<bool(const corpus::BugCase &, uint64_t)> &probe,
    uint64_t seed_limit, const SweepOptions &sweep = {});

} // namespace golite::parallel

#endif // GOLITE_PARALLEL_PROTOCOL_HH
