#include "parallel/sweep.hh"

#include <chrono>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <utility>

#include "runtime/stack_pool.hh"

namespace golite::parallel
{

namespace
{

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/**
 * parallelMap with the sweep's phase accounting: buffer setup, the
 * epoch itself, and the index-ordered merge are timed separately when
 * the sweep carries a SweepProfile. Shared state is touched exactly
 * twice per sweep — once to submit the epoch, once to merge — and
 * each worker appends results to its own cache-line-aligned buffer in
 * between.
 */
std::vector<RunReport>
mapReports(size_t n, const std::function<RunReport(size_t)> &fn,
           const SweepOptions &sweep)
{
    WorkerPool &pool = sharedPool();
    const unsigned active =
        std::max(1u, sweep.workers == 0 ? defaultWorkers()
                                        : sweep.workers);

    if (active == 1 || n <= 1 || WorkerPool::insideEpoch()) {
        // Serial / nested path: the plain loop, still profiled as
        // pure run time.
        const double t0 = sweep.profile ? nowSeconds() : 0;
        std::vector<RunReport> out(n);
        for (size_t i = 0; i < n; ++i)
            out[i] = fn(i);
        if (sweep.profile) {
            sweep.profile->runSeconds += nowSeconds() - t0;
            sweep.profile->epochs++;
        }
        return out;
    }

    const double tSetup = sweep.profile ? nowSeconds() : 0;
    pool.ensureWorkers(active);
    std::vector<RunReport> out(n);
    struct alignas(64) WorkerBuffer
    {
        std::vector<std::pair<size_t, RunReport>> items;
    };
    std::vector<WorkerBuffer> buffers(active);
    for (WorkerBuffer &buffer : buffers)
        buffer.items.reserve(n / active + 8);

    const double tRun = sweep.profile ? nowSeconds() : 0;
    pool.forEachWorker(
        n,
        [&buffers, &fn](unsigned worker, size_t i) {
            buffers[worker].items.emplace_back(i, fn(i));
        },
        active);

    const double tMerge = sweep.profile ? nowSeconds() : 0;
    for (WorkerBuffer &buffer : buffers)
        for (auto &[i, report] : buffer.items)
            out[i] = std::move(report);

    if (sweep.profile) {
        const double tEnd = nowSeconds();
        sweep.profile->setupSeconds += tRun - tSetup;
        sweep.profile->runSeconds += tMerge - tRun;
        sweep.profile->mergeSeconds += tEnd - tMerge;
        sweep.profile->epochs++;
    }
    return out;
}

} // namespace

std::vector<RunReport>
runSeeds(const std::function<void()> &program,
         const std::vector<uint64_t> &seeds, const RunOptions &base,
         const SweepOptions &sweep)
{
    if (!base.subscribers.empty()) {
        throw std::logic_error(
            "runSeeds: RunOptions carries a detector instance, which "
            "concurrent runs would share and race on; attach a fresh "
            "detector per run via runJobs instead");
    }
    return mapReports(
        seeds.size(),
        [&](size_t i) {
            RunOptions options = base;
            options.seed = seeds[i];
            return run(program, options);
        },
        sweep);
}

std::vector<RunReport>
runSeedRange(const std::function<void()> &program, uint64_t first,
             uint64_t count, const RunOptions &base,
             const SweepOptions &sweep)
{
    std::vector<uint64_t> seeds(count);
    std::iota(seeds.begin(), seeds.end(), first);
    return runSeeds(program, seeds, base, sweep);
}

std::vector<RunReport>
runJobs(const std::vector<std::function<RunReport()>> &jobs,
        const SweepOptions &sweep)
{
    return mapReports(
        jobs.size(), [&](size_t i) { return jobs[i](); }, sweep);
}

void
installPoolExecutor()
{
    static std::once_flag once;
    std::call_once(once, [] {
        Scheduler::setParallelExecutor(
            [](unsigned nthreads,
               const std::function<void(unsigned)> &body) {
                if (WorkerPool::insideEpoch()) {
                    // A pool worker cannot submit an epoch to its own
                    // pool; nested parallel runs get ad-hoc threads.
                    std::vector<std::thread> team;
                    team.reserve(nthreads - 1);
                    for (unsigned i = 1; i < nthreads; ++i)
                        team.emplace_back([&body, i] { body(i); });
                    body(0);
                    for (std::thread &t : team)
                        t.join();
                    return;
                }
                WorkerPool &pool = sharedPool();
                pool.ensureWorkers(nthreads);
                pool.onAllWorkers([&body](unsigned w) { body(w); },
                                  nthreads);
            });
    });
}

RunReport
runParallel(const std::function<void()> &program,
            const RunOptions &base, const SweepOptions &sweep)
{
    installPoolExecutor();
    RunOptions options = base;
    options.execMode = ExecMode::Parallel;
    if (options.parallelThreads == 0) {
        const unsigned w =
            sweep.workers == 0 ? defaultWorkers() : sweep.workers;
        options.parallelThreads = std::max(2u, w);
    }
    return run(program, options);
}

namespace
{

void
rejectParallelRunContext(const char *what)
{
    Scheduler *active = Scheduler::current();
    if (active != nullptr && active->parallel()) {
        throw std::logic_error(std::string(what) +
                               ": called from inside an "
                               "ExecMode::Parallel run, whose "
                               "goroutines migrate across OS threads "
                               "— a thread_local detector would be "
                               "shared between concurrent workers; "
                               "attach race::Sharded to the run "
                               "instead");
    }
}

} // namespace

race::Detector &
threadLocalDetector(size_t shadow_depth)
{
    rejectParallelRunContext("threadLocalDetector");
    thread_local race::Detector detector(shadow_depth);
    detector.reset(shadow_depth);
    return detector;
}

waitgraph::Detector &
threadLocalWaitgraphDetector()
{
    rejectParallelRunContext("threadLocalWaitgraphDetector");
    thread_local waitgraph::Detector detector;
    detector.reset();
    return detector;
}

std::vector<RunReport>
runSeedsRaced(const std::function<void()> &program,
              const std::vector<uint64_t> &seeds,
              const RunOptions &base, const SweepOptions &sweep,
              size_t shadow_depth)
{
    if (!base.subscribers.empty()) {
        throw std::logic_error(
            "runSeedsRaced: RunOptions already carries a detector "
            "instance; the race detector is attached per worker "
            "thread by the sweep itself");
    }
    return mapReports(
        seeds.size(),
        [&](size_t i) {
            race::Detector &detector =
                threadLocalDetector(shadow_depth);
            RunOptions options = base;
            options.seed = seeds[i];
            options.subscribers.push_back(&detector);
            return run(program, options);
        },
        sweep);
}

void
warmSweepWorkers(const SweepOptions &sweep, size_t stacks_per_worker,
                 size_t stack_bytes)
{
    WorkerPool &pool = sharedPool();
    const unsigned active =
        std::max(1u, sweep.workers == 0 ? defaultWorkers()
                                        : sweep.workers);
    pool.ensureWorkers(active);
    pool.onAllWorkers(
        [&](unsigned) {
            // Pre-map fiber stacks so the first measured epoch pays
            // no mmap/page-fault traffic, and touch the reusable
            // detectors so their hash tables exist.
            StackPool::local().reserve(stacks_per_worker,
                                       stack_bytes);
            threadLocalDetector();
            threadLocalWaitgraphDetector();
            // One trivial run warms this worker's scheduler arena.
            RunOptions options;
            options.seed = 1;
            run([] {}, options);
        },
        active);
}

} // namespace golite::parallel
