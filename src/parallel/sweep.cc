#include "parallel/sweep.hh"

#include <numeric>
#include <stdexcept>

namespace golite::parallel
{

std::vector<RunReport>
runSeeds(const std::function<void()> &program,
         const std::vector<uint64_t> &seeds, const RunOptions &base,
         const SweepOptions &sweep)
{
    if (!base.subscribers.empty()) {
        throw std::logic_error(
            "runSeeds: RunOptions carries a detector instance, which "
            "concurrent runs would share and race on; attach a fresh "
            "detector per run via runJobs instead");
    }
    WorkerPool pool(sweep.workers);
    return parallelMap(pool, seeds.size(), [&](size_t i) {
        RunOptions options = base;
        options.seed = seeds[i];
        return run(program, options);
    });
}

std::vector<RunReport>
runSeedRange(const std::function<void()> &program, uint64_t first,
             uint64_t count, const RunOptions &base,
             const SweepOptions &sweep)
{
    std::vector<uint64_t> seeds(count);
    std::iota(seeds.begin(), seeds.end(), first);
    return runSeeds(program, seeds, base, sweep);
}

std::vector<RunReport>
runJobs(const std::vector<std::function<RunReport()>> &jobs,
        const SweepOptions &sweep)
{
    WorkerPool pool(sweep.workers);
    return parallelMap(pool, jobs.size(),
                       [&](size_t i) { return jobs[i](); });
}

race::Detector &
threadLocalDetector(size_t shadow_depth)
{
    thread_local race::Detector detector(shadow_depth);
    detector.reset(shadow_depth);
    return detector;
}

std::vector<RunReport>
runSeedsRaced(const std::function<void()> &program,
              const std::vector<uint64_t> &seeds,
              const RunOptions &base, const SweepOptions &sweep,
              size_t shadow_depth)
{
    if (!base.subscribers.empty()) {
        throw std::logic_error(
            "runSeedsRaced: RunOptions already carries a detector "
            "instance; the race detector is attached per worker "
            "thread by the sweep itself");
    }
    WorkerPool pool(sweep.workers);
    return parallelMap(pool, seeds.size(), [&](size_t i) {
        race::Detector &detector = threadLocalDetector(shadow_depth);
        RunOptions options = base;
        options.seed = seeds[i];
        options.subscribers.push_back(&detector);
        return run(program, options);
    });
}

} // namespace golite::parallel
