#include "parallel/protocol.hh"

#include <algorithm>

namespace golite::parallel
{

std::optional<uint64_t>
findFirstSeed(const std::function<bool(uint64_t)> &probe,
              uint64_t limit, WorkerPool &pool, unsigned use_workers)
{
    if (use_workers > pool.workers())
        pool.ensureWorkers(use_workers);
    const uint64_t wave = std::max<uint64_t>(
        1,
        static_cast<uint64_t>(pool.activeWorkers(use_workers)) * 4);
    for (uint64_t base = 0; base < limit; base += wave) {
        const uint64_t count = std::min(wave, limit - base);
        // parallelMap keeps workers out of each other's cache lines:
        // each appends to its own aligned buffer (a shared hit[]
        // vector of bytes would false-share under fine probes).
        const std::vector<char> hit = parallelMap(
            pool, static_cast<size_t>(count),
            [&](size_t i) {
                return static_cast<char>(probe(base + i) ? 1 : 0);
            },
            use_workers);
        for (uint64_t i = 0; i < count; ++i)
            if (hit[i])
                return base + i;
    }
    return std::nullopt;
}

std::optional<uint64_t>
findFirstSeed(const std::function<bool(uint64_t)> &probe,
              uint64_t limit, const SweepOptions &sweep)
{
    return findFirstSeed(probe, limit, sharedPool(), sweep.workers);
}

std::optional<uint64_t>
findManifestingSeed(const corpus::BugCase &bug, uint64_t limit,
                    WorkerPool &pool)
{
    return findFirstSeed(
        [&bug](uint64_t seed) {
            RunOptions options;
            options.seed = seed;
            return bug.run(corpus::Variant::Buggy, options).manifested;
        },
        limit, pool);
}

std::optional<uint64_t>
findFirstRaceSeed(const corpus::BugCase &bug, uint64_t limit,
                  WorkerPool &pool, size_t shadow_depth)
{
    return findFirstSeed(
        [&bug, shadow_depth](uint64_t seed) {
            race::Detector &detector =
                threadLocalDetector(shadow_depth);
            RunOptions options;
            options.seed = seed;
            options.subscribers.push_back(&detector);
            bug.run(corpus::Variant::Buggy, options);
            return !detector.reports().empty();
        },
        limit, pool);
}

std::vector<ProtocolResult>
sweepCorpus(
    const std::vector<const corpus::BugCase *> &bugs,
    const std::function<bool(const corpus::BugCase &, uint64_t)> &probe,
    uint64_t seed_limit, const SweepOptions &sweep)
{
    WorkerPool &pool = sharedPool();
    std::vector<ProtocolResult> results;
    results.reserve(bugs.size());
    for (const corpus::BugCase *bug : bugs) {
        ProtocolResult result;
        result.bug = bug;
        result.firstSeed = findFirstSeed(
            [&probe, bug](uint64_t seed) { return probe(*bug, seed); },
            seed_limit, pool, sweep.workers);
        results.push_back(result);
    }
    return results;
}

} // namespace golite::parallel
