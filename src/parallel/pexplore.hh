/**
 * @file
 * Parallel schedule exploration: the explorer's choice-tree DFS fanned
 * across workers by splitting the prefix space into subtrees.
 *
 * Determinism contract: for a fixed (program, options) the result —
 * schedule counts, exhaustive flag, firstBad report and schedule — is
 * identical for every worker count, and when the tree fits inside
 * maxSchedules it is identical to serial explore::exploreAll. Three
 * mechanisms buy this:
 *
 *  1. The frontier (the set of subtree prefixes) is built by a serial
 *     breadth-first expansion whose probe runs are deterministic
 *     replays, so every worker count sees the same subtrees.
 *  2. Budget is granted in fixed-size tickets, round by round, in
 *     lexicographic prefix order, from counts that are themselves
 *     deterministic — never from completion order or a shared clock.
 *  3. Results merge in lexicographic prefix order, which equals the
 *     serial DFS visit order, so "first bad schedule" means the same
 *     schedule serial DFS would have flagged first.
 *
 * The frontier probes are extra replay runs not counted against
 * maxSchedules; with F frontier prefixes the overhead is at most F
 * runs, negligible against the enumeration itself.
 *
 * Dpor mode (and any preemptionBound > 0) discovers its reduced
 * frontier dynamically from backtrack analysis, so the prefix space
 * cannot be pre-split: those explorations run the serial DPOR walker
 * in ticketed rounds on the calling thread. The determinism contract
 * holds trivially — the result is byte-identical for every worker
 * count — and the pruning itself is the speedup.
 */

#ifndef GOLITE_PARALLEL_PEXPLORE_HH
#define GOLITE_PARALLEL_PEXPLORE_HH

#include <functional>

#include "explore/explorer.hh"
#include "parallel/pool.hh"

namespace golite::parallel
{

/** Knobs for one parallel exploration. */
struct ParallelExploreOptions
{
    /** Limits and run options, as for explore::exploreAll. */
    explore::ExploreOptions explore;
    /** Worker threads; 0 = defaultWorkers(). With 1 worker the call
     *  is exactly explore::exploreAll — no frontier, no probes. */
    unsigned workers = 0;
    /** Target frontier size is workers * frontierPerWorker subtrees:
     *  enough slack for the chunked queue to balance uneven subtree
     *  sizes. */
    size_t frontierPerWorker = 8;
    /** Schedules granted to one subtree per round. Smaller tickets
     *  track the serial budget cutoff more closely when the tree
     *  exceeds maxSchedules; larger ones mean fewer rounds. */
    size_t roundTicket = 512;
};

/**
 * Enumerate schedules of @p run_once across workers. @p run_once is
 * invoked concurrently on several threads and must be thread-safe in
 * the same sense as runSeeds' program argument (only touch state
 * created inside the run).
 */
explore::ExploreResult exploreAllParallel(
    const std::function<RunReport(const RunOptions &)> &run_once,
    const ParallelExploreOptions &options = {});

/** Convenience: explore a plain program across workers. */
explore::ExploreResult exploreProgramParallel(
    const std::function<void()> &program,
    const ParallelExploreOptions &options = {});

} // namespace golite::parallel

#endif // GOLITE_PARALLEL_PEXPLORE_HH
