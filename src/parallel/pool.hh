/**
 * @file
 * Persistent worker pool for fanning independent golite runs across OS
 * threads.
 *
 * Every measurement in this reproduction — the Table 8/12 detector
 * protocols, the explorer's schedule enumeration, the PCT/random
 * testers — is a sweep of independent deterministic runs. Since the
 * runtime keeps all per-run state in the Scheduler instance and the
 * active-run slot is thread_local, N workers can each drive their own
 * run concurrently; this pool is the machinery that does so.
 *
 * The pool is built for *reuse*: threads are spawned once and sweeps
 * are submitted as epochs, so a worker thread's thread_local arenas —
 * its fiber StackPool, its reusable race/waitgraph detectors, its
 * scheduler run arena — stay warm from one sweep to the next instead
 * of being rebuilt per call. sharedPool() is the process-wide
 * instance every sweep primitive in src/parallel submits to; it grows
 * on demand (ensureWorkers) and never shrinks.
 *
 * Work distribution is batched dynamic claiming: workers (including
 * the calling thread) claim index *ranges* from a shared atomic
 * cursor, with a range size that adapts to the work remaining (large
 * ranges early to keep cursor traffic negligible, shrinking toward 1
 * so uneven job costs still self-balance at the tail). Results are
 * written by index — or appended to per-worker cache-line-aligned
 * buffers and merged once per sweep (parallelMap) — which makes every
 * merge deterministic: the output order is the input order, never
 * completion order.
 */

#ifndef GOLITE_PARALLEL_POOL_HH
#define GOLITE_PARALLEL_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace golite::parallel
{

/**
 * Worker count to use when the caller does not pin one: the
 * GOLITE_WORKERS environment variable if set (CI pins 2 for
 * reproducible timing), else std::thread::hardware_concurrency().
 * Always at least 1.
 */
unsigned defaultWorkers();

/**
 * A persistent pool of worker threads executing index-space loops
 * submitted as epochs.
 *
 * The pool spawns workers()-1 threads; the thread calling forEach
 * participates as worker 0, so workers == 1 means "run entirely on
 * the caller, no threads at all" — handy both as the serial baseline
 * and in single-core environments. An epoch may cap how many of the
 * pool's workers participate (use_workers), so one long-lived pool
 * serves sweeps at any worker count without respawning threads.
 *
 * Submissions from different threads serialize (one epoch at a time);
 * a forEach issued from *inside* a pool job runs inline on the caller
 * — serial, deterministic, and deadlock-free — rather than nesting.
 */
class WorkerPool
{
  public:
    /** @param workers worker count; 0 means defaultWorkers(). */
    explicit WorkerPool(unsigned workers = 0);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    unsigned workers() const { return workers_; }

    /** Grow the pool to at least @p workers slots (never shrinks).
     *  Spawns only the missing threads; cheap when already large
     *  enough. forEach calls this automatically for its cap. */
    void ensureWorkers(unsigned workers);

    /**
     * Worker slots an epoch submitted with @p use_workers would
     * occupy: use_workers itself (0 = all current workers), at least
     * 1. Sizing helper for per-worker result buffers.
     */
    unsigned
    activeWorkers(unsigned use_workers = 0) const
    {
        return use_workers == 0 ? workers_ : use_workers;
    }

    /**
     * Run fn(i) for every i in [0, n), fanned across at most
     * @p use_workers workers (0 = all). Blocks until all indices
     * completed. If any fn throws, the remaining indices are
     * abandoned and the first exception is rethrown on the caller.
     */
    void forEach(size_t n, const std::function<void(size_t)> &fn,
                 unsigned use_workers = 0);

    /**
     * forEach variant whose callback also receives the executing
     * worker's stable slot id (0 = the calling thread, 1..k-1 = pool
     * threads, always < activeWorkers(use_workers)). The id indexes
     * per-worker state — result buffers, arenas — without locking.
     */
    void forEachWorker(
        size_t n, const std::function<void(unsigned, size_t)> &fn,
        unsigned use_workers = 0);

    /**
     * Run fn(worker) exactly once on every participating worker —
     * the calling thread (worker 0) included. Unlike forEach, work is
     * not claimed from a cursor: each worker executes its own call,
     * so per-thread arenas (StackPool, thread_local detectors,
     * scheduler run arenas) can be warmed or inspected on every
     * thread deterministically.
     */
    void onAllWorkers(const std::function<void(unsigned)> &fn,
                      unsigned use_workers = 0);

    /** True while the calling thread is executing a pool job (any
     *  pool); forEach from such a context runs inline. */
    static bool insideEpoch();

  private:
    /** @p start_epoch: epoch_ at spawn time (captured under mu_);
     *  the thread only joins epochs newer than it. */
    void workerLoop(unsigned slot, uint64_t start_epoch);

    /** Submit one epoch and participate as worker 0. */
    void runEpoch(size_t n, unsigned active,
                  const std::function<void(unsigned, size_t)> &fn,
                  bool per_worker);

    /** Claim and run index ranges until the epoch is exhausted. */
    void drainCurrentJob(unsigned slot);

    /** Next claim size under guided self-scheduling: proportional to
     *  the work remaining per active worker, floored at 1. */
    size_t claimSize(size_t remaining) const;

    unsigned workers_;
    std::vector<std::thread> threads_;

    /** Serializes whole epochs across submitting threads. */
    std::mutex submitMu_;

    std::mutex mu_;
    std::condition_variable wake_;
    std::condition_variable done_;
    const std::function<void(unsigned, size_t)> *fn_ = nullptr;
    size_t n_ = 0;
    unsigned active_ = 1;    ///< worker slots participating this epoch
    bool perWorker_ = false; ///< onAllWorkers epoch (no cursor claims)
    uint64_t epoch_ = 0;     ///< bumped per forEach; workers watch it
    unsigned busy_ = 0;      ///< pool threads still draining this epoch
    bool stopping_ = false;
    std::exception_ptr firstError_;

    /** The claim cursor lives on its own cache line: it is the one
     *  word every worker hammers, and sharing its line with the
     *  epoch/wait fields above would put false sharing on the claim
     *  fast path. */
    alignas(64) std::atomic<size_t> cursor_{0};
};

/**
 * The process-wide pool all sweep primitives submit to. Created on
 * first use sized defaultWorkers(); grows on demand when a sweep asks
 * for more. Long-lived so worker threads' thread_local arenas stay
 * warm across sweeps.
 */
WorkerPool &sharedPool();

/**
 * Map [0, n) through @p fn on @p pool, collecting results in index
 * order. The result type must be default-constructible.
 *
 * Contention-free by construction: each worker appends (index,
 * result) pairs to its own cache-line-aligned buffer, and the caller
 * merges every buffer into the output vector once, after the epoch
 * barrier — no lock is taken per result, and no two workers ever
 * write the same cache line.
 */
template <typename F>
auto
parallelMap(WorkerPool &pool, size_t n, F &&fn,
            unsigned use_workers = 0)
    -> std::vector<decltype(fn(size_t{}))>
{
    using R = decltype(fn(size_t{}));
    std::vector<R> out(n);
    const unsigned active = pool.activeWorkers(use_workers);
    if (active <= 1 || n <= 1) {
        for (size_t i = 0; i < n; ++i)
            out[i] = fn(i);
        return out;
    }
    struct alignas(64) WorkerBuffer
    {
        std::vector<std::pair<size_t, R>> items;
    };
    std::vector<WorkerBuffer> buffers(active);
    for (WorkerBuffer &buffer : buffers)
        buffer.items.reserve(n / active + 8);
    pool.forEachWorker(
        n,
        [&buffers, &fn](unsigned worker, size_t i) {
            buffers[worker].items.emplace_back(i, fn(i));
        },
        use_workers);
    for (WorkerBuffer &buffer : buffers)
        for (auto &[i, result] : buffer.items)
            out[i] = std::move(result);
    return out;
}

} // namespace golite::parallel

#endif // GOLITE_PARALLEL_POOL_HH
