/**
 * @file
 * Fixed worker pool for fanning independent golite runs across OS
 * threads.
 *
 * Every measurement in this reproduction — the Table 8/12 detector
 * protocols, the explorer's schedule enumeration, the PCT/random
 * testers — is a sweep of independent deterministic runs. Since the
 * runtime keeps all per-run state in the Scheduler instance and the
 * active-run slot is thread_local, N workers can each drive their own
 * run concurrently; this pool is the machinery that does so.
 *
 * Work distribution is a chunked dynamic queue: workers (including
 * the calling thread) claim index ranges from a shared atomic cursor,
 * so uneven job costs self-balance without per-job locking. Results
 * are written by index, which makes every merge deterministic — the
 * output order is the input order, never completion order.
 */

#ifndef GOLITE_PARALLEL_POOL_HH
#define GOLITE_PARALLEL_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace golite::parallel
{

/**
 * Worker count to use when the caller does not pin one: the
 * GOLITE_WORKERS environment variable if set (CI pins 2 for
 * reproducible timing), else std::thread::hardware_concurrency().
 * Always at least 1.
 */
unsigned defaultWorkers();

/**
 * A fixed pool of worker threads executing index-space loops.
 *
 * The pool spawns workers()-1 threads; the thread calling forEach
 * participates as the last worker, so workers == 1 means "run
 * entirely on the caller, no threads at all" — handy both as the
 * serial baseline and in single-core environments.
 */
class WorkerPool
{
  public:
    /** @param workers worker count; 0 means defaultWorkers(). */
    explicit WorkerPool(unsigned workers = 0);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    unsigned workers() const { return workers_; }

    /**
     * Run fn(i) for every i in [0, n), fanned across the workers.
     * Blocks until all indices completed. If any fn throws, the
     * remaining indices are abandoned and the first exception is
     * rethrown on the caller. Not reentrant: fn must not call
     * forEach on the same pool.
     */
    void forEach(size_t n, const std::function<void(size_t)> &fn);

  private:
    void workerLoop();

    /** Claim and run chunks until the index space is exhausted. */
    void drainCurrentJob();

    unsigned workers_;
    std::vector<std::thread> threads_;

    std::mutex mu_;
    std::condition_variable wake_;
    std::condition_variable done_;
    const std::function<void(size_t)> *fn_ = nullptr;
    size_t n_ = 0;
    size_t chunk_ = 1;
    std::atomic<size_t> cursor_{0};
    uint64_t epoch_ = 0;     ///< bumped per forEach; workers watch it
    unsigned busy_ = 0;      ///< workers still draining this epoch
    bool stopping_ = false;
    std::exception_ptr firstError_;
};

/**
 * Map [0, n) through @p fn on @p pool, collecting results in index
 * order. The result type must be default-constructible.
 */
template <typename F>
auto
parallelMap(WorkerPool &pool, size_t n, F &&fn)
    -> std::vector<decltype(fn(size_t{}))>
{
    std::vector<decltype(fn(size_t{}))> out(n);
    pool.forEach(n, [&out, &fn](size_t i) { out[i] = fn(i); });
    return out;
}

} // namespace golite::parallel

#endif // GOLITE_PARALLEL_POOL_HH
