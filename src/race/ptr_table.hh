/**
 * @file
 * Open-addressing pointer-keyed hash table for the race detector.
 *
 * The detector maps object addresses to shadow state and sync-object
 * addresses to clocks on every instrumented access; std::unordered_map
 * was the dominant cost of that hot path. This table is tuned for the
 * detector's access pattern: power-of-two capacity, linear probing,
 * Fibonacci pointer hashing, and no per-entry erase — entries only go
 * away wholesale via clear(), so there are no tombstones and probes
 * stop at the first empty slot.
 *
 * clear() empties the table but calls Value::clear() on occupied
 * slots instead of destroying them, keeping whatever capacity the
 * values have accumulated (clock spill vectors, shadow cell blocks):
 * a reset() detector reaches steady state with zero allocation.
 */

#ifndef GOLITE_RACE_PTR_TABLE_HH
#define GOLITE_RACE_PTR_TABLE_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace golite::race
{

template <typename Value>
class PtrTable
{
  public:
    explicit PtrTable(size_t initial_capacity = 64)
    {
        size_t cap = 16;
        while (cap < initial_capacity)
            cap <<= 1;
        slots_.resize(cap);
        mask_ = cap - 1;
    }

    /** Value for @p key, inserting a cleared one if absent. */
    Value &
    operator[](const void *key)
    {
        size_t i = indexOf(key);
        while (slots_[i].key != nullptr) {
            if (slots_[i].key == key)
                return slots_[i].value;
            i = (i + 1) & mask_;
        }
        if ((count_ + 1) * 4 > slots_.size() * 3) { // load factor 3/4
            grow();
            i = probeEmpty(key);
        }
        slots_[i].key = key;
        count_++;
        return slots_[i].value;
    }

    /** Value for @p key, or nullptr if absent. */
    Value *
    find(const void *key)
    {
        size_t i = indexOf(key);
        while (slots_[i].key != nullptr) {
            if (slots_[i].key == key)
                return &slots_[i].value;
            i = (i + 1) & mask_;
        }
        return nullptr;
    }

    /** Empty the table; occupied values are clear()ed, not destroyed. */
    void
    clear()
    {
        for (Slot &slot : slots_) {
            if (slot.key != nullptr) {
                slot.key = nullptr;
                slot.value.clear();
            }
        }
        count_ = 0;
    }

    size_t size() const { return count_; }
    size_t capacity() const { return slots_.size(); }

  private:
    struct Slot
    {
        const void *key = nullptr;
        Value value{};
    };

    size_t
    indexOf(const void *key) const
    {
        // Fibonacci hashing; low pointer bits are alignment zeros.
        const uint64_t h =
            (reinterpret_cast<uintptr_t>(key) >> 3) *
            UINT64_C(0x9E3779B97F4A7C15);
        return static_cast<size_t>(h) & mask_;
    }

    size_t
    probeEmpty(const void *key) const
    {
        size_t i = indexOf(key);
        while (slots_[i].key != nullptr)
            i = (i + 1) & mask_;
        return i;
    }

    void
    grow()
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.clear();
        slots_.resize(old.size() * 2);
        mask_ = slots_.size() - 1;
        for (Slot &slot : old) {
            if (slot.key == nullptr)
                continue;
            Slot &dst = slots_[probeEmpty(slot.key)];
            dst.key = slot.key;
            dst.value = std::move(slot.value);
        }
    }

    std::vector<Slot> slots_;
    size_t mask_ = 0;
    size_t count_ = 0;
};

} // namespace golite::race

#endif // GOLITE_RACE_PTR_TABLE_HH
