/**
 * @file
 * Open-addressing hash table for the race detector.
 *
 * The detector maps object addresses to shadow state, sync-object
 * addresses to clocks, and goroutine ids to clock slots on every
 * instrumented access; std::unordered_map was the dominant cost of
 * that hot path. This table is tuned for the detector's access
 * pattern: power-of-two capacity, linear probing, Fibonacci hashing.
 *
 * Entries can be erased (freed memory, finished goroutines): erase
 * leaves a tombstone so probe chains stay intact, inserts reuse
 * tombstones, and when tombstones pass a quarter of capacity the
 * table compacts — rehashing live entries and shrinking toward the
 * live count — so a soak run that touches millions of addresses but
 * keeps only thousands live stays O(live), not O(ever-touched).
 *
 * clear() empties the table but calls Value::clear() on occupied
 * slots instead of destroying them, keeping whatever capacity the
 * values have accumulated (clock chunk vectors, shadow cell blocks):
 * a reset() detector reaches steady state with zero allocation.
 */

#ifndef GOLITE_RACE_PTR_TABLE_HH
#define GOLITE_RACE_PTR_TABLE_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace golite::race
{

/** Key policy: sentinel values and hash for each supported key type. */
template <typename Key>
struct PtrTableKey;

template <>
struct PtrTableKey<const void *>
{
    static const void *empty() { return nullptr; }
    /** Never a real key: no object lives at address 1. */
    static const void *tombstone()
    {
        return reinterpret_cast<const void *>(1);
    }
    static uint64_t
    hash(const void *key)
    {
        // Fibonacci hashing; low pointer bits are alignment zeros.
        return (reinterpret_cast<uintptr_t>(key) >> 3) *
               UINT64_C(0x9E3779B97F4A7C15);
    }
};

template <>
struct PtrTableKey<uint64_t>
{
    /** Goroutine ids start at 1, so 0 and ~0 are free as sentinels. */
    static uint64_t empty() { return 0; }
    static uint64_t tombstone() { return ~UINT64_C(0); }
    static uint64_t
    hash(uint64_t key)
    {
        return key * UINT64_C(0x9E3779B97F4A7C15);
    }
};

template <typename Value, typename Key = const void *>
class PtrTable
{
    using Traits = PtrTableKey<Key>;

  public:
    explicit PtrTable(size_t initial_capacity = 64)
    {
        size_t cap = kMinCapacity;
        while (cap < initial_capacity)
            cap <<= 1;
        slots_.resize(cap);
        mask_ = cap - 1;
    }

    /** Value for @p key, inserting a cleared one if absent. */
    Value &
    operator[](Key key)
    {
        size_t i = indexOf(key);
        size_t insert_at = SIZE_MAX;
        while (slots_[i].key != Traits::empty()) {
            if (slots_[i].key == key)
                return slots_[i].value;
            if (slots_[i].key == Traits::tombstone() &&
                insert_at == SIZE_MAX) {
                insert_at = i;
            }
            i = (i + 1) & mask_;
        }
        if (insert_at != SIZE_MAX) {
            i = insert_at;
            tombstones_--;
        } else if ((count_ + tombstones_ + 1) * 4 > slots_.size() * 3) {
            grow();
            i = probeEmpty(key);
        }
        slots_[i].key = key;
        count_++;
        return slots_[i].value;
    }

    /** Value for @p key, or nullptr if absent. */
    Value *
    find(Key key)
    {
        size_t i = indexOf(key);
        while (slots_[i].key != Traits::empty()) {
            if (slots_[i].key == key)
                return &slots_[i].value;
            i = (i + 1) & mask_;
        }
        return nullptr;
    }

    /**
     * Remove @p key (no-op when absent; returns whether it was
     * present). The slot becomes a tombstone and its value is
     * clear()ed; when tombstones exceed a quarter of capacity the
     * table compacts. Compaction moves values, so callers holding
     * raw value pointers must refresh them after any erase.
     */
    bool
    erase(Key key)
    {
        size_t i = indexOf(key);
        while (slots_[i].key != Traits::empty()) {
            if (slots_[i].key == key) {
                slots_[i].key = Traits::tombstone();
                clearValue(slots_[i].value);
                count_--;
                tombstones_++;
                if (tombstones_ * 4 > slots_.size())
                    compact();
                return true;
            }
            i = (i + 1) & mask_;
        }
        return false;
    }

    /** Empty the table; occupied values are clear()ed, not destroyed. */
    void
    clear()
    {
        for (Slot &slot : slots_) {
            if (slot.key == Traits::tombstone()) {
                slot.key = Traits::empty();
            } else if (slot.key != Traits::empty()) {
                slot.key = Traits::empty();
                clearValue(slot.value);
            }
        }
        count_ = 0;
        tombstones_ = 0;
    }

    /** Visit every live (key, value) pair. */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (Slot &slot : slots_) {
            if (slot.key != Traits::empty() &&
                slot.key != Traits::tombstone()) {
                fn(slot.key, slot.value);
            }
        }
    }

    size_t size() const { return count_; }
    size_t capacity() const { return slots_.size(); }

  private:
    static constexpr size_t kMinCapacity = 16;

    struct Slot
    {
        Key key = Traits::empty();
        Value value{};
    };

    static void
    clearValue(Value &v)
    {
        if constexpr (requires(Value &x) { x.clear(); })
            v.clear();
        else
            v = Value{};
    }

    size_t
    indexOf(Key key) const
    {
        return static_cast<size_t>(Traits::hash(key)) & mask_;
    }

    size_t
    probeEmpty(Key key) const
    {
        size_t i = indexOf(key);
        while (slots_[i].key != Traits::empty())
            i = (i + 1) & mask_;
        return i;
    }

    void
    grow() { rehash(slots_.size() * 2); }

    /**
     * Drop every tombstone, shrinking toward the live count (but not
     * below the initial floor) so erased entries return their slot
     * memory instead of accumulating forever.
     */
    void
    compact()
    {
        size_t cap = kMinCapacity;
        while (count_ * 2 > cap) // rehash to <= 1/2 load
            cap <<= 1;
        rehash(std::max(cap, kMinCapacity));
    }

    void
    rehash(size_t new_capacity)
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.clear();
        slots_.resize(new_capacity);
        mask_ = slots_.size() - 1;
        tombstones_ = 0;
        for (Slot &slot : old) {
            if (slot.key == Traits::empty() ||
                slot.key == Traits::tombstone())
                continue;
            Slot &dst = slots_[probeEmpty(slot.key)];
            dst.key = slot.key;
            dst.value = std::move(slot.value);
        }
    }

    std::vector<Slot> slots_;
    size_t mask_ = 0;
    size_t count_ = 0;
    size_t tombstones_ = 0;
};

} // namespace golite::race

#endif // GOLITE_RACE_PTR_TABLE_HH
