/**
 * @file
 * Vector clocks for the happens-before race detector.
 *
 * Components are goroutine ids (dense, starting at 1), so a flat
 * vector indexed by id is the natural representation.
 */

#ifndef GOLITE_RACE_VECTOR_CLOCK_HH
#define GOLITE_RACE_VECTOR_CLOCK_HH

#include <cstdint>
#include <vector>

namespace golite::race
{

class VectorClock
{
  public:
    /** Clock value for goroutine @p gid (0 when absent). */
    uint64_t
    get(uint64_t gid) const
    {
        return gid < clocks_.size() ? clocks_[gid] : 0;
    }

    /** Set the component for @p gid. */
    void
    set(uint64_t gid, uint64_t value)
    {
        grow(gid);
        clocks_[gid] = value;
    }

    /** Increment the component for @p gid and return the new value. */
    uint64_t
    tick(uint64_t gid)
    {
        grow(gid);
        return ++clocks_[gid];
    }

    /** Pointwise maximum with @p other. */
    void
    join(const VectorClock &other)
    {
        if (other.clocks_.size() > clocks_.size())
            clocks_.resize(other.clocks_.size(), 0);
        for (size_t i = 0; i < other.clocks_.size(); ++i)
            clocks_[i] = std::max(clocks_[i], other.clocks_[i]);
    }

    /** True when every component of *this is <= other's. */
    bool
    leq(const VectorClock &other) const
    {
        for (size_t i = 0; i < clocks_.size(); ++i) {
            if (clocks_[i] > other.get(i))
                return false;
        }
        return true;
    }

    size_t size() const { return clocks_.size(); }

  private:
    void
    grow(uint64_t gid)
    {
        if (gid >= clocks_.size())
            clocks_.resize(gid + 1, 0);
    }

    std::vector<uint64_t> clocks_;
};

} // namespace golite::race

#endif // GOLITE_RACE_VECTOR_CLOCK_HH
