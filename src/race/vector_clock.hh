/**
 * @file
 * Chunked sparse vector clocks for the happens-before race detector.
 *
 * Components are clock *slots* (the detector's recycled goroutine
 * indices, see race/detector.hh), grouped into 64-component chunks.
 * A clock holds a pointer per chunk plus a dirty-chunk bitmap, so
 * joins and copies walk only the chunks that have ever been written —
 * at soak concurrency a goroutine's clock is typically two or three
 * chunks wide no matter how many thousands of slots exist.
 *
 * Chunks are refcounted and copy-on-write: copyFrom (goroutine spawn,
 * sync-clock snapshot publish) bumps refcounts instead of copying
 * words, and a mutation un-shares only the chunk it touches. All
 * chunks come from a ChunkPool free list owned by the detector, so a
 * reset() detector reaches steady state with zero allocation, exactly
 * like the old SBO representation did.
 *
 * Everything here is single-threaded (one detector per run per OS
 * thread), so refcounts are plain integers.
 */

#ifndef GOLITE_RACE_VECTOR_CLOCK_HH
#define GOLITE_RACE_VECTOR_CLOCK_HH

#include <cstdint>
#include <memory>
#include <vector>

namespace golite::race
{

/** One 64-component span of a clock, shared copy-on-write. */
struct ClockChunk
{
    static constexpr uint64_t kSlots = 64;

    uint32_t refs = 0;
    uint64_t epochs[kSlots] = {};
};

/**
 * Free-list allocator for ClockChunks. Chunks are recycled, never
 * returned to the OS before destruction, so clock churn (goroutine
 * finish, sync-object free, reset) is allocation-free once the pool
 * has grown to the run's working set.
 */
class ChunkPool
{
  public:
    ClockChunk *
    alloc()
    {
        if (!free_.empty()) {
            ClockChunk *c = free_.back();
            free_.pop_back();
            c->refs = 1;
            return c;
        }
        if (slabs_.empty() || slabFill_ == kSlabChunks) {
            slabs_.push_back(std::make_unique<ClockChunk[]>(kSlabChunks));
            slabFill_ = 0;
        }
        ClockChunk *c = &slabs_.back()[slabFill_++];
        c->refs = 1;
        allocated_++;
        return c;
    }

    /** Drop one reference; a dead chunk is zeroed and recycled. */
    void
    release(ClockChunk *c)
    {
        if (--c->refs == 0) {
            for (uint64_t &e : c->epochs)
                e = 0;
            free_.push_back(c);
        }
    }

    /** Chunks ever drawn from the OS (free-listed ones included). */
    size_t chunksAllocated() const { return allocated_; }

    /** Chunks currently referenced by some clock. */
    size_t chunksLive() const { return allocated_ - free_.size(); }

    size_t bytesAllocated() const
    {
        return allocated_ * sizeof(ClockChunk);
    }

  private:
    static constexpr size_t kSlabChunks = 64;

    std::vector<std::unique_ptr<ClockChunk[]>> slabs_;
    std::vector<ClockChunk *> free_;
    size_t slabFill_ = 0;
    size_t allocated_ = 0;
};

class VectorClock
{
  public:
    VectorClock() = default;

    VectorClock(const VectorClock &) = delete;
    VectorClock &operator=(const VectorClock &) = delete;

    VectorClock(VectorClock &&other) noexcept { moveFrom(other); }

    VectorClock &
    operator=(VectorClock &&other) noexcept
    {
        if (this != &other) {
            clear();
            moveFrom(other);
        }
        return *this;
    }

    ~VectorClock() { clear(); }

    /**
     * Attach the chunk pool all mutations draw from. Idempotent; the
     * detector binds every clock it hands out (including table-default
     * constructed ones) before first use.
     */
    void bindPool(ChunkPool *pool) { pool_ = pool; }

    /** Clock value for @p slot (0 when absent). */
    uint64_t
    get(uint64_t slot) const
    {
        const uint64_t c = slot / ClockChunk::kSlots;
        if (c >= chunks_.size() || chunks_[c] == nullptr)
            return 0;
        return chunks_[c]->epochs[slot % ClockChunk::kSlots];
    }

    /** Set the component for @p slot. */
    void
    set(uint64_t slot, uint64_t value)
    {
        writable(slot / ClockChunk::kSlots)
            ->epochs[slot % ClockChunk::kSlots] = value;
    }

    /** Increment the component for @p slot; returns the new value. */
    uint64_t
    tick(uint64_t slot)
    {
        return ++writable(slot / ClockChunk::kSlots)
                    ->epochs[slot % ClockChunk::kSlots];
    }

    /**
     * Become a copy of @p other by sharing its chunks (refcount bumps
     * only; O(present chunks), no epoch words touched). This is the
     * FastTrack-style snapshot publish: a hot channel's release clock
     * is "copied" to the sync object or to a spawned child this way.
     */
    void
    copyFrom(const VectorClock &other)
    {
        clear();
        chunks_.resize(other.chunks_.size(), nullptr);
        present_.resize(other.present_.size(), 0);
        for (size_t w = 0; w < other.present_.size(); ++w) {
            uint64_t bits = other.present_[w];
            present_[w] = bits;
            while (bits) {
                const size_t c =
                    w * 64 + static_cast<size_t>(__builtin_ctzll(bits));
                bits &= bits - 1;
                chunks_[c] = other.chunks_[c];
                chunks_[c]->refs++;
            }
        }
    }

    /**
     * Pointwise maximum with @p other, walking only chunks present in
     * either side's bitmap and skipping chunks the two clocks already
     * share. Returns true when *this was dominated by @p other before
     * the join (every component <= other's, i.e. the join made *this
     * equal to other) — the release path uses that to mark its memo
     * exact. The answer is allowed to be conservatively false.
     */
    bool
    joinFrom(const VectorClock &other)
    {
        bool dominated = true;
        if (other.chunks_.size() > chunks_.size()) {
            chunks_.resize(other.chunks_.size(), nullptr);
            present_.resize(other.present_.size(), 0);
        }
        const size_t words = present_.size();
        for (size_t w = 0; w < words; ++w) {
            const uint64_t theirs =
                w < other.present_.size() ? other.present_[w] : 0;
            uint64_t bits = present_[w] | theirs;
            while (bits) {
                const size_t c =
                    w * 64 + static_cast<size_t>(__builtin_ctzll(bits));
                bits &= bits - 1;
                ClockChunk *mine = chunks_[c];
                ClockChunk *from =
                    c < other.chunks_.size() ? other.chunks_[c] : nullptr;
                if (mine == from)
                    continue; // shared: identical, nothing to do
                if (from == nullptr) {
                    // Only we have it; any nonzero component breaks
                    // domination (chunks are materialized on write,
                    // so present chunks are taken as nonzero).
                    dominated = false;
                    continue;
                }
                if (mine == nullptr) {
                    chunks_[c] = from;
                    from->refs++;
                    present_[w] |= uint64_t{1} << (c % 64);
                    continue;
                }
                bool needs_write = false;
                for (uint64_t i = 0; i < ClockChunk::kSlots; ++i) {
                    if (from->epochs[i] > mine->epochs[i])
                        needs_write = true;
                    else if (mine->epochs[i] > from->epochs[i])
                        dominated = false;
                }
                if (!needs_write)
                    continue;
                if (mine->refs > 1)
                    mine = unshare(c);
                for (uint64_t i = 0; i < ClockChunk::kSlots; ++i) {
                    if (from->epochs[i] > mine->epochs[i])
                        mine->epochs[i] = from->epochs[i];
                }
            }
        }
        return dominated;
    }

    /** True when every component of *this is <= other's. */
    bool
    leq(const VectorClock &other) const
    {
        for (size_t w = 0; w < present_.size(); ++w) {
            uint64_t bits = present_[w];
            while (bits) {
                const size_t c =
                    w * 64 + static_cast<size_t>(__builtin_ctzll(bits));
                bits &= bits - 1;
                const ClockChunk *mine = chunks_[c];
                const ClockChunk *theirs =
                    c < other.chunks_.size() ? other.chunks_[c] : nullptr;
                if (mine == theirs)
                    continue;
                for (uint64_t i = 0; i < ClockChunk::kSlots; ++i) {
                    const uint64_t t =
                        theirs ? theirs->epochs[i] : 0;
                    if (mine->epochs[i] > t)
                        return false;
                }
            }
        }
        return true;
    }

    /**
     * Release every chunk back to the pool. Keeps the chunk-pointer
     * and bitmap vector capacity, so a clock in a reset() detector is
     * reusable without reallocation.
     */
    void
    clear()
    {
        for (size_t w = 0; w < present_.size(); ++w) {
            uint64_t bits = present_[w];
            present_[w] = 0;
            while (bits) {
                const size_t c =
                    w * 64 + static_cast<size_t>(__builtin_ctzll(bits));
                bits &= bits - 1;
                pool_->release(chunks_[c]);
                chunks_[c] = nullptr;
            }
        }
    }

    /** Chunks this clock currently references (test/metrics hook). */
    size_t
    chunkCount() const
    {
        size_t n = 0;
        for (uint64_t w : present_)
            n += static_cast<size_t>(__builtin_popcountll(w));
        return n;
    }

    /** One past the highest slot this clock has chunk storage for. */
    size_t size() const { return chunks_.size() * ClockChunk::kSlots; }

  private:
    void
    moveFrom(VectorClock &other) noexcept
    {
        chunks_ = std::move(other.chunks_);
        present_ = std::move(other.present_);
        pool_ = other.pool_;
        other.chunks_.clear();
        other.present_.clear();
    }

    /** Chunk @p c, materialized and exclusively owned. */
    ClockChunk *
    writable(uint64_t c)
    {
        if (c >= chunks_.size()) {
            chunks_.resize(c + 1, nullptr);
            present_.resize((chunks_.size() + 63) / 64, 0);
        }
        ClockChunk *chunk = chunks_[c];
        if (chunk == nullptr) {
            chunk = pool_->alloc();
            chunks_[c] = chunk;
            present_[c / 64] |= uint64_t{1} << (c % 64);
            return chunk;
        }
        if (chunk->refs > 1)
            return unshare(c);
        return chunk;
    }

    /** Replace a shared chunk with a private copy of its contents. */
    ClockChunk *
    unshare(uint64_t c)
    {
        ClockChunk *shared = chunks_[c];
        ClockChunk *mine = pool_->alloc();
        for (uint64_t i = 0; i < ClockChunk::kSlots; ++i)
            mine->epochs[i] = shared->epochs[i];
        shared->refs--; // >1 by precondition; never reaches zero here
        chunks_[c] = mine;
        return mine;
    }

    std::vector<ClockChunk *> chunks_; ///< nullptr = absent chunk
    std::vector<uint64_t> present_;    ///< dirty-chunk bitmap
    ChunkPool *pool_ = nullptr;
};

} // namespace golite::race

#endif // GOLITE_RACE_VECTOR_CLOCK_HH
