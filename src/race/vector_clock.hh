/**
 * @file
 * Vector clocks for the happens-before race detector.
 *
 * Components are goroutine ids (dense, starting at 1). The clock
 * keeps the first kInline components in an inline array — nearly all
 * bug kernels spawn <= 8 goroutines, so the detector hot path
 * (get/tick/join on the running goroutine's clock) never touches the
 * heap — and spills higher components into a vector that keeps its
 * capacity across clear(), so a reset() detector reuses it without
 * reallocating.
 */

#ifndef GOLITE_RACE_VECTOR_CLOCK_HH
#define GOLITE_RACE_VECTOR_CLOCK_HH

#include <algorithm>
#include <cstdint>
#include <vector>

namespace golite::race
{

class VectorClock
{
  public:
    /** Components stored inline (gids 0..kInline-1). */
    static constexpr uint64_t kInline = 8;

    VectorClock() { std::fill(inline_, inline_ + kInline, 0); }

    /** Clock value for goroutine @p gid (0 when absent). */
    uint64_t
    get(uint64_t gid) const
    {
        if (gid < kInline)
            return inline_[gid];
        const uint64_t i = gid - kInline;
        return i < spill_.size() ? spill_[i] : 0;
    }

    /** Set the component for @p gid. */
    void
    set(uint64_t gid, uint64_t value)
    {
        component(gid) = value;
    }

    /** Increment the component for @p gid and return the new value. */
    uint64_t
    tick(uint64_t gid)
    {
        return ++component(gid);
    }

    /** Pointwise maximum with @p other. */
    void
    join(const VectorClock &other)
    {
        for (uint64_t i = 0; i < kInline; ++i)
            inline_[i] = std::max(inline_[i], other.inline_[i]);
        if (other.spill_.size() > spill_.size())
            spill_.resize(other.spill_.size(), 0);
        for (size_t i = 0; i < other.spill_.size(); ++i)
            spill_[i] = std::max(spill_[i], other.spill_[i]);
    }

    /** True when every component of *this is <= other's. */
    bool
    leq(const VectorClock &other) const
    {
        for (uint64_t i = 0; i < kInline; ++i) {
            if (inline_[i] > other.inline_[i])
                return false;
        }
        for (size_t i = 0; i < spill_.size(); ++i) {
            if (spill_[i] > other.get(kInline + i))
                return false;
        }
        return true;
    }

    /**
     * Zero every component but keep the spill capacity, so a clock in
     * a reset() detector is reusable without reallocation.
     */
    void
    clear()
    {
        std::fill(inline_, inline_ + kInline, 0);
        std::fill(spill_.begin(), spill_.end(), 0);
    }

    /** One past the highest gid this clock has storage for. */
    size_t size() const { return kInline + spill_.size(); }

  private:
    uint64_t &
    component(uint64_t gid)
    {
        if (gid < kInline)
            return inline_[gid];
        const uint64_t i = gid - kInline;
        if (i >= spill_.size())
            spill_.resize(i + 1, 0);
        return spill_[i];
    }

    uint64_t inline_[kInline];
    std::vector<uint64_t> spill_;
};

} // namespace golite::race

#endif // GOLITE_RACE_VECTOR_CLOCK_HH
