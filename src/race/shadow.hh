/**
 * @file
 * Shadow cells for the happens-before race detector.
 *
 * Each tracked address keeps a bounded ring of access cells, the
 * "shadow words" of Section 6.3. A cell is one packed word in
 * FastTrack epoch style — [slot:31][isWrite:1][clock:32] — so a
 * history scan is a linear walk over a few words. The 31-bit field is
 * the accessor's clock *slot* (recycled index, O(live goroutines)),
 * not its goroutine id; the detector resolves slots back to gids for
 * reports and guarantees a slot is never rebound while any of its
 * cells are live (see race/detector.hh "Clock lifecycle").
 *
 * Histories up to kInlineCells live inline in the ShadowState; deeper
 * histories (the ablation sweeps past Go's 4 and our inline 8) draw a
 * block from the detector's CellSlab, a bump allocator with a free
 * list: blocks released when freed memory's shadow entry is erased
 * are recycled, and rewind() on Detector::reset() makes everything
 * reusable, so repeated sweeps allocate nothing in steady state.
 */

#ifndef GOLITE_RACE_SHADOW_HH
#define GOLITE_RACE_SHADOW_HH

#include <cstdint>
#include <memory>
#include <vector>

namespace golite::race
{

/** One access: [slot:31][isWrite:1][epoch:32]. */
using PackedCell = uint64_t;

inline PackedCell
packCell(uint64_t slot, bool is_write, uint64_t epoch)
{
    return (slot << 33) | (static_cast<uint64_t>(is_write) << 32) |
           (epoch & 0xFFFFFFFFu);
}

inline uint64_t cellSlot(PackedCell c) { return c >> 33; }
inline bool cellIsWrite(PackedCell c) { return (c >> 32) & 1; }
inline uint64_t cellEpoch(PackedCell c) { return c & 0xFFFFFFFFu; }

/** Epoch fast-path key: (slot, epoch) as one comparable word. */
inline uint64_t
epochKey(uint64_t slot, uint64_t epoch)
{
    return (slot << 32) | (epoch & 0xFFFFFFFFu);
}

/**
 * Allocator for deep shadow histories: a bump slab plus a free list
 * of released blocks. Within one run every deep block has the same
 * size (the detector's shadow depth), so the free list is a plain
 * stack. rewind() makes all memory reusable for the next run; the
 * destructor is the only thing that returns it to the OS.
 */
class CellSlab
{
  public:
    PackedCell *
    alloc(size_t n)
    {
        if (!free_.empty()) {
            PackedCell *out = free_.back();
            free_.pop_back();
            return out;
        }
        while (true) {
            if (cur_ >= blocks_.size()) {
                const size_t cells = n > kBlockCells ? n : kBlockCells;
                blocks_.push_back(
                    Block{std::make_unique<PackedCell[]>(cells),
                          cells});
                off_ = 0;
            }
            if (off_ + n <= blocks_[cur_].cells) {
                PackedCell *out = blocks_[cur_].data.get() + off_;
                off_ += n;
                return out;
            }
            cur_++;
            off_ = 0;
        }
    }

    /** Recycle a block obtained from alloc() with the same size. */
    void
    release(PackedCell *block)
    {
        free_.push_back(block);
    }

    /** Make every block reusable; nothing is freed. */
    void
    rewind()
    {
        cur_ = 0;
        off_ = 0;
        free_.clear();
    }

    /** Bytes of cell memory drawn from the OS. */
    size_t
    bytesAllocated() const
    {
        size_t total = 0;
        for (const Block &b : blocks_)
            total += b.cells * sizeof(PackedCell);
        return total;
    }

  private:
    static constexpr size_t kBlockCells = 4096;
    struct Block
    {
        std::unique_ptr<PackedCell[]> data;
        size_t cells;
    };
    std::vector<Block> blocks_;
    std::vector<PackedCell *> free_;
    size_t cur_ = 0;
    size_t off_ = 0;
};

/**
 * Per-address detector state: the access-history ring, the report
 * suppression set, and the epoch fast-path summary of the last
 * recorded access (see Detector::access for the invariants).
 */
struct ShadowState
{
    static constexpr size_t kInlineCells = 8;
    static constexpr size_t kMaxReports = 8;

    PackedCell inlineCells[kInlineCells] = {};
    PackedCell *deep = nullptr; ///< CellSlab block when depth > inline
    uint32_t used = 0;          ///< live cells
    uint32_t next = 0;          ///< ring cursor once full

    // Epoch fast path: the last scanned access ((slot << 32) | epoch
    // in one comparable word; 0 never matches, epochs start at 1) and
    // whether its history scan saw any unordered conflicting cell.
    uint64_t lastKey = 0;
    bool lastWasWrite = false;
    bool lastScanHadConflict = false;

    // Report dedup: packed (firstGid, firstWrite, secondGid,
    // secondWrite) combos already reported for this address.
    uint8_t comboCount = 0;
    uint64_t combos[kMaxReports] = {};

    PackedCell *
    cells(size_t depth, CellSlab &slab)
    {
        if (depth <= kInlineCells)
            return inlineCells;
        if (deep == nullptr)
            deep = slab.alloc(depth);
        return deep;
    }

    bool
    comboReported(uint64_t key) const
    {
        for (uint8_t i = 0; i < comboCount; ++i)
            if (combos[i] == key)
                return true;
        return false;
    }

    /** Reset for reuse; the deep block belongs to a rewound slab. */
    void
    clear()
    {
        deep = nullptr;
        used = 0;
        next = 0;
        lastKey = 0;
        lastWasWrite = false;
        lastScanHadConflict = false;
        comboCount = 0;
    }
};

/** Dedup key for one (older access, newer access) report pair. */
inline uint64_t
comboKey(uint64_t first_gid, bool first_write, uint64_t second_gid,
         bool second_write)
{
    return (first_gid << 33) |
           (static_cast<uint64_t>(first_write) << 32) |
           (second_gid << 1) | static_cast<uint64_t>(second_write);
}

} // namespace golite::race

#endif // GOLITE_RACE_SHADOW_HH
