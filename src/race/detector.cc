#include "race/detector.hh"

#include <sstream>

#include "runtime/scheduler.hh"

namespace golite::race
{

std::string
RaceReport::describe() const
{
    std::ostringstream os;
    os << "DATA RACE on \"" << label << "\": "
       << (secondWrite ? "write" : "read") << " by goroutine "
       << secondGid << " races with previous "
       << (firstWrite ? "write" : "read") << " by goroutine "
       << firstGid;
    return os.str();
}

Detector::Detector(size_t shadow_depth)
    : shadowDepth_(std::min<size_t>(shadow_depth, 8))
{
    if (shadowDepth_ == 0)
        shadowDepth_ = 1;
}

VectorClock &
Detector::clockOf(uint64_t gid)
{
    auto [it, inserted] = goroutineClocks_.try_emplace(gid);
    if (inserted)
        it->second.set(gid, 1);
    return it->second;
}

void
Detector::goroutineCreated(uint64_t parent, uint64_t child)
{
    if (parent != 0) {
        VectorClock &pc = clockOf(parent);
        VectorClock child_clock = pc; // inherit the parent's history
        child_clock.set(child, 1);
        goroutineClocks_[child] = child_clock;
        pc.tick(parent); // parent's later events are not HB child
    } else {
        clockOf(child);
    }
}

void
Detector::goroutineFinished(uint64_t gid)
{
    (void)gid; // clocks kept: sync objects may still reference them
}

void
Detector::acquire(const void *sync_obj)
{
    const uint64_t gid = Scheduler::current()->runningId();
    if (gid == 0)
        return;
    auto it = syncClocks_.find(sync_obj);
    if (it == syncClocks_.end())
        return;
    clockOf(gid).join(it->second);
}

void
Detector::release(const void *sync_obj)
{
    const uint64_t gid = Scheduler::current()->runningId();
    if (gid == 0)
        return;
    VectorClock &vc = clockOf(gid);
    syncClocks_[sync_obj].join(vc);
    vc.tick(gid);
}

void
Detector::access(const void *addr, const char *label, bool is_write)
{
    const uint64_t gid = Scheduler::current()->runningId();
    if (gid == 0)
        return;
    VectorClock &vc = clockOf(gid);
    ShadowState &state = shadow_[addr];
    state.label = label;

    const size_t live = std::min(state.used, shadowDepth_);
    for (size_t i = 0; i < live; ++i) {
        const ShadowCell &cell = state.cells[i];
        if (cell.gid == gid)
            continue;
        if (!cell.isWrite && !is_write)
            continue;
        // The old access happened-before us iff its epoch is covered
        // by our clock's view of its goroutine.
        if (cell.epoch <= vc.get(cell.gid))
            continue;
        if (!state.reported) {
            state.reported = true;
            RaceReport report{label, addr, cell.gid, cell.isWrite,
                              gid, is_write};
            pendingMessages_.push_back(report.describe());
            reports_.push_back(std::move(report));
        }
        break;
    }

    // Record this access in the bounded history (ring once full).
    ShadowCell mine{gid, vc.get(gid), is_write};
    if (state.used < shadowDepth_) {
        state.cells[state.used++] = mine;
    } else {
        state.cells[state.next] = mine;
        state.next = (state.next + 1) % shadowDepth_;
    }
}

void
Detector::memRead(const void *addr, const char *label)
{
    access(addr, label, false);
}

void
Detector::memWrite(const void *addr, const char *label)
{
    access(addr, label, true);
}

std::vector<std::string>
Detector::drainReports()
{
    std::vector<std::string> out;
    out.swap(pendingMessages_);
    return out;
}

bool
Detector::racedOn(const std::string &label) const
{
    for (const RaceReport &r : reports_) {
        if (r.label == label)
            return true;
    }
    return false;
}

} // namespace golite::race
