#include "race/detector.hh"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace golite::race
{

namespace
{

bool
envFastPathDefault()
{
    static const bool enabled = [] {
        const char *env = std::getenv("GOLITE_RACE_FASTPATH");
        return !(env && env[0] == '0' && env[1] == '\0');
    }();
    return enabled;
}

size_t
clampDepth(size_t depth)
{
    if (depth == 0)
        return 1;
    return std::min(depth, Detector::kMaxShadowDepth);
}

} // namespace

std::string
RaceReport::describe() const
{
    std::ostringstream os;
    os << "DATA RACE on \"" << label << "\": "
       << (secondWrite ? "write" : "read") << " by goroutine "
       << secondGid << " races with previous "
       << (firstWrite ? "write" : "read") << " by goroutine "
       << firstGid;
    return os.str();
}

Detector::Detector(size_t shadow_depth)
    : shadowDepth_(clampDepth(shadow_depth)),
      fastPath_(envFastPathDefault())
{
}

VectorClock &
Detector::clockOf(uint64_t gid)
{
    if (gid >= goroutineClocks_.size()) {
        goroutineClocks_.resize(gid + 1);
        cachedGid_ = 0; // vector growth moved the clocks
        cachedClock_ = nullptr;
    }
    VectorClock &vc = goroutineClocks_[gid];
    if (vc.get(gid) == 0)
        vc.set(gid, 1); // first touch this run
    return vc;
}

void
Detector::goroutineCreated(uint64_t parent, uint64_t child)
{
    if (parent != 0) {
        // Copy before clockOf(child) can grow the clock vector.
        VectorClock child_clock = clockOf(parent);
        child_clock.set(child, 1);
        clockOf(child) = std::move(child_clock);
        clockOf(parent).tick(parent); // parent's later events not HB child
        if (parent == cachedGid_)
            cachedEpoch_++; // keep the epoch cache on the new tick
    } else {
        clockOf(child);
    }
}

void
Detector::goroutineFinished(uint64_t gid)
{
    (void)gid; // clocks kept: sync objects may still reference them
}

EventMask
Detector::eventMask() const
{
    return eventBit(EventKind::GoSpawn) |
           eventBit(EventKind::GoFinish) |
           eventBit(EventKind::SyncAcquire) |
           eventBit(EventKind::SyncRelease) |
           eventBit(EventKind::MemRead) | eventBit(EventKind::MemWrite);
}

void
Detector::onEvent(const RuntimeEvent &ev)
{
    switch (ev.kind) {
      case EventKind::GoSpawn:
        goroutineCreated(ev.a, ev.gid);
        break;
      case EventKind::GoFinish:
        goroutineFinished(ev.gid);
        break;
      case EventKind::SyncAcquire:
        acquire(ev.obj, ev.gid);
        break;
      case EventKind::SyncRelease:
        release(ev.obj, ev.gid);
        break;
      case EventKind::MemRead:
      case EventKind::MemWrite:
        // Broadcast-mode delivery (the masked hot path arrives via
        // onMemAccess, never here).
        access(ev.obj, ev.label, ev.gid, ev.kind == EventKind::MemWrite);
        break;
      default:
        break;
    }
}

void
Detector::acquire(const void *sync_obj, uint64_t gid)
{
    if (gid == 0)
        return;
    VectorClock *sync_clock = syncClocks_.find(sync_obj);
    if (sync_clock == nullptr)
        return;
    clockOf(gid).join(*sync_clock);
}

void
Detector::release(const void *sync_obj, uint64_t gid)
{
    if (gid == 0)
        return;
    VectorClock &vc = clockOf(gid);
    syncClocks_[sync_obj].join(vc);
    vc.tick(gid);
    if (gid == cachedGid_)
        cachedEpoch_++; // keep the epoch cache on the new tick
}

void
Detector::recordCell(ShadowState &state, uint64_t gid, uint64_t epoch,
                     bool is_write)
{
    PackedCell *cells = state.cells(shadowDepth_, slab_);
    const PackedCell mine = packCell(gid, is_write, epoch);
    if (state.used < shadowDepth_) {
        cells[state.used++] = mine;
    } else {
        cells[state.next] = mine;
        if (++state.next == shadowDepth_)
            state.next = 0;
    }
}

void
Detector::scanAndRecord(ShadowState &state, uint64_t gid,
                        const VectorClock &vc, uint64_t epoch,
                        bool is_write, const void *addr,
                        const char *label)
{
    PackedCell *cells = state.cells(shadowDepth_, slab_);
    const size_t live = std::min<size_t>(state.used, shadowDepth_);
    bool saw_conflict = false;
    for (size_t i = 0; i < live; ++i) {
        const PackedCell cell = cells[i];
        const uint64_t cell_gid = cellGid(cell);
        if (cell_gid == gid)
            continue;
        if (!cellIsWrite(cell) && !is_write)
            continue;
        // The old access happened-before us iff its epoch is covered
        // by our clock's view of its goroutine.
        if (cellEpoch(cell) <= vc.get(cell_gid))
            continue;
        saw_conflict = true;
        if (state.comboCount >= reportLimit_)
            break; // per-object budget exhausted
        const uint64_t key =
            comboKey(cell_gid, cellIsWrite(cell), gid, is_write);
        if (state.comboReported(key))
            continue; // already reported this pair; look for a new one
        state.combos[state.comboCount++] = key;
        RaceReport report{label,        addr,    cell_gid,
                          cellIsWrite(cell), gid, is_write};
        pendingMessages_.push_back(report.describe());
        reports_.push_back(std::move(report));
        break;
    }

    // Epoch fast-path summary: a same-goroutine same-epoch repeat of
    // a conflict-free scan cannot conflict either (clocks only grow,
    // and cells recorded since are our own), so it may skip the scan.
    state.lastKey = epochKey(gid, epoch);
    state.lastWasWrite = is_write;
    state.lastScanHadConflict = saw_conflict;

    recordCell(state, gid, epoch, is_write);
}

void
Detector::access(const void *addr, const char *label, uint64_t gid,
                 bool is_write)
{
    if (gid == 0)
        return;

    if (!fastPath_) {
        ShadowState &state = shadow_[addr];
        VectorClock &vc = clockOf(gid);
        scanAndRecord(state, gid, vc, vc.get(gid), is_write, addr,
                      label);
        return;
    }

    // Hot path: one-entry caches for the address's shadow state and
    // the running goroutine's clock, refreshed only on miss. The
    // cached state pointer is always the most recently touched slot,
    // so no rehash can have moved it since (inserts only happen on a
    // cache miss, which refreshes the cache).
    ShadowState *state;
    if (addr == cachedAddr_) {
        state = cachedState_;
    } else {
        state = &shadow_[addr];
        cachedAddr_ = addr;
        cachedState_ = state;
    }

    uint64_t epoch;
    if (gid == cachedGid_) {
        epoch = cachedEpoch_; // ticks keep this current (see release)
    } else {
        VectorClock &vc = clockOf(gid);
        epoch = vc.get(gid);
        cachedGid_ = gid;
        cachedClock_ = &vc;
        cachedEpoch_ = epoch;
    }

    // Fast path 1 (FastTrack "same epoch"): same goroutine, same
    // epoch, kind covered by the last scanned access (a write covers
    // both; a read only covers reads), and that scan saw no unordered
    // conflict. Nothing observable can change: skip the scan. The
    // last* fields stay on the scanned access, which remains the
    // witness for every later access it covers.
    if (state->lastKey == epochKey(gid, epoch) &&
        (state->lastWasWrite || !is_write) &&
        !state->lastScanHadConflict) {
        recordCell(*state, gid, epoch, is_write);
        return;
    }

    // Fast path 2: the per-object report budget is exhausted, so a
    // scan could not emit anything; only the history needs updating.
    if (state->comboCount >= reportLimit_) {
        recordCell(*state, gid, epoch, is_write);
        return;
    }

    scanAndRecord(*state, gid, *cachedClock_, epoch, is_write, addr,
                  label);
}

void
Detector::onMemAccess(const void *addr, const char *label, uint64_t gid,
                      bool is_write)
{
    access(addr, label, gid, is_write);
}

std::vector<std::string>
Detector::drainReports()
{
    std::vector<std::string> out;
    out.swap(pendingMessages_);
    return out;
}

void
Detector::reset()
{
    for (VectorClock &vc : goroutineClocks_)
        vc.clear();
    syncClocks_.clear();
    shadow_.clear(); // nulls every deep-cell pointer ...
    slab_.rewind();  // ... before the slab reclaims their blocks
    reports_.clear();
    pendingMessages_.clear();
    invalidateCaches();
}

void
Detector::reset(size_t shadow_depth)
{
    shadowDepth_ = clampDepth(shadow_depth);
    reset();
}

void
Detector::setReportLimit(size_t n)
{
    reportLimit_ = std::clamp<size_t>(n, 1, ShadowState::kMaxReports);
}

bool
Detector::racedOn(const std::string &label) const
{
    for (const RaceReport &r : reports_) {
        if (r.label == label)
            return true;
    }
    return false;
}

} // namespace golite::race
