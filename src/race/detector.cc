#include "race/detector.hh"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "runtime/report.hh"

namespace golite::race
{

namespace
{

bool
envFastPathDefault()
{
    static const bool enabled = [] {
        const char *env = std::getenv("GOLITE_RACE_FASTPATH");
        return !(env && env[0] == '0' && env[1] == '\0');
    }();
    return enabled;
}

bool
envRecycleDefault()
{
    static const bool enabled = [] {
        const char *env = std::getenv("GOLITE_RACE_RECYCLE");
        return !(env && env[0] == '0' && env[1] == '\0');
    }();
    return enabled;
}

size_t
clampDepth(size_t depth)
{
    if (depth == 0)
        return 1;
    return std::min(depth, Detector::kMaxShadowDepth);
}

} // namespace

std::string
RaceReport::describe() const
{
    std::ostringstream os;
    os << "DATA RACE on \"" << label << "\": "
       << (secondWrite ? "write" : "read") << " by goroutine "
       << secondGid << " races with previous "
       << (firstWrite ? "write" : "read") << " by goroutine "
       << firstGid;
    return os.str();
}

Detector::Detector(size_t shadow_depth)
    : shadowDepth_(clampDepth(shadow_depth)),
      fastPath_(envFastPathDefault()),
      recycle_(envRecycleDefault())
{
}

uint32_t
Detector::bindSlot(uint64_t gid)
{
    uint32_t slot;
    if (recycle_ && !freeSlots_.empty()) {
        slot = freeSlots_.back();
        freeSlots_.pop_back();
        slotGen_[slot]++; // new binding: stale release memos die
    } else if (slotCount_ < clocksBySlot_.size()) {
        slot = slotCount_++; // rewound storage from a previous run
    } else {
        slot = slotCount_++;
        clocksBySlot_.emplace_back();
        slotGid_.push_back(0);
        slotGen_.push_back(0);
        slotFloor_.push_back(0);
        slotCellRefs_.push_back(0);
        slotRetired_.push_back(0);
        // Growth moved the clocks; drop the clock cache.
        cachedGid_ = 0;
        cachedClock_ = nullptr;
    }
    slotGid_[slot] = gid;
    slotRetired_[slot] = 0;
    gidToSlot_[gid] = slot;
    VectorClock &vc = clocksBySlot_[slot];
    vc.bindPool(&chunkPool_);
    // Epoch handoff: the binding's epochs continue above the previous
    // binding's final epoch, so each binding owns a disjoint ascending
    // range and a stale view can never cover a new binding's cells.
    vc.set(slot, slotFloor_[slot] + 1);
    if (gidToSlot_.size() > peakLiveSlots_)
        peakLiveSlots_ = gidToSlot_.size();
    return slot;
}

uint32_t
Detector::slotOf(uint64_t gid)
{
    uint32_t *entry = gidToSlot_.find(gid);
    if (entry != nullptr)
        return *entry;
    return bindSlot(gid);
}

void
Detector::retireToFreeList(uint32_t slot)
{
    slotRetired_[slot] = 0;
    if (slotFloor_[slot] >= kEpochReuseLimit)
        return; // 32-bit packed epochs would overflow; park forever
    freeSlots_.push_back(slot);
}

void
Detector::goroutineCreated(uint64_t parent, uint64_t child)
{
    if (parent == 0) {
        slotOf(child);
        return;
    }
    const uint32_t ps = slotOf(parent);
    const uint32_t cs = slotOf(child);
    // Child inherits the parent's clock by COW chunk sharing; its own
    // component must be (re)set after the copy, both because copyFrom
    // overwrote the bind-time value and because the parent may carry a
    // stale (<= floor) component from the slot's previous binding.
    VectorClock &child_clock = clocksBySlot_[cs];
    child_clock.copyFrom(clocksBySlot_[ps]);
    child_clock.set(cs, slotFloor_[cs] + 1);
    clocksBySlot_[ps].tick(ps); // parent's later events not HB child
    if (parent == cachedGid_)
        cachedEpoch_++; // keep the epoch cache on the new tick
}

void
Detector::goroutineFinished(uint64_t gid)
{
    uint32_t *entry = gidToSlot_.find(gid);
    if (entry == nullptr)
        return; // never produced a clocked event
    const uint32_t slot = *entry;
    VectorClock &vc = clocksBySlot_[slot];
    slotFloor_[slot] = vc.get(slot); // final epoch becomes the floor
    vc.clear();                      // chunks back to the pool
    gidToSlot_.erase(gid);
    if (gid == cachedGid_) {
        cachedGid_ = 0;
        cachedClock_ = nullptr;
    }
    if (!recycle_)
        return;
    // The slot becomes rebindable only once no shadow cell names it:
    // that guarantees every live cell belongs to the slot's current
    // binding, keeping report rendering and same-slot checks exact.
    if (slotCellRefs_[slot] == 0)
        retireToFreeList(slot);
    else
        slotRetired_[slot] = 1;
}

EventMask
Detector::eventMask() const
{
    return eventBit(EventKind::GoSpawn) |
           eventBit(EventKind::GoFinish) |
           eventBit(EventKind::SyncAcquire) |
           eventBit(EventKind::SyncRelease) |
           eventBit(EventKind::MemRead) |
           eventBit(EventKind::MemWrite) |
           eventBit(EventKind::MemFree);
}

void
Detector::onEvent(const RuntimeEvent &ev)
{
    switch (ev.kind) {
      case EventKind::GoSpawn:
        goroutineCreated(ev.a, ev.gid);
        break;
      case EventKind::GoFinish:
        goroutineFinished(ev.gid);
        break;
      case EventKind::SyncAcquire:
        acquire(ev.obj, ev.gid);
        break;
      case EventKind::SyncRelease:
        release(ev.obj, ev.gid);
        break;
      case EventKind::MemFree:
        memFreed(ev.obj);
        break;
      case EventKind::MemRead:
      case EventKind::MemWrite:
        // Broadcast-mode delivery (the masked hot path arrives via
        // onMemAccess, never here).
        access(ev.obj, ev.label, ev.gid, ev.kind == EventKind::MemWrite);
        break;
      default:
        break;
    }
}

void
Detector::acquire(const void *sync_obj, uint64_t gid)
{
    if (gid == 0)
        return;
    SyncClock *sync = syncClocks_.find(sync_obj);
    if (sync == nullptr)
        return;
    const uint32_t slot = slotOf(gid);
    VectorClock &vc = clocksBySlot_[slot];
    // Release-memo fast path: the sync clock is exactly some
    // releaser's snapshot, and our view of that releaser (same
    // binding, checked via the generation) already covers it — the
    // join would be a no-op, so skip it.
    if (fastPath_ && sync->exact && sync->relSlot != kNoSlot &&
        slotGen_[sync->relSlot] == sync->relGen &&
        vc.get(sync->relSlot) >= sync->relEpoch) {
        return;
    }
    vc.joinFrom(sync->vc);
}

void
Detector::release(const void *sync_obj, uint64_t gid)
{
    if (gid == 0)
        return;
    const uint32_t slot = slotOf(gid);
    VectorClock &vc = clocksBySlot_[slot];
    SyncClock &sync = syncClocks_[sync_obj];
    sync.vc.bindPool(&chunkPool_);
    const uint64_t own = vc.get(slot);
    bool exact;
    if (fastPath_ && sync.exact && sync.relSlot != kNoSlot &&
        slotGen_[sync.relSlot] == sync.relGen &&
        vc.get(sync.relSlot) >= sync.relEpoch) {
        // The stored snapshot is <= our clock, so joining equals
        // copying — and copying is O(present chunks) refcount bumps:
        // the FastTrack-style publish-once release.
        sync.vc.copyFrom(vc);
        exact = true;
    } else {
        exact = sync.vc.joinFrom(vc);
    }
    sync.relSlot = slot;
    sync.relGen = slotGen_[slot];
    sync.relEpoch = own;
    sync.exact = fastPath_ && exact;
    vc.tick(slot);
    if (gid == cachedGid_)
        cachedEpoch_++; // keep the epoch cache on the new tick
}

void
Detector::memFreed(const void *addr)
{
    ShadowState *state = shadow_.find(addr);
    if (state != nullptr) {
        PackedCell *cells =
            state->deep != nullptr ? state->deep : state->inlineCells;
        const size_t live = std::min<size_t>(state->used, shadowDepth_);
        for (size_t i = 0; i < live; ++i)
            dropCellRef(static_cast<uint32_t>(cellSlot(cells[i])));
        if (state->deep != nullptr)
            slab_.release(state->deep);
        shadow_.erase(addr); // clear()s the state, nulling deep
        freedShadow_++;
        // Erase can compact the table, moving shadow states out from
        // under the address cache.
        cachedAddr_ = nullptr;
        cachedState_ = nullptr;
    }
    syncClocks_.erase(addr);
}

void
Detector::recordCell(ShadowState &state, uint32_t slot, uint64_t epoch,
                     bool is_write)
{
    PackedCell *cells = state.cells(shadowDepth_, slab_);
    const PackedCell mine = packCell(slot, is_write, epoch);
    if (state.used < shadowDepth_) {
        cells[state.used++] = mine;
        slotCellRefs_[slot]++;
    } else {
        const uint32_t evicted =
            static_cast<uint32_t>(cellSlot(cells[state.next]));
        cells[state.next] = mine;
        if (++state.next == shadowDepth_)
            state.next = 0;
        // Bursty reuse overwrites the goroutine's own cell; the
        // refcount round-trip is a no-op then, and skipping it keeps
        // the maintenance off the epoch fast path's record.
        if (evicted != slot) {
            slotCellRefs_[slot]++;
            dropCellRef(evicted);
        }
    }
}

void
Detector::scanAndRecord(ShadowState &state, uint32_t slot,
                        const VectorClock &vc, uint64_t epoch,
                        bool is_write, const void *addr,
                        const char *label)
{
    PackedCell *cells = state.cells(shadowDepth_, slab_);
    const size_t live = std::min<size_t>(state.used, shadowDepth_);
    bool saw_conflict = false;
    for (size_t i = 0; i < live; ++i) {
        const PackedCell cell = cells[i];
        const uint64_t cell_slot = cellSlot(cell);
        if (cell_slot == slot)
            continue;
        if (!cellIsWrite(cell) && !is_write)
            continue;
        // The old access happened-before us iff its epoch is covered
        // by our clock's view of its slot. Live cells always belong
        // to the slot's current binding, and bindings own disjoint
        // ascending epoch ranges, so the comparison is exact even
        // with recycling.
        if (cellEpoch(cell) <= vc.get(cell_slot))
            continue;
        saw_conflict = true;
        if (state.comboCount >= reportLimit_)
            break; // per-object budget exhausted
        const uint64_t cell_gid = slotGid_[cell_slot];
        const uint64_t gid = slotGid_[slot];
        const uint64_t key =
            comboKey(cell_gid, cellIsWrite(cell), gid, is_write);
        if (state.comboReported(key))
            continue; // already reported this pair; look for a new one
        state.combos[state.comboCount++] = key;
        RaceReport report{label,        addr,    cell_gid,
                          cellIsWrite(cell), gid, is_write};
        pendingMessages_.push_back(report.describe());
        reports_.push_back(std::move(report));
        break;
    }

    // Epoch fast-path summary: a same-goroutine same-epoch repeat of
    // a conflict-free scan cannot conflict either (clocks only grow,
    // and cells recorded since are our own), so it may skip the scan.
    state.lastKey = epochKey(slot, epoch);
    state.lastWasWrite = is_write;
    state.lastScanHadConflict = saw_conflict;

    recordCell(state, slot, epoch, is_write);
}

void
Detector::access(const void *addr, const char *label, uint64_t gid,
                 bool is_write)
{
    if (gid == 0)
        return;

    if (!fastPath_) {
        const uint32_t slot = slotOf(gid);
        ShadowState &state = shadow_[addr];
        if (shadow_.size() > peakShadow_)
            peakShadow_ = shadow_.size();
        VectorClock &vc = clocksBySlot_[slot];
        scanAndRecord(state, slot, vc, vc.get(slot), is_write, addr,
                      label);
        return;
    }

    // Hot path: one-entry caches for the address's shadow state and
    // the running goroutine's slot + clock, refreshed only on miss.
    // The cached state pointer is always the most recently touched
    // slot, so no rehash can have moved it since (inserts only happen
    // on a cache miss, which refreshes the cache, and erases clear
    // it).
    ShadowState *state;
    if (addr == cachedAddr_) {
        state = cachedState_;
    } else {
        state = &shadow_[addr];
        cachedAddr_ = addr;
        cachedState_ = state;
        if (shadow_.size() > peakShadow_)
            peakShadow_ = shadow_.size();
    }

    uint32_t slot;
    uint64_t epoch;
    if (gid == cachedGid_) {
        slot = cachedSlot_;
        epoch = cachedEpoch_; // ticks keep this current (see release)
    } else {
        slot = slotOf(gid);
        VectorClock &vc = clocksBySlot_[slot];
        epoch = vc.get(slot);
        cachedGid_ = gid;
        cachedSlot_ = slot;
        cachedClock_ = &vc;
        cachedEpoch_ = epoch;
    }

    // Fast path 1 (FastTrack "same epoch"): same slot, same epoch,
    // kind covered by the last scanned access (a write covers both; a
    // read only covers reads), and that scan saw no unordered
    // conflict. Nothing observable can change: skip the scan. The
    // last* fields stay on the scanned access, which remains the
    // witness for every later access it covers.
    if (state->lastKey == epochKey(slot, epoch) &&
        (state->lastWasWrite || !is_write) &&
        !state->lastScanHadConflict) {
        recordCell(*state, slot, epoch, is_write);
        return;
    }

    // Fast path 2: the per-object report budget is exhausted, so a
    // scan could not emit anything; only the history needs updating.
    if (state->comboCount >= reportLimit_) {
        recordCell(*state, slot, epoch, is_write);
        return;
    }

    scanAndRecord(*state, slot, *cachedClock_, epoch, is_write, addr,
                  label);
}

void
Detector::onMemAccess(const void *addr, const char *label, uint64_t gid,
                      bool is_write)
{
    access(addr, label, gid, is_write);
}

std::vector<std::string>
Detector::drainReports()
{
    std::vector<std::string> out;
    out.swap(pendingMessages_);
    return out;
}

void
Detector::finalizeRun(RunReport &report)
{
    RunMetrics::DetectorFootprint &fp = report.metrics.detector;
    fp.collected = true;
    fp.liveClockSlots = gidToSlot_.size();
    fp.peakClockSlots = peakLiveSlots_;
    fp.slotSpace = slotCount_;
    fp.shadowEntries = shadow_.size();
    fp.peakShadowEntries = peakShadow_;
    fp.shadowFreed = freedShadow_;
    fp.arenaBytes = arenaBytes();
}

void
Detector::reset()
{
    gidToSlot_.clear();
    for (VectorClock &vc : clocksBySlot_)
        vc.clear();
    std::fill(slotGid_.begin(), slotGid_.end(), 0);
    std::fill(slotGen_.begin(), slotGen_.end(), 0u);
    std::fill(slotFloor_.begin(), slotFloor_.end(), 0);
    std::fill(slotCellRefs_.begin(), slotCellRefs_.end(), 0u);
    std::fill(slotRetired_.begin(), slotRetired_.end(), uint8_t{0});
    freeSlots_.clear();
    slotCount_ = 0;
    syncClocks_.clear();
    shadow_.clear(); // nulls every deep-cell pointer ...
    slab_.rewind();  // ... before the slab reclaims their blocks
    peakLiveSlots_ = 0;
    peakShadow_ = 0;
    freedShadow_ = 0;
    reports_.clear();
    pendingMessages_.clear();
    invalidateCaches();
}

void
Detector::reset(size_t shadow_depth)
{
    shadowDepth_ = clampDepth(shadow_depth);
    reset();
}

void
Detector::setReportLimit(size_t n)
{
    reportLimit_ = std::clamp<size_t>(n, 1, ShadowState::kMaxReports);
}

bool
Detector::racedOn(const std::string &label) const
{
    for (const RaceReport &r : reports_) {
        if (r.label == label)
            return true;
    }
    return false;
}

} // namespace golite::race
