/**
 * @file
 * Shared<T>: an instrumented shared variable.
 *
 * Plays the role of a plain Go variable accessed from multiple
 * goroutines: every load/store is a preemption point (so races can
 * manifest, seed-dependently) and is emitted on the runtime event bus
 * (so races can be *detected* when a Detector subscribes).
 *
 * Bug kernels use Shared<T> for exactly the variables the original
 * bugs raced on, and plain C++ for everything else.
 */

#ifndef GOLITE_RACE_SHARED_HH
#define GOLITE_RACE_SHARED_HH

#include <utility>

#include "runtime/scheduler.hh"

namespace golite::race
{

template <typename T>
class Shared
{
  public:
    explicit Shared(const char *label = "shared", T initial = T{})
        : label_(label), value_(std::move(initial))
    {
    }

    Shared(const Shared &) = delete;
    Shared &operator=(const Shared &) = delete;

    /** Destroying the variable retires its shadow history, so soak
     *  runs that churn through tracked objects stay O(live). */
    ~Shared() { notifyMemFree(&value_); }

    /** Instrumented read. */
    T
    load() const
    {
        Scheduler *sched = Scheduler::current();
        sched->maybePreempt();
        sched->bus().memRead(&value_, label_, sched->runningId());
        return value_;
    }

    /** Instrumented write. */
    void
    store(T value)
    {
        Scheduler *sched = Scheduler::current();
        sched->maybePreempt();
        sched->bus().memWrite(&value_, label_, sched->runningId());
        value_ = std::move(value);
    }

    /** Instrumented read-modify-write convenience. */
    template <typename Fn>
    void
    update(Fn &&fn)
    {
        T tmp = load();
        fn(tmp);
        store(std::move(tmp));
    }

    /** Uninstrumented access (setup/teardown outside the race window). */
    const T &raw() const { return value_; }
    T &raw() { return value_; }

    const char *label() const { return label_; }

  private:
    const char *label_;
    T value_;
};

} // namespace golite::race

#endif // GOLITE_RACE_SHARED_HH
