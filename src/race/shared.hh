/**
 * @file
 * Shared<T>: an instrumented shared variable.
 *
 * Plays the role of a plain Go variable accessed from multiple
 * goroutines: every load/store is a preemption point (so races can
 * manifest, seed-dependently) and is emitted on the runtime event bus
 * (so races can be *detected* when a Detector subscribes).
 *
 * Bug kernels use Shared<T> for exactly the variables the original
 * bugs raced on, and plain C++ for everything else.
 */

#ifndef GOLITE_RACE_SHARED_HH
#define GOLITE_RACE_SHARED_HH

#include <atomic>
#include <cstdint>
#include <utility>

#include "runtime/scheduler.hh"

namespace golite::race
{

namespace detail
{

/**
 * Address-striped spinlocks protecting Shared<T> value accesses in
 * ExecMode::Parallel. A *logical* data race on a Shared variable must
 * stay observable to the vector-clock detector, but it must not be a
 * *machine-level* C++ race (undefined behavior, torn reads, TSan
 * noise in the differential lane). The stripe serializes the physical
 * access only — it creates no happens-before edge on the event bus,
 * so detection is unaffected. Uncontended cost is one CAS+store;
 * deterministic mode never reaches it.
 */
inline std::atomic_flag &
valueStripe(const void *addr)
{
    static std::atomic_flag stripes[64] = {};
    const auto h = reinterpret_cast<uintptr_t>(addr);
    // Mix the high bits down so neighboring variables spread out.
    return stripes[(h ^ (h >> 9)) & 63];
}

class StripeLock
{
  public:
    explicit StripeLock(const void *addr, bool engaged)
        : flag_(engaged ? &valueStripe(addr) : nullptr)
    {
        if (flag_ != nullptr) {
            while (flag_->test_and_set(std::memory_order_acquire)) {
            }
        }
    }

    ~StripeLock()
    {
        if (flag_ != nullptr)
            flag_->clear(std::memory_order_release);
    }

    StripeLock(const StripeLock &) = delete;
    StripeLock &operator=(const StripeLock &) = delete;

  private:
    std::atomic_flag *flag_;
};

} // namespace detail

template <typename T>
class Shared
{
  public:
    explicit Shared(const char *label = "shared", T initial = T{})
        : label_(label), value_(std::move(initial))
    {
    }

    Shared(const Shared &) = delete;
    Shared &operator=(const Shared &) = delete;

    /** Destroying the variable retires its shadow history, so soak
     *  runs that churn through tracked objects stay O(live). */
    ~Shared() { notifyMemFree(&value_); }

    /** Instrumented read. */
    T
    load() const
    {
        Scheduler *sched = Scheduler::current();
        sched->maybePreempt();
        sched->bus().memRead(&value_, label_, sched->runningId());
        detail::StripeLock stripe(&value_, sched->parallel());
        return value_;
    }

    /** Instrumented write. */
    void
    store(T value)
    {
        Scheduler *sched = Scheduler::current();
        sched->maybePreempt();
        sched->bus().memWrite(&value_, label_, sched->runningId());
        detail::StripeLock stripe(&value_, sched->parallel());
        value_ = std::move(value);
    }

    /** Instrumented read-modify-write convenience. */
    template <typename Fn>
    void
    update(Fn &&fn)
    {
        T tmp = load();
        fn(tmp);
        store(std::move(tmp));
    }

    /** Uninstrumented access (setup/teardown outside the race window). */
    const T &raw() const { return value_; }
    T &raw() { return value_; }

    const char *label() const { return label_; }

  private:
    const char *label_;
    T value_;
};

} // namespace golite::race

#endif // GOLITE_RACE_SHARED_HH
