/**
 * @file
 * Sharded happens-before race detector for ExecMode::Parallel.
 *
 * The single-thread race::Detector assumes one OS thread delivers
 * every event; in an M:N parallel run, MemRead/MemWrite fan out from
 * every worker concurrently (the bus's mem lane is lock-free — see
 * EventBus::beginParallel). Sharded is the mem-lane subscriber built
 * for that: parallelSafe() returns true and its state is partitioned
 * so the per-access hot path takes at most one shard spinlock.
 *
 * Concurrency architecture (why each piece needs no more locking than
 * it has):
 *
 *  - Per-goroutine vector clocks are single-LOGICAL-thread. A
 *    goroutine's clock is mutated only by its own execution (spawn by
 *    the parent before the child is enqueued, acquire/release by the
 *    acting goroutine) and read on the mem path only for the
 *    *accessing* goroutine's own components — so clocks carry no
 *    locks at all. Cross-OS-thread visibility when a goroutine
 *    migrates is given by the scheduler-lock handoff that migration
 *    itself requires.
 *  - Sync events (GoSpawn/GoFinish/SyncAcquire/SyncRelease/MemFree)
 *    arrive serialized under the bus merge mutex, in an order
 *    consistent with the runtime's real synchronization order
 *    (emitters hold the scheduler lock). Sync-object clocks are
 *    therefore plain single-threaded maps.
 *  - Shadow memory is sharded by address hash: 64 shards, each a
 *    spinlocked open hash map of bounded access-history rings. Two
 *    goroutines racing on *different* variables almost never contend.
 *  - The lock-free fast path: each goroutine caches its last
 *    (address, shadow entry) pair, and each shadow entry keeps an
 *    atomic packed word of its last recorded access. A repeat access
 *    by the same goroutine in the same epoch whose kind is subsumed
 *    by the recorded one (a write subsumes both kinds, a read only a
 *    read) is provably already-checked — the entire access is one
 *    atomic load + compare, no locks. This is the same-epoch argument
 *    FastTrack makes: the history cannot have changed (any interleaved
 *    access would have replaced the packed word), and the accessor's
 *    clock can only have *grown* since the recorded scan.
 *
 * Reports are verdict-compatible with race::Detector — the serial
 * differential test holds the two detectors' racedOn verdicts equal
 * on the bug-kernel corpus — but not report-for-report identical
 * under parallel execution, where the interleaving itself is
 * nondeterministic.
 */

#ifndef GOLITE_RACE_SHARDED_HH
#define GOLITE_RACE_SHARDED_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "race/detector.hh" // RaceReport
#include "runtime/events.hh"

namespace golite::race
{

class Sharded : public Subscriber
{
  public:
    /** Shadow shards (power of two; per-shard spinlock + hash map). */
    static constexpr size_t kShards = 64;

    /** Access-history cells kept per address (Go's detector keeps at
     *  most 4; matches race::Detector's default). */
    static constexpr size_t kDepth = 4;

    /** Per-address report budget, mirroring TSan's suppression. */
    static constexpr size_t kReportLimit = 4;

    Sharded();
    ~Sharded() override;

    Sharded(const Sharded &) = delete;
    Sharded &operator=(const Sharded &) = delete;

    // Subscriber interface -----------------------------------------
    EventMask eventMask() const override;
    void onEvent(const RuntimeEvent &ev) override;
    void onMemAccess(const void *addr, const char *label, uint64_t gid,
                     bool is_write) override;
    bool parallelSafe() const override { return true; }
    std::vector<std::string> drainReports() override;
    void finalizeRun(RunReport &report) override;

    // Event handlers (public so tests can drive the detector
    // directly, mirroring race::Detector's surface).
    void goroutineCreated(uint64_t parent, uint64_t child);
    void goroutineFinished(uint64_t gid);
    void acquire(const void *sync_obj, uint64_t gid);
    void release(const void *sync_obj, uint64_t gid);
    void memFreed(const void *addr);

    /** Clear all per-run state so one instance can be reused across
     *  runs (shard slabs and goroutine chunks are retained). */
    void reset();

    /** All structured reports so far (not cleared by drainReports).
     *  Call only while no run is emitting (between runs). */
    std::vector<RaceReport> reports() const;

    /** True if any race was found on an object with @p label. */
    bool racedOn(const std::string &label) const;

  private:
    /** Dense per-goroutine vector clock (index = gid). */
    struct DenseClock
    {
        std::vector<uint64_t> c;

        uint64_t
        get(uint64_t i) const
        {
            return i < c.size() ? c[i] : 0;
        }

        void
        set(uint64_t i, uint64_t v)
        {
            if (i >= c.size())
                c.resize(i + 1, 0);
            c[i] = v;
        }

        void
        joinFrom(const DenseClock &o)
        {
            if (o.c.size() > c.size())
                c.resize(o.c.size(), 0);
            for (size_t i = 0; i < o.c.size(); ++i) {
                if (o.c[i] > c[i])
                    c[i] = o.c[i];
            }
        }
    };

    struct ShadowEntry;

    /**
     * Per-goroutine state. Everything here is owned by the
     * goroutine's logical thread (see the file comment); the shadow
     * cache additionally carries a free-generation stamp so MemFree
     * invalidates it without touching every goroutine.
     */
    struct GoState
    {
        DenseClock clock;
        bool live = false;
        // Last-accessed shadow entry (lock-free fast path).
        const void *cachedAddr = nullptr;
        ShadowEntry *cachedEntry = nullptr;
        uint64_t cachedFreeGen = 0;
    };

    /** One recorded access: epoch:32 | gid:30 | write:1 | valid:1. */
    static uint64_t
    packCell(uint64_t gid, uint64_t epoch, bool is_write)
    {
        return ((epoch & 0xFFFFFFFFu) << 32) |
               ((gid & 0x3FFFFFFFu) << 2) |
               (is_write ? 2u : 0u) | 1u;
    }

    struct ShadowEntry
    {
        /** The tracked address while linked into a shard map; null
         *  once freed (gates the stale-cache fast path). */
        std::atomic<const void *> owner{nullptr};
        /** Last recorded access, packed (0 = none yet). */
        std::atomic<uint64_t> lastPacked{0};

        const char *label = nullptr;
        // Bounded history ring (guarded by the shard lock).
        uint64_t cellGid[kDepth] = {};
        uint64_t cellEpoch[kDepth] = {};
        uint8_t cellWrite[kDepth] = {};
        uint8_t cellCount = 0;
        uint8_t cellNext = 0;
        // Per-address suppression (guarded by the shard lock).
        uint8_t reportCount = 0;
        uint64_t reportedPairs[kReportLimit] = {};

        /** Reset for recycling (the atomics forbid plain assignment). */
        void
        recycle(const void *new_owner, const char *new_label)
        {
            lastPacked.store(0, std::memory_order_relaxed);
            label = new_label;
            cellCount = 0;
            cellNext = 0;
            reportCount = 0;
            owner.store(new_owner, std::memory_order_release);
        }
    };

    struct alignas(64) Shard
    {
        std::mutex mu;
        std::unordered_map<const void *, ShadowEntry *> map;
        /** Stable-address entry storage: the fast path dereferences
         *  entries without the shard lock, so entries are recycled
         *  (via freeList), never destroyed mid-run. */
        std::deque<ShadowEntry> slab;
        std::vector<ShadowEntry *> freeList;
        std::vector<RaceReport> reports;
    };

    Shard &
    shardFor(const void *addr)
    {
        const auto h = reinterpret_cast<uintptr_t>(addr);
        return shards_[(h ^ (h >> 9) ^ (h >> 17)) & (kShards - 1)];
    }

    GoState *goState(uint64_t gid);

    void recordRace(Shard &shard, ShadowEntry &e, const void *addr,
                    const char *label, uint64_t first_gid,
                    bool first_write, uint64_t second_gid,
                    bool second_write);

    // Goroutine states live in chunked stable storage: chunk pointers
    // are atomic so a worker can resolve its own gid while GoSpawn
    // (serialized, another thread) installs new chunks.
    static constexpr size_t kGoChunkBits = 10;
    static constexpr size_t kGoChunk = size_t{1} << kGoChunkBits;
    static constexpr size_t kMaxGoChunks = size_t{1} << 14;

    std::unique_ptr<std::atomic<GoState *>[]> goChunks_;
    std::mutex growMu_;

    Shard shards_[kShards];

    /** Bumped by every memFreed; goroutine shadow caches whose stamp
     *  lags are re-resolved through the shard map. */
    std::atomic<uint64_t> freeGen_{1};

    // Serialized state (bus merge mutex orders all writers).
    std::unordered_map<const void *, DenseClock> syncClocks_;
    uint64_t maxGid_ = 0;
    uint64_t liveGoroutines_ = 0;
    uint64_t peakLiveGoroutines_ = 0;
    uint64_t freedShadow_ = 0;
};

} // namespace golite::race

#endif // GOLITE_RACE_SHARDED_HH
