#include "race/sharded.hh"

#include <cassert>

#include "runtime/report.hh"

namespace golite::race
{

Sharded::Sharded()
    : goChunks_(new std::atomic<GoState *>[kMaxGoChunks])
{
    for (size_t i = 0; i < kMaxGoChunks; ++i)
        goChunks_[i].store(nullptr, std::memory_order_relaxed);
}

Sharded::~Sharded()
{
    for (size_t i = 0; i < kMaxGoChunks; ++i)
        delete[] goChunks_[i].load(std::memory_order_relaxed);
}

EventMask
Sharded::eventMask() const
{
    return eventBit(EventKind::GoSpawn) | eventBit(EventKind::GoFinish) |
           eventBit(EventKind::SyncAcquire) |
           eventBit(EventKind::SyncRelease) |
           eventBit(EventKind::MemRead) | eventBit(EventKind::MemWrite) |
           eventBit(EventKind::MemFree);
}

void
Sharded::onEvent(const RuntimeEvent &ev)
{
    switch (ev.kind) {
      case EventKind::GoSpawn:
        goroutineCreated(ev.a, ev.gid);
        break;
      case EventKind::GoFinish:
        goroutineFinished(ev.gid);
        break;
      case EventKind::SyncAcquire:
        acquire(ev.obj, ev.gid);
        break;
      case EventKind::SyncRelease:
        release(ev.obj, ev.gid);
        break;
      case EventKind::MemRead:
        onMemAccess(ev.obj, ev.label, ev.gid, false);
        break;
      case EventKind::MemWrite:
        onMemAccess(ev.obj, ev.label, ev.gid, true);
        break;
      case EventKind::MemFree:
        memFreed(ev.obj);
        break;
      default:
        break; // broadcast mode delivers kinds outside our mask
    }
}

Sharded::GoState *
Sharded::goState(uint64_t gid)
{
    const size_t chunk = gid >> kGoChunkBits;
    assert(chunk < kMaxGoChunks && "goroutine id out of table range");
    GoState *base = goChunks_[chunk].load(std::memory_order_acquire);
    if (base == nullptr) {
        std::lock_guard<std::mutex> lk(growMu_);
        base = goChunks_[chunk].load(std::memory_order_relaxed);
        if (base == nullptr) {
            base = new GoState[kGoChunk];
            goChunks_[chunk].store(base, std::memory_order_release);
        }
    }
    return &base[gid & (kGoChunk - 1)];
}

void
Sharded::goroutineCreated(uint64_t parent, uint64_t child)
{
    GoState *c = goState(child);
    c->clock.c.clear();
    c->live = true;
    c->cachedAddr = nullptr;
    c->cachedEntry = nullptr;
    if (parent != 0) {
        GoState *p = goState(parent);
        c->clock.joinFrom(p->clock);
        // Tick the parent so accesses after the spawn are not ordered
        // before the child's view of them.
        p->clock.set(parent, p->clock.get(parent) + 1);
    }
    c->clock.set(child, c->clock.get(child) + 1);
    if (child > maxGid_)
        maxGid_ = child;
    liveGoroutines_++;
    if (liveGoroutines_ > peakLiveGoroutines_)
        peakLiveGoroutines_ = liveGoroutines_;
}

void
Sharded::goroutineFinished(uint64_t gid)
{
    GoState *g = goState(gid);
    if (g->live) {
        g->live = false;
        liveGoroutines_--;
    }
}

void
Sharded::acquire(const void *sync_obj, uint64_t gid)
{
    if (gid == 0)
        return;
    auto it = syncClocks_.find(sync_obj);
    if (it == syncClocks_.end())
        return;
    goState(gid)->clock.joinFrom(it->second);
}

void
Sharded::release(const void *sync_obj, uint64_t gid)
{
    if (gid == 0)
        return;
    GoState *g = goState(gid);
    DenseClock &sc = syncClocks_[sync_obj];
    sc.joinFrom(g->clock);
    // Tick: later same-goroutine accesses must not look released.
    g->clock.set(gid, g->clock.get(gid) + 1);
}

void
Sharded::memFreed(const void *addr)
{
    Shard &shard = shardFor(addr);
    {
        std::lock_guard<std::mutex> lk(shard.mu);
        auto it = shard.map.find(addr);
        if (it != shard.map.end()) {
            ShadowEntry *e = it->second;
            // Unlink before recycling: a racing fast path validates
            // owner before trusting its cached pointer.
            e->owner.store(nullptr, std::memory_order_release);
            e->lastPacked.store(0, std::memory_order_release);
            shard.map.erase(it);
            shard.freeList.push_back(e);
            freedShadow_++;
        }
    }
    freeGen_.fetch_add(1, std::memory_order_release);
    syncClocks_.erase(addr);
}

void
Sharded::recordRace(Shard &shard, ShadowEntry &e, const void *addr,
                    const char *label, uint64_t first_gid,
                    bool first_write, uint64_t second_gid,
                    bool second_write)
{
    if (e.reportCount >= kReportLimit)
        return;
    const uint64_t pair = (first_gid << 33) | (second_gid << 2) |
                          (first_write ? 2u : 0u) |
                          (second_write ? 1u : 0u);
    for (uint8_t i = 0; i < e.reportCount; ++i) {
        if (e.reportedPairs[i] == pair)
            return;
    }
    e.reportedPairs[e.reportCount++] = pair;
    RaceReport r;
    r.label = label != nullptr ? label : "?";
    r.addr = addr;
    r.firstGid = first_gid;
    r.firstWrite = first_write;
    r.secondGid = second_gid;
    r.secondWrite = second_write;
    shard.reports.push_back(std::move(r));
}

void
Sharded::onMemAccess(const void *addr, const char *label, uint64_t gid,
                     bool is_write)
{
    if (gid == 0)
        return;
    GoState *g = goState(gid);
    const uint64_t epoch = g->clock.get(gid);

    // Lock-free fast path: repeat same-epoch access to the goroutine's
    // last-touched address, already covered by the recorded kind.
    if (g->cachedAddr == addr &&
        g->cachedFreeGen == freeGen_.load(std::memory_order_acquire)) {
        ShadowEntry *e = g->cachedEntry;
        if (e->owner.load(std::memory_order_acquire) == addr) {
            const uint64_t packed =
                e->lastPacked.load(std::memory_order_acquire);
            const uint64_t want_write =
                packCell(gid, epoch, true);
            const uint64_t want_read =
                packCell(gid, epoch, false);
            // A recorded write covers both kinds; a recorded read
            // covers only a read.
            if (packed == want_write ||
                (!is_write && packed == want_read))
                return;
        }
    }

    Shard &shard = shardFor(addr);
    std::lock_guard<std::mutex> lk(shard.mu);
    ShadowEntry *e;
    auto it = shard.map.find(addr);
    if (it != shard.map.end()) {
        e = it->second;
    } else {
        if (!shard.freeList.empty()) {
            e = shard.freeList.back();
            shard.freeList.pop_back();
        } else {
            shard.slab.emplace_back();
            e = &shard.slab.back();
        }
        e->recycle(addr, label);
        shard.map.emplace(addr, e);
    }

    // Scan the bounded history for unordered conflicting accesses.
    for (uint8_t i = 0; i < e->cellCount; ++i) {
        const uint64_t pgid = e->cellGid[i];
        if (pgid == gid)
            continue; // program order
        const bool pwrite = e->cellWrite[i] != 0;
        if (!is_write && !pwrite)
            continue; // read-read never races
        if (g->clock.get(pgid) >= e->cellEpoch[i])
            continue; // happens-before
        recordRace(shard, *e, addr, label, pgid, pwrite, gid,
                   is_write);
    }

    // Record into the ring.
    const uint8_t at = e->cellNext;
    e->cellGid[at] = gid;
    e->cellEpoch[at] = epoch;
    e->cellWrite[at] = is_write ? 1 : 0;
    e->cellNext = static_cast<uint8_t>((at + 1) % kDepth);
    if (e->cellCount < kDepth)
        e->cellCount++;
    e->lastPacked.store(packCell(gid, epoch, is_write),
                        std::memory_order_release);

    g->cachedAddr = addr;
    g->cachedEntry = e;
    g->cachedFreeGen = freeGen_.load(std::memory_order_acquire);
}

std::vector<std::string>
Sharded::drainReports()
{
    std::vector<std::string> out;
    for (Shard &shard : shards_) {
        std::lock_guard<std::mutex> lk(shard.mu);
        for (const RaceReport &r : shard.reports)
            out.push_back(r.describe());
    }
    return out;
}

void
Sharded::finalizeRun(RunReport &report)
{
    RunMetrics::DetectorFootprint &fp = report.metrics.detector;
    fp.collected = true;
    fp.liveClockSlots = liveGoroutines_;
    fp.peakClockSlots = peakLiveGoroutines_;
    fp.slotSpace = maxGid_;
    size_t entries = 0;
    size_t slab_bytes = 0;
    for (Shard &shard : shards_) {
        std::lock_guard<std::mutex> lk(shard.mu);
        entries += shard.map.size();
        slab_bytes += shard.slab.size() * sizeof(ShadowEntry);
    }
    fp.shadowEntries = entries;
    fp.peakShadowEntries = entries + freedShadow_;
    fp.shadowFreed = freedShadow_;
    fp.arenaBytes = slab_bytes;
}

void
Sharded::reset()
{
    for (size_t i = 0; i < kMaxGoChunks; ++i) {
        GoState *base = goChunks_[i].load(std::memory_order_relaxed);
        if (base == nullptr)
            continue;
        for (size_t j = 0; j < kGoChunk; ++j)
            base[j] = GoState{};
    }
    for (Shard &shard : shards_) {
        std::lock_guard<std::mutex> lk(shard.mu);
        for (auto &[addr, e] : shard.map) {
            (void)addr;
            e->owner.store(nullptr, std::memory_order_relaxed);
            e->lastPacked.store(0, std::memory_order_relaxed);
            shard.freeList.push_back(e);
        }
        shard.map.clear();
        shard.reports.clear();
    }
    freeGen_.fetch_add(1, std::memory_order_release);
    syncClocks_.clear();
    maxGid_ = 0;
    liveGoroutines_ = 0;
    peakLiveGoroutines_ = 0;
    freedShadow_ = 0;
}

std::vector<RaceReport>
Sharded::reports() const
{
    std::vector<RaceReport> out;
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lk(
            const_cast<std::mutex &>(shard.mu));
        for (const RaceReport &r : shard.reports)
            out.push_back(r);
    }
    return out;
}

bool
Sharded::racedOn(const std::string &label) const
{
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lk(
            const_cast<std::mutex &>(shard.mu));
        for (const RaceReport &r : shard.reports) {
            if (r.label == label)
                return true;
        }
    }
    return false;
}

} // namespace golite::race
