/**
 * @file
 * Happens-before data race detector.
 *
 * Implements the algorithm the paper attributes to Go's built-in race
 * detector (Section 6.3): ThreadSanitizer-style happens-before
 * tracking, with a bounded shadow history per memory object storing
 * the access history. The bounded history is faithful on purpose — it
 * reproduces the detector's published miss mode ("with only four
 * shadow words ... the detector cannot keep a long history and may
 * miss data races"), which the shadow-depth ablation bench measures.
 *
 * The hot path is FastTrack-shaped: every recorded access is a packed
 * (slot, epoch, kind) word, and two O(1) epoch fast paths skip the
 * history scan entirely when it provably cannot report — a
 * same-goroutine same-epoch repeat whose last scan was conflict-free,
 * or an object whose per-object report budget is exhausted. Both are
 * report-for-report identical to always scanning (the differential
 * test in tests/race_diff_test.cc holds the optimized detector
 * against a full-VC reference); GOLITE_RACE_FASTPATH=0 (or
 * setFastPath(false)) disables them for A/B measurement with
 * bench_race_overhead.
 *
 * Clock lifecycle (what makes -race scale with *live* goroutines, see
 * DESIGN.md "Clock lifecycle" for the invariants):
 *  - Clocks are indexed by recycled *slot*, not goroutine id. On
 *    GoFinish a goroutine's slot is retired: its final epoch becomes
 *    the slot's floor, its clock's chunks go back to the pool, and
 *    once no shadow cell references the slot anymore (a per-slot cell
 *    refcount gates this) the slot is rebound to the next spawned
 *    goroutine. A rebound slot's epochs continue above the floor, so
 *    every binding owns a disjoint ascending epoch range and
 *    happens-before comparisons are bit-identical to never recycling
 *    (GOLITE_RACE_RECYCLE=0 / setRecycle(false) for the A/B arm).
 *  - Clocks are chunked and sparse (race/vector_clock.hh): joins and
 *    copies walk a dirty-chunk bitmap, so their cost tracks how many
 *    distinct goroutines a clock has actually heard from, not the
 *    slot-space width.
 *  - Sync objects hold copy-on-write snapshots: a release whose
 *    previous clock is dominated publishes the releaser's clock by
 *    refcount bumps (FastTrack-style), and the (slot, epoch,
 *    generation) release memo lets a caught-up acquirer skip the join
 *    entirely.
 *  - EventKind::MemFree (emitted by Shared<T> and the sync
 *    primitives' destructors) erases the freed address's shadow and
 *    sync state, so a soak run's detector footprint is O(live), not
 *    O(ever-allocated). Freed-state erasure is active in both recycle
 *    modes and mirrored by the differential-test reference.
 *
 * All detector state lives in open-addressing tables, chunked COW
 * vector clocks, and slabs that survive reset(), so one detector
 * instance can be reused across a seed sweep with zero steady-state
 * allocation (see parallel::runSeedsRaced).
 *
 * Plug an instance into RunOptions::subscribers to run a golite
 * program "built with -race"; it declares the goroutine-lifecycle,
 * sync, and shadow-memory event kinds and receives memory accesses
 * through the Subscriber::onMemAccess hot path.
 */

#ifndef GOLITE_RACE_DETECTOR_HH
#define GOLITE_RACE_DETECTOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "race/ptr_table.hh"
#include "race/shadow.hh"
#include "race/vector_clock.hh"
#include "runtime/events.hh"

namespace golite::race
{

/** One detected race, structured for the study apparatus. */
struct RaceReport
{
    std::string label;      ///< Shared<T> label of the racing object
    const void *addr;       ///< address of the racing object
    uint64_t firstGid;      ///< goroutine of the older access
    bool firstWrite;
    uint64_t secondGid;     ///< goroutine of the newer access
    bool secondWrite;

    std::string describe() const;
};

class Detector : public Subscriber
{
  public:
    /** Hard cap on the history depth (requests above it clamp). */
    static constexpr size_t kMaxShadowDepth = 1024;

    /** TSan-style per-object report budget (see setReportLimit). */
    static constexpr size_t kDefaultReportLimit = 4;

    /**
     * @param shadow_depth Access-history cells kept per object. Go's
     *        detector keeps at most 4; the ablation sweeps this.
     *        Clamped into [1, kMaxShadowDepth].
     */
    explicit Detector(size_t shadow_depth = 4);

    // Subscriber interface -----------------------------------------
    EventMask eventMask() const override;
    void onEvent(const RuntimeEvent &ev) override;
    /** The hot path: one virtual call per instrumented access. */
    void onMemAccess(const void *addr, const char *label, uint64_t gid,
                     bool is_write) override;
    std::vector<std::string> drainReports() override;
    /** Publishes the memory-footprint counters into
     *  RunReport::metrics.detector. */
    void finalizeRun(RunReport &report) override;

    // Event handlers (public so the differential test and the
    // overhead bench can drive the detector directly).
    void goroutineCreated(uint64_t parent, uint64_t child);
    void goroutineFinished(uint64_t gid);
    void acquire(const void *sync_obj, uint64_t gid);
    void release(const void *sync_obj, uint64_t gid);
    /** The memory at @p addr was freed: drop its shadow history and
     *  any sync clock keyed on it. */
    void memFreed(const void *addr);

    /**
     * Clear all per-run state (clocks, sync clocks, shadow cells,
     * slot bindings, reports) while keeping every allocation —
     * tables, chunk pool, clock chunk vectors, and the cell slab —
     * so a detector reused across a sweep allocates nothing in
     * steady state.
     */
    void reset();

    /** reset(), additionally changing the shadow depth. */
    void reset(size_t shadow_depth);

    /** All structured reports so far (not cleared by drainReports). */
    const std::vector<RaceReport> &reports() const { return reports_; }

    /** True if any race was found on an object with @p label. */
    bool racedOn(const std::string &label) const;

    size_t shadowDepth() const { return shadowDepth_; }

    /**
     * Per-object report budget, mirroring TSan's per-object
     * suppression: for each address at most @p n races are reported,
     * and a (first gid, first kind, second gid, second kind) pair is
     * reported at most once, so looped kernels cannot flood the
     * report list. Clamped into [1, ShadowState::kMaxReports].
     */
    void setReportLimit(size_t n);
    size_t reportLimit() const { return reportLimit_; }

    /** Enable/disable the epoch fast paths (default: on unless the
     *  GOLITE_RACE_FASTPATH environment variable is "0"). */
    void
    setFastPath(bool on)
    {
        fastPath_ = on;
        invalidateCaches(); // baseline mode does not maintain them
    }
    bool fastPath() const { return fastPath_; }

    /** Enable/disable slot recycling (default: on unless the
     *  GOLITE_RACE_RECYCLE environment variable is "0"). Reports and
     *  run fingerprints are identical either way; only clock width
     *  and memory differ. */
    void setRecycle(bool on) { recycle_ = on; }
    bool recycle() const { return recycle_; }

    // Footprint (test/metrics hooks) --------------------------------

    /** Clock slots currently bound to a live goroutine. */
    size_t liveSlots() const { return gidToSlot_.size(); }

    /** Distinct slots ever materialized this run (the slot-space
     *  width — O(peak live) with recycling, O(total) without). */
    size_t slotSpace() const { return slotCount_; }

    /** Tracked addresses with live shadow state. */
    size_t shadowEntries() const { return shadow_.size(); }

    /** Freed addresses whose shadow state was erased this run. */
    size_t shadowFreed() const { return freedShadow_; }

    /** Bytes held by clock chunks + deep shadow cells. */
    size_t
    arenaBytes() const
    {
        return chunkPool_.bytesAllocated() + slab_.bytesAllocated();
    }

  private:
    /** No binding / no memo sentinel for slot fields. */
    static constexpr uint32_t kNoSlot = UINT32_MAX;

    /** Floor above which a slot is never rebound: packed cells keep
     *  32-bit epochs, so a binding must not start near the top. */
    static constexpr uint64_t kEpochReuseLimit = uint64_t{1} << 30;

    /** Per-sync-object state: the published clock and the release
     *  memo that makes repeat release/acquire by caught-up
     *  goroutines O(1) (see DESIGN.md "Clock lifecycle"). */
    struct SyncClock
    {
        VectorClock vc;
        uint32_t relSlot = kNoSlot; ///< slot of the last releaser
        uint32_t relGen = 0;        ///< its binding generation
        uint64_t relEpoch = 0;      ///< its own epoch at that release
        bool exact = false;         ///< vc == that releaser's clock

        void
        clear()
        {
            vc.clear();
            relSlot = kNoSlot;
            relGen = 0;
            relEpoch = 0;
            exact = false;
        }
    };

    void access(const void *addr, const char *label, uint64_t gid,
                bool is_write);

    /** Full history scan + ring record (the reference slow path). */
    void scanAndRecord(ShadowState &state, uint32_t slot,
                       const VectorClock &vc, uint64_t epoch,
                       bool is_write, const void *addr,
                       const char *label);

    /** Append the access to the bounded history ring, maintaining
     *  the per-slot cell refcounts that gate slot reuse. */
    void recordCell(ShadowState &state, uint32_t slot, uint64_t epoch,
                    bool is_write);

    /** Slot bound to @p gid, binding a fresh or recycled one on
     *  first sight. */
    uint32_t slotOf(uint64_t gid);

    /** Bind @p gid to a slot and start its clock at floor+1. */
    uint32_t bindSlot(uint64_t gid);

    /** One shadow cell stopped referencing @p slot. */
    void
    dropCellRef(uint32_t slot)
    {
        if (--slotCellRefs_[slot] == 0 && slotRetired_[slot])
            retireToFreeList(slot);
    }

    void retireToFreeList(uint32_t slot);

    void
    invalidateCaches()
    {
        cachedAddr_ = nullptr;
        cachedState_ = nullptr;
        cachedGid_ = 0;
        cachedSlot_ = kNoSlot;
        cachedClock_ = nullptr;
    }

    size_t shadowDepth_;
    size_t reportLimit_ = kDefaultReportLimit;
    bool fastPath_;
    bool recycle_;

    // Chunk pool first: clocks in the containers below release their
    // chunks into it on destruction.
    ChunkPool chunkPool_;

    // Slot machinery (all indexed by slot, except gidToSlot_).
    PtrTable<uint32_t, uint64_t> gidToSlot_{64};
    std::vector<VectorClock> clocksBySlot_;
    std::vector<uint64_t> slotGid_;      ///< current/last binding
    std::vector<uint32_t> slotGen_;      ///< bumped at each rebind
    std::vector<uint64_t> slotFloor_;    ///< epochs start at floor+1
    std::vector<uint32_t> slotCellRefs_; ///< live cells naming slot
    std::vector<uint8_t> slotRetired_;   ///< finished, awaiting refs 0
    std::vector<uint32_t> freeSlots_;    ///< rebindable slots (LIFO)
    uint32_t slotCount_ = 0;             ///< slots materialized

    PtrTable<SyncClock> syncClocks_{64};
    PtrTable<ShadowState> shadow_{256};
    CellSlab slab_;

    // Footprint peaks and counters for finalizeRun.
    size_t peakLiveSlots_ = 0;
    size_t peakShadow_ = 0;
    size_t freedShadow_ = 0;

    // Single-entry caches for the hot path (fast-path mode only).
    // cachedEpoch_ is the cached goroutine's own clock component; it
    // only moves on tick(), so release() and goroutineCreated()
    // invalidate and fast-path hits never touch the clock at all.
    const void *cachedAddr_ = nullptr;
    ShadowState *cachedState_ = nullptr;
    uint64_t cachedGid_ = 0;
    uint32_t cachedSlot_ = kNoSlot;
    VectorClock *cachedClock_ = nullptr;
    uint64_t cachedEpoch_ = 0;

    std::vector<RaceReport> reports_;
    std::vector<std::string> pendingMessages_;
};

} // namespace golite::race

#endif // GOLITE_RACE_DETECTOR_HH
