/**
 * @file
 * Happens-before data race detector.
 *
 * Implements the algorithm the paper attributes to Go's built-in race
 * detector (Section 6.3): ThreadSanitizer-style happens-before
 * tracking, with *up to four shadow words per memory object* storing
 * the access history. The bounded history is faithful on purpose — it
 * reproduces the detector's published miss mode ("with only four
 * shadow words ... the detector cannot keep a long history and may
 * miss data races"), which the shadow-depth ablation bench measures.
 *
 * Plug an instance into RunOptions::hooks to run a golite program
 * "built with -race".
 */

#ifndef GOLITE_RACE_DETECTOR_HH
#define GOLITE_RACE_DETECTOR_HH

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "race/vector_clock.hh"
#include "runtime/hooks.hh"

namespace golite::race
{

/** One detected race, structured for the study apparatus. */
struct RaceReport
{
    std::string label;      ///< Shared<T> label of the racing object
    const void *addr;       ///< address of the racing object
    uint64_t firstGid;      ///< goroutine of the older access
    bool firstWrite;
    uint64_t secondGid;     ///< goroutine of the newer access
    bool secondWrite;

    std::string describe() const;
};

class Detector : public RaceHooks
{
  public:
    /**
     * @param shadow_depth Access-history cells kept per object. Go's
     *        detector keeps at most 4; the ablation sweeps this.
     */
    explicit Detector(size_t shadow_depth = 4);

    // RaceHooks interface ------------------------------------------
    void goroutineCreated(uint64_t parent, uint64_t child) override;
    void goroutineFinished(uint64_t gid) override;
    void acquire(const void *sync_obj) override;
    void release(const void *sync_obj) override;
    void memRead(const void *addr, const char *label) override;
    void memWrite(const void *addr, const char *label) override;
    std::vector<std::string> drainReports() override;

    /** All structured reports so far (not cleared by drainReports). */
    const std::vector<RaceReport> &reports() const { return reports_; }

    /** True if any race was found on an object with @p label. */
    bool racedOn(const std::string &label) const;

    size_t shadowDepth() const { return shadowDepth_; }

  private:
    struct ShadowCell
    {
        uint64_t gid = 0;
        uint64_t epoch = 0;
        bool isWrite = false;
    };

    struct ShadowState
    {
        std::array<ShadowCell, 8> cells{};
        size_t used = 0;
        size_t next = 0; ///< ring cursor once full
        const char *label = "";
        bool reported = false;
    };

    void access(const void *addr, const char *label, bool is_write);
    VectorClock &clockOf(uint64_t gid);

    size_t shadowDepth_;
    uint64_t currentGid_ = 0; // updated via scheduler query
    std::unordered_map<uint64_t, VectorClock> goroutineClocks_;
    std::unordered_map<const void *, VectorClock> syncClocks_;
    std::unordered_map<const void *, ShadowState> shadow_;
    std::vector<RaceReport> reports_;
    std::vector<std::string> pendingMessages_;
};

} // namespace golite::race

#endif // GOLITE_RACE_DETECTOR_HH
