/**
 * @file
 * Happens-before data race detector.
 *
 * Implements the algorithm the paper attributes to Go's built-in race
 * detector (Section 6.3): ThreadSanitizer-style happens-before
 * tracking, with a bounded shadow history per memory object storing
 * the access history. The bounded history is faithful on purpose — it
 * reproduces the detector's published miss mode ("with only four
 * shadow words ... the detector cannot keep a long history and may
 * miss data races"), which the shadow-depth ablation bench measures.
 *
 * The hot path is FastTrack-shaped: every recorded access is a packed
 * (gid, epoch, kind) word, and two O(1) epoch fast paths skip the
 * history scan entirely when it provably cannot report — a
 * same-goroutine same-epoch repeat whose last scan was conflict-free,
 * or an object whose per-object report budget is exhausted. Both are
 * report-for-report identical to always scanning (the differential
 * test in tests/race_diff_test.cc holds the optimized detector
 * against a full-VC reference); GOLITE_RACE_FASTPATH=0 (or
 * setFastPath(false)) disables them for A/B measurement with
 * bench_race_overhead.
 *
 * All detector state lives in open-addressing pointer tables, SBO
 * vector clocks, and a cell slab that survive reset(), so one
 * detector instance can be reused across a seed sweep with zero
 * steady-state allocation (see parallel::runSeedsRaced).
 *
 * Plug an instance into RunOptions::subscribers to run a golite
 * program "built with -race"; it declares the goroutine-lifecycle,
 * sync, and shadow-memory event kinds and receives memory accesses
 * through the Subscriber::onMemAccess hot path.
 */

#ifndef GOLITE_RACE_DETECTOR_HH
#define GOLITE_RACE_DETECTOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "race/ptr_table.hh"
#include "race/shadow.hh"
#include "race/vector_clock.hh"
#include "runtime/events.hh"

namespace golite::race
{

/** One detected race, structured for the study apparatus. */
struct RaceReport
{
    std::string label;      ///< Shared<T> label of the racing object
    const void *addr;       ///< address of the racing object
    uint64_t firstGid;      ///< goroutine of the older access
    bool firstWrite;
    uint64_t secondGid;     ///< goroutine of the newer access
    bool secondWrite;

    std::string describe() const;
};

class Detector : public Subscriber
{
  public:
    /** Hard cap on the history depth (requests above it clamp). */
    static constexpr size_t kMaxShadowDepth = 1024;

    /** TSan-style per-object report budget (see setReportLimit). */
    static constexpr size_t kDefaultReportLimit = 4;

    /**
     * @param shadow_depth Access-history cells kept per object. Go's
     *        detector keeps at most 4; the ablation sweeps this.
     *        Clamped into [1, kMaxShadowDepth].
     */
    explicit Detector(size_t shadow_depth = 4);

    // Subscriber interface -----------------------------------------
    EventMask eventMask() const override;
    void onEvent(const RuntimeEvent &ev) override;
    /** The hot path: one virtual call per instrumented access. */
    void onMemAccess(const void *addr, const char *label, uint64_t gid,
                     bool is_write) override;
    std::vector<std::string> drainReports() override;

    // Event handlers (public so the differential test and the
    // overhead bench can drive the detector directly).
    void goroutineCreated(uint64_t parent, uint64_t child);
    void goroutineFinished(uint64_t gid);
    void acquire(const void *sync_obj, uint64_t gid);
    void release(const void *sync_obj, uint64_t gid);

    /**
     * Clear all per-run state (clocks, sync clocks, shadow cells,
     * reports) while keeping every allocation — tables, clock spill
     * vectors, and the cell slab — so a detector reused across a
     * sweep allocates nothing in steady state.
     */
    void reset();

    /** reset(), additionally changing the shadow depth. */
    void reset(size_t shadow_depth);

    /** All structured reports so far (not cleared by drainReports). */
    const std::vector<RaceReport> &reports() const { return reports_; }

    /** True if any race was found on an object with @p label. */
    bool racedOn(const std::string &label) const;

    size_t shadowDepth() const { return shadowDepth_; }

    /**
     * Per-object report budget, mirroring TSan's per-object
     * suppression: for each address at most @p n races are reported,
     * and a (first gid, first kind, second gid, second kind) pair is
     * reported at most once, so looped kernels cannot flood the
     * report list. Clamped into [1, ShadowState::kMaxReports].
     */
    void setReportLimit(size_t n);
    size_t reportLimit() const { return reportLimit_; }

    /** Enable/disable the epoch fast paths (default: on unless the
     *  GOLITE_RACE_FASTPATH environment variable is "0"). */
    void
    setFastPath(bool on)
    {
        fastPath_ = on;
        invalidateCaches(); // baseline mode does not maintain them
    }
    bool fastPath() const { return fastPath_; }

  private:
    void access(const void *addr, const char *label, uint64_t gid,
                bool is_write);

    /** Full history scan + ring record (the reference slow path). */
    void scanAndRecord(ShadowState &state, uint64_t gid,
                       const VectorClock &vc, uint64_t epoch,
                       bool is_write, const void *addr,
                       const char *label);

    /** Append the access to the bounded history ring. */
    void recordCell(ShadowState &state, uint64_t gid, uint64_t epoch,
                    bool is_write);

    VectorClock &clockOf(uint64_t gid);

    void
    invalidateCaches()
    {
        cachedAddr_ = nullptr;
        cachedState_ = nullptr;
        cachedGid_ = 0;
        cachedClock_ = nullptr;
    }

    size_t shadowDepth_;
    size_t reportLimit_ = kDefaultReportLimit;
    bool fastPath_;

    std::vector<VectorClock> goroutineClocks_; ///< indexed by gid
    PtrTable<VectorClock> syncClocks_{64};
    PtrTable<ShadowState> shadow_{256};
    CellSlab slab_;

    // Single-entry caches for the hot path (fast-path mode only).
    // cachedEpoch_ is the cached goroutine's own clock component; it
    // only moves on tick(), so release() and goroutineCreated()
    // invalidate and fast-path hits never touch the clock at all.
    const void *cachedAddr_ = nullptr;
    ShadowState *cachedState_ = nullptr;
    uint64_t cachedGid_ = 0;
    VectorClock *cachedClock_ = nullptr;
    uint64_t cachedEpoch_ = 0;

    std::vector<RaceReport> reports_;
    std::vector<std::string> pendingMessages_;
};

} // namespace golite::race

#endif // GOLITE_RACE_DETECTOR_HH
