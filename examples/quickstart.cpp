/**
 * @file
 * Quickstart: goroutines, channels, select, and the run report.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>
#include <string>

#include "golite/golite.hh"

using namespace golite;

int
main()
{
    // Every golite program runs under golite::run, which returns a
    // structured report (completed? deadlocked? leaked goroutines?).
    // The wait-for-graph detector rides along and must stay silent on
    // a correct program like this one.
    waitgraph::Detector deadlocks;
    RunOptions options;
    options.subscribers.push_back(&deadlocks);
    RunReport report = run([] {
        // A channel of strings with buffer capacity 2.
        Chan<std::string> messages = makeChan<std::string>(2);

        // `go` launches a goroutine; lambdas play the role of Go's
        // anonymous functions.
        go([messages] {
            messages.send("hello");
            messages.send("from");
            messages.send("golite");
            messages.close();
        });

        // Range over the channel until it is closed.
        for (;;) {
            auto msg = messages.recv();
            if (!msg.ok)
                break;
            std::printf("recv: %s\n", msg.value.c_str());
        }

        // WaitGroup: fan out ten workers, wait for all of them.
        WaitGroup wg;
        Mutex mu;
        int total = 0;
        wg.add(10);
        for (int i = 1; i <= 10; ++i) {
            go([&, i] {
                mu.lock();
                total += i;
                mu.unlock();
                wg.done();
            });
        }
        wg.wait();
        std::printf("sum 1..10 = %d\n", total);

        // select with a timeout on the virtual clock.
        Chan<int> slow = makeChan<int>();
        go([slow] {
            gotime::sleep(50 * gotime::kMillisecond);
            slow.trySend(42);
        });
        Select()
            .recv<int>(slow, [](int v, bool) {
                std::printf("got %d\n", v);
            })
            .recv<gotime::Time>(
                gotime::after(10 * gotime::kMillisecond),
                [](gotime::Time at, bool) {
                    std::printf("timed out at t=%lldms\n",
                                static_cast<long long>(
                                    at / gotime::kMillisecond));
                })
            .run();
        gotime::sleep(100 * gotime::kMillisecond);
    }, options);

    std::printf("\nrun report: completed=%d goroutines=%llu leaks=%zu "
                "ticks=%llu\n",
                report.completed ? 1 : 0,
                static_cast<unsigned long long>(report.goroutinesCreated),
                report.leaked.size(),
                static_cast<unsigned long long>(report.ticks));
    return report.clean() && report.partialDeadlocks.empty() ? 0 : 1;
}
