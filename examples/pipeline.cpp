/**
 * @file
 * A context-cancelled fan-out/fan-in pipeline — the idiomatic Go
 * pattern the paper's context/channel bugs corrupt, written with the
 * discipline that keeps the leak report empty:
 *
 *   generator -> N squaring workers -> collector
 *
 * with cancellation propagated through a context and every stage
 * selecting on ctx->done().
 */

#include <cstdio>
#include <vector>

#include "golite/golite.hh"

using namespace golite;

int
main()
{
    waitgraph::Detector deadlocks;
    RunOptions options;
    options.subscribers.push_back(&deadlocks);
    RunReport report = run([] {
        auto [ctx, cancel] = ctx::withCancel(ctx::background());

        // Stage 1: generator emits integers until cancelled.
        Chan<int> numbers = makeChan<int>();
        go("generator", [c = ctx, numbers] {
            for (int value = 1;; ++value) {
                bool stop = false;
                Select()
                    .send<int>(numbers, value, [] {})
                    .recv<Unit>(c->done(),
                                [&](Unit, bool) { stop = true; })
                    .run();
                if (stop)
                    return;
            }
        });

        // Stage 2: three workers square the numbers.
        Chan<int> squares = makeChan<int>();
        WaitGroup workers;
        workers.add(3);
        for (int w = 0; w < 3; ++w) {
            go("worker", [c = ctx, numbers, squares, &workers] {
                for (;;) {
                    int n = 0;
                    bool stop = false;
                    Select()
                        .recv<int>(numbers,
                                   [&](int v, bool ok) {
                                       n = v;
                                       stop = !ok;
                                   })
                        .recv<Unit>(c->done(),
                                    [&](Unit, bool) { stop = true; })
                        .run();
                    if (stop)
                        break;
                    bool sent_stop = false;
                    Select()
                        .send<int>(squares, n * n, [] {})
                        .recv<Unit>(c->done(), [&](Unit, bool) {
                            sent_stop = true;
                        })
                        .run();
                    if (sent_stop)
                        break;
                }
                workers.done();
            });
        }

        // Fan-in: take the first 10 squares, then cancel everything.
        std::vector<int> results;
        for (int i = 0; i < 10; ++i)
            results.push_back(squares.recv().value);
        cancel();
        workers.wait();

        std::printf("collected %zu squares:", results.size());
        long long sum = 0;
        for (int r : results) {
            std::printf(" %d", r);
            sum += r;
        }
        std::printf("\nsum = %lld\n", sum);
    }, options);

    std::printf("\npipeline shut down cleanly: %s (leaks: %zu)\n",
                report.clean() ? "yes" : "NO", report.leaked.size());
    return report.clean() && report.partialDeadlocks.empty() ? 0 : 1;
}
