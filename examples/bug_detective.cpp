/**
 * @file
 * Running both of the paper's detectors over corpus bugs.
 *
 * Picks three famous kernels (Figure 1, Figure 8, boltdb-392), runs
 * buggy and fixed variants under the built-in deadlock detector (the
 * scheduler itself), the happens-before race detector, and the
 * wait-for-graph partial-deadlock detector, and prints what each tool
 * can and cannot see — a 2-minute tour of Tables 8 and 12 plus the
 * Implication 4 extension.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "corpus/bug.hh"
#include "golite/golite.hh"

using namespace golite;
using corpus::BugCase;
using corpus::Variant;

namespace
{

/** Certain wait-graph reports seen on *fixed* variants (must be 0). */
int falseAlarms = 0;

void
investigate(const char *id)
{
    const BugCase *bug = corpus::findBug(id);
    if (!bug) {
        std::printf("unknown bug %s\n", id);
        return;
    }
    std::printf("--- %s (%s, %s)\n", id, bug->info.app.c_str(),
                bug->info.figure.empty() ? "no figure"
                                         : bug->info.figure.c_str());
    std::printf("    %s\n", bug->info.description.c_str());

    // Hunt for a schedule that triggers the bug, with the race
    // detector attached (the '-race' build).
    for (uint64_t seed = 0; seed < 100; ++seed) {
        race::Detector detector;
        waitgraph::Detector graph;
        RunOptions options;
        options.seed = seed;
        options.subscribers.push_back(&detector);
        options.subscribers.push_back(&graph);
        auto outcome = bug->run(Variant::Buggy, options);

        const bool raced = !detector.reports().empty();
        if (!outcome.manifested && !raced)
            continue;

        std::printf("    seed %llu: %s\n",
                    static_cast<unsigned long long>(seed),
                    outcome.note.c_str());
        std::printf("      built-in deadlock detector: %s\n",
                    outcome.report.globalDeadlock
                        ? "FIRED (all goroutines are asleep)"
                        : "silent");
        std::printf("      goroutine leak report:      %zu leaked\n",
                    outcome.report.leaked.size());
        std::printf("      race detector:              %s\n",
                    raced ? detector.reports()[0].describe().c_str()
                          : "silent");
        const auto &pds = outcome.report.partialDeadlocks;
        std::printf("      wait-graph detector:        %s\n",
                    pds.empty() ? "silent"
                                : pds[0].describe().c_str());
        break;
    }

    waitgraph::Detector fixedGraph;
    RunOptions fixedOptions;
    fixedOptions.subscribers.push_back(&fixedGraph);
    auto fixed = bug->run(Variant::Fixed, fixedOptions);
    falseAlarms += static_cast<int>(fixedGraph.certainReports().size());
    std::printf("    fixed variant: %s\n\n", fixed.note.c_str());
}

} // namespace

int
main()
{
    std::printf("golite bug detective\n====================\n\n");
    investigate("kubernetes-5316"); // Figure 1: channel + timeout
    investigate("docker-4951");     // Figure 8: anonymous capture
    investigate("boltdb-392");      // double lock: global deadlock
    investigate("docker-24007");    // Figure 10: double close

    // Post-mortem: replay the double-lock bug with the execution
    // trace recorder on and show the schedule that stalls main.
    std::printf("--- execution trace of boltdb-392 (double lock) "
                "---\n");
    const BugCase *bug = corpus::findBug("boltdb-392");
    obs::TraceEventSink timeline;
    RunOptions options;
    options.collectTrace = true;
    options.subscribers.push_back(&timeline);
    auto outcome = bug->run(Variant::Buggy, options);
    std::printf("%s\n%s", outcome.report.formatTrace().c_str(),
                outcome.report.describe().c_str());

    // The same run, exported as a Chrome trace-event timeline: one
    // lane per goroutine, open it in chrome://tracing or Perfetto.
    // Dumps into GOLITE_TRACE_DUMP_DIR when set, so running the
    // example from a source checkout does not litter the repo root.
    std::string trace_path = "boltdb-392.trace.json";
    if (const char *dir = std::getenv("GOLITE_TRACE_DUMP_DIR");
        dir != nullptr && dir[0] != '\0') {
        trace_path = std::string(dir) + "/" + trace_path;
    }
    if (timeline.writeFile(trace_path.c_str())) {
        std::printf("\nwrote %s "
                    "(%zu trace events) — open in Perfetto\n",
                    trace_path.c_str(), timeline.size());
    }
    // Smoke-test contract: the wait-graph detector must stay silent
    // on every fixed variant it watched above.
    return falseAlarms == 0 ? 0 : 1;
}
