/**
 * @file
 * A goroutine-per-connection TCP echo server on the netpoll reactor —
 * the production idiom from the paper's studied applications, over
 * real epoll sockets instead of the deterministic goio pipe.
 *
 * One acceptor goroutine, one handler goroutine per connection, a
 * WaitGroup joining them at shutdown: the same shape as the gRPC and
 * Docker server loops whose bugs the corpus reproduces. The run is
 * wall-clock driven (RunOptions::realTime) because the kernel decides
 * socket readiness; determinism is the price of real I/O.
 *
 * The example is self-contained: it spins up the server, drives 16
 * concurrent client goroutines through it, and exits non-zero unless
 * every client got its bytes back and the run report is clean.
 */

#include <cstdio>
#include <string>

#include "golite/golite.hh"

using namespace golite;

int
main()
{
    constexpr int kClients = 16;
    int echoed = 0;

    RunOptions options;
    options.realTime = true;
    options.policy = SchedPolicy::Fifo;

    RunReport report = run(
        [&] {
            netpoll::Poller poller;
            auto ln = poller.listen(0); // loopback, kernel-chosen port
            if (!ln)
                goPanic("echo_server: listen failed");
            std::printf("echo server listening on 127.0.0.1:%u\n",
                        ln.port());

            WaitGroup handlers;
            go("acceptor", [ln, &handlers] {
                for (;;) {
                    auto conn = ln.accept();
                    if (!conn)
                        return; // listener closed: shut down
                    handlers.add(1);
                    go("handler", [conn, &handlers] {
                        std::string buf;
                        for (;;) {
                            auto res = conn.read(buf);
                            if (!res.ok()) // EOF or peer gone
                                break;
                            if (!conn.write(buf).ok())
                                break;
                        }
                        conn.close();
                        handlers.done();
                    });
                }
            });

            auto done = makeChan<bool>();
            for (int i = 0; i < kClients; ++i) {
                go("client", [&poller, ln, done, i] {
                    auto conn = poller.dial(ln.port());
                    if (!conn) {
                        done.send(false);
                        return;
                    }
                    const std::string msg =
                        "hello-" + std::to_string(i);
                    conn.write(msg);
                    std::string buf;
                    auto res = conn.read(buf);
                    conn.close();
                    done.send(res.ok() && buf == msg);
                });
            }
            for (int i = 0; i < kClients; ++i)
                echoed += done.recv().value ? 1 : 0;

            ln.close();      // stops the acceptor
            handlers.wait(); // handlers exit on client EOF
        },
        options);

    std::printf("%d/%d clients echoed, %llu goroutines, report %s\n",
                echoed, kClients,
                static_cast<unsigned long long>(
                    report.goroutinesCreated),
                report.clean() ? "clean" : "NOT CLEAN");
    if (echoed != kClients || !report.clean()) {
        std::fputs(report.describe().c_str(), stderr);
        return 1;
    }
    return 0;
}
