/**
 * @file
 * The Figure 1 scenario done right: a request server that hands each
 * request to a goroutine and races the result against a timeout —
 * with the buffered-channel fix applied so slow handlers never leak.
 *
 * Run it, then flip kBuffered to false to watch the leak report
 * catch the original Kubernetes bug.
 */

#include <cstdio>

#include "golite/golite.hh"

using namespace golite;
using gotime::kMillisecond;

namespace
{

// The patched finishReq from Figure 1: the capacity-1 channel lets
// the handler deliver its result even after the caller timed out.
constexpr bool kBuffered = true;

struct Response
{
    int requestId = 0;
    int value = 0;
    bool timedOut = false;
};

Response
finishReq(int request_id, gotime::Duration work,
          gotime::Duration timeout)
{
    Chan<int> ch = kBuffered ? makeChan<int>(1) : makeChan<int>();
    go("handler", [ch, work, request_id] {
        gotime::sleep(work); // fn(): the request's real work
        ch.send(request_id * 100);
    });
    Response response;
    response.requestId = request_id;
    Select()
        .recv<int>(ch,
                   [&](int v, bool) { response.value = v; })
        .recv<gotime::Time>(gotime::after(timeout),
                            [&](gotime::Time, bool) {
                                response.timedOut = true;
                            })
        .run();
    return response;
}

} // namespace

int
main()
{
    waitgraph::Detector deadlocks;
    RunOptions options;
    options.subscribers.push_back(&deadlocks);
    RunReport report = run([] {
        // A stream of requests with mixed service times; the timeout
        // budget is 40ms, so the slow ones time out.
        const gotime::Duration timeout = 40 * kMillisecond;
        const int work_ms[] = {5, 80, 15, 120, 30, 60};
        int served = 0, timed_out = 0;
        for (int id = 0; id < 6; ++id) {
            Response r =
                finishReq(id, work_ms[id] * kMillisecond, timeout);
            if (r.timedOut) {
                timed_out++;
                std::printf("request %d: timed out (>40ms)\n", id);
            } else {
                served++;
                std::printf("request %d: result %d\n", id, r.value);
            }
        }
        std::printf("served=%d timed_out=%d\n", served, timed_out);
        // Keep the server alive long enough for stragglers to finish
        // into their buffered channels.
        gotime::sleep(500 * kMillisecond);
    }, options);

    std::printf("\nleak report: %zu goroutine(s) leaked%s\n",
                report.leaked.size(),
                report.leaked.empty()
                    ? " - the buffered-channel fix holds"
                    : " - this is the Figure 1 bug!");
    for (const LeakInfo &leak : report.leaked) {
        std::printf("  goroutine %llu (%s) blocked at %s\n",
                    static_cast<unsigned long long>(leak.goid),
                    leak.label.c_str(), waitReasonName(leak.reason));
    }
    for (const PartialDeadlock &pd : report.partialDeadlocks)
        std::printf("  %s\n", pd.describe().c_str());
    return report.leaked.empty() && report.partialDeadlocks.empty()
               ? 0
               : 1;
}
