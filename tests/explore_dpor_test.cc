/**
 * @file
 * The DPOR differential harness: proves the pruning sound by checking
 * the reduced walker against the naive enumerator.
 *
 *  - Verdict-set identity over the whole corpus: for every kernel and
 *    variant where both walkers finish exhaustively, the *set* of
 *    outcome kinds (clean / deadlock / leak / panic / livelock /
 *    detector race) is identical, DPOR never runs more executions,
 *    and fixed-variant certificates agree (the corpus sweep is
 *    budgeted, so it lives behind the "explore" ctest label next to
 *    the tier-1 suite).
 *  - Mazurkiewicz coverage: on enumerable programs, the set of
 *    happens-before equivalence classes DPOR visits equals the naive
 *    walker's (one representative per class is exactly the DPOR
 *    guarantee).
 *  - Walker invariants: schedules + redundant == executions, Naive
 *    mode never reports redundant runs, exhaustion under budget stops
 *    is reported honestly (false iff a backtrack point was
 *    abandoned — including the budget-lands-exactly-on-the-last-
 *    schedule boundary), and ticketed resume reproduces the one-shot
 *    result execution for execution.
 *  - Bounded-exhaustiveness certificates: a fixed kernel explored
 *    exhaustively under preemption bound k yields certified() and a
 *    non-empty certificate string; buggy kernels never certify.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "corpus/bug.hh"
#include "explore/explorer.hh"
#include "golite/golite.hh"
#include "race/detector.hh"

namespace golite::explore
{
namespace
{

using corpus::BugCase;
using corpus::Variant;

/**
 * Kernel runner with the same bug predicate the fuzz/random searchers
 * use: race detector attached and kernel-level manifestation folded
 * into the report, so detector-only and wrong-result bugs are visible
 * to the explorer's tally as well.
 */
std::function<RunReport(const RunOptions &)>
detectingRunner(const BugCase &bug, Variant variant,
                race::Detector &det)
{
    return [&bug, variant, &det](const RunOptions &base) {
        det.reset();
        RunOptions ro = base;
        ro.subscribers.push_back(&det);
        const corpus::BugOutcome out = bug.run(variant, ro);
        RunReport report = out.report;
        if (out.manifested)
            report.raceMessages.push_back("kernel bug manifested: " +
                                          out.note);
        return report;
    };
}

ExploreResult
exploreKernel(const BugCase &bug, Variant variant, ExploreMode mode,
              size_t budget, int bound = 0, bool classes = false)
{
    ExploreOptions eo;
    eo.maxSchedules = budget;
    eo.mode = mode;
    eo.preemptionBound = bound;
    eo.collectHbClasses = classes;
    race::Detector det(4);
    return exploreAll(detectingRunner(bug, variant, det), eo);
}

/** The outcome kinds seen, as a comparable string. */
std::string
verdictSet(const ExploreResult &r)
{
    std::string v;
    if (r.clean)
        v += "clean,";
    if (r.globalDeadlocks)
        v += "deadlock,";
    if (r.leakedOnly)
        v += "leak,";
    if (r.panicked)
        v += "panic,";
    if (r.livelocked)
        v += "livelock,";
    if (r.raced)
        v += "race,";
    return v;
}

void
checkInvariants(const ExploreResult &r, const char *what)
{
    EXPECT_EQ(r.schedules + r.redundant, r.executions) << what;
    if (r.mode == ExploreMode::Naive)
        EXPECT_EQ(r.redundant, 0u) << what;
    if (r.anyBad()) {
        EXPECT_GE(r.firstBadAt, 1u) << what;
        EXPECT_LE(r.firstBadAt, r.executions) << what;
        // firstBadSchedule may legitimately be empty: a program that
        // fails before reaching any decision site has the empty
        // schedule as its (only) witness.
    } else {
        EXPECT_EQ(r.firstBadAt, 0u) << what;
    }
}

// ===================================================================
// Corpus-wide differential sweep (ctest label: explore)
// ===================================================================

class CorpusDifferential
    : public ::testing::TestWithParam<const BugCase *>
{
};

TEST_P(CorpusDifferential, DporMatchesNaiveVerdicts)
{
    const BugCase &bug = *GetParam();
    constexpr size_t kBudget = 2000;
    for (const Variant variant : {Variant::Buggy, Variant::Fixed}) {
        const char *vn =
            variant == Variant::Buggy ? "buggy" : "fixed";
        const ExploreResult naive = exploreKernel(
            bug, variant, ExploreMode::Naive, kBudget);
        const ExploreResult dpor =
            exploreKernel(bug, variant, ExploreMode::Dpor, kBudget);
        checkInvariants(naive, vn);
        checkInvariants(dpor, vn);

        if (naive.exhaustive) {
            // Soundness: the pruned walker must reach every verdict
            // the full enumeration reaches, with no extra ones, in no
            // more executions.
            ASSERT_TRUE(dpor.exhaustive) << bug.info.id << " " << vn;
            EXPECT_EQ(verdictSet(naive), verdictSet(dpor))
                << bug.info.id << " " << vn;
            EXPECT_LE(dpor.executions, naive.executions)
                << bug.info.id << " " << vn;
            EXPECT_EQ(naive.certified(), dpor.certified())
                << bug.info.id << " " << vn;
        } else if (naive.anyBad()) {
            // Budget-capped kernels: DPOR must not lose the bug the
            // enumerator already found within the same budget.
            EXPECT_TRUE(dpor.anyBad()) << bug.info.id << " " << vn;
            EXPECT_LE(dpor.firstBadAt, naive.firstBadAt)
                << bug.info.id << " " << vn;
        }
    }
}

std::vector<const BugCase *>
allBugs()
{
    std::vector<const BugCase *> out;
    for (const BugCase &bug : corpus::corpus())
        out.push_back(&bug);
    return out;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, CorpusDifferential, ::testing::ValuesIn(allBugs()),
    [](const ::testing::TestParamInfo<const BugCase *> &info) {
        std::string name = info.param->info.id;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

// ===================================================================
// Mazurkiewicz-class coverage (property test)
// ===================================================================

void
expectSameHbClasses(const std::function<void()> &program,
                    int bound = 0)
{
    ExploreOptions eo;
    eo.maxSchedules = 50000;
    eo.collectHbClasses = true;
    eo.preemptionBound = bound;

    eo.mode = ExploreMode::Naive;
    const ExploreResult naive = exploreProgram(program, eo);
    eo.mode = ExploreMode::Dpor;
    const ExploreResult dpor = exploreProgram(program, eo);

    ASSERT_TRUE(naive.exhaustive);
    ASSERT_TRUE(dpor.exhaustive);
    // One representative per class is the DPOR guarantee; class
    // equality is what "covers the same behaviours" means here.
    EXPECT_EQ(naive.hbClasses, dpor.hbClasses);
    EXPECT_LE(dpor.executions, naive.executions);
    EXPECT_GE(dpor.schedules, dpor.hbClasses.size());
}

TEST(DporProperty, IndependentWritersCollapseToOneClass)
{
    // Three goroutines writing three distinct locations: 3! naive
    // interleavings, a single Mazurkiewicz class.
    expectSameHbClasses([] {
        auto a = std::make_shared<int>(0);
        auto b = std::make_shared<int>(0);
        auto c = std::make_shared<int>(0);
        go([a] { *a = 1; });
        go([b] { *b = 1; });
        go([c] { *c = 1; });
    });
}

TEST(DporProperty, ConflictingChannelSendersKeepAllClasses)
{
    // Two senders racing into one buffered channel: delivery order is
    // observable, so both orders must survive the pruning.
    expectSameHbClasses([] {
        Chan<int> ch = makeChan<int>(2);
        go([ch]() mutable { ch.send(1); });
        go([ch]() mutable { ch.send(2); });
    });
}

TEST(DporProperty, MutexPairKeepsBothAcquisitionOrders)
{
    expectSameHbClasses([] {
        auto mu = std::make_shared<Mutex>();
        auto x = std::make_shared<int>(0);
        go([mu, x] {
            mu->lock();
            *x += 1;
            mu->unlock();
        });
        go([mu, x] {
            mu->lock();
            *x *= 2;
            mu->unlock();
        });
    });
}

TEST(DporProperty, SelectVsSenderCoversAllClasses)
{
    expectSameHbClasses([] {
        Chan<int> a = makeChan<int>(1);
        Chan<int> b = makeChan<int>(1);
        go([a]() mutable { a.send(1); });
        go([b]() mutable { b.send(2); });
        Select()
            .recv<int>(a, [](int, bool) {})
            .recv<int>(b, [](int, bool) {})
            .run();
    });
}

TEST(DporProperty, PreemptionBoundClassesMatch)
{
    // Instrumented shared counter: under bound 1 the naive walker
    // enumerates every single-preemption placement; DPOR must keep
    // one schedule per resulting class.
    expectSameHbClasses(
        [] {
            auto x = std::make_shared<race::Shared<int>>("x");
            go([x] { x->store(x->load() + 1); });
            go([x] { x->store(x->load() + 10); });
        },
        1);
}

// ===================================================================
// Exhaustion semantics under budget stops (regression)
// ===================================================================

TEST(ExploreExhaustion, BudgetLandingOnLastScheduleIsExhaustive)
{
    // Two yield-free goroutines: exactly 2 schedules.
    const auto program = [] {
        go([] {});
        go([] {});
    };
    ExploreOptions eo;
    eo.maxSchedules = 2; // budget == tree size exactly
    ExploreResult r = exploreProgram(program, eo);
    EXPECT_EQ(r.schedules, 2u);
    EXPECT_TRUE(r.exhaustive)
        << "a budget that runs out exactly at the last schedule "
           "abandons nothing";

    eo.maxSchedules = 1; // one backtrack point abandoned
    r = exploreProgram(program, eo);
    EXPECT_EQ(r.schedules, 1u);
    EXPECT_FALSE(r.exhaustive);

    eo.mode = ExploreMode::Dpor;
    eo.maxSchedules = 5000;
    r = exploreProgram(program, eo);
    ASSERT_TRUE(r.exhaustive);
    const size_t dpor_size = r.executions;
    eo.maxSchedules = dpor_size;
    r = exploreProgram(program, eo);
    EXPECT_TRUE(r.exhaustive) << "same boundary rule in Dpor mode";
}

TEST(ExploreExhaustion, TicketedResumeHitsSameBoundary)
{
    const auto program = [] {
        go([] {});
        go([] {});
    };
    const auto run_once = [&program](const RunOptions &ro) {
        return run(program, ro);
    };
    ExploreOptions eo;
    SubtreeCursor cursor;
    ExploreResult r;
    exploreSubtree(run_once, eo, cursor, 1, r);
    EXPECT_FALSE(cursor.done);
    exploreSubtree(run_once, eo, cursor, 1, r);
    EXPECT_TRUE(cursor.done)
        << "the ticket ending at the subtree's last schedule must "
           "close the cursor";
    EXPECT_EQ(r.schedules, 2u);
}

// ===================================================================
// Ticketed DPOR resume == one-shot
// ===================================================================

TEST(DporResume, SingleExecutionTicketsMatchOneShot)
{
    const corpus::BugCase *bug = corpus::findBug("etcd-6873");
    ASSERT_NE(bug, nullptr);
    ExploreOptions eo;
    eo.mode = ExploreMode::Dpor;
    eo.collectHbClasses = true;
    eo.maxSchedules = 5000;

    race::Detector det1(4);
    const ExploreResult oneShot =
        exploreAll(detectingRunner(*bug, Variant::Buggy, det1), eo);
    ASSERT_TRUE(oneShot.exhaustive);

    race::Detector det2(4);
    const auto run_once =
        detectingRunner(*bug, Variant::Buggy, det2);
    SubtreeCursor cursor;
    ExploreResult resumed;
    resumed.mode = eo.mode;
    size_t calls = 0;
    while (!cursor.done) {
        exploreSubtree(run_once, eo, cursor, 1, resumed);
        ASSERT_LT(++calls, 10000u);
    }
    resumed.exhaustive = cursor.done;

    EXPECT_EQ(resumed.schedules, oneShot.schedules);
    EXPECT_EQ(resumed.executions, oneShot.executions);
    EXPECT_EQ(resumed.redundant, oneShot.redundant);
    EXPECT_EQ(resumed.hbClasses, oneShot.hbClasses);
    EXPECT_EQ(verdictSet(resumed), verdictSet(oneShot));
    EXPECT_EQ(resumed.firstBadAt, oneShot.firstBadAt);
    EXPECT_EQ(resumed.firstBadSchedule, oneShot.firstBadSchedule);
}

TEST(DporResume, PinnedPrefixIsRejected)
{
    ExploreOptions eo;
    eo.mode = ExploreMode::Dpor;
    SubtreeCursor cursor;
    cursor.prefix = {0};
    ExploreResult r;
    const auto run_once = [](const RunOptions &ro) {
        return run([] { go([] {}); }, ro);
    };
    EXPECT_THROW(exploreSubtree(run_once, eo, cursor, 10, r),
                 std::logic_error);
}

// ===================================================================
// Bounded-exhaustiveness certificates
// ===================================================================

TEST(DporCertificate, FixedKernelCertifiesUnderPreemptionBound)
{
    // The paper's grpc-795 data race is fixed by mutex protection;
    // the certificate states no schedule within one preemption can
    // break it — a claim random testing cannot make.
    const corpus::BugCase *bug = corpus::findBug("grpc-795");
    ASSERT_NE(bug, nullptr);
    const ExploreResult r = exploreKernel(
        *bug, Variant::Fixed, ExploreMode::Dpor, 20000, 1);
    ASSERT_TRUE(r.exhaustive);
    EXPECT_FALSE(r.anyBad());
    ASSERT_TRUE(r.certified());
    const std::string cert = r.certificate();
    EXPECT_NE(cert.find("preemption bound 1"), std::string::npos)
        << cert;
    EXPECT_NE(cert.find("dpor"), std::string::npos) << cert;
}

TEST(DporCertificate, BuggyKernelNeverCertifies)
{
    const corpus::BugCase *bug = corpus::findBug("grpc-795");
    ASSERT_NE(bug, nullptr);
    const ExploreResult r = exploreKernel(
        *bug, Variant::Buggy, ExploreMode::Dpor, 20000, 1);
    ASSERT_TRUE(r.exhaustive);
    EXPECT_TRUE(r.anyBad());
    EXPECT_FALSE(r.certified());
    EXPECT_EQ(r.certificate(), "");
}

TEST(DporCertificate, BudgetExhaustionBlocksCertification)
{
    const corpus::BugCase *bug = corpus::findBug("grpc-795");
    ASSERT_NE(bug, nullptr);
    const ExploreResult r =
        exploreKernel(*bug, Variant::Fixed, ExploreMode::Dpor, 1, 1);
    if (!r.exhaustive) {
        EXPECT_FALSE(r.certified());
        EXPECT_EQ(r.certificate(), "");
    }
}

// ===================================================================
// Replay of Dpor-mode schedules
// ===================================================================

TEST(DporReplay, FirstBadScheduleReproduces)
{
    const corpus::BugCase *bug = corpus::findBug("docker-5416");
    ASSERT_NE(bug, nullptr);
    race::Detector det(4);
    const auto run_once =
        detectingRunner(*bug, Variant::Buggy, det);
    ExploreOptions eo;
    eo.mode = ExploreMode::Dpor;
    const ExploreResult r = exploreAll(run_once, eo);
    ASSERT_TRUE(r.anyBad());
    const RunReport replayed = replaySchedule(
        run_once, r.firstBadSchedule, eo.runOptions, true);
    EXPECT_FALSE(replayed.clean());
}

} // namespace
} // namespace golite::explore
