/**
 * @file
 * Parallel harness tests: concurrent independent runs on raw
 * std::threads (the thread_local scheduler slot contract), the seed
 * sweep and protocol primitives, the parallel explorer's equivalence
 * with serial enumeration, the worker pool's error path, and the
 * fiber stack pool.
 *
 * The central assertion everywhere is RunReport::fingerprint
 * equality: a run must be bit-identical whether it executes alone,
 * on a worker thread, or interleaved with unrelated runs — including
 * runs that panic or deadlock.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "corpus/bug.hh"
#include "golite/golite.hh"
#include "parallel/pexplore.hh"
#include "parallel/pool.hh"
#include "parallel/protocol.hh"
#include "parallel/sweep.hh"
#include "runtime/stack_pool.hh"

namespace golite::parallel
{
namespace
{

/** Spawn/join workload exercising dispatch order and the stack pool. */
void
mingleProgram()
{
    Chan<int> ch = makeChan<int>(2);
    WaitGroup wg;
    wg.add(3);
    for (int g = 0; g < 3; ++g) {
        go([&, g] {
            ch.send(g);
            ch.recv();
            wg.done();
        });
    }
    // Not covered by the WaitGroup, so it can outlive this frame:
    // capture the channel handle by value.
    go([ch]() mutable {
        ch.send(99);
        ch.recv();
    });
    wg.wait();
}

/** Always panics, at a schedule-dependent point. */
void
panicProgram()
{
    Chan<int> ch = makeChan<int>(1);
    go([ch]() mutable { ch.close(); });
    go([ch]() mutable { ch.close(); }); // double close -> panic
}

/** Always deadlocks: both goroutines recv on never-sent channels. */
void
deadlockProgram()
{
    Chan<int> a = makeChan<int>();
    Chan<int> b = makeChan<int>();
    go([a, b]() mutable { b.send(a.recv().value); });
    a.recv();
}

TEST(ConcurrentRuns, ThreadsMatchSerialFingerprints)
{
    struct Job
    {
        std::function<void()> program;
        uint64_t seed;
    };
    const std::vector<Job> jobs = {
        {mingleProgram, 1},   {mingleProgram, 2},
        {panicProgram, 3},    {deadlockProgram, 4},
        {mingleProgram, 42},  {deadlockProgram, 7},
    };

    std::vector<std::string> serial;
    for (const Job &job : jobs) {
        RunOptions options;
        options.seed = job.seed;
        serial.push_back(run(job.program, options).fingerprint());
    }

    // All runs in flight at once on dedicated threads.
    std::vector<std::string> concurrent(jobs.size());
    std::vector<std::thread> threads;
    threads.reserve(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        threads.emplace_back([&, i] {
            RunOptions options;
            options.seed = jobs[i].seed;
            concurrent[i] =
                run(jobs[i].program, options).fingerprint();
        });
    }
    for (std::thread &t : threads)
        t.join();

    for (size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(concurrent[i], serial[i]) << "job " << i;
}

TEST(ConcurrentRuns, NestedRunThrowsLogicError)
{
    bool threw = false;
    RunReport report = run([&threw] {
        try {
            run([] {});
        } catch (const std::logic_error &) {
            threw = true;
        }
    });
    EXPECT_TRUE(threw);
    EXPECT_TRUE(report.completed);
    // The outer run survives the rejected nested attempt.
    EXPECT_TRUE(run([] {}).completed);
}

TEST(Sweep, RunSeedsMatchesSerialInSeedOrder)
{
    const std::vector<uint64_t> seeds = {9, 3, 7, 0, 11, 5, 2, 8};
    std::vector<std::string> serial;
    for (uint64_t seed : seeds) {
        RunOptions options;
        options.seed = seed;
        serial.push_back(run(mingleProgram, options).fingerprint());
    }
    for (unsigned workers : {1u, 2u, 4u}) {
        SweepOptions sweep;
        sweep.workers = workers;
        const auto reports = runSeeds(mingleProgram, seeds, {}, sweep);
        ASSERT_EQ(reports.size(), seeds.size());
        for (size_t i = 0; i < seeds.size(); ++i)
            EXPECT_EQ(reports[i].fingerprint(), serial[i])
                << "seed " << seeds[i] << " @ " << workers
                << " workers";
    }
}

TEST(Sweep, RejectsSharedDetectorInstance)
{
    race::Detector detector;
    RunOptions base;
    base.subscribers.push_back(&detector);
    EXPECT_THROW(runSeeds(mingleProgram, {1, 2, 3}, base),
                 std::logic_error);

    waitgraph::Detector deadlock_detector;
    RunOptions base2;
    base2.subscribers.push_back(&deadlock_detector);
    EXPECT_THROW(runSeeds(mingleProgram, {1, 2, 3}, base2),
                 std::logic_error);
}

TEST(Sweep, RunJobsKeepsJobOrderWithFreshDetectors)
{
    std::vector<std::function<RunReport()>> jobs;
    for (uint64_t seed = 0; seed < 12; ++seed) {
        jobs.push_back([seed] {
            waitgraph::Detector det;
            RunOptions options;
            options.seed = seed;
            options.subscribers.push_back(&det);
            return run(deadlockProgram, options);
        });
    }
    SweepOptions sweep;
    sweep.workers = 4;
    const auto reports = runJobs(jobs, sweep);
    ASSERT_EQ(reports.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(reports[i].fingerprint(), jobs[i]().fingerprint())
            << "job " << i;
        EXPECT_TRUE(reports[i].globalDeadlock);
    }
}

/** Two goroutines bump an unprotected counter: always a race. */
void
racyProgram()
{
    race::Shared<int> x("x");
    WaitGroup wg;
    wg.add(2);
    for (int i = 0; i < 2; ++i) {
        go([&] {
            x.update([](int &v) { v++; });
            wg.done();
        });
    }
    wg.wait();
}

TEST(Sweep, RunSeedsRacedMatchesSerialFreshDetectorLoop)
{
    const std::vector<uint64_t> seeds{0, 1, 2, 3, 4, 5, 6, 7};
    std::vector<RunReport> serial;
    for (uint64_t seed : seeds) {
        race::Detector detector;
        RunOptions options;
        options.seed = seed;
        options.subscribers.push_back(&detector);
        serial.push_back(run(racyProgram, options));
    }
    for (unsigned workers : {1u, 4u}) {
        SweepOptions sweep;
        sweep.workers = workers;
        const auto reports =
            runSeedsRaced(racyProgram, seeds, {}, sweep);
        ASSERT_EQ(reports.size(), seeds.size());
        for (size_t i = 0; i < seeds.size(); ++i) {
            ASSERT_FALSE(reports[i].raceMessages.empty())
                << "seed " << seeds[i];
            EXPECT_EQ(reports[i].raceMessages,
                      serial[i].raceMessages)
                << "seed " << seeds[i] << " @ " << workers;
            EXPECT_EQ(reports[i].fingerprint(),
                      serial[i].fingerprint())
                << "seed " << seeds[i] << " @ " << workers;
        }
    }
}

TEST(Sweep, RunSeedsRacedRejectsBaseCarryingHooks)
{
    race::Detector detector;
    RunOptions base;
    base.subscribers.push_back(&detector);
    EXPECT_THROW(runSeedsRaced(racyProgram, {1, 2}, base),
                 std::logic_error);
}

TEST(Protocol, FindFirstRaceSeedMatchesSerialScan)
{
    const corpus::BugCase *bug = corpus::findBug("grpc-2371");
    ASSERT_NE(bug, nullptr);
    std::optional<uint64_t> serial;
    for (uint64_t seed = 0; seed < 100 && !serial; ++seed) {
        race::Detector detector;
        RunOptions options;
        options.seed = seed;
        options.subscribers.push_back(&detector);
        bug->run(corpus::Variant::Buggy, options);
        if (!detector.reports().empty())
            serial = seed;
    }
    ASSERT_TRUE(serial.has_value());
    for (unsigned workers : {1u, 2u, 4u}) {
        WorkerPool pool(workers);
        EXPECT_EQ(findFirstRaceSeed(*bug, 100, pool), serial)
            << workers << " workers";
    }
}

TEST(Pool, ExceptionPropagatesAndPoolSurvives)
{
    WorkerPool pool(3);
    EXPECT_THROW(
        pool.forEach(100,
                     [](size_t i) {
                         if (i == 37)
                             throw std::runtime_error("job 37");
                     }),
        std::runtime_error);
    // The pool is reusable after a failed job.
    std::atomic<int> hits{0};
    pool.forEach(50, [&hits](size_t) { hits++; });
    EXPECT_EQ(hits.load(), 50);
}

TEST(Protocol, FindFirstSeedMatchesSerialScan)
{
    // Predicate with hits at 13, 14, 29: the wave search must return
    // 13 — the serial minimum — for every worker count.
    const auto probe = [](uint64_t seed) {
        return seed == 13 || seed == 14 || seed == 29;
    };
    for (unsigned workers : {1u, 2u, 4u, 8u}) {
        SweepOptions sweep;
        sweep.workers = workers;
        const auto hit = findFirstSeed(probe, 100, sweep);
        ASSERT_TRUE(hit.has_value()) << workers << " workers";
        EXPECT_EQ(*hit, 13u) << workers << " workers";
        EXPECT_FALSE(
            findFirstSeed([](uint64_t) { return false; }, 40, sweep));
    }
}

TEST(Protocol, ManifestingSeedMatchesSerialHelperOnCorpus)
{
    const corpus::BugCase *bug = corpus::findBug("moby-17176");
    ASSERT_NE(bug, nullptr);
    std::optional<uint64_t> serial;
    for (uint64_t seed = 0; seed < 200 && !serial; ++seed) {
        RunOptions options;
        options.seed = seed;
        if (bug->run(corpus::Variant::Buggy, options).manifested)
            serial = seed;
    }
    WorkerPool pool(4);
    EXPECT_EQ(findManifestingSeed(*bug, 200, pool), serial);
}

void
branchyProgram()
{
    Chan<int> ch = makeChan<int>(1);
    WaitGroup wg;
    wg.add(3);
    for (int g = 0; g < 3; ++g) {
        go([&] {
            ch.trySend(1);
            yield();
            ch.tryRecv();
            wg.done();
        });
    }
    wg.wait();
}

TEST(ParallelExplorer, ExhaustiveMatchesSerialForAnyWorkerCount)
{
    const explore::ExploreResult serial =
        explore::exploreProgram(branchyProgram);
    ASSERT_TRUE(serial.exhaustive);
    ASSERT_GT(serial.schedules, 10u);

    for (unsigned workers : {1u, 2u, 3u, 4u, 8u}) {
        ParallelExploreOptions options;
        options.workers = workers;
        const explore::ExploreResult parallel =
            exploreProgramParallel(branchyProgram, options);
        EXPECT_TRUE(parallel.exhaustive) << workers;
        EXPECT_EQ(parallel.schedules, serial.schedules) << workers;
        EXPECT_EQ(parallel.clean, serial.clean) << workers;
        EXPECT_EQ(parallel.globalDeadlocks, serial.globalDeadlocks);
        EXPECT_EQ(parallel.panicked, serial.panicked) << workers;
    }
}

TEST(ParallelExplorer, FirstBadScheduleMatchesSerial)
{
    const explore::ExploreResult serial =
        explore::exploreProgram(panicProgram);
    ASSERT_TRUE(serial.exhaustive);
    ASSERT_TRUE(serial.anyBad());

    ParallelExploreOptions options;
    options.workers = 4;
    const explore::ExploreResult parallel =
        exploreProgramParallel(panicProgram, options);
    EXPECT_EQ(parallel.schedules, serial.schedules);
    EXPECT_EQ(parallel.panicked, serial.panicked);
    EXPECT_EQ(parallel.firstBadSchedule, serial.firstBadSchedule);
    EXPECT_EQ(parallel.firstBad.fingerprint(),
              serial.firstBad.fingerprint());
}

TEST(ParallelExplorer, DporModeIsWorkerCountIndependent)
{
    // Dpor mode routes through the serial ticketed walker, so every
    // worker count must produce the identical result — counters,
    // class set, and first-bad witness alike.
    const explore::ExploreResult serial = [&] {
        explore::ExploreOptions options;
        options.mode = explore::ExploreMode::Dpor;
        options.collectHbClasses = true;
        return explore::exploreProgram(branchyProgram, options);
    }();
    ASSERT_TRUE(serial.exhaustive);

    for (unsigned workers : {1u, 2u, 8u}) {
        ParallelExploreOptions options;
        options.workers = workers;
        options.explore.mode = explore::ExploreMode::Dpor;
        options.explore.collectHbClasses = true;
        const explore::ExploreResult parallel =
            exploreProgramParallel(branchyProgram, options);
        EXPECT_TRUE(parallel.exhaustive) << workers;
        EXPECT_EQ(parallel.schedules, serial.schedules) << workers;
        EXPECT_EQ(parallel.executions, serial.executions) << workers;
        EXPECT_EQ(parallel.redundant, serial.redundant) << workers;
        EXPECT_EQ(parallel.clean, serial.clean) << workers;
        EXPECT_EQ(parallel.raced, serial.raced) << workers;
        EXPECT_EQ(parallel.hbClasses, serial.hbClasses) << workers;
        EXPECT_EQ(parallel.firstBadSchedule, serial.firstBadSchedule)
            << workers;
    }
}

TEST(ParallelExplorer, BoundedBudgetIsDeterministicAndRespected)
{
    ParallelExploreOptions options;
    options.workers = 4;
    options.explore.maxSchedules = 25;
    options.roundTicket = 4;
    const explore::ExploreResult first =
        exploreProgramParallel(branchyProgram, options);
    const explore::ExploreResult second =
        exploreProgramParallel(branchyProgram, options);
    EXPECT_LE(first.schedules, 25u);
    EXPECT_FALSE(first.exhaustive);
    EXPECT_EQ(first.schedules, second.schedules);
    EXPECT_EQ(first.clean, second.clean);
}

TEST(StackPool, RecyclesStacksAcrossRuns)
{
    ASSERT_TRUE(StackPool::enabled());
    StackPool::local().clear();
    run(mingleProgram);
    const uint64_t mapped_after_warm =
        StackPool::local().stats().mapped;
    for (int i = 0; i < 5; ++i)
        run(mingleProgram);
    const StackPool::Stats &stats = StackPool::local().stats();
    // Steady state: later runs are served from the free list.
    EXPECT_EQ(stats.mapped, mapped_after_warm);
    EXPECT_GT(stats.reused, 0u);
    EXPECT_GT(stats.returned, 0u);
}

TEST(StackPool, DisabledModeStillRunsCorrectly)
{
    RunOptions options;
    options.seed = 5;
    const std::string pooled =
        run(mingleProgram, options).fingerprint();
    StackPool::setEnabled(false);
    const std::string unpooled =
        run(mingleProgram, options).fingerprint();
    StackPool::setEnabled(true);
    EXPECT_EQ(pooled, unpooled);
}

TEST(StackPool, TrimKeepsReuseWorking)
{
    StackPool::local().clear();
    run(mingleProgram);
    StackPool::local().trim();
    EXPECT_GT(StackPool::local().stats().trimmed, 0u);
    EXPECT_TRUE(run(mingleProgram).completed);
}

TEST(StackPool, ReserveTopsUpBucketForReuse)
{
    ASSERT_TRUE(StackPool::enabled());
    StackPool &pool = StackPool::local();
    pool.clear();
    const uint64_t mapped_before = pool.stats().mapped;
    pool.reserve(4, 128 * 1024);
    EXPECT_EQ(pool.stats().mapped, mapped_before + 4);
    // A second reserve is a no-op top-up: the stacks are cached.
    pool.reserve(4, 128 * 1024);
    EXPECT_EQ(pool.stats().mapped, mapped_before + 4);
    // Acquires are now served from the reserved cache, not mmap.
    const uint64_t reused_before = pool.stats().reused;
    uint8_t *stack = pool.acquire(128 * 1024);
    EXPECT_EQ(pool.stats().reused, reused_before + 1);
    EXPECT_EQ(pool.stats().mapped, mapped_before + 4);
    pool.give(stack, 128 * 1024);
    pool.clear();
}

// --- Persistent shared pool ------------------------------------------

TEST(Pool, SharedPoolCapsActiveWorkersPerEpoch)
{
    WorkerPool &pool = sharedPool();
    pool.ensureWorkers(4);
    EXPECT_GE(pool.workers(), 4u);
    unsigned max_worker = 0;
    std::mutex mu;
    pool.forEachWorker(
        64,
        [&](unsigned worker, size_t) {
            std::lock_guard<std::mutex> lock(mu);
            max_worker = std::max(max_worker, worker);
        },
        2);
    EXPECT_LT(max_worker, 2u);
}

TEST(Pool, AdaptiveClaimingCoversEveryIndexExactlyOnce)
{
    WorkerPool &pool = sharedPool();
    constexpr size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    for (auto &h : hits)
        h.store(0);
    pool.forEach(kN, [&hits](size_t i) { hits[i]++; }, 3);
    for (size_t i = 0; i < kN; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(Pool, NestedForEachRunsInlineWithoutDeadlock)
{
    WorkerPool &pool = sharedPool();
    std::atomic<int> inner_total{0};
    std::atomic<int> nested_parallel{0};
    pool.forEach(
        8,
        [&](size_t) {
            EXPECT_TRUE(WorkerPool::insideEpoch());
            // A job that fans out again must run its fan-out inline
            // on this worker (worker id 0 on the inner loop).
            sharedPool().forEachWorker(
                4,
                [&](unsigned worker, size_t) {
                    inner_total++;
                    if (worker != 0)
                        nested_parallel++;
                },
                4);
        },
        4);
    EXPECT_EQ(inner_total.load(), 8 * 4);
    EXPECT_EQ(nested_parallel.load(), 0);
    EXPECT_FALSE(WorkerPool::insideEpoch());
}

TEST(Pool, OnAllWorkersRunsExactlyOncePerWorker)
{
    WorkerPool &pool = sharedPool();
    pool.ensureWorkers(4);
    std::vector<std::atomic<int>> counts(4);
    for (auto &c : counts)
        c.store(0);
    pool.onAllWorkers(
        [&counts](unsigned worker) {
            ASSERT_LT(worker, 4u);
            counts[worker]++;
        },
        4);
    for (size_t slot = 0; slot < 4; ++slot)
        EXPECT_EQ(counts[slot].load(), 1) << "worker " << slot;
}

TEST(Pool, ParallelMapMergesInIndexOrder)
{
    WorkerPool &pool = sharedPool();
    const auto out = parallelMap(
        pool, 500, [](size_t i) { return i * i; }, 4);
    ASSERT_EQ(out.size(), 500u);
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

// --- Determinism across worker counts and arena modes ----------------

/**
 * The satellite contract: fingerprints, race reports, and
 * partial-deadlock classifications from a sweep must be bit-identical
 * across workers in {1, 2, 8} and identical to the serial loop — with
 * the stack pool on and off.
 */
TEST(Sweep, DeterminismAcrossWorkerCountsAndStackPoolModes)
{
    const corpus::BugCase *bug = corpus::findBug("moby-17176");
    ASSERT_NE(bug, nullptr);
    const std::vector<uint64_t> seeds = {0, 1, 2, 3, 4, 5, 6, 7,
                                         8, 9, 10, 11};

    // One job per seed: buggy variant, wait-for-graph detector, so
    // the reports carry partial-deadlock classifications.
    std::vector<std::function<RunReport()>> jobs;
    for (uint64_t seed : seeds) {
        jobs.push_back([bug, seed] {
            waitgraph::Detector &det = threadLocalWaitgraphDetector();
            RunOptions options;
            options.seed = seed;
            options.subscribers.push_back(&det);
            return bug->run(corpus::Variant::Buggy, options).report;
        });
    }

    for (const bool pooled : {true, false}) {
        StackPool::setEnabled(pooled);

        std::vector<RunReport> serial;
        for (const auto &job : jobs)
            serial.push_back(job());

        for (unsigned workers : {1u, 2u, 8u}) {
            SweepOptions sweep;
            sweep.workers = workers;
            const auto reports = runJobs(jobs, sweep);
            ASSERT_EQ(reports.size(), serial.size());
            for (size_t i = 0; i < reports.size(); ++i) {
                EXPECT_EQ(reports[i].fingerprint(),
                          serial[i].fingerprint())
                    << "seed " << seeds[i] << " @ " << workers
                    << " workers, pool " << pooled;
                ASSERT_EQ(reports[i].partialDeadlocks.size(),
                          serial[i].partialDeadlocks.size());
                for (size_t p = 0;
                     p < reports[i].partialDeadlocks.size(); ++p)
                    EXPECT_EQ(
                        reports[i].partialDeadlocks[p].describe(),
                        serial[i].partialDeadlocks[p].describe());
            }

            const auto raced =
                runSeedsRaced(racyProgram, seeds, {}, sweep);
            race::Detector ref_detector;
            for (size_t i = 0; i < seeds.size(); ++i) {
                race::Detector fresh;
                RunOptions options;
                options.seed = seeds[i];
                options.subscribers.push_back(&fresh);
                const RunReport ref = run(racyProgram, options);
                EXPECT_EQ(raced[i].raceMessages, ref.raceMessages)
                    << "seed " << seeds[i] << " @ " << workers
                    << " workers, pool " << pooled;
                EXPECT_EQ(raced[i].fingerprint(), ref.fingerprint());
            }
        }
    }
    StackPool::setEnabled(true);
}

/** Virtual-clock timers on top of spawn/join, for arena reset parity. */
void
timedProgram()
{
    WaitGroup wg;
    wg.add(3);
    for (int i = 0; i < 3; ++i) {
        go([&wg, i] {
            gotime::sleep((i + 1) * gotime::kMillisecond);
            wg.done();
        });
    }
    wg.wait();
}

TEST(RunArena, ResetReproducesFreshSchedulerBitIdentical)
{
    for (const auto policy :
         {SchedPolicy::Random, SchedPolicy::Pct}) {
        RunOptions options;
        options.policy = policy;
        options.seed = 7;
        options.collectTrace = true;

        Scheduler fresh(options);
        const std::string expect =
            fresh.run(timedProgram).fingerprint();

        // One instance, three consecutive runs via reset(): each must
        // be bit-identical to the fresh scheduler's run — same RNG
        // stream, same PCT change points, same goroutine ids, same
        // timer behaviour.
        Scheduler arena(options);
        EXPECT_EQ(arena.run(timedProgram).fingerprint(), expect);
        for (int round = 0; round < 2; ++round) {
            arena.reset(options);
            EXPECT_EQ(arena.run(timedProgram).fingerprint(), expect)
                << "policy " << static_cast<int>(policy) << " round "
                << round;
        }

        // Reset also rewinds cleanly out of a different seed/policy.
        RunOptions other;
        other.seed = 99;
        arena.reset(other);
        (void)arena.run(mingleProgram);
        arena.reset(options);
        EXPECT_EQ(arena.run(timedProgram).fingerprint(), expect);
    }
}

TEST(RunArena, FreeRunReusesArenaWithIdenticalReports)
{
    // The free run() reuses a thread_local scheduler (unless
    // GOLITE_RUN_ARENA=0); consecutive runs at the same seed must
    // stay bit-identical, and at different seeds must differ the
    // same way fresh schedulers would.
    RunOptions options;
    options.seed = 21;
    const std::string first = run(timedProgram, options).fingerprint();
    const std::string second =
        run(timedProgram, options).fingerprint();
    EXPECT_EQ(first, second);

    Scheduler fresh(options);
    EXPECT_EQ(fresh.run(timedProgram).fingerprint(), first);
}

TEST(Sweep, ThreadLocalWaitgraphDetectorResetsBetweenRuns)
{
    const corpus::BugCase *bug = corpus::findBug("moby-17176");
    ASSERT_NE(bug, nullptr);
    RunOptions options;
    options.seed = 3;

    // Fresh-detector reference.
    waitgraph::Detector fresh;
    RunOptions ref_options = options;
    ref_options.subscribers.push_back(&fresh);
    const RunReport ref =
        bug->run(corpus::Variant::Buggy, ref_options).report;

    // The thread-local slot, used twice in a row: the second run must
    // classify identically (reset() clears the "lock#N" naming and
    // all graph state).
    for (int round = 0; round < 2; ++round) {
        waitgraph::Detector &det = threadLocalWaitgraphDetector();
        RunOptions o = options;
        o.subscribers.push_back(&det);
        const RunReport report =
            bug->run(corpus::Variant::Buggy, o).report;
        EXPECT_EQ(report.fingerprint(), ref.fingerprint())
            << "round " << round;
        ASSERT_EQ(report.partialDeadlocks.size(),
                  ref.partialDeadlocks.size());
        for (size_t p = 0; p < report.partialDeadlocks.size(); ++p)
            EXPECT_EQ(report.partialDeadlocks[p].describe(),
                      ref.partialDeadlocks[p].describe());
    }
}

TEST(Sweep, WarmSweepWorkersPreparesArenasHarmlessly)
{
    SweepOptions sweep;
    sweep.workers = 3;
    warmSweepWorkers(sweep);
    // Sweeps after warming behave exactly as before it.
    const std::vector<uint64_t> seeds = {5, 6, 7};
    const auto warmed = runSeeds(mingleProgram, seeds, {}, sweep);
    for (size_t i = 0; i < seeds.size(); ++i) {
        RunOptions options;
        options.seed = seeds[i];
        EXPECT_EQ(warmed[i].fingerprint(),
                  run(mingleProgram, options).fingerprint());
    }
}

} // namespace
} // namespace golite::parallel
