/**
 * @file
 * golite-vet tests: each rule checker must fire on its target bug
 * pattern (via the corpus kernels) and stay silent on every fixed
 * variant in the corpus (the no-false-positives property).
 */

#include <gtest/gtest.h>

#include "corpus/bug.hh"
#include "golite/golite.hh"
#include "vet/vet.hh"

namespace golite::vet
{
namespace
{

using corpus::BugCase;
using corpus::BugOutcome;
using corpus::findBug;
using corpus::Variant;

BugOutcome
runVetted(const BugCase *bug, Variant variant, BlockingVet &vet,
          uint64_t seed = 0)
{
    RunOptions options;
    options.seed = seed;
    options.subscribers.push_back(&vet);
    return bug->run(variant, options);
}

TEST(Vet, DoubleLockFiresOnBoltdb392)
{
    BlockingVet vet;
    runVetted(findBug("boltdb-392"), Variant::Buggy, vet);
    EXPECT_TRUE(vet.flagged(RuleKind::DoubleLock));
}

TEST(Vet, DoubleLockFiresOnWorkerReLock)
{
    BlockingVet vet;
    runVetted(findBug("moby-17176"), Variant::Buggy, vet);
    EXPECT_TRUE(vet.flagged(RuleKind::DoubleLock));
}

TEST(Vet, DoubleLockFiresOnRetryLoop)
{
    BlockingVet vet;
    runVetted(findBug("grpc-795"), Variant::Buggy, vet);
    EXPECT_TRUE(vet.flagged(RuleKind::DoubleLock));
}

TEST(Vet, DoubleLockFiresOnLockedCallback)
{
    BlockingVet vet;
    runVetted(findBug("kubernetes-30759"), Variant::Buggy, vet);
    EXPECT_TRUE(vet.flagged(RuleKind::DoubleLock));
}

TEST(Vet, DoubleLockFiresOnRWMutexWriteRelock)
{
    BlockingVet vet;
    runVetted(findBug("kubernetes-70447"), Variant::Buggy, vet);
    EXPECT_TRUE(vet.flagged(RuleKind::DoubleLock));
}

TEST(Vet, LockOrderCycleFiresOnABBA)
{
    // The AB-BA kernel manifests only under some schedules, but the
    // order graph catches the conflicting order even in safe runs.
    bool flagged_any = false;
    for (uint64_t seed = 0; seed < 20 && !flagged_any; ++seed) {
        BlockingVet vet;
        runVetted(findBug("etcd-10492"), Variant::Buggy, vet, seed);
        flagged_any = vet.flagged(RuleKind::LockOrderCycle);
    }
    EXPECT_TRUE(flagged_any);
}

TEST(Vet, LockOrderCycleFlagsEvenWhenNoDeadlockHappened)
{
    // Find a seed where the buggy run completes cleanly (a lucky
    // schedule), and check that vet still flags the lock-order
    // hazard — the advantage of order-graph detection over the
    // runtime detector.
    const BugCase *bug = findBug("etcd-10492");
    for (uint64_t seed = 0; seed < 50; ++seed) {
        BlockingVet vet;
        BugOutcome outcome = runVetted(bug, Variant::Buggy, vet, seed);
        if (outcome.manifested)
            continue;
        EXPECT_TRUE(vet.flagged(RuleKind::LockOrderCycle))
            << "clean run at seed " << seed << " not flagged";
        return;
    }
    GTEST_SKIP() << "no clean buggy schedule in 50 seeds";
}

TEST(Vet, LockOrderCycleFiresOnThreeWayCycle)
{
    bool flagged_any = false;
    for (uint64_t seed = 0; seed < 20 && !flagged_any; ++seed) {
        BlockingVet vet;
        runVetted(findBug("cockroach-6181"), Variant::Buggy, vet, seed);
        flagged_any = vet.flagged(RuleKind::LockOrderCycle);
    }
    EXPECT_TRUE(flagged_any);
}

TEST(Vet, RecursiveRLockFiresOnWriterPriorityDeadlock)
{
    bool flagged_any = false;
    for (uint64_t seed = 0; seed < 30 && !flagged_any; ++seed) {
        BlockingVet vet;
        runVetted(findBug("cockroach-10214"), Variant::Buggy, vet,
                  seed);
        flagged_any = vet.flagged(RuleKind::RecursiveRLock);
    }
    EXPECT_TRUE(flagged_any);
}

TEST(Vet, WaitGroupMisuseFiresOnFigure9)
{
    bool flagged_any = false;
    for (uint64_t seed = 0; seed < 60 && !flagged_any; ++seed) {
        BlockingVet vet;
        runVetted(findBug("etcd-6873"), Variant::Buggy, vet, seed);
        flagged_any = vet.flagged(RuleKind::WaitGroupMisuse);
    }
    EXPECT_TRUE(flagged_any);
}

TEST(Vet, SilentOnChannelOnlyBlockingBugs)
{
    // vet models shared-memory blocking patterns; pure channel bugs
    // are out of scope (the paper: new techniques needed for message
    // passing). It must not produce noise on them.
    for (const char *id : {"kubernetes-5316", "etcd-5505", "grpc-1275",
                           "etcd-7492"}) {
        BlockingVet vet;
        runVetted(findBug(id), Variant::Buggy, vet);
        EXPECT_TRUE(vet.reports().empty()) << id;
    }
}

class VetEveryFixed
    : public ::testing::TestWithParam<const corpus::BugCase *>
{
};

TEST_P(VetEveryFixed, NoFalsePositivesOnFixedVariants)
{
    const BugCase &bug = *GetParam();
    for (uint64_t seed = 0; seed < 15; ++seed) {
        BlockingVet vet;
        RunOptions options;
        options.seed = seed;
        options.subscribers.push_back(&vet);
        bug.run(Variant::Fixed, options);
        EXPECT_TRUE(vet.reports().empty())
            << bug.info.id << " seed " << seed << ": "
            << (vet.reports().empty()
                    ? ""
                    : ruleKindName(vet.reports()[0].kind));
    }
}

std::vector<const corpus::BugCase *>
allBugs()
{
    std::vector<const corpus::BugCase *> out;
    for (const corpus::BugCase &bug : corpus::corpus())
        out.push_back(&bug);
    return out;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, VetEveryFixed, ::testing::ValuesIn(allBugs()),
    [](const ::testing::TestParamInfo<const corpus::BugCase *> &info) {
        std::string name = info.param->info.id;
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

TEST(Vet, ComposesWithRaceDetectorOnTheBus)
{
    race::Detector detector;
    BlockingVet vet;
    RunOptions options;
    options.subscribers = {&detector, &vet};
    race::Shared<int> x("x");
    Mutex mu;
    RunReport report = run([&] {
        go([&] { x.store(1); });   // racy write
        (void)x.load();            // racy read
        mu.lock();
        mu.lock(); // double lock: global deadlock + vet report
    }, options);
    EXPECT_TRUE(report.globalDeadlock);
    EXPECT_TRUE(detector.racedOn("x"));
    EXPECT_TRUE(vet.flagged(RuleKind::DoubleLock));
    // Both detectors' messages flow into the run report.
    bool saw_race = false, saw_vet = false;
    for (const std::string &msg : report.raceMessages) {
        saw_race |= msg.find("DATA RACE") != std::string::npos;
        saw_vet |= msg.find("VET:") != std::string::npos;
    }
    EXPECT_TRUE(saw_race);
    EXPECT_TRUE(saw_vet);
}

TEST(Vet, NestedLocksInConsistentOrderAreFine)
{
    BlockingVet vet;
    RunOptions options;
    options.subscribers.push_back(&vet);
    Mutex a, b;
    run([&] {
        WaitGroup wg;
        wg.add(2);
        for (int g = 0; g < 2; ++g) {
            go([&] {
                for (int i = 0; i < 5; ++i) {
                    a.lock();
                    b.lock();
                    b.unlock();
                    a.unlock();
                    yield();
                }
                wg.done();
            });
        }
        wg.wait();
    }, options);
    EXPECT_TRUE(vet.reports().empty());
}

TEST(Vet, SequentialLockReacquisitionIsFine)
{
    BlockingVet vet;
    RunOptions options;
    options.subscribers.push_back(&vet);
    Mutex mu;
    run([&] {
        for (int i = 0; i < 10; ++i) {
            mu.lock();
            mu.unlock();
        }
    }, options);
    EXPECT_TRUE(vet.reports().empty());
}

} // namespace
} // namespace golite::vet
