/**
 * @file
 * Scanner tests: the lexer on Go surface syntax, the usage counter
 * on hand-written snippets, and the generator/counter loop (the
 * measured densities of a generated corpus must match its profile).
 */

#include <gtest/gtest.h>

#include "scanner/counter.hh"
#include "scanner/generator.hh"
#include "scanner/lexer.hh"

namespace golite::scanner
{
namespace
{

TEST(Lexer, TokenizesIdentifiersAndPunct)
{
    auto tokens = Lexer::tokenize("go func(x int) { ch <- x }");
    ASSERT_GE(tokens.size(), 8u);
    EXPECT_EQ(tokens[0].text, "go");
    EXPECT_EQ(tokens[1].text, "func");
    bool has_arrow = false;
    for (const Token &t : tokens)
        has_arrow |= (t.kind == TokenKind::Arrow);
    EXPECT_TRUE(has_arrow);
}

TEST(Lexer, SkipsComments)
{
    auto tokens = Lexer::tokenize(
        "// go func() comment\n/* sync.Mutex */\nx := 1");
    for (const Token &t : tokens) {
        EXPECT_NE(t.text, "go");
        EXPECT_NE(t.text, "sync");
    }
}

TEST(Lexer, SkipsStringContents)
{
    auto counts = countUsage("s := \"go func sync.Mutex chan\"\n");
    EXPECT_EQ(counts.goSites(), 0u);
    EXPECT_EQ(counts.mutex, 0u);
    EXPECT_EQ(counts.channel, 0u);
}

TEST(Counter, CountsGoroutineSites)
{
    auto counts = countUsage(R"(
        func start() {
            go worker(1)
            go func() { run() }()
            go pkg.Named(x)
        }
    )");
    EXPECT_EQ(counts.goAnonymous, 1u);
    EXPECT_EQ(counts.goNamed, 2u);
}

TEST(Counter, CountsPrimitiveCategories)
{
    auto counts = countUsage(R"(
        var mu sync.Mutex
        var rw sync.RWMutex
        var once sync.Once
        var wg sync.WaitGroup
        cond := sync.NewCond(&mu)
        var m sync.Map
        atomic.AddInt64(&n, 1)
        atomic.LoadInt32(&flag)
        ch := make(chan int, 4)
        var out chan string
    )");
    EXPECT_EQ(counts.mutex, 2u);
    EXPECT_EQ(counts.once, 1u);
    EXPECT_EQ(counts.waitGroup, 1u);
    EXPECT_EQ(counts.cond, 1u);
    EXPECT_EQ(counts.misc, 1u);
    EXPECT_EQ(counts.atomicOps, 2u);
    EXPECT_EQ(counts.channel, 2u);
    EXPECT_EQ(counts.sharedMemoryPrimitives(), 7u);
    EXPECT_EQ(counts.messagePassingPrimitives(), 3u);
}

TEST(Counter, CountsCSideMarkers)
{
    auto counts = countUsage(R"(
        gpr_thd_new(&tid, worker, arg);
        gpr_mu_lock(&mu);
        gpr_mu_unlock(&mu);
        pthread_create(&t, 0, run, 0);
    )");
    EXPECT_EQ(counts.threadCreation, 2u);
    EXPECT_EQ(counts.cLock, 2u);
}

TEST(Counter, AccumulateWorks)
{
    UsageCounts a = countUsage("var mu sync.Mutex\n");
    UsageCounts b = countUsage("ch := make(chan int)\n");
    a += b;
    EXPECT_EQ(a.mutex, 1u);
    EXPECT_EQ(a.channel, 1u);
    EXPECT_EQ(a.lines, 2u);
}

TEST(Generator, DeterministicPerSeed)
{
    const AppProfile &profile = goAppProfiles()[0];
    EXPECT_EQ(generateSource(profile, 7), generateSource(profile, 7));
    EXPECT_NE(generateSource(profile, 7), generateSource(profile, 8));
}

TEST(Generator, MeasuredDensitiesMatchProfile)
{
    for (const AppProfile &profile : goAppProfiles()) {
        const std::string source = generateSource(profile, 1);
        const UsageCounts counts = countUsage(source);
        // Line count near target.
        EXPECT_NEAR(static_cast<double>(counts.lines),
                    profile.sampleKloc * 1000.0,
                    profile.sampleKloc * 30.0)
            << profile.name;
        // Primitive density within sampling noise of the target.
        EXPECT_NEAR(counts.perKloc(counts.totalPrimitives()),
                    profile.primitivesPerKloc,
                    0.25 * profile.primitivesPerKloc + 0.4)
            << profile.name;
        // Goroutine site density in Table 2's stated range.
        EXPECT_NEAR(counts.perKloc(counts.goSites()),
                    profile.goSitesPerKloc,
                    0.35 * profile.goSitesPerKloc + 0.12)
            << profile.name;
    }
}

TEST(Generator, MixProportionsComeOutAsConfigured)
{
    // Use the biggest-sample profile and a wide tolerance: this is a
    // statistical property.
    AppProfile profile = goAppProfiles()[2]; // etcd, chan-heavy
    profile.sampleKloc = 60;
    const UsageCounts counts = countUsage(generateSource(profile, 3));
    const double total =
        static_cast<double>(counts.totalPrimitives());
    ASSERT_GT(total, 100.0);
    EXPECT_NEAR(counts.mutex / total, profile.mix[0], 0.06);
    EXPECT_NEAR(counts.channel / total, profile.mix[5], 0.06);
}

TEST(Generator, GrpcCUsesOnlyLocksAndFewThreads)
{
    const AppProfile &profile = grpcCProfile();
    const UsageCounts counts = countUsage(generateSource(profile, 1));
    EXPECT_EQ(counts.goSites(), 0u);
    EXPECT_EQ(counts.totalPrimitives(), 0u); // no Go primitives
    EXPECT_GT(counts.cLock, 0u);
    // ~0.03 sites/KLOC over a 40 KLOC sample: just a handful.
    EXPECT_LE(counts.threadCreation, 6u);
}

TEST(Generator, SnapshotsAreStableOverTime)
{
    const AppProfile &base = goAppProfiles()[0]; // Docker
    for (int month = 0; month < 40; month += 13) {
        AppProfile snap = snapshotProfile(base, month);
        EXPECT_NEAR(snap.mix[5], base.mix[5], 0.03) << month;
        double sum = 0;
        for (double m : snap.mix)
            sum += m;
        EXPECT_NEAR(sum, 1.0, 0.01);
    }
}

TEST(Generator, MonthLabels)
{
    EXPECT_EQ(monthLabel(0), "15-02");
    EXPECT_EQ(monthLabel(11), "16-01");
    EXPECT_EQ(monthLabel(39), "18-05");
}

} // namespace
} // namespace golite::scanner
