/**
 * @file
 * context package tests: cancellation, timeout, parent-child
 * propagation, idempotent CancelFunc, nil done channel of background.
 */

#include <gtest/gtest.h>

#include "golite/golite.hh"

namespace golite
{
namespace
{

using gotime::kMillisecond;

TEST(Context, BackgroundIsNeverDone)
{
    run([] {
        ctx::Context bg = ctx::background();
        EXPECT_FALSE(static_cast<bool>(bg->done())); // nil channel
        EXPECT_FALSE(bg->cancelled());
        EXPECT_TRUE(bg->err().empty());
    });
}

TEST(Context, WithCancelClosesDone)
{
    bool observed = false;
    RunReport report = run([&] {
        auto [child, cancel] = ctx::withCancel(ctx::background());
        go([&, c = child] {
            c->done().recv(); // blocks until cancel
            observed = true;
        });
        yield();
        cancel();
        yield();
        EXPECT_EQ(child->err(), "context canceled");
    });
    EXPECT_TRUE(observed);
    EXPECT_TRUE(report.clean());
}

TEST(Context, CancelFuncIsIdempotent)
{
    // A second cancel() must not double-close the done channel
    // (which would panic).
    RunReport report = run([] {
        auto [child, cancel] = ctx::withCancel(ctx::background());
        cancel();
        cancel();
        cancel();
    });
    EXPECT_FALSE(report.panicked);
    EXPECT_TRUE(report.completed);
}

TEST(Context, WithTimeoutFiresAutomatically)
{
    run([] {
        auto [child, cancel] =
            ctx::withTimeout(ctx::background(), 5 * kMillisecond);
        child->done().recv();
        EXPECT_EQ(child->err(), "context deadline exceeded");
        cancel(); // late cancel is a no-op
        EXPECT_EQ(child->err(), "context deadline exceeded");
    });
}

TEST(Context, ManualCancelBeatsTimeout)
{
    run([] {
        auto [child, cancel] =
            ctx::withTimeout(ctx::background(), 50 * kMillisecond);
        cancel();
        EXPECT_EQ(child->err(), "context canceled");
        gotime::sleep(100 * kMillisecond);
        EXPECT_EQ(child->err(), "context canceled");
    });
}

TEST(Context, ParentCancelPropagatesToChildren)
{
    run([] {
        auto [parent, cancel_parent] = ctx::withCancel(ctx::background());
        auto [child, cancel_child] = ctx::withCancel(parent);
        auto [grandchild, cancel_gc] = ctx::withCancel(child);
        cancel_parent();
        EXPECT_TRUE(parent->cancelled());
        EXPECT_TRUE(child->cancelled());
        EXPECT_TRUE(grandchild->cancelled());
    });
}

TEST(Context, ChildCancelDoesNotAffectParent)
{
    run([] {
        auto [parent, cancel_parent] = ctx::withCancel(ctx::background());
        auto [child, cancel_child] = ctx::withCancel(parent);
        cancel_child();
        EXPECT_TRUE(child->cancelled());
        EXPECT_FALSE(parent->cancelled());
        cancel_parent();
    });
}

TEST(Context, DeriveFromCancelledParentIsBornCancelled)
{
    run([] {
        auto [parent, cancel_parent] = ctx::withCancel(ctx::background());
        cancel_parent();
        auto [child, cancel_child] = ctx::withCancel(parent);
        EXPECT_TRUE(child->cancelled());
    });
}

TEST(Context, SelectOnDoneChannel)
{
    // The canonical worker loop: select { case <-ctx.Done(): return }.
    bool stopped = false;
    RunReport report = run([&] {
        auto [c, cancel] = ctx::withCancel(ctx::background());
        Chan<int> work = makeChan<int>(1);
        go([&, c = c, work] {
            for (;;) {
                bool done = false;
                Select()
                    .recv<Unit>(c->done(),
                                [&](Unit, bool) { done = true; })
                    .recv<int>(work, [](int, bool) {})
                    .run();
                if (done)
                    break;
            }
            stopped = true;
        });
        work.send(1);
        work.send(2);
        cancel();
        yield();
        yield();
    });
    EXPECT_TRUE(stopped);
    EXPECT_TRUE(report.clean());
}

TEST(Context, ForgettingCancelLeaksWaiter)
{
    // The Figure 6 bug shape: a goroutine waits on a context that no
    // one can cancel any more -> goroutine leak, invisible to the
    // global deadlock detector.
    RunReport report = run([] {
        auto [c, cancel] = ctx::withCancel(ctx::background());
        go("ctx-waiter", [c = c] { c->done().recv(); });
        yield();
        // cancel is dropped without being called.
    });
    EXPECT_FALSE(report.globalDeadlock);
    ASSERT_EQ(report.leaked.size(), 1u);
    EXPECT_EQ(report.leaked[0].label, "ctx-waiter");
}

TEST(Context, TimeoutCancelsDescendants)
{
    run([] {
        auto [parent, cancel_parent] =
            ctx::withTimeout(ctx::background(), 5 * kMillisecond);
        auto [child, cancel_child] = ctx::withCancel(parent);
        gotime::sleep(10 * kMillisecond);
        EXPECT_EQ(parent->err(), "context deadline exceeded");
        EXPECT_EQ(child->err(), "context canceled");
        cancel_parent();
        cancel_child();
    });
}

} // namespace
} // namespace golite
