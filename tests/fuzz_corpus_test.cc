/**
 * @file
 * Corpus-wide fuzzing sweep, behind the "fuzz" ctest label (run with
 * `ctest -L fuzz`): every buggy kernel's defect is reachable by the
 * coverage-guided fuzzer within a modest budget, and no fixed kernel
 * yields a bug report no matter how the fuzzer perturbs it.
 *
 * The race detector rides along (FuzzOptions::attachRaceDetector),
 * mirroring the paper's reproduction protocol of running the -race
 * build: blocking bugs count via the kernel's own manifestation
 * judgement, pure data races via detector reports.
 */

#include <gtest/gtest.h>

#include "corpus/bug.hh"
#include "fuzz/fuzzer.hh"

namespace golite
{
namespace
{

fuzz::FuzzOptions
campaign(size_t budget)
{
    fuzz::FuzzOptions fo;
    fo.maxExecutions = budget;
    fo.workers = 1; // deterministic across machines
    fo.fuzzSeed = 1;
    fo.attachRaceDetector = true;
    return fo;
}

TEST(FuzzCorpus, EveryBuggyKernelIsFoundWithinBudget)
{
    for (const corpus::BugCase &bug : corpus::corpus()) {
        const fuzz::FuzzResult r = fuzz::fuzzKernel(
            bug, corpus::Variant::Buggy, campaign(800));
        EXPECT_TRUE(r.bugFound)
            << bug.info.id << ": no bug in " << r.executions
            << " executions (" << r.coverageStates
            << " coverage states)";
    }
}

TEST(FuzzCorpus, NoFixedKernelEverYieldsABug)
{
    for (const corpus::BugCase &bug : corpus::corpus()) {
        fuzz::FuzzOptions fo = campaign(120);
        fo.stopAtFirstBug = true; // stop early *if* one appears
        const fuzz::FuzzResult r =
            fuzz::fuzzKernel(bug, corpus::Variant::Fixed, fo);
        EXPECT_FALSE(r.bugFound)
            << bug.info.id << ": fixed variant flagged at execution "
            << r.executionsToBug << ": "
            << r.bugReport.describe();
    }
}

} // namespace
} // namespace golite
