/**
 * @file
 * netpoll tests: the epoll reactor as a scheduler wait reason —
 * listen/dial/accept, parked reads woken by the poller, EOF and close
 * semantics, many concurrent echo connections, and the NetIO leak
 * classification when a socket never becomes ready.
 *
 * Everything runs under RunOptions::realTime (the netpoll mode): the
 * kernel decides readiness order, so these tests assert outcomes, not
 * schedules.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "golite/golite.hh"

namespace golite
{
namespace
{

RunOptions
netOptions()
{
    RunOptions options;
    options.realTime = true;
    options.policy = SchedPolicy::Fifo;
    return options;
}

TEST(Netpoll, RoundTrip)
{
    std::string got;
    RunReport report = run(
        [&] {
            netpoll::Poller poller;
            auto ln = poller.listen(0);
            ASSERT_TRUE(ln);
            go("server", [ln] {
                auto conn = ln.accept();
                ASSERT_TRUE(conn);
                std::string buf;
                auto res = conn.read(buf);
                ASSERT_TRUE(res.ok());
                conn.write("echo:" + buf);
                conn.close();
            });
            auto conn = poller.dial(ln.port());
            ASSERT_TRUE(conn);
            conn.write("ping");
            std::string buf;
            auto res = conn.read(buf);
            EXPECT_TRUE(res.ok());
            got = buf;
            conn.close();
            ln.close();
        },
        netOptions());
    EXPECT_EQ(got, "echo:ping");
    EXPECT_TRUE(report.clean()) << report.describe();
}

TEST(Netpoll, ReadParksUntilDataArrives)
{
    // The reader dials first and parks in read(); the writer sends
    // only after a real-time sleep, so the wake must come from the
    // poller, not from data already buffered at read time.
    std::string got;
    RunReport report = run(
        [&] {
            netpoll::Poller poller;
            auto ln = poller.listen(0);
            ASSERT_TRUE(ln);
            go("server", [ln] {
                auto conn = ln.accept();
                gotime::sleep(5 * gotime::kMillisecond);
                conn.write("late");
                conn.close();
            });
            auto conn = poller.dial(ln.port());
            ASSERT_TRUE(conn);
            std::string buf;
            auto res = conn.read(buf);
            EXPECT_TRUE(res.ok());
            got = buf;
            auto eof = conn.read(buf);
            EXPECT_EQ(eof.err, "EOF");
            conn.close();
            ln.close();
        },
        netOptions());
    EXPECT_EQ(got, "late");
    EXPECT_TRUE(report.clean()) << report.describe();
}

TEST(Netpoll, CloseWakesParkedReader)
{
    std::string err;
    RunReport report = run(
        [&] {
            netpoll::Poller poller;
            auto ln = poller.listen(0);
            auto server_done = makeChan<Unit>();
            go("server", [ln, server_done] {
                auto conn = ln.accept();
                server_done.recv(); // hold the conn open, never write
                conn.close();
            });
            auto conn = poller.dial(ln.port());
            ASSERT_TRUE(conn);
            go("closer", [conn] {
                gotime::sleep(2 * gotime::kMillisecond);
                conn.close();
            });
            std::string buf;
            auto res = conn.read(buf);
            err = res.err;
            server_done.send({});
            ln.close();
        },
        netOptions());
    EXPECT_EQ(err, "use of closed network connection");
    EXPECT_TRUE(report.clean()) << report.describe();
}

TEST(Netpoll, DialRefusedReturnsInvalidConn)
{
    bool dialed = true;
    RunReport report = run(
        [&] {
            netpoll::Poller poller;
            // Grab a free port, then close the listener so nothing is
            // accepting there.
            auto ln = poller.listen(0);
            const uint16_t port = ln.port();
            ln.close();
            auto conn = poller.dial(port);
            dialed = static_cast<bool>(conn);
        },
        netOptions());
    EXPECT_FALSE(dialed);
    EXPECT_TRUE(report.clean()) << report.describe();
}

TEST(Netpoll, ManyConcurrentEchoConnections)
{
    // Goroutine-per-request fan-out over real sockets: N clients, one
    // acceptor, one handler goroutine per connection.
    constexpr int kConns = 32;
    int replies = 0;
    RunReport report = run(
        [&] {
            netpoll::Poller poller;
            auto ln = poller.listen(0);
            ASSERT_TRUE(ln);
            auto handler_done = makeChan<Unit>();
            go("acceptor", [ln, handler_done] {
                for (;;) {
                    auto conn = ln.accept();
                    if (!conn)
                        return; // listener closed
                    go("handler", [conn, handler_done] {
                        std::string buf;
                        for (;;) {
                            auto res = conn.read(buf);
                            if (!res.ok())
                                break;
                            if (!conn.write(buf).ok())
                                break;
                        }
                        conn.close();
                        handler_done.send({});
                    });
                }
            });
            auto done = makeChan<bool>();
            for (int i = 0; i < kConns; ++i) {
                go("client", [&poller, ln, done, i] {
                    auto conn = poller.dial(ln.port());
                    if (!conn) {
                        done.send(false);
                        return;
                    }
                    const std::string msg =
                        "msg-" + std::to_string(i);
                    conn.write(msg);
                    std::string buf;
                    auto res = conn.read(buf);
                    done.send(res.ok() && buf == msg);
                    conn.close();
                });
            }
            for (int i = 0; i < kConns; ++i)
                replies += done.recv().value ? 1 : 0;
            // Handlers see EOF once their client closes; wait for all
            // of them so main's return leaks nothing.
            for (int i = 0; i < kConns; ++i)
                handler_done.recv();
            ln.close();
        },
        netOptions());
    EXPECT_EQ(replies, kConns);
    EXPECT_TRUE(report.clean()) << report.describe();
}

TEST(Netpoll, LeakedNetIoWaiterClassified)
{
    // A goroutine parked on a socket that never becomes ready is a
    // goroutine leak with the NetIO wait reason, and the wait-graph
    // detector classifies it as NetIoStuck.
    waitgraph::Detector detector;
    RunOptions options = netOptions();
    options.subscribers.push_back(&detector);
    RunReport report = run(
        [&] {
            netpoll::Poller poller;
            auto ln = poller.listen(0);
            auto conn = poller.dial(ln.port());
            ASSERT_TRUE(conn);
            go("stuck-reader", [conn] {
                std::string buf;
                conn.read(buf); // no peer ever writes
            });
            // Give the reader time to park, then exit main with the
            // goroutine still blocked.
            gotime::sleep(2 * gotime::kMillisecond);
        },
        options);
    ASSERT_EQ(report.leaked.size(), 1u);
    EXPECT_EQ(report.leaked[0].reason, WaitReason::NetIO);
    ASSERT_FALSE(report.partialDeadlocks.empty());
    EXPECT_EQ(report.partialDeadlocks[0].cause,
              DeadlockCause::NetIoStuck);
}

TEST(Netpoll, PollerOutsideRunThrows)
{
    EXPECT_THROW(netpoll::Poller{}, std::logic_error);
}

} // namespace
} // namespace golite
