/**
 * @file
 * Wait-for-graph partial-deadlock detector tests: certain mid-run
 * reports (lock cycles, orphaned locks, nil-channel ops, dead
 * selects), end-of-run leak classification, the no-false-positive
 * guarantee for blocked-but-wakeable goroutines, and exhaustiveness
 * of the enum name tables the diagnoses are rendered with.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "golite/golite.hh"

namespace golite
{
namespace
{

using waitgraph::Detector;

bool
hasCause(const RunReport &report, DeadlockCause cause, bool certain)
{
    for (const PartialDeadlock &pd : report.partialDeadlocks) {
        if (pd.cause == cause && pd.certain == certain)
            return true;
    }
    return false;
}

TEST(WaitGraph, MutexAbBaCycleIsCertain)
{
    // Classic AB-BA: both goroutines take their first lock, rendezvous
    // over buffered channels, then cross. The moment the second one
    // parks the cycle is complete and must be reported mid-run.
    Detector det;
    RunOptions options;
    options.subscribers.push_back(&det);
    RunReport report = run(
        [] {
            auto a = std::make_shared<Mutex>();
            auto b = std::make_shared<Mutex>();
            Chan<int> aHeld = makeChan<int>(1);
            Chan<int> bHeld = makeChan<int>(1);
            go([=] {
                a->lock();
                aHeld.send(1);
                bHeld.recv();
                b->lock(); // deadlock: partner holds b, wants a
            });
            go([=] {
                b->lock();
                bHeld.send(1);
                aHeld.recv();
                a->lock(); // deadlock: partner holds a, wants b
            });
        },
        options);

    ASSERT_EQ(det.certainReports().size(), 1u);
    const PartialDeadlock &pd = det.certainReports()[0];
    EXPECT_TRUE(pd.certain);
    EXPECT_EQ(pd.cause, DeadlockCause::LockCycle);
    EXPECT_EQ(pd.goids.size(), 2u);
    EXPECT_NE(pd.chain.find("(cycle)"), std::string::npos);
    EXPECT_TRUE(hasCause(report, DeadlockCause::LockCycle, true));
    // Not a global deadlock: main exits fine. The built-in detector
    // misses this bug; the wait graph does not.
    EXPECT_FALSE(report.globalDeadlock);
}

TEST(WaitGraph, DoubleLockSelfCycleIsCertain)
{
    Detector det;
    RunOptions options;
    options.subscribers.push_back(&det);
    RunReport report = run(
        [] {
            Mutex mu;
            mu.lock();
            mu.lock(); // Go mutexes are not reentrant
        },
        options);
    EXPECT_TRUE(report.globalDeadlock); // built-in fires too (all asleep)
    ASSERT_EQ(det.certainReports().size(), 1u);
    EXPECT_EQ(det.certainReports()[0].cause, DeadlockCause::LockCycle);
}

TEST(WaitGraph, RWMutexReadCycleBehindPendingWriter)
{
    // Section 5.1.1 / cockroach-10214 shape: a goroutine re-RLocks a
    // lock it already read-holds while a writer is queued. Go's
    // writer-priority RWMutex parks the second RLock behind the
    // writer, the writer waits for the first read hold: cycle.
    Detector det;
    RunOptions options;
    options.subscribers.push_back(&det);
    RunReport report = run(
        [] {
            auto mu = std::make_shared<RWMutex>();
            mu->rlock();
            go([=] {
                mu->lock(); // blocks: read hold active
                mu->unlock();
            });
            // Let the writer park (virtual clock only advances once
            // every other goroutine is blocked).
            gotime::sleep(gotime::kMillisecond);
            mu->rlock(); // parks behind the queued writer: cycle
        },
        options);
    EXPECT_TRUE(report.globalDeadlock);
    ASSERT_GE(det.certainReports().size(), 1u);
    const PartialDeadlock &pd = det.certainReports()[0];
    EXPECT_EQ(pd.cause, DeadlockCause::LockCycle);
    EXPECT_EQ(pd.reason, WaitReason::RWMutexRLock);
    EXPECT_EQ(pd.goids.size(), 2u);
}

TEST(WaitGraph, OrphanedLockReportedWhenHolderExits)
{
    // docker-5416 shape: the holder exits without unlocking while
    // another goroutine is already parked on the lock.
    Detector det;
    RunOptions options;
    options.subscribers.push_back(&det);
    RunReport report = run(
        [] {
            auto mu = std::make_shared<Mutex>();
            go([=] {
                mu->lock();
                gotime::sleep(2 * gotime::kMillisecond);
                // exits still holding mu
            });
            gotime::sleep(gotime::kMillisecond);
            mu->lock(); // parks while the holder is merely asleep
        },
        options);
    EXPECT_TRUE(report.globalDeadlock);
    ASSERT_EQ(det.certainReports().size(), 1u);
    const PartialDeadlock &pd = det.certainReports()[0];
    EXPECT_EQ(pd.cause, DeadlockCause::LockOrphaned);
    EXPECT_NE(pd.chain.find("exited"), std::string::npos);
}

TEST(WaitGraph, OrphanedLockReportedWhenParkingAfterExit)
{
    // Same bug, other event order: the holder is already gone by the
    // time the victim parks.
    Detector det;
    RunOptions options;
    options.subscribers.push_back(&det);
    run(
        [] {
            auto mu = std::make_shared<Mutex>();
            go([=] { mu->lock(); });
            gotime::sleep(gotime::kMillisecond); // holder runs and exits
            mu->lock();
        },
        options);
    ASSERT_EQ(det.certainReports().size(), 1u);
    EXPECT_EQ(det.certainReports()[0].cause,
              DeadlockCause::LockOrphaned);
}

TEST(WaitGraph, NilChannelOpIsCertain)
{
    Detector det;
    RunOptions options;
    options.subscribers.push_back(&det);
    RunReport report = run(
        [] {
            Chan<int> nil; // default-constructed channel is nil
            go([nil]() mutable { nil.send(1); });
            yield();
        },
        options);
    ASSERT_EQ(det.certainReports().size(), 1u);
    EXPECT_EQ(det.certainReports()[0].cause, DeadlockCause::ChanNilOp);
    EXPECT_EQ(det.certainReports()[0].reason, WaitReason::ChanSendNil);
    EXPECT_EQ(report.leaked.size(), 1u);
    // The leak is already explained by the certain report: no
    // duplicate post-mortem entry for the same goroutine.
    EXPECT_EQ(report.partialDeadlocks.size(), 1u);
}

TEST(WaitGraph, SelectWithNoLiveCaseIsCertain)
{
    Detector det;
    RunOptions options;
    options.subscribers.push_back(&det);
    run(
        [] {
            Chan<int> nil;
            go([nil] {
                Select()
                    .recv<int>(nil, [](int, bool) {})
                    .run(); // every case nil: can never fire
            });
            yield();
        },
        options);
    ASSERT_EQ(det.certainReports().size(), 1u);
    EXPECT_EQ(det.certainReports()[0].cause,
              DeadlockCause::SelectStuck);
}

TEST(WaitGraph, ChannelWithNoSenderClassifiedPostMortem)
{
    // A receiver on a channel nobody will ever send on is NOT certain
    // mid-run (a sender could still appear) — it is classified at end
    // of run from the leak report.
    Detector det;
    RunOptions options;
    options.subscribers.push_back(&det);
    RunReport report = run(
        [] {
            Chan<int> ch = makeChan<int>();
            go([ch] { ch.recv(); });
            yield();
        },
        options);
    EXPECT_TRUE(det.certainReports().empty());
    ASSERT_EQ(report.partialDeadlocks.size(), 1u);
    const PartialDeadlock &pd = report.partialDeadlocks[0];
    EXPECT_FALSE(pd.certain);
    EXPECT_EQ(pd.cause, DeadlockCause::ChanNoSender);
    EXPECT_EQ(pd.reason, WaitReason::ChanRecv);
    EXPECT_TRUE(report.partialDeadlockFlagged());
}

TEST(WaitGraph, LeakClassificationCoversSyncPrimitives)
{
    Detector det;
    RunOptions options;
    options.subscribers.push_back(&det);
    RunReport report = run(
        [] {
            auto wg = std::make_shared<WaitGroup>();
            wg->add(1);
            go([wg] { wg->wait(); }); // nobody calls done()
            auto mu = std::make_shared<Mutex>();
            auto cond = std::make_shared<Cond>(*mu);
            go([mu, cond] {
                mu->lock();
                cond->wait(); // nobody signals
            });
            Chan<int> full = makeChan<int>(0);
            go([full]() mutable { full.send(7); }); // no receiver
            gotime::sleep(gotime::kMillisecond);
        },
        options);
    EXPECT_TRUE(det.certainReports().empty());
    EXPECT_EQ(report.partialDeadlocks.size(), 3u);
    EXPECT_TRUE(hasCause(report, DeadlockCause::WaitGroupStuck, false));
    EXPECT_TRUE(hasCause(report, DeadlockCause::CondStuck, false));
    EXPECT_TRUE(hasCause(report, DeadlockCause::ChanNoReceiver, false));
}

TEST(WaitGraph, NoFalsePositiveForReachableWakeups)
{
    // The soundness guarantee: goroutines that are blocked but will be
    // woken must never be reported mid-run, and a clean run carries no
    // diagnoses at all. Exercises every wait type the detector edges
    // over: channel waits, contended locks (holder asleep, a state the
    // cycle DFS must prune), writer-priority RWMutex waits, WaitGroup
    // and Cond waits that do get signalled.
    Detector det;
    RunOptions options;
    options.subscribers.push_back(&det);
    RunReport report = run(
        [] {
            Chan<int> ch = makeChan<int>();
            go([ch]() mutable { ch.send(1); }); // blocked until main recvs

            auto mu = std::make_shared<Mutex>();
            go([mu] {
                mu->lock();
                gotime::sleep(2 * gotime::kMillisecond);
                mu->unlock();
            });
            auto rw = std::make_shared<RWMutex>();
            go([rw] {
                rw->rlock();
                gotime::sleep(2 * gotime::kMillisecond);
                rw->runlock();
            });
            auto wg = std::make_shared<WaitGroup>();
            wg->add(1);
            go([wg] { wg->wait(); });

            gotime::sleep(gotime::kMillisecond);
            mu->lock(); // contended: holder is asleep, not gone
            mu->unlock();
            rw->lock(); // writer waits out the sleeping reader
            rw->unlock();
            ch.recv();
            wg->done();
        },
        options);
    EXPECT_TRUE(report.clean());
    EXPECT_TRUE(det.certainReports().empty());
    EXPECT_TRUE(report.partialDeadlocks.empty());
    EXPECT_FALSE(report.partialDeadlockFlagged());
}

TEST(WaitGraph, DescribeMentionsPartialDeadlocks)
{
    Detector det;
    RunOptions options;
    options.subscribers.push_back(&det);
    RunReport report = run(
        [] {
            Mutex mu;
            mu.lock();
            mu.lock();
        },
        options);
    EXPECT_NE(report.describe().find("partial deadlock"),
              std::string::npos);
    EXPECT_NE(report.describe().find("lock cycle"), std::string::npos);
    EXPECT_EQ(report.certainDeadlocks(), 1u);
}

// --- enum name exhaustiveness -------------------------------------
// The diagnoses are rendered through these tables; a new enum value
// without a name would silently print the fallback. Every value must
// have a distinct, non-fallback name.

TEST(EnumNames, WaitReasonNamesAreExhaustive)
{
    std::set<std::string> seen;
    for (int i = 0; i < kWaitReasonCount; ++i) {
        std::string name =
            waitReasonName(static_cast<WaitReason>(i));
        EXPECT_NE(name, "unknown") << "WaitReason value " << i;
        EXPECT_TRUE(seen.insert(name).second)
            << "duplicate name: " << name;
    }
    EXPECT_STREQ(waitReasonName(static_cast<WaitReason>(
                     kWaitReasonCount)),
                 "unknown");
}

TEST(EnumNames, TraceKindNamesAreExhaustive)
{
    std::set<std::string> seen;
    for (int i = 0; i < kTraceKindCount; ++i) {
        std::string name = traceKindName(static_cast<TraceKind>(i));
        EXPECT_NE(name, "?") << "TraceKind value " << i;
        EXPECT_TRUE(seen.insert(name).second)
            << "duplicate name: " << name;
    }
    EXPECT_STREQ(traceKindName(static_cast<TraceKind>(kTraceKindCount)),
                 "?");
}

TEST(EnumNames, DeadlockCauseNamesAreExhaustive)
{
    std::set<std::string> seen;
    for (int i = 0; i < kDeadlockCauseCount; ++i) {
        std::string name =
            deadlockCauseName(static_cast<DeadlockCause>(i));
        EXPECT_NE(name, "?") << "DeadlockCause value " << i;
        EXPECT_TRUE(seen.insert(name).second)
            << "duplicate name: " << name;
    }
    EXPECT_STREQ(deadlockCauseName(static_cast<DeadlockCause>(
                     kDeadlockCauseCount)),
                 "?");
}

} // namespace
} // namespace golite
