/**
 * @file
 * time package tests on the virtual clock: Sleep, Timer (including the
 * Figure 12 zero-duration hazard), Stop/Reset, Ticker, After.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "golite/golite.hh"

namespace golite
{
namespace
{

using gotime::kMillisecond;

TEST(Time, SleepAdvancesVirtualClock)
{
    run([] {
        const auto t0 = gotime::now();
        gotime::sleep(7 * kMillisecond);
        EXPECT_EQ(gotime::now() - t0, 7 * kMillisecond);
    });
}

TEST(Time, TimerFiresOnce)
{
    int fires = 0;
    run([&] {
        gotime::Timer t = gotime::newTimer(5 * kMillisecond);
        t.c.recv();
        fires++;
        gotime::sleep(20 * kMillisecond);
        EXPECT_FALSE(t.c.tryRecv().has_value());
    });
    EXPECT_EQ(fires, 1);
}

TEST(Time, TimerDeliversFireTime)
{
    run([] {
        gotime::Timer t = gotime::newTimer(5 * kMillisecond);
        gotime::Time fired_at = t.c.recv().value;
        EXPECT_EQ(fired_at, 5 * kMillisecond);
    });
}

TEST(Time, ZeroDurationTimerFiresImmediately)
{
    // The Figure 12 hazard: NewTimer(0) signals its channel right
    // away, which made the buggy function return prematurely.
    run([] {
        gotime::Timer t = gotime::newTimer(0);
        gotime::Time fired_at = t.c.recv().value;
        EXPECT_EQ(fired_at, 0);
    });
}

TEST(Time, StopPreventsFiring)
{
    run([] {
        gotime::Timer t = gotime::newTimer(5 * kMillisecond);
        EXPECT_TRUE(t.stop());
        gotime::sleep(20 * kMillisecond);
        EXPECT_FALSE(t.c.tryRecv().has_value());
        EXPECT_FALSE(t.stop()); // second stop: already stopped
    });
}

TEST(Time, StopAfterFiringReturnsFalse)
{
    run([] {
        gotime::Timer t = gotime::newTimer(1 * kMillisecond);
        gotime::sleep(5 * kMillisecond);
        EXPECT_FALSE(t.stop());
        EXPECT_TRUE(t.c.tryRecv().has_value());
    });
}

TEST(Time, ResetReArms)
{
    run([] {
        gotime::Timer t = gotime::newTimer(5 * kMillisecond);
        EXPECT_TRUE(t.reset(10 * kMillisecond));
        gotime::Time fired_at = t.c.recv().value;
        EXPECT_EQ(fired_at, 10 * kMillisecond);
    });
}

TEST(Time, AfterIsATimerChannel)
{
    run([] {
        Chan<gotime::Time> done = gotime::after(3 * kMillisecond);
        EXPECT_EQ(done.recv().value, 3 * kMillisecond);
    });
}

TEST(Time, TickerTicksRepeatedly)
{
    std::vector<gotime::Time> ticks;
    run([&] {
        gotime::Ticker ticker = gotime::newTicker(10 * kMillisecond);
        for (int i = 0; i < 3; ++i)
            ticks.push_back(ticker.c.recv().value);
        ticker.stop();
        gotime::sleep(50 * kMillisecond);
        EXPECT_FALSE(ticker.c.tryRecv().has_value());
    });
    EXPECT_EQ(ticks, (std::vector<gotime::Time>{10 * kMillisecond,
                                                20 * kMillisecond,
                                                30 * kMillisecond}));
}

TEST(Time, SlowTickerReceiverDropsTicks)
{
    // Go semantics: ticks are delivered by non-blocking send on a
    // capacity-1 channel, so a slow receiver loses ticks rather than
    // queueing them.
    run([] {
        gotime::Ticker ticker = gotime::newTicker(10 * kMillisecond);
        gotime::sleep(55 * kMillisecond); // 5 ticks elapsed
        int received = 0;
        while (ticker.c.tryRecv().has_value())
            received++;
        EXPECT_EQ(received, 1); // only the buffered one survived
        ticker.stop();
    });
}

TEST(Time, ZeroPeriodTickerPanics)
{
    RunReport report = run([] { gotime::newTicker(0); });
    EXPECT_TRUE(report.panicked);
}

TEST(Time, TimersOrderAcrossGoroutines)
{
    std::vector<int> order;
    run([&] {
        WaitGroup wg;
        wg.add(2);
        go([&] {
            gotime::sleep(20 * kMillisecond);
            order.push_back(2);
            wg.done();
        });
        go([&] {
            gotime::sleep(10 * kMillisecond);
            order.push_back(1);
            wg.done();
        });
        wg.wait();
    });
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// --- Timer-wheel boundary cases -----------------------------------
//
// The hashed wheel (src/runtime/timer_wheel) spans ~2.15s of virtual
// time per revolution; these tests pin the exactness contract at its
// edges — coincident deadlines, cancellation around a shared firing
// instant, deadlines past the span (spillover), and multi-revolution
// runs — and prove the wheel and the heap baseline produce
// byte-identical executions.

TEST(TimerWheel, CoincidentDeadlinesFireInCreationOrder)
{
    // Same deadline => (when, seq) order == creation order, even
    // though all eight land in one wheel slot and one due batch. The
    // callbacks run as spawned goroutines, so FIFO dispatch keeps the
    // observed order equal to the firing order.
    std::vector<int> order;
    RunOptions options;
    options.policy = SchedPolicy::Fifo;
    run(
        [&] {
            WaitGroup wg;
            wg.add(8);
            for (int i = 0; i < 8; ++i) {
                gotime::afterFunc(5 * kMillisecond,
                                  [&order, &wg, i] {
                                      order.push_back(i);
                                      wg.done();
                                  });
            }
            wg.wait();
        },
        options);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(TimerWheel, StopAfterCoincidentBatchReturnsFalse)
{
    // Two timers on the same instant both fire in one batch; by the
    // time the first's receiver runs, stopping the second is too late
    // (Go semantics: Stop returns false and does not drain).
    run([&] {
        gotime::Timer a = gotime::newTimer(3 * kMillisecond);
        gotime::Timer b = gotime::newTimer(3 * kMillisecond);
        a.c.recv();
        EXPECT_FALSE(b.stop());
        EXPECT_TRUE(b.c.tryRecv().has_value());
    });
}

TEST(TimerWheel, StopBeforeSharedDeadlinePreventsOnlyThatTimer)
{
    // Cancelling one of two coincident timers ahead of the deadline
    // leaves a dead entry in the shared slot; the batch must skip it
    // and still fire its twin.
    int fired = 0;
    run([&] {
        gotime::Timer a = gotime::newTimer(3 * kMillisecond);
        gotime::Timer b = gotime::newTimer(3 * kMillisecond);
        EXPECT_TRUE(b.stop());
        a.c.recv();
        fired++;
        gotime::sleep(5 * kMillisecond);
        EXPECT_FALSE(b.c.tryRecv().has_value());
    });
    EXPECT_EQ(fired, 1);
}

TEST(TimerWheel, DeadlinesBeyondOneRevolutionOrderCorrectly)
{
    // 3s and 5s exceed the wheel span (~2.15s) and sit in the
    // spillover heap; they must still interleave exactly with
    // in-wheel deadlines.
    std::vector<int> order;
    run([&] {
        WaitGroup wg;
        wg.add(3);
        go([&] {
            gotime::sleep(5 * gotime::kSecond);
            order.push_back(3);
            wg.done();
        });
        go([&] {
            gotime::sleep(100 * kMillisecond);
            order.push_back(1);
            wg.done();
        });
        go([&] {
            gotime::sleep(3 * gotime::kSecond);
            order.push_back(2);
            wg.done();
        });
        const auto t0 = gotime::now();
        wg.wait();
        EXPECT_EQ(gotime::now() - t0, 5 * gotime::kSecond);
    });
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(TimerWheel, TickerAcrossMultipleRevolutions)
{
    // 20 x 400ms = 8s of virtual time, several cursor wrap-arounds;
    // each tick must land exactly on its period.
    int ticks = 0;
    run([&] {
        const auto t0 = gotime::now();
        gotime::Ticker tk = gotime::newTicker(400 * kMillisecond);
        for (int i = 0; i < 20; ++i) {
            tk.c.recv();
            ticks++;
        }
        EXPECT_EQ(gotime::now() - t0, 20 * 400 * kMillisecond);
        tk.stop();
    });
    EXPECT_EQ(ticks, 20);
}

TEST(TimerWheel, WheelAndHeapProduceIdenticalExecutions)
{
    // The A/B gate behind every golden trace: the same timer-heavy
    // kernel, once on the wheel (default) and once on the heap
    // baseline (GOLITE_TIMER_WHEEL=0), must yield byte-identical
    // report fingerprints, full event trace included.
    auto kernel = [] {
        WaitGroup wg;
        wg.add(3);
        go("short", [&] {
            for (int i = 0; i < 5; ++i)
                gotime::sleep(7 * kMillisecond);
            wg.done();
        });
        go("long", [&] {
            gotime::sleep(3 * gotime::kSecond); // spillover range
            wg.done();
        });
        go("timers", [&] {
            gotime::Timer t = gotime::newTimer(2 * kMillisecond);
            t.c.recv();
            t.reset(11 * kMillisecond);
            t.c.recv();
            gotime::Timer dead = gotime::newTimer(4 * kMillisecond);
            dead.stop();
            wg.done();
        });
        wg.wait();
    };
    RunOptions options;
    options.seed = 99;
    options.collectTrace = true;

    RunReport wheel = run(kernel, options);
    ::setenv("GOLITE_TIMER_WHEEL", "0", 1);
    RunReport heap = run(kernel, options);
    ::unsetenv("GOLITE_TIMER_WHEEL");

    EXPECT_TRUE(wheel.clean());
    EXPECT_EQ(wheel.fingerprint(), heap.fingerprint());
}

} // namespace
} // namespace golite
